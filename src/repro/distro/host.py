"""A simulated host: one OS installation on one hardware node.

The :class:`Host` is the object every higher layer operates on — the RPM
database lives on it, yum transactions mutate it, Rocks provisions it, the
compatibility audit inspects it.  It ties together the filesystem, service
manager, user database, environment-modules tree and the distro release.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CommandError, DistroError
from ..hardware.node import Node
from .distribution import DistroRelease
from .filesystem import FileKind, Filesystem
from .modules_env import ModuleSystem
from .services import ServiceManager
from .users import UserDatabase

__all__ = ["Host"]

#: Directories searched for executables, in order (XSEDE convention keeps
#: cluster software under /opt and /usr/local as well as the system paths).
DEFAULT_PATH = (
    "/usr/local/bin",
    "/usr/bin",
    "/bin",
    "/usr/sbin",
    "/sbin",
    "/opt/bin",
)


class Host:
    """One installed operating system on one node.

    Parameters
    ----------
    node:
        The hardware this OS runs on.  A host can only be created on a node
        with storage unless ``diskless_image`` is true (the Limulus compute
        nodes network-boot a shared image; Rocks, by contrast, refuses
        diskless nodes — that check lives in :mod:`repro.rocks.installer`).
    release:
        The distro release installed.
    diskless_image:
        True when the host runs a network-mounted image rather than a local
        install.
    """

    def __init__(
        self,
        node: Node,
        release: DistroRelease,
        *,
        diskless_image: bool = False,
    ) -> None:
        if node.diskless and not diskless_image:
            raise DistroError(
                f"{node.name}: cannot install {release.release_string} on a "
                f"diskless node without a network image"
            )
        self.node = node
        self.release = release
        self.diskless_image = diskless_image
        self.fs = Filesystem()
        self.services = ServiceManager()
        self.users = UserDatabase()
        self.modules = ModuleSystem()
        self.hostname = node.name
        self._lay_down_base_os()

    # -- base install ---------------------------------------------------------

    def _lay_down_base_os(self) -> None:
        """Create the canonical tree and release marker of a fresh install."""
        for path in (
            "/bin",
            "/sbin",
            "/usr/bin",
            "/usr/sbin",
            "/usr/lib64",
            "/usr/local/bin",
            "/usr/share",
            "/etc",
            "/etc/yum.repos.d",
            "/etc/modulefiles",
            "/var/log",
            "/var/lib/rpm",
            "/home",
            "/opt",
            "/tmp",
            "/root",
        ):
            self.fs.mkdir(path, exist_ok=True)
        self.fs.write(
            "/etc/redhat-release", self.release.release_string + "\n"
        )
        self.fs.write("/etc/hostname", self.hostname + "\n")
        # The shell itself.
        self.fs.write("/bin/bash", "#!ELF bash", mode=0o755, owner="bash")

    # -- identity ---------------------------------------------------------------

    @property
    def name(self) -> str:
        """The hostname (same as the hardware node name)."""
        return self.hostname

    @property
    def arch(self) -> str:
        """The machine architecture (``uname -m``), from the CPU's ISA.

        This is what makes Section 8's Raspberry-Pi argument executable:
        XCBC/XNIT packages are ``x86_64`` builds and refuse to install on a
        non-x86 host (see :meth:`repro.rpm.transaction.Transaction.check`).
        """
        return self.node.cpu.arch.isa

    def release_string(self) -> str:
        """Contents of /etc/redhat-release, stripped."""
        return self.fs.read("/etc/redhat-release").strip()

    # -- command surface -----------------------------------------------------------

    def which(self, command: str) -> str:
        """Resolve a command name against the standard PATH.

        Returns the path of the first executable match; raises
        :class:`CommandError` if not found.  This is the "commands work as
        they do on XSEDE-supported clusters" surface the compatibility audit
        exercises.
        """
        for directory in DEFAULT_PATH:
            candidate = f"{directory}/{command}"
            if self.fs.exists(candidate):
                node = self.fs.get(candidate)
                if node.kind is FileKind.SYMLINK:
                    node = self.fs.get(node.target)
                if node.executable:
                    return candidate
        raise CommandError(f"{self.hostname}: command not found: {command}")

    def has_command(self, command: str) -> bool:
        """True if :meth:`which` would succeed."""
        try:
            self.which(command)
            return True
        except CommandError:
            return False

    def commands(self) -> list[str]:
        """Every executable name reachable via the standard PATH, sorted."""
        seen: set[str] = set()
        for directory in DEFAULT_PATH:
            if not self.fs.is_dir(directory):
                continue
            for name in self.fs.listdir(directory):
                node = self.fs.get(f"{directory}/{name}")
                if node.kind is FileKind.SYMLINK:
                    try:
                        node = self.fs.get(node.target)
                    except Exception:
                        continue
                if node.kind is FileKind.FILE and node.executable:
                    seen.add(name)
        return sorted(seen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.hostname} ({self.release.release_string})>"

"""ClusterShell tests: the training-facing command-line surface."""

import pytest

from repro.cli import ClusterShell
from repro.core import build_xnit_repository
from repro.scheduler import ClusterResources, MauiScheduler


@pytest.fixture
def shell(xcbc_littlefe):
    cluster = xcbc_littlefe.cluster
    return ClusterShell(
        cluster,
        scheduler=MauiScheduler(ClusterResources(cluster.machine)),
        repositories={"xsede": build_xnit_repository()},
    )


class TestBasics:
    def test_hostname(self, shell):
        assert shell.run("hostname").output == "littlefe-iu-n0"

    def test_ssh_hops_between_nodes(self, shell):
        assert shell.run("ssh compute-0-0").ok
        assert shell.run("hostname").output == "compute-0-0"
        assert not shell.run("ssh nonexistent-host").ok

    def test_which_and_cat(self, shell):
        assert shell.run("which mdrun").output == "/usr/bin/mdrun"
        assert shell.run("cat /etc/redhat-release").output.strip() == "CentOS 6.5"

    def test_unknown_command_fails_like_bash(self, shell):
        result = shell.run("frobnicate --now")
        assert not result.ok
        assert "command not found" in result.output

    def test_history_records_everything(self, shell):
        shell.run("hostname")
        shell.run("bogus")
        assert len(shell.history) == 2
        assert shell.history[0].ok and not shell.history[1].ok

    def test_empty_command_rejected(self, shell):
        from repro.errors import CommandError

        with pytest.raises(CommandError):
            shell.run("   ")


class TestRpmYum:
    def test_rpm_q(self, shell):
        assert shell.run("rpm -q gromacs").output.startswith("gromacs-4.6.5")
        assert not shell.run("rpm -q nonexistent").ok

    def test_rpm_qa_lists_everything(self, shell):
        output = shell.run("rpm -qa").output
        assert "gromacs-4.6.5-1.x86_64" in output
        assert len(output.splitlines()) > 100

    def test_yum_repolist(self, shell):
        output = shell.run("yum repolist").output
        assert "xsede" in output

    def test_yum_install_extra(self, shell):
        result = shell.run("yum install tau")
        assert result.ok and "Complete!" in result.output
        assert shell.run("rpm -q tau").ok

    def test_yum_check_update_quiet_when_current(self, shell):
        assert shell.run("yum check-update").output == ""

    def test_yum_bad_verb(self, shell):
        assert not shell.run("yum frobnicate").ok


class TestRocksModuleBatch:
    def test_rocks_list_host(self, shell):
        output = shell.run("rocks list host").output
        assert "compute-0-4" in output
        assert "frontend" in output

    def test_rocks_list_roll(self, shell):
        output = shell.run("rocks list roll").output
        assert "xsede" in output and "base" in output

    def test_module_cycle(self, shell):
        assert "openmpi/1.6.4" in shell.run("module avail").output
        assert shell.run("module load openmpi/1.6.4").ok
        assert "openmpi/1.6.4" in shell.run("module list").output
        assert shell.run("module unload openmpi").ok
        assert "No Modulefiles" in shell.run("module list").output

    def test_qsub_qstat(self, shell):
        result = shell.run("qsub -N test-job -u alice -c 4 -t 30 -w 600")
        assert result.ok
        assert "." in result.output  # job-id.frontend format
        qstat = shell.run("qstat").output
        assert "test-job" in qstat and "R" in qstat

    def test_qsub_without_scheduler_fails(self, xcbc_littlefe):
        shell = ClusterShell(xcbc_littlefe.cluster)
        assert not shell.run("qsub -N x").ok

    def test_module_on_compute_node_too(self, shell):
        # the run-alike surface is per-node: module state on compute-0-1 is
        # independent of the frontend session
        shell.run("ssh compute-0-1")
        assert shell.run("module load gromacs/4.6.5").ok
        assert "gromacs/4.6.5" in shell.run("module list").output
        shell.run("ssh littlefe-iu-n0")
        assert "No Modulefiles" in shell.run("module list").output

    def test_useradd(self, shell):
        result = shell.run("useradd student1")
        assert result.ok and "uid" in result.output
        assert shell.cluster.frontend.users.has_user("student1")

    def test_df_shows_root(self, shell):
        assert "/dev/sda1" in shell.run("df").output

"""XNIT tests: repository contents, both setup paths, integration semantics,
and the update lifecycle of Section 3."""

import pytest

from repro.core import (
    LIMULUS_VENDOR_PACKAGES,
    build_limulus_cluster,
    build_xnit_repository,
    integrate_host,
    publish_release,
    setup_via_manual_repo_file,
    setup_via_repo_rpm,
    xsede_package_names,
)
from repro.errors import YumError
from repro.yum import NotifyPolicy


class TestRepositoryContents:
    def test_contains_full_xcbc_set(self):
        repo = build_xnit_repository()
        for name in xsede_package_names():
            assert repo.has(name), name

    def test_contains_extras_beyond_xcbc(self):
        # "XNIT also includes software not included in the basic XCBC build"
        repo = build_xnit_repository()
        for extra in ("paraview", "visit", "tau", "nwchem"):
            assert repo.has(extra)
            assert extra not in xsede_package_names()

    def test_extras_can_be_excluded(self):
        repo = build_xnit_repository(include_extras=False)
        assert not repo.has("paraview")

    def test_setup_rpms_published(self):
        repo = build_xnit_repository()
        assert repo.has("xsede-release")
        assert repo.has("yum-plugin-priorities")

    def test_priority_is_50(self):
        assert build_xnit_repository().priority == 50

    def test_publish_release_adds_newer_versions(self):
        repo = build_xnit_repository("0.0.8")
        assert not repo.has("trinity")
        added = publish_release(repo, "0.0.9")
        assert repo.has("trinity")
        assert any("java-1.7.0-openjdk" in n for n in added)  # the Java bump


class TestSetupPaths:
    def test_repo_rpm_path(self):
        cluster = build_limulus_cluster()
        client = cluster.client_for(cluster.frontend)
        repo = build_xnit_repository()
        setup_via_repo_rpm(client, repo)
        assert client.db.has("xsede-release")
        assert cluster.frontend.fs.exists("/etc/yum.repos.d/xsede.repo")
        assert "xsede" in [r[0] for r in client.repolist()]

    def test_manual_path_installs_priorities_plugin(self):
        cluster = build_limulus_cluster()
        client = cluster.client_for(cluster.frontend)
        repo = build_xnit_repository()
        setup_via_manual_repo_file(client, repo)
        assert client.db.has("yum-plugin-priorities")
        assert client.repos.use_priorities
        text = cluster.frontend.fs.read("/etc/yum.repos.d/xsede.repo")
        assert "cb-repo.iu.xsede.org" in text

    def test_both_paths_equivalent_repolist(self):
        a, b = build_limulus_cluster("lima"), build_limulus_cluster("limb")
        ca, cb = a.client_for(a.frontend), b.client_for(b.frontend)
        setup_via_repo_rpm(ca, build_xnit_repository())
        setup_via_manual_repo_file(cb, build_xnit_repository())
        assert [r[:2] for r in ca.repolist()] == [r[:2] for r in cb.repolist()]


class TestIntegration:
    def integrated_frontend(self):
        cluster = build_limulus_cluster()
        client = cluster.client_for(cluster.frontend)
        setup_via_manual_repo_file(client, build_xnit_repository())
        return cluster, client

    def test_subset_install(self):
        _cluster, client = self.integrated_frontend()
        report = integrate_host(client, packages=["gromacs", "R"])
        # gromacs pulls openmpi/fftw/...; R pulls R-core
        assert "gromacs" in report.installed
        assert "openmpi" in report.installed
        assert client.host.has_command("mdrun")
        assert not client.db.has("lammps")  # only what was asked for (+deps)

    def test_full_toolkit(self):
        _cluster, client = self.integrated_frontend()
        report = integrate_host(client, full_toolkit=True)
        assert report.change_count >= len(xsede_package_names())
        assert report.preexisting_untouched

    def test_vendor_stack_survives(self):
        cluster, client = self.integrated_frontend()
        integrate_host(client, full_toolkit=True)
        for pkg in LIMULUS_VENDOR_PACKAGES:
            if pkg.name != "sge":
                assert client.db.has(pkg.name), pkg.name
        assert cluster.frontend.services.is_running("limulus-powerd")

    def test_vendor_sge_upgraded_not_removed(self):
        # vendor ships sge 8.1.6; XNIT integration may upgrade but never
        # erase it (non-destructive property)
        _cluster, client = self.integrated_frontend()
        integrate_host(client, full_toolkit=True)
        assert client.db.has("sge")

    def test_changing_scheduler_via_xnit(self):
        # Section 8: "with XNIT add software, change the schedulers"
        _cluster, client = self.integrated_frontend()
        integrate_host(client, packages=["torque", "maui"])
        assert client.host.has_command("showq")
        assert client.db.has("torque")

    def test_selection_arguments_validated(self):
        _cluster, client = self.integrated_frontend()
        with pytest.raises(YumError):
            integrate_host(client)
        with pytest.raises(YumError):
            integrate_host(client, packages=["R"], full_toolkit=True)

    def test_integration_is_idempotent_like(self):
        _cluster, client = self.integrated_frontend()
        integrate_host(client, full_toolkit=True)
        # second run: nothing missing, nothing newer -> no changes
        report = integrate_host(client, full_toolkit=True)
        assert report.change_count == 0


class TestUpdateLifecycle:
    def test_new_release_flows_to_subscribed_cluster(self):
        cluster = build_limulus_cluster()
        repo = build_xnit_repository("0.0.8")
        clients = cluster.all_clients()
        for client in clients:
            setup_via_manual_repo_file(client, repo)
            integrate_host(client, full_toolkit=True)
        # upstream publishes 0.0.9
        publish_release(repo, "0.0.9")
        notifier = NotifyPolicy(clients[0])
        report = notifier.run_cycle()
        assert report.has_updates  # at least the Java bump
        names = {u.name for u in report.pending}
        assert "java-1.7.0-openjdk" in names
        # the admin reviews, then applies everywhere
        for client in clients:
            client.update()
        for client in clients:
            assert client.db.get("java-1.7.0-openjdk").version == "1.7.0.79"

    def test_whole_cluster_integration(self, xnit_limulus):
        for host in xnit_limulus.hosts():
            client = xnit_limulus.client_for(host)
            assert client.db.has("gromacs"), host.name
            assert host.has_command("mdrun"), host.name

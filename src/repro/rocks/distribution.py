"""Update rolls: Rocks' preferred upgrade path (Section 3).

"Once up and running, to maintain the package levels, you can enable the
XSEDE Yum repository, then follow the Rocks instructions or use the
preferred method and create an update roll to add to your distribution."

An update roll is built by diffing an upstream repository (e.g. the XSEDE
Yum repo) against a cluster's distribution: every package with a newer
upstream EVR goes into the roll.  Applying the roll republshes the
distribution and upgrades every node — keeping the cluster uniform, which is
the point of doing it through Rocks rather than ad-hoc yum on each node.
"""

from __future__ import annotations

from ..errors import RollError
from ..rpm.package import Package
from ..rpm.transaction import Transaction
from ..yum.depsolver import resolve_update
from ..yum.repository import Repository, RepoSet
from .installer import ProvisionedCluster
from .kickstart import Profile
from .roll import Roll, RollGraphFragment

__all__ = ["create_update_roll", "apply_update_roll"]


def create_update_roll(
    cluster: ProvisionedCluster,
    upstream: Repository,
    *,
    name: str = "updates",
    version: str = "1",
) -> Roll:
    """Diff ``upstream`` against the cluster distribution into a roll.

    Only packages already in the distribution are considered (an update
    roll updates; it does not introduce software).  Raises
    :class:`RollError` when there is nothing to update — creating an empty
    roll is an operator mistake worth surfacing.
    """
    updates: list[Package] = []
    for pkg_name in sorted(cluster.distribution.names()):
        current = cluster.distribution.latest(pkg_name)
        if upstream.has(pkg_name):
            candidate = upstream.latest(pkg_name)
            if candidate.evr > current.evr:
                updates.append(candidate)
    if not updates:
        raise RollError(
            f"update roll {name!r}: distribution is already current with "
            f"{upstream.repo_id}"
        )
    fragment = RollGraphFragment(
        node_name=f"{name}-packages",
        packages=tuple(p.name for p in updates),
        attach_to=(Profile.FRONTEND, Profile.COMPUTE),
    )
    return Roll(
        name=name,
        version=version,
        summary=f"update roll from {upstream.repo_id}",
        packages=tuple(updates),
        fragments=(fragment,),
    )


def apply_update_roll(cluster: ProvisionedCluster, roll: Roll) -> dict[str, int]:
    """Publish an update roll into the distribution and upgrade every node.

    Returns ``{host name: packages upgraded}``.  The roll also joins the
    cluster's roll set and graph so future reinstalled nodes pick the new
    versions up automatically.
    """
    for pkg in roll.packages:
        if not any(
            existing.nevra == pkg.nevra
            for existing in cluster.distribution.versions_of(pkg.name)
        ):
            cluster.distribution.add(pkg)
    roll.apply_to_graph(cluster.graph)
    cluster.rolls[roll.name] = roll

    repos = RepoSet([cluster.distribution])
    counts: dict[str, int] = {}
    for host in cluster.hosts():
        db = cluster.db_for(host)
        resolution = resolve_update(repos, db)
        if resolution.is_empty():
            counts[host.name] = 0
            continue
        txn = Transaction(db)
        for pkg in resolution.to_install:
            txn.upgrade(pkg)
        result = txn.commit()
        counts[host.name] = len(result.upgraded) + len(result.installed)
    return counts

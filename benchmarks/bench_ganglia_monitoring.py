"""The ganglia roll at work: a monitored day on the XCBC LittleFe.

Regenerates the cluster dashboard (the web UI's front page, as text) after
a workload passes through Torque/Maui with the monitoring mesh attached,
including a node failure mid-run.  The timed unit is a full monitored
simulation: install-to-dashboard.
"""

import pytest

from repro.hardware import build_littlefe_modified
from repro.monitoring import monitor_cluster
from repro.rocks import install_cluster, optional_rolls
from repro.scheduler import ClusterResources, Job, MauiScheduler


def monitored_day():
    machine = build_littlefe_modified().machine
    cluster = install_cluster(machine, rolls=[optional_rolls()["ganglia"]])
    scheduler = MauiScheduler(ClusterResources(machine))
    gmetad = monitor_cluster(cluster, scheduler=scheduler)

    gmetad.run_cycles(2)  # idle baseline
    scheduler.submit(Job("md-sweep", "alice", cores=8,
                         walltime_limit_s=7200, runtime_s=3600))
    loaded = gmetad.poll_cycle()
    # a node fails mid-day and comes back
    machine.compute_nodes[-1].powered_on = False
    degraded = gmetad.poll_cycle()
    machine.compute_nodes[-1].powered_on = True
    scheduler.run_to_completion()
    recovered = gmetad.run_cycles(2)
    return cluster, gmetad, (loaded, degraded, recovered)


def test_ganglia_monitoring(benchmark, save_artifact):
    cluster, gmetad, (loaded, degraded, recovered) = benchmark(monitored_day)

    save_artifact(
        "ganglia_dashboard",
        gmetad.render_dashboard()
        + "\n\nload timeline: "
        + f"idle->running {loaded.load_total:.0f} cores, "
        + f"degraded {degraded.hosts_up}/{degraded.hosts_total} up, "
        + f"recovered {recovered.hosts_up}/{recovered.hosts_total} up",
    )

    assert loaded.load_total == pytest.approx(8.0)
    assert degraded.hosts_down == 1
    assert recovered.hosts_up == 6 and recovered.load_total == 0.0
    # history survives in the archives
    rrd = gmetad.rrd_for(cluster.frontend.name, "load_one")
    assert len(rrd.series()) >= 5

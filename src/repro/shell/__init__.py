"""repro.shell: the fault-tolerant parallel admin-execution plane.

ClusterShell-on-the-kernel (ROADMAP item 2): one admin, ten thousand
nodes, and fleet-wide operations that survive dead, slow, and flapping
hardware without babysitting.  Three layers:

* :class:`ShellEngine` — ``clush``-style fan-out: a bounded sliding
  window of in-flight workers over a :class:`~repro.fleet.NodeSet`, with
  per-node timeout/retry/backoff and graceful degradation (unreachable
  nodes are skipped-and-reported in a :class:`ShellReport`, never raised);
* :func:`gather` / :class:`OutputGroup` — ``clubak``-style merging of
  identical outputs under folded NodeSet labels, per-rc bucketing, and a
  worst-rc summary;
* :class:`RollingUpdate` — wave-by-wave sweeps with safety gates (drain →
  execute → undrain → health-verify), failure thresholds that pause or
  abort the sweep, and rack-level failure-domain awareness.

See docs/SHELL.md for the model and the ``shell.*`` trace vocabulary.
"""

from .engine import (
    DEFAULT_RETRY,
    TRANSPORT_RC,
    NodeResult,
    ShellCommand,
    ShellEngine,
    ShellReport,
)
from .gather import OutputGroup, bucket_by_rc, gather, render_groups, worst_rc
from .rolling import (
    RollingReport,
    RollingUpdate,
    WaveResult,
    rolling_confluence_problems,
)

__all__ = [
    "DEFAULT_RETRY",
    "TRANSPORT_RC",
    "ShellCommand",
    "NodeResult",
    "ShellReport",
    "ShellEngine",
    "OutputGroup",
    "gather",
    "bucket_by_rc",
    "worst_rc",
    "render_groups",
    "RollingReport",
    "RollingUpdate",
    "WaveResult",
    "rolling_confluence_problems",
]

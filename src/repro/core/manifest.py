"""Cluster manifests: the machine-readable ``rocks report`` of a cluster.

A manifest captures what a cluster *is* — hosts, their packages, services,
modules, mounts — as plain data.  Two uses, both from the paper's goals:

* auditing: diff a manifest against a reference (or another site's) to see
  exactly where two clusters diverge;
* documentation: a manifest checked into a site's records alongside the
  :mod:`playbook <repro.core.playbook>` makes "what are we running?"
  answerable without logging in.

Manifests serialise to JSON and diff structurally.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..distro.host import Host
from ..errors import ReproError
from ..rpm.database import RpmDatabase

__all__ = ["HostManifest", "ClusterManifest", "manifest_for_hosts", "manifest_of_cluster"]


@dataclass(frozen=True)
class HostManifest:
    """One host's captured state."""

    hostname: str
    arch: str
    release: str
    packages: tuple[str, ...]          # NEVRAs, sorted
    enabled_services: tuple[str, ...]
    modules: tuple[str, ...]
    mounts: tuple[tuple[str, str], ...]

    def to_dict(self) -> dict:
        return {
            "hostname": self.hostname,
            "arch": self.arch,
            "release": self.release,
            "packages": list(self.packages),
            "enabled_services": list(self.enabled_services),
            "modules": list(self.modules),
            "mounts": [list(m) for m in self.mounts],
        }


def _capture_host(host: Host, db: RpmDatabase) -> HostManifest:
    return HostManifest(
        hostname=host.name,
        arch=host.arch,
        release=host.release_string(),
        packages=tuple(sorted(p.nevra for p in db.installed())),
        enabled_services=tuple(
            sorted(s.name for s in host.services.all_services() if s.enabled)
        ),
        modules=tuple(
            m.replace("(default)", "") for m in host.modules.avail()
        ),
        mounts=tuple(sorted(host.fs.mounts().items())),
    )


@dataclass
class ClusterManifest:
    """All hosts of one cluster."""

    cluster_name: str
    hosts: list[HostManifest] = field(default_factory=list)

    def host(self, hostname: str) -> HostManifest:
        for manifest in self.hosts:
            if manifest.hostname == hostname:
                return manifest
        raise ReproError(f"manifest has no host {hostname}")

    def uniform_packages(self) -> set[str]:
        """NEVRAs present on every host."""
        if not self.hosts:
            return set()
        common = set(self.hosts[0].packages)
        for manifest in self.hosts[1:]:
            common &= set(manifest.packages)
        return common

    def to_json(self) -> str:
        return json.dumps(
            {
                "cluster": self.cluster_name,
                "hosts": [h.to_dict() for h in self.hosts],
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ClusterManifest":
        try:
            data = json.loads(text)
            manifest = cls(cluster_name=data["cluster"])
            for entry in data["hosts"]:
                manifest.hosts.append(
                    HostManifest(
                        hostname=entry["hostname"],
                        arch=entry["arch"],
                        release=entry["release"],
                        packages=tuple(entry["packages"]),
                        enabled_services=tuple(entry["enabled_services"]),
                        modules=tuple(entry["modules"]),
                        mounts=tuple(tuple(m) for m in entry["mounts"]),
                    )
                )
            return manifest
        except (KeyError, TypeError, json.JSONDecodeError) as exc:
            raise ReproError(f"malformed manifest JSON: {exc}") from exc

    def diff(self, other: "ClusterManifest") -> dict[str, list[str]]:
        """Structural diff against another manifest.

        Keys: ``hosts_only_here`` / ``hosts_only_there`` and, per shared
        host, ``<hostname>: packages`` / ``services`` / ``modules`` entries
        describing one-sided items (prefixed ``+`` here-only / ``-``
        there-only).  An empty dict means identical (on compared axes).
        """
        out: dict[str, list[str]] = {}
        mine = {h.hostname for h in self.hosts}
        theirs = {h.hostname for h in other.hosts}
        if mine - theirs:
            out["hosts_only_here"] = sorted(mine - theirs)
        if theirs - mine:
            out["hosts_only_there"] = sorted(theirs - mine)
        for hostname in sorted(mine & theirs):
            a, b = self.host(hostname), other.host(hostname)
            for axis in ("packages", "enabled_services", "modules"):
                set_a, set_b = set(getattr(a, axis)), set(getattr(b, axis))
                delta = [f"+{x}" for x in sorted(set_a - set_b)]
                delta += [f"-{x}" for x in sorted(set_b - set_a)]
                if delta:
                    out[f"{hostname}: {axis}"] = delta
        return out


def manifest_for_hosts(
    cluster_name: str, pairs: list[tuple[Host, RpmDatabase]]
) -> ClusterManifest:
    """Capture a manifest from explicit (host, db) pairs."""
    manifest = ClusterManifest(cluster_name=cluster_name)
    for host, db in pairs:
        manifest.hosts.append(_capture_host(host, db))
    return manifest


def manifest_of_cluster(cluster) -> ClusterManifest:
    """Capture any cluster shape this library produces.

    Accepts a :class:`~repro.rocks.installer.ProvisionedCluster` or a
    :class:`~repro.core.machines.ExistingCluster` (duck-typed on their
    host/db accessors).
    """
    pairs: list[tuple[Host, RpmDatabase]] = []
    if hasattr(cluster, "db_for"):  # ProvisionedCluster
        for host in cluster.hosts():
            pairs.append((host, cluster.db_for(host)))
        name = cluster.machine.name
    elif hasattr(cluster, "client_for"):  # ExistingCluster
        for host in cluster.hosts():
            pairs.append((host, cluster.client_for(host).db))
        name = cluster.machine.name
    else:
        raise ReproError(f"cannot capture a manifest from {type(cluster)!r}")
    return manifest_for_hosts(name, pairs)

"""Figures 1-2 — the LittleFe v4 frame, rear and front views.

The paper's figures are photographs; the substitute (per DESIGN.md) renders
the same structural content from the hardware model: six exposed mini-ITX
nodes, per-node coolers/drives (front view, Figure 2) and per-node supplies
plus the dual-homed head's two network drops (rear view, Figure 1).
"""

from repro.hardware import build_littlefe_modified, render_littlefe


def render_both_views():
    machine = build_littlefe_modified().machine
    return (
        render_littlefe(machine, view="rear"),   # Figure 1
        render_littlefe(machine, view="front"),  # Figure 2
    )


def test_fig1_fig2_regeneration(benchmark, save_artifact):
    rear, front = benchmark(render_both_views)
    save_artifact(
        "fig1_littlefe_rear",
        "Figure 1 substitute — LittleFe V4 frame, six nodes, rear view\n\n" + rear,
    )
    save_artifact(
        "fig2_littlefe_front",
        "Figure 2 substitute — LittleFe V4 frame, six nodes, front view\n\n" + front,
    )

    # Figure 2 content: six exposed nodes, boards, coolers, drives
    assert front.count("[slot") == 6
    assert "Gigabyte GA-Q87TN" in front
    assert "Rosewill" in front
    assert front.count("Crucial M550") == 6
    # Figure 1 content: power and network at the rear
    assert rear.count("picoPSU") == 6
    assert "eth0:up" in rear and "eth1:up" in rear      # dual-homed head
    assert rear.count("eth1:unused") == 5               # compute spare ports
    # portability callouts the text makes
    assert "48 lb" in front

"""Analyzer passes, one module per declarative layer.

Importing this package registers every rule in
:data:`repro.analyze.registry.RULES`; the engine holds the ordered pass
list.  Each module exposes ``run(definition, emit)`` where ``emit`` is the
engine-provided diagnostic sink.
"""

from .. import txn as _txn  # noqa: F401 - registers the TX7xx catalogue
from . import hardware, kickstart, network, repos, rpmdeps, scheduler

__all__ = ["kickstart", "repos", "rpmdeps", "network", "scheduler", "hardware"]

"""Microbench — the discrete-event kernel and the trace bus's overhead.

Two questions about the unified `repro.sim` kernel that replaced the five
ad-hoc clocks:

1. raw event throughput: schedule + fire rate through the ``(time, seq)``
   heap, with a churn mix of cancels and reschedules (the power manager's
   access pattern);
2. what tracing costs: the same scheduler workload with the bus recording
   every event vs disabled.
"""

import pytest

from repro.hardware import build_limulus_hpc200
from repro.scheduler import Job, PowerManagedScheduler
from repro.sim import SimKernel, TraceBus

N_EVENTS = 20_000


def pump_events(n=N_EVENTS):
    """Schedule n events (with a 1-in-8 cancel/reschedule churn), drain."""
    kernel = SimKernel(seed=1)
    sink = []
    handles = []
    for i in range(n):
        handle = kernel.at(
            float(kernel.rng.randrange(1000)), lambda i=i: sink.append(i)
        )
        if i % 8 == 0:
            handles.append(handle)
        elif i % 8 == 4 and handles:
            victim = handles.pop()
            if victim.active:
                kernel.reschedule(victim, victim.time_s + 10.0)
    fired = kernel.run()
    return kernel, fired


def power_trace(trace_enabled):
    """The bursty Limulus workload with the bus on or off."""
    machine = build_limulus_hpc200().machine
    kernel = SimKernel(trace=TraceBus(enabled=trace_enabled))
    scheduler = PowerManagedScheduler(machine, manage_power=True, kernel=kernel)
    for burst in range(10):
        scheduler.now_s = burst * 7200.0
        for i in range(4):
            scheduler.submit(Job(f"b{burst}-j{i}", "bench", cores=4,
                                 walltime_limit_s=7200, runtime_s=1800))
        scheduler.run_to_completion()
    return kernel


def test_bench_event_throughput(benchmark, save_artifact):
    kernel, fired = benchmark(pump_events)
    events_per_s = fired / benchmark.stats["mean"]

    lines = [
        "Microbench: event kernel throughput",
        "",
        f"events fired          {fired:>12,}",
        f"mean wall time (s)    {benchmark.stats['mean']:>12.4f}",
        f"events/second         {events_per_s:>12,.0f}",
    ]
    save_artifact("microbench_event_kernel", "\n".join(lines))

    assert fired > N_EVENTS * 0.8  # churn cancels a bounded fraction
    assert kernel.now_s <= 1000.0 + 10.0


def test_bench_trace_bus_overhead(benchmark, save_artifact):
    traced = benchmark(power_trace, True)
    baseline_kernel = power_trace(False)

    assert len(traced.trace) > 0
    assert len(baseline_kernel.trace) == 0
    # identical simulation either way: tracing must not perturb time
    assert traced.now_s == baseline_kernel.now_s
    assert traced.events_processed == baseline_kernel.events_processed

    per_event_us = (
        benchmark.stats["mean"] / max(len(traced.trace), 1) * 1e6
    )
    lines = [
        "Microbench: trace bus overhead (power-managed Limulus workload)",
        "",
        f"kernel events         {traced.events_processed:>12,}",
        f"trace events          {len(traced.trace):>12,}",
        f"mean run, bus on (s)  {benchmark.stats['mean']:>12.4f}",
        f"~us per trace event   {per_event_us:>12.1f}",
        "(bus off runs the identical simulation; timings in pytest-benchmark"
        " output)",
    ]
    save_artifact("microbench_trace_bus", "\n".join(lines))

"""Cross-cutting property-based tests over the bigger invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import build_littlefe_modified
from repro.rpm import Package
from repro.scheduler import ClusterResources, Job, MauiScheduler, TorqueScheduler
from repro.yum import MirrorLink, RepoMirror, RepoSet, Repository


# --- EASY backfill dominates FIFO under exact runtimes ---------------------------

trace_strategy = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=10),          # cores
        st.floats(min_value=1.0, max_value=300.0),       # runtime
        st.floats(min_value=0.0, max_value=100.0),       # submit offset
    ),
    min_size=1,
    max_size=12,
)


@given(trace_strategy)
@settings(max_examples=30, deadline=None)
def test_property_backfill_dominates_fifo(trace):
    """With exact runtimes (our jobs always run exactly as declared), EASY
    backfill never hurts: same completions, no worse makespan, no worse
    mean wait."""
    machine = build_littlefe_modified().machine

    def run(scheduler_cls):
        scheduler = scheduler_cls(ClusterResources(machine))
        for i, (cores, runtime, offset) in enumerate(sorted(trace, key=lambda t: t[2])):
            scheduler.now_s = max(scheduler.now_s, offset)
            scheduler.submit(
                Job(f"j{i}", "u", cores=cores, walltime_limit_s=runtime * 2,
                    runtime_s=runtime)
            )
        return scheduler.run_to_completion()

    fifo = run(TorqueScheduler)
    maui = run(MauiScheduler)
    assert maui.completed == fifo.completed
    assert maui.total_core_seconds == pytest.approx(fifo.total_core_seconds)
    assert maui.makespan_s <= fifo.makespan_s + 1e-6
    assert maui.mean_wait_s <= fifo.mean_wait_s + 1e-6


# --- mirrors converge to upstream content ------------------------------------------

package_edits = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.integers(min_value=0, max_value=15),   # which package name
        st.integers(min_value=1, max_value=3),    # which version
    ),
    min_size=1,
    max_size=25,
)


@given(package_edits)
@settings(max_examples=30, deadline=None)
def test_property_mirror_converges(edits):
    """However the upstream churns between syncs, one sync makes the mirror
    content-identical."""
    upstream = Repository("up")
    mirror = RepoMirror(upstream, MirrorLink(bandwidth_bytes_s=1e9))
    for i, (op, name_index, version) in enumerate(edits):
        pkg = Package(name=f"pkg{name_index}", version=f"{version}.0")
        if op == "add":
            if not any(
                v.nevra == pkg.nevra for v in upstream.versions_of(pkg.name)
            ):
                upstream.add(pkg)
        else:
            versions = upstream.versions_of(f"pkg{name_index}")
            if versions:
                upstream.remove(versions[0].nevra)
        if i % 7 == 3:  # occasional mid-churn syncs
            mirror.sync()
    mirror.sync()
    assert mirror.is_current
    assert {p.nevra for p in mirror.local.all_packages()} == {
        p.nevra for p in upstream.all_packages()
    }


# --- priorities only ever shrink the candidate pool -----------------------------------


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),   # package name index
            st.integers(min_value=1, max_value=9),   # version
            st.integers(min_value=1, max_value=99),  # repo priority
        ),
        min_size=1,
        max_size=20,
    )
)
@settings(max_examples=30, deadline=None)
def test_property_priorities_filter_is_a_subset(entries):
    repos_by_priority: dict[int, Repository] = {}
    for name_index, version, priority in entries:
        repo = repos_by_priority.setdefault(
            priority, Repository(f"repo{priority}", priority=priority)
        )
        pkg = Package(name=f"pkg{name_index}", version=f"{version}.0")
        if not any(v.nevra == pkg.nevra for v in repo.versions_of(pkg.name)):
            repo.add(pkg)
    repos = list(repos_by_priority.values())
    filtered = RepoSet(repos, use_priorities=True)
    unfiltered = RepoSet(repos, use_priorities=False)

    for name_index in {e[0] for e in entries}:
        name = f"pkg{name_index}"
        with_plugin = {p.nevra for p in filtered.candidates_by_name(name)}
        without = {p.nevra for p in unfiltered.candidates_by_name(name)}
        assert with_plugin <= without
        if without:
            assert with_plugin  # the plugin never empties a served name
            # and every surviving candidate comes from the best priority
            best = min(
                r.priority for r in repos if r.has(name)
            )
            for repo in repos:
                if repo.priority == best and repo.has(name):
                    assert {
                        p.nevra for p in repo.versions_of(name)
                    } <= with_plugin


# --- manifests are stable under capture-serialise-capture ------------------------------


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=5, deadline=None)
def test_property_manifest_roundtrip_stable(seed):
    """Manifest JSON round-trips to a diff-identical manifest (seed exists
    to force several executions through hypothesis' shrinker)."""
    from repro.core import ClusterManifest, manifest_of_cluster
    from repro.core.xcbc import build_xcbc_cluster

    del seed
    cluster = build_xcbc_cluster(
        build_littlefe_modified().machine, include_optional_rolls=False
    ).cluster
    manifest = manifest_of_cluster(cluster)
    again = ClusterManifest.from_json(manifest.to_json())
    assert manifest.diff(again) == {}

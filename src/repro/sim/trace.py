"""The structured trace bus: typed events, counters, JSONL export.

Every subsystem publishes what it did to one :class:`TraceBus` as typed
events (``job.start``, ``node.power_on``, ``msg.xfer``, ...).  The bus
checks each event against :data:`EVENT_SCHEMA` at emit time, keeps
per-kind and per-subsystem counters, and serialises to JSONL with sorted
keys — so two runs with the same seed produce byte-identical trace files
that CI can diff and validate.

JSONL envelope (one event per line)::

    {"data": {...}, "kind": "job.start", "seq": 12, "sub": "scheduler", "t": 60.0}

``seq`` is the emission serial, ``t`` the simulated timestamp (per-entity
timelines may stamp events ahead of the kernel clock, so ``t`` is not
globally monotonic — ``seq`` is).

simlint enforces this contract statically: SL104 flags unordered
iteration feeding :meth:`TraceBus.emit`, and
``python -m repro.analyze --source --check-trace`` replays a trace file
with same-``t`` batches permuted to verify ``seq`` alone reproduces it
byte-for-byte (SL302/SL303).  See docs/ANALYZE.md.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from ..errors import TraceError

__all__ = [
    "EVENT_SCHEMA",
    "TraceEvent",
    "TraceBus",
    "register_event_kind",
    "validate_event",
    "validate_jsonl",
]

#: Required data fields (and their types) per event kind.  ``float`` accepts
#: ints too; extra fields are always allowed.  Extend with
#: :func:`register_event_kind`.
EVENT_SCHEMA: dict[str, dict[str, type]] = {
    # scheduler
    "job.submit": {"job": str, "user": str, "cores": int},
    "job.start": {"job": str, "cores": int, "nodes": str, "wait_s": float},
    "job.end": {"job": str, "state": str},
    "job.cancel": {"job": str},
    # power management
    "node.power_on": {"node": str, "boot_delay_s": float},
    "node.power_off": {"node": str},
    # MPI fabric traffic
    "msg.xfer": {"src": int, "dst": int, "nbytes": int, "elapsed_s": float},
    "mpi.barrier": {"ranks": int},
    # monitoring mesh
    "metric.sample": {"host": str, "metric": str, "value": float},
    "monitor.cycle": {"hosts_up": int, "hosts_total": int, "load_total": float},
    # package mirror and grid data movement
    "mirror.sync": {"repo": str, "nbytes": int, "files": int, "skipped": bool},
    "grid.xfer": {"file": str, "nbytes": int, "retries": int},
    # fault injection and recovery (repro.faults)
    "fault.inject": {"fault": str, "target": str},
    "fault.recover": {"fault": str, "target": str, "downtime_s": float},
    "fault.retry": {"op": str, "attempt": int, "delay_s": float},
    "fault.giveup": {"op": str, "attempts": int},
    # graceful degradation
    "job.requeue": {"job": str, "reason": str},
    "node.drain": {"node": str, "reason": str},
    "monitor.host_dead": {"host": str, "missed": int},
    # self-healing supervisor (repro.recovery)
    "recover.node": {"node": str, "attempt": int},
    "recover.gmond": {"host": str},
    "recover.undrain": {"node": str},
    "recover.resubmit": {"job": str, "attempt": int},
    "recover.reinstall": {"node": str, "attempt": int, "ok": bool},
    # fleet-scale installs and hierarchical monitoring (repro.fleet)
    "install.wave": {"wave": int, "nodes": str, "count": int, "pkgs": int},
    "monitor.rack": {
        "rack": str,
        "hosts_up": int,
        "hosts_total": int,
        "load_total": float,
    },
    "monitor.rollup": {
        "racks": int,
        "changed": int,
        "hosts_up": int,
        "hosts_total": int,
        "load_total": float,
    },
    # parallel admin execution and rolling updates (repro.shell)
    "shell.cmd": {"nodes": str, "command": str, "fanout": int, "count": int},
    "shell.retry": {"node": str, "attempt": int, "delay_s": float},
    "shell.gather": {"nodes": str, "rc": int, "count": int},
    "shell.wave": {
        "wave": int,
        "nodes": str,
        "count": int,
        "ok": int,
        "failed": int,
        "skipped": int,
        "status": str,
    },
    "shell.abort": {"reason": str, "wave": int, "nodes": str},
    # the XNIT repository service under load (repro.repod)
    "repod.request": {
        "req": str,
        "client": str,
        "artifact": str,
        "outcome": str,
        "source": str,
        "elapsed_s": float,
    },
    "repod.shed": {"origin": str, "artifact": str, "reason": str, "queued": int},
    "repod.coalesce": {"proxy": str, "artifact": str, "waiters": int},
    "repod.stale": {"proxy": str, "artifact": str, "age_s": float},
    "repod.retry_budget": {
        "owner": str,
        "op": str,
        "allowed": bool,
        "tokens": float,
    },
    # content-addressed lazy delivery (repro.cas)
    "cas.publish": {
        "catalog": str,
        "serial": int,
        "packages": int,
        "chunks": int,
        "new_chunks": int,
        "nbytes": int,
    },
    "cas.rollback": {"catalog": str, "serial": int, "restored": int},
    "cas.replicate": {
        "replica": str,
        "serial": int,
        "chunks": int,
        "nbytes": int,
        "skipped": bool,
    },
    "cas.fetch": {
        "tier": str,
        "artifact": str,
        "chunks": int,
        "hit_chunks": int,
        "nbytes": int,
    },
}


def register_event_kind(kind: str, fields: dict[str, type]) -> None:
    """Add a new event kind to the schema (extension point for new layers)."""
    if kind in EVENT_SCHEMA:
        raise TraceError(f"event kind {kind!r} is already registered")
    EVENT_SCHEMA[kind] = dict(fields)


def _type_ok(value: object, expected: type) -> bool:
    if expected is float:
        return isinstance(value, (int, float)) and not isinstance(value, bool)
    if expected is int:
        return isinstance(value, int) and not isinstance(value, bool)
    return isinstance(value, expected)


@dataclass(frozen=True)
class TraceEvent:
    """One published event."""

    seq: int
    t_s: float
    kind: str
    subsystem: str
    data: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "t": self.t_s,
            "kind": self.kind,
            "sub": self.subsystem,
            "data": dict(self.data),
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))


def validate_event(obj: Mapping[str, Any]) -> list[str]:
    """Check one decoded JSONL object against the schema; returns problems."""
    problems: list[str] = []
    for key, expected in (("seq", int), ("t", float), ("kind", str), ("sub", str)):
        if key not in obj:
            problems.append(f"missing envelope field {key!r}")
        elif not _type_ok(obj[key], expected):
            problems.append(f"envelope field {key!r} has type {type(obj[key]).__name__}")
    data = obj.get("data")
    if not isinstance(data, Mapping):
        problems.append("missing or non-object 'data'")
        return problems
    kind = obj.get("kind")
    if not isinstance(kind, str):
        return problems
    schema = EVENT_SCHEMA.get(kind)
    if schema is None:
        problems.append(f"unknown event kind {kind!r}")
        return problems
    for name, expected in schema.items():
        if name not in data:
            problems.append(f"{kind}: missing data field {name!r}")
        elif not _type_ok(data[name], expected):
            problems.append(
                f"{kind}: data field {name!r} has type {type(data[name]).__name__}, "
                f"wanted {expected.__name__}"
            )
    return problems


def validate_jsonl(text: str) -> tuple[int, list[str]]:
    """Validate a whole JSONL trace; returns (event count, problems).

    Problems are prefixed with their 1-based line number.  Sequence numbers
    must be strictly increasing (the bus emits them that way).
    """
    problems: list[str] = []
    count = 0
    last_seq = -1
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            problems.append(f"line {lineno}: not JSON ({exc.msg})")
            continue
        count += 1
        for problem in validate_event(obj):
            problems.append(f"line {lineno}: {problem}")
        seq = obj.get("seq")
        if isinstance(seq, int):
            if seq <= last_seq:
                problems.append(f"line {lineno}: seq {seq} not increasing")
            last_seq = seq
    return count, problems


class TraceBus:
    """The simulation's structured event log.

    ``enabled=False`` turns the bus into a no-op (the overhead benchmark's
    baseline).  Subscribers are called synchronously on every emit — the
    hook co-simulation harnesses use to react to events as they happen.

    Validation fast path: by default each ``(kind, data-key-tuple)`` *shape*
    is schema-checked once — the first emit from a call site validates field
    presence and types, and later emits with the same shape skip the loop
    (call sites emit structurally identical payloads).  ``strict=True``
    restores per-emit validation of every field.  Event objects are
    materialised lazily: the hot path appends a plain record tuple, and
    :attr:`events` builds :class:`TraceEvent` wrappers on first access —
    ``emit`` therefore only returns the event when it had to build one
    (strict mode, or subscribers present); JSONL output is byte-identical
    either way.
    """

    def __init__(self, *, enabled: bool = True, strict: bool = False) -> None:
        self.enabled = enabled
        self.strict = strict
        self._subscribers: list[Callable[[TraceEvent], None]] = []
        self._next_seq = 0
        #: (seq, t, kind, subsystem, data) tuples — the canonical log.
        self._records: list[tuple[int, float, str, str, dict[str, Any]]] = []
        self._materialised: list[TraceEvent] = []
        #: kind -> key tuple of the last emit of that kind that passed
        #: validation; a matching shape provably needs no re-check.
        self._validated_shapes: dict[str, tuple] = {}
        self._by_kind: Counter[str] = Counter()
        self._by_subsystem: Counter[str] = Counter()
        self._counted = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def events(self) -> list[TraceEvent]:
        """Every published event as :class:`TraceEvent` (lazily built)."""
        cache = self._materialised
        records = self._records
        if len(cache) < len(records):
            for rec in records[len(cache):]:
                cache.append(TraceEvent(*rec))
        return cache

    def _sync_counters(self) -> None:
        records = self._records
        if self._counted < len(records):
            by_kind, by_sub = self._by_kind, self._by_subsystem
            for rec in records[self._counted:]:
                by_kind[rec[2]] += 1
                by_sub[rec[3]] += 1
            self._counted = len(records)

    @property
    def by_kind(self) -> Counter:
        """Events per kind (folded up lazily from the record log)."""
        self._sync_counters()
        return self._by_kind

    @property
    def by_subsystem(self) -> Counter:
        """Events per subsystem (folded up lazily from the record log)."""
        self._sync_counters()
        return self._by_subsystem

    def subscribe(self, fn: Callable[[TraceEvent], None]) -> None:
        """Call ``fn(event)`` synchronously on every future emit."""
        self._subscribers.append(fn)

    def _validate(self, kind: str, schema: dict[str, type], data: dict) -> None:
        for name, expected in schema.items():
            if name not in data:
                raise TraceError(f"{kind}: missing data field {name!r}")
            if not _type_ok(data[name], expected):
                raise TraceError(
                    f"{kind}: data field {name!r} has type "
                    f"{type(data[name]).__name__}, wanted {expected.__name__}"
                )

    def emit(
        self, kind: str, *, t_s: float, subsystem: str, **data: Any
    ) -> TraceEvent | None:
        """Publish one event.

        Returns the :class:`TraceEvent` when one was materialised (strict
        mode or subscribers registered); ``None`` on the deferred fast path
        and when the bus is disabled.  The event is always recorded either
        way — read it back via :attr:`events`.
        """
        if not self.enabled:
            return None
        schema = EVENT_SCHEMA.get(kind)
        if schema is None:
            raise TraceError(f"unknown event kind {kind!r}")
        if self.strict:
            self._validate(kind, schema, data)
        else:
            shape = tuple(data)
            if self._validated_shapes.get(kind) != shape:
                self._validate(kind, schema, data)
                self._validated_shapes[kind] = shape
        seq = self._next_seq
        self._next_seq = seq + 1
        self._records.append((seq, float(t_s), kind, subsystem, data))
        if self._subscribers or self.strict:
            event = self.events[-1]
            for fn in self._subscribers:
                fn(event)
            return event
        return None

    def count(self, kind: str | None = None, *, subsystem: str | None = None) -> int:
        """Events seen, optionally filtered by kind or subsystem."""
        if kind is not None:
            return self.by_kind[kind]
        if subsystem is not None:
            return self.by_subsystem[subsystem]
        return len(self._records)

    def to_jsonl(self) -> str:
        """The whole trace as JSONL (deterministic byte-for-byte)."""
        dumps = json.dumps
        return "".join(
            dumps(
                {"seq": seq, "t": t, "kind": kind, "sub": sub, "data": data},
                sort_keys=True,
                separators=(",", ":"),
            )
            + "\n"
            for seq, t, kind, sub, data in self._records
        )

    def write_jsonl(self, path) -> int:
        """Write the trace to ``path``; returns the event count."""
        import pathlib

        pathlib.Path(path).write_text(self.to_jsonl())
        return len(self._records)

    def render_counters(self) -> str:
        """A small per-kind summary table (for example/benchmark output)."""
        lines = [f"{'event kind':<18}{'count':>8}"]
        for kind in sorted(self.by_kind):
            lines.append(f"{kind:<18}{self.by_kind[kind]:>8}")
        lines.append(f"{'total':<18}{len(self._records):>8}")
        return "\n".join(lines)

"""Table 5 — Performance and price/performance for LittleFe and Limulus.

The headline quantitative table.  Rpeak comes from the hardware model
(exactly matching the paper: 537.6 / 793.6 GFLOPS), Rmax from the calibrated
HPL model (Limulus within a few percent of the measured 498.3; LittleFe a
genuine prediction beside the paper's 75 %-of-peak estimate, carrying the
same asterisk), and the $/GFLOPS columns from the quoted system costs.
The timed unit runs both machine models end to end.
"""

import pytest

from repro.hardware import (
    LIMULUS_QUOTED_PRICE_USD,
    LITTLEFE_QUOTED_PRICE_USD,
    build_limulus_hpc200,
    build_littlefe_modified,
)
from repro.linpack import benchmark_machine, price_performance, render_table5_row

#: Paper figures for the EXPERIMENTS.md comparison.
PAPER_ROWS = {
    "littlefe-iu": dict(rpeak=537.6, rmax=403.2, cost=3600, per_rpeak=7, per_rmax=9),
    "limulus-hpc200": dict(rpeak=793.6, rmax=498.3, cost=5995, per_rpeak=8, per_rmax=12),
}


def model_both():
    lf = build_littlefe_modified()
    lm = build_limulus_hpc200()
    # LittleFe row: the paper's own arithmetic ("Estimated at 75% of Rpeak",
    # the hardware-failure footnote); our model's genuine prediction is
    # reported beside it.
    lf_report = benchmark_machine(lf.machine, estimate_fraction=0.75)
    lf_model = benchmark_machine(lf.machine)
    lm_report = benchmark_machine(lm.machine)
    return (
        (lf_report, price_performance(lf_report, LITTLEFE_QUOTED_PRICE_USD)),
        (lm_report, price_performance(lm_report, LIMULUS_QUOTED_PRICE_USD)),
        lf_model,
    )


def regenerate_table5(rows, lf_model) -> str:
    lines = [
        "Table 5. Performance and price/performance (paper-quoted costs;",
        "* = estimated at 75% of Rpeak, as in the paper's LittleFe footnote)",
        "",
        f"{'System':<16} {'Rpeak':>7} {'Rmax':>8} {'Cost':<8} "
        f"{'Rpeak $/GF':<12} {'Rmax $/GF':<10}",
    ]
    for report, pp in rows:
        lines.append(render_table5_row(pp, estimated=report.estimated))
    lines.append("")
    lines.append(
        f"(model's own LittleFe prediction: {lf_model.rmax_gflops:.1f} "
        f"GFLOPS, {lf_model.efficiency:.1%} of peak — "
        f"{lf_model.rmax_gflops / 403.2 - 1:+.1%} vs the paper's estimate)"
    )
    return "\n".join(lines)


def test_table5_regeneration(benchmark, save_artifact):
    *rows, lf_model = benchmark(model_both)
    table = regenerate_table5(rows, lf_model)
    save_artifact("table5_price_performance", table)

    (lf_report, lf_pp), (lm_report, lm_pp) = rows
    paper_lf = PAPER_ROWS["littlefe-iu"]
    paper_lm = PAPER_ROWS["limulus-hpc200"]

    # Rpeak: exact
    assert lf_report.rpeak_gflops == pytest.approx(paper_lf["rpeak"])
    assert lm_report.rpeak_gflops == pytest.approx(paper_lm["rpeak"])
    # Rmax: measured row (model) within 5 %; the estimated row replicates
    # the paper's 75 % arithmetic exactly, and the model's own prediction
    # lands within 10 % of that estimate
    assert lm_report.rmax_gflops == pytest.approx(paper_lm["rmax"], rel=0.05)
    assert lf_report.rmax_gflops == pytest.approx(paper_lf["rmax"], abs=0.1)
    assert lf_model.rmax_gflops == pytest.approx(paper_lf["rmax"], rel=0.10)
    # $/GFLOPS columns round to the paper's printed integers
    assert round(lf_pp.usd_per_rpeak_gflops) == paper_lf["per_rpeak"]
    assert round(lf_pp.usd_per_rmax_gflops) == paper_lf["per_rmax"]
    assert round(lm_pp.usd_per_rpeak_gflops) == paper_lm["per_rpeak"]
    assert round(lm_pp.usd_per_rmax_gflops) == paper_lm["per_rmax"]
    # who-wins shape: LittleFe cheaper per GFLOPS on both axes
    assert lf_pp.usd_per_rmax_gflops < lm_pp.usd_per_rmax_gflops

"""XCBC release history (Section 2).

"There have been two major XSEDE Rocks Rolls released since the 2014
report.  Version 0.0.8 saw a major OS release update from Centos 6.3 to 6.5
and 27 scientific and supporting packages have been added, including
GenomeAnalysisTK, gromacs, mpiblast, and others.  The 0.0.9 release from
November 2014 saw 41 additions, including TrinityRNASeq, R, significant
Java updates, and other scientific and supporting packages."

This module encodes that history executably: each release names its OS
base, its package additions (exactly 27 and 41 — tested), and its version
bumps (the "significant Java updates" are a bump of the base-resident JDK,
which is why java appears in no addition list).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..distro.distribution import CENTOS_6_3, CENTOS_6_5, DistroRelease
from ..errors import ReproError
from ..rpm.package import Package
from .packages_xsede import xsede_package_names, xsede_packages

__all__ = [
    "XcbcRelease",
    "ADDED_IN_0_0_8",
    "ADDED_IN_0_0_9",
    "RELEASES",
    "get_xcbc_release",
    "packages_for_release",
    "render_release_notes",
    "CURRENT_RELEASE",
]

#: The 27 additions of 0.0.8 (GenomeAnalysisTK ships as the ``gatk`` RPM).
ADDED_IN_0_0_8: tuple[str, ...] = (
    "gatk", "gromacs", "gromacs-common", "gromacs-libs", "mpiblast",
    "ncbi-blast", "hmmer", "bowtie", "bwa", "Samtools", "BEDTools",
    "SHRiMP", "shrimp", "Abyss", "autodocksuite", "mrbayes",
    "picard-tools", "sratoolkit", "libgtextutils", "sparsehash-devel",
    "boost", "sprng", "sundials", "glpk", "elemental", "espresso-ab",
    "meep",
)

#: The 41 additions of 0.0.9 (TrinityRNASeq ships as the ``trinity`` RPM;
#: the R stack and the wx/gnuplot/java-library supporting set).
ADDED_IN_0_0_9: tuple[str, ...] = (
    "trinity", "R", "R-core", "R-core-devel", "R-devel", "R-java",
    "R-java-devel", "libRmath", "libRmath-devel", "rhino", "jline",
    "jpackage-utils", "tzdata-java", "ant", "scone", "giflib",
    "libesmtp", "libicu", "pulseaudio-libs", "libasyncns", "libsndfile",
    "libvorbis", "flac", "libogg", "libXtst", "wxBase", "wxGTK",
    "wxGTK-devel", "wxBase3", "wxGTK3", "xorg-x11-fonts-Type1",
    "xorg-x11-fonts-utils", "gnuplot", "gnuplot-common", "gd", "libXpm",
    "plplot", "saga", "libmspack", "lua", "valgrind",
)

#: Version bumps per release for packages that predate it (the Java
#: updates the 0.0.9 notes call out).
_VERSION_BY_RELEASE: dict[str, dict[str, str]] = {
    "0.0.7": {"java-1.7.0-openjdk": "1.7.0.55"},
    "0.0.8": {"java-1.7.0-openjdk": "1.7.0.65"},
    "0.0.9": {},  # catalogue versions are the 0.0.9 state
}


@dataclass(frozen=True)
class XcbcRelease:
    """One XSEDE roll release."""

    version: str
    date: str
    os_release: DistroRelease
    added: tuple[str, ...]
    notes: str

    @property
    def addition_count(self) -> int:
        return len(self.added)


RELEASES: tuple[XcbcRelease, ...] = (
    XcbcRelease(
        version="0.0.7",
        date="2014-03",
        os_release=CENTOS_6_3,
        added=(),  # the baseline set; additions are relative to this
        notes="2014 baseline release (XSEDE '14 report)",
    ),
    XcbcRelease(
        version="0.0.8",
        date="2014-07",
        os_release=CENTOS_6_5,
        added=ADDED_IN_0_0_8,
        notes="OS update CentOS 6.3 -> 6.5; 27 package additions "
        "(GenomeAnalysisTK, gromacs, mpiblast, ...)",
    ),
    XcbcRelease(
        version="0.0.9",
        date="2014-11",
        os_release=CENTOS_6_5,
        added=ADDED_IN_0_0_9,
        notes="41 additions (TrinityRNASeq, R, significant Java updates, ...)",
    ),
)

#: The paper describes 0.0.9 contents as "the current XCBC release (0.9)".
CURRENT_RELEASE = RELEASES[-1]


def get_xcbc_release(version: str) -> XcbcRelease:
    """Look up a release by version string."""
    for release in RELEASES:
        if release.version == version:
            return release
    known = ", ".join(r.version for r in RELEASES)
    raise ReproError(f"unknown XCBC release {version!r}; known: {known}")


def render_release_notes(version: str) -> str:
    """The README.<version> file the XSEDE repo publishes (refs [15], [16]).

    Generated from the release history, so the notes can never disagree
    with what :func:`packages_for_release` actually ships.
    """
    release = get_xcbc_release(version)
    index = RELEASES.index(release)
    lines = [
        f"README.{version} — XSEDE-compatible basic cluster roll",
        f"Release date: {release.date}",
        f"Base OS: {release.os_release.release_string}",
        "",
        release.notes,
        "",
    ]
    if index > 0:
        previous = RELEASES[index - 1]
        if release.os_release is not previous.os_release:
            lines.append(
                f"* OS update: {previous.os_release.release_string} -> "
                f"{release.os_release.release_string}"
            )
        lines.append(f"* {len(release.added)} package additions:")
        lines += [f"    {name}" for name in sorted(release.added)]
        before = {p.name: p for p in packages_for_release(previous.version)}
        updates = [
            f"    {p.name}: {before[p.name].version} -> {p.version}"
            for p in packages_for_release(version)
            if p.name in before and p.version != before[p.name].version
        ]
        if updates:
            lines.append(f"* {len(updates)} package updates:")
            lines += updates
    lines.append("")
    lines.append(
        f"Total packages in this release: {len(packages_for_release(version))}"
    )
    return "\n".join(lines)


def packages_for_release(version: str) -> list[Package]:
    """The full catalogue as of a release.

    Membership is cumulative (a release carries everything previous ones
    did plus its additions); versions reflect any per-release overrides, so
    diffing two releases' outputs shows both additions and updates.
    """
    release = get_xcbc_release(version)
    index = RELEASES.index(release)
    removed_later: set[str] = set()
    for later in RELEASES[index + 1 :]:
        removed_later.update(later.added)
    overrides = _VERSION_BY_RELEASE[version]
    out: list[Package] = []
    for pkg in xsede_packages():
        if pkg.name in removed_later:
            continue  # not yet added as of this release
        if pkg.name in overrides:
            pkg = Package(
                name=pkg.name,
                version=overrides[pkg.name],
                release=pkg.release,
                category=pkg.category,
                summary=pkg.summary,
                requires=pkg.requires,
                commands=pkg.commands,
                libraries=pkg.libraries,
                modulefile=pkg.modulefile,
                files=pkg.files,
            )
        out.append(pkg)
    return out

"""Links, switches, and the cluster fabric cost model.

Both paper machines interconnect over gigabit Ethernet through a single
switch; campus deployments may add more switch tiers.  The fabric answers
two questions:

* topology — which hosts can reach which (Rocks' insert-ethers discovers
  compute nodes on the frontend's private segment);
* cost — point-to-point latency/bandwidth between any two endpoints, used
  by the simulated-MPI layer and hence by the HPL efficiency model.

The model is the classic alpha-beta (latency + size/bandwidth) with one
alpha per switch hop.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..errors import NetworkError
from ..hardware.nic import NicModel

__all__ = ["Endpoint", "Switch", "Fabric", "PathCost"]

#: Ethernet + IP + TCP framing overhead applied to NIC line rate.
PROTOCOL_EFFICIENCY = 0.94


@dataclass(frozen=True)
class Endpoint:
    """One NIC of one named host attached to the fabric."""

    host: str
    nic: NicModel
    interface: str = "eth0"

    @property
    def key(self) -> tuple[str, str]:
        return (self.host, self.interface)


@dataclass
class Switch:
    """A store-and-forward switch."""

    name: str
    ports: int
    latency_us: float = 5.0
    _attached: list[Endpoint] = field(default_factory=list)

    def attach(self, endpoint: Endpoint) -> None:
        if len(self._attached) >= self.ports:
            raise NetworkError(f"switch {self.name}: all {self.ports} ports in use")
        if any(e.key == endpoint.key for e in self._attached):
            raise NetworkError(
                f"switch {self.name}: {endpoint.host}/{endpoint.interface} "
                f"already attached"
            )
        self._attached.append(endpoint)

    def attached_hosts(self) -> list[str]:
        return sorted({e.host for e in self._attached})

    def endpoint_for(self, host: str) -> Endpoint | None:
        for e in self._attached:
            if e.host == host:
                return e
        return None


@dataclass(frozen=True)
class PathCost:
    """Cost of moving a message between two endpoints."""

    latency_s: float
    bandwidth_bytes_s: float
    hops: int

    def transfer_time_s(self, nbytes: int) -> float:
        """alpha + n*beta for one message of ``nbytes``."""
        if nbytes < 0:
            raise NetworkError(f"negative message size: {nbytes}")
        return self.latency_s + nbytes / self.bandwidth_bytes_s


class Fabric:
    """A set of switches plus inter-switch uplinks.

    Hosts attach to switches; uplinks connect switches.  Paths are resolved
    by BFS over the switch graph (the fabrics modelled here are small).
    """

    def __init__(self) -> None:
        self._switches: dict[str, Switch] = {}
        self._uplinks: dict[str, set[str]] = {}

    def add_switch(self, switch: Switch) -> Switch:
        if switch.name in self._switches:
            raise NetworkError(f"duplicate switch {switch.name}")
        self._switches[switch.name] = switch
        self._uplinks[switch.name] = set()
        return switch

    def connect_switches(self, a: str, b: str) -> None:
        """Add a bidirectional uplink between two switches."""
        if a not in self._switches or b not in self._switches:
            raise NetworkError(f"unknown switch in uplink {a}<->{b}")
        if a == b:
            raise NetworkError("cannot uplink a switch to itself")
        self._uplinks[a].add(b)
        self._uplinks[b].add(a)

    def attach(self, switch_name: str, endpoint: Endpoint) -> None:
        """Attach a host NIC to a switch port."""
        switch = self._switches.get(switch_name)
        if switch is None:
            raise NetworkError(f"unknown switch {switch_name}")
        switch.attach(endpoint)

    def switch_names(self) -> list[str]:
        """Names of every switch in the fabric."""
        return sorted(self._switches)

    def get_switch(self, name: str) -> Switch:
        """Fetch a switch by name."""
        try:
            return self._switches[name]
        except KeyError:
            raise NetworkError(f"unknown switch {name}") from None

    def hosts(self) -> list[str]:
        """Every attached host name."""
        names: set[str] = set()
        for switch in self._switches.values():
            names.update(switch.attached_hosts())
        return sorted(names)

    def _locate_all(self, host: str) -> list[tuple[Switch, Endpoint]]:
        """All (switch, endpoint) attachments of a host (dual-homed hosts
        have several; path selection picks the cheapest reachable one)."""
        found = []
        for name in sorted(self._switches):
            switch = self._switches[name]
            ep = switch.endpoint_for(host)
            if ep is not None:
                found.append((switch, ep))
        if not found:
            raise NetworkError(f"host {host} is not attached to the fabric")
        return found

    def _switch_path(self, start: str, goal: str) -> list[str]:
        """BFS shortest switch path (list of switch names, inclusive)."""
        if start == goal:
            return [start]
        frontier = [[start]]
        visited = {start}
        while frontier:
            path = frontier.pop(0)
            for neighbour in sorted(self._uplinks[path[-1]]):
                if neighbour in visited:
                    continue
                if neighbour == goal:
                    return path + [neighbour]
                visited.add(neighbour)
                frontier.append(path + [neighbour])
        raise NetworkError(f"no path between switches {start} and {goal}")

    def path_cost(self, src_host: str, dst_host: str) -> PathCost:
        """Latency/bandwidth between two hosts.

        Latency: NIC latencies at both ends plus one switch latency per
        switch on the path.  Bandwidth: the minimum NIC line rate times the
        protocol efficiency (uplinks are assumed at least as fast as edges).
        """
        if src_host == dst_host:
            # loopback: fast, but not free (model memcpy through the stack)
            return PathCost(latency_s=1e-6, bandwidth_bytes_s=5e9, hops=0)
        best: PathCost | None = None
        for src_switch, src_ep in self._locate_all(src_host):
            for dst_switch, dst_ep in self._locate_all(dst_host):
                try:
                    switch_path = self._switch_path(src_switch.name, dst_switch.name)
                except NetworkError:
                    continue
                latency_us = src_ep.nic.latency_us + dst_ep.nic.latency_us
                latency_us += sum(self._switches[s].latency_us for s in switch_path)
                bandwidth = (
                    min(src_ep.nic.bandwidth_bytes_s, dst_ep.nic.bandwidth_bytes_s)
                    * PROTOCOL_EFFICIENCY
                )
                cost = PathCost(
                    latency_s=latency_us * 1e-6,
                    bandwidth_bytes_s=bandwidth,
                    hops=len(switch_path),
                )
                if best is None or cost.latency_s < best.latency_s:
                    best = cost
        if best is None:
            raise NetworkError(f"no path between {src_host} and {dst_host}")
        return best

    def reachable(self, src_host: str, dst_host: str) -> bool:
        """True if a path exists between the two hosts."""
        try:
            self.path_cost(src_host, dst_host)
            return True
        except NetworkError:
            return False

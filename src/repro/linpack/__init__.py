"""Linpack/HPL: real blocked-LU kernels at laptop scale, a calibrated
analytic performance model at cluster scale, and TOP500-style reporting.
"""

from .dgemm import (
    DgemmMeasurement,
    blocked_lu,
    lu_solve,
    measure_dgemm_gflops,
    residual_check,
)
from .hpl import HplReport, HplRunResult, benchmark_machine, run_hpl_small
from .model import (
    HplModelInput,
    HplPrediction,
    kernel_efficiency,
    predict_hpl,
    predict_machine,
    problem_size,
)
from .top500 import PricePerformance, price_performance, rank, render_table5_row

__all__ = [
    "blocked_lu",
    "lu_solve",
    "residual_check",
    "measure_dgemm_gflops",
    "DgemmMeasurement",
    "run_hpl_small",
    "HplRunResult",
    "benchmark_machine",
    "HplReport",
    "HplModelInput",
    "HplPrediction",
    "predict_hpl",
    "predict_machine",
    "problem_size",
    "kernel_efficiency",
    "PricePerformance",
    "price_performance",
    "rank",
    "render_table5_row",
]

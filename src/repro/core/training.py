"""The training curriculum (Section 6).

"A curriculum module entitled 'Building and administering a Beowulf-style
cluster with LittleFe and the XSEDE-compatible Basic Cluster build' is
available from the LittleFe web site."  Bare-metal installs done *as part
of the curriculum* mean "students experience installing clusters and
software and monitoring" (Section 8).

:class:`CurriculumModule` is an ordered list of hands-on steps, each of
which actually executes against the simulation — when a student skips the
disk-install step, the Rocks step genuinely fails with the same error a
real class would hit.  :class:`TrainingSession` runs a cohort through the
module and produces a transcript.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import ReproError, TrainingError

__all__ = [
    "StepOutcome",
    "CurriculumStep",
    "CurriculumModule",
    "TrainingSession",
    "littlefe_xcbc_module",
    "limulus_xnit_module",
]


@dataclass
class StepOutcome:
    """One step's result for one cohort run."""

    step: str
    passed: bool
    detail: str


@dataclass(frozen=True)
class CurriculumStep:
    """One hands-on exercise.

    ``action`` receives the session's shared workspace dict and returns a
    human-readable detail string; raising :class:`ReproError` (any
    simulation error) marks the step failed with the error text — the
    teaching moment.
    """

    name: str
    objective: str
    action: Callable[[dict], str]


@dataclass(frozen=True)
class CurriculumModule:
    """An ordered curriculum."""

    title: str
    steps: tuple[CurriculumStep, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise TrainingError(f"module {self.title!r} has no steps")


class TrainingSession:
    """One cohort working through a module on shared (simulated) hardware."""

    def __init__(self, module: CurriculumModule, *, students: int = 8) -> None:
        if students <= 0:
            raise TrainingError("a session needs at least one student")
        self.module = module
        self.students = students
        self.workspace: dict = {}
        self.outcomes: list[StepOutcome] = []

    def run(self, *, stop_on_failure: bool = False) -> list[StepOutcome]:
        """Execute every step in order."""
        for step in self.module.steps:
            try:
                detail = step.action(self.workspace)
                self.outcomes.append(StepOutcome(step.name, True, detail))
            except ReproError as exc:
                self.outcomes.append(StepOutcome(step.name, False, str(exc)))
                if stop_on_failure:
                    break
        return self.outcomes

    @property
    def passed_all(self) -> bool:
        return bool(self.outcomes) and all(o.passed for o in self.outcomes)

    def transcript(self) -> str:
        lines = [f"Curriculum: {self.module.title} ({self.students} students)"]
        for o in self.outcomes:
            mark = "PASS" if o.passed else "FAIL"
            lines.append(f"  [{mark}] {o.step}: {o.detail}")
        return "\n".join(lines)


def littlefe_xcbc_module(*, forget_disks: bool = False) -> CurriculumModule:
    """The Section 6 module, executable.

    ``forget_disks=True`` injects the classic student mistake: building the
    stock (diskless) LittleFe and then attempting the Rocks-based XCBC
    install — which fails exactly the way Section 5.1 explains.
    """

    def assemble(ws: dict) -> str:
        from ..hardware.builder import build_littlefe_modified, build_littlefe_original

        quote = build_littlefe_original() if forget_disks else build_littlefe_modified()
        ws["machine"] = quote.machine
        return (
            f"assembled {quote.machine.node_count} nodes, "
            f"{quote.machine.total_cores} cores, BOM ${quote.bom_usd:.0f}"
        )

    def wire(ws: dict) -> str:
        from ..network.topology import build_cluster_network

        ws["network"] = build_cluster_network(ws["machine"])
        return f"dual-homed head node; {len(ws['network'].private_hosts())} hosts on the private switch"

    def install(ws: dict) -> str:
        from .xcbc import build_xcbc_cluster

        report = build_xcbc_cluster(ws["machine"])
        ws["cluster"] = report.cluster
        return (
            f"XCBC {report.roll_version} installed; "
            f"{report.uniform_package_count} uniform packages"
        )

    def submit_job(ws: dict) -> str:
        from ..scheduler import ClusterResources, Job, MauiScheduler

        scheduler = MauiScheduler(ClusterResources(ws["machine"]))
        job = scheduler.submit(
            Job("hello-mpi", "student", cores=4, walltime_limit_s=600, runtime_s=30)
        )
        stats = scheduler.run_to_completion()
        return f"job {job.name} completed; makespan {stats.makespan_s:.0f}s"

    def run_linpack(ws: dict) -> str:
        from ..linpack import benchmark_machine

        report = benchmark_machine(ws["machine"])
        return (
            f"HPL model: N={report.n}, Rmax {report.rmax_gflops:.1f} of "
            f"Rpeak {report.rpeak_gflops:.1f} GFLOPS "
            f"({report.efficiency:.0%})"
        )

    return CurriculumModule(
        title="Building and administering a Beowulf-style cluster with "
        "LittleFe and the XSEDE-compatible Basic Cluster build",
        steps=(
            CurriculumStep(
                "assemble-hardware",
                "Build the LittleFe frame: boards, CPUs, coolers, power",
                assemble,
            ),
            CurriculumStep(
                "wire-network",
                "Cable the dual-homed head node and private switch",
                wire,
            ),
            CurriculumStep(
                "install-xcbc",
                "Install Rocks with the XSEDE roll from scratch",
                install,
            ),
            CurriculumStep(
                "submit-first-job",
                "Submit and watch an MPI job through Torque/Maui",
                submit_job,
            ),
            CurriculumStep(
                "run-linpack",
                "Size and run HPL; compare Rmax against Rpeak",
                run_linpack,
            ),
        ),
    )


def limulus_xnit_module(*, skip_priorities_plugin: bool = False) -> CurriculumModule:
    """Section 6's other hands-on path: retrofitting a delivered cluster.

    "Using the Limulus HPC200, one can take the running cluster, and with
    XNIT add software, change the schedulers, and easily document the
    approach to make it reproducible" — each clause is a step, and the whole
    session is recorded into a playbook students take home.

    ``skip_priorities_plugin=True`` injects the classic mistake: enabling
    the repository without yum-plugin-priorities, letting the base OS shadow
    the XSEDE builds; the audit step catches the drift.
    """

    def unbox(ws: dict) -> str:
        from .machines import build_limulus_cluster

        ws["cluster"] = build_limulus_cluster("class-limulus")
        ws["client"] = ws["cluster"].client_for(ws["cluster"].frontend)
        return (
            f"delivered machine: {ws['cluster'].machine.total_cores} cores, "
            f"vendor stack {', '.join(ws['cluster'].vendor_stack)}"
        )

    def enable_repo(ws: dict) -> str:
        from ..rpm.package import Package
        from ..yum.repository import Repository
        from .playbook import RecordingSession
        from .xnit import build_xnit_repository

        repo = build_xnit_repository()
        if skip_priorities_plugin:
            # the mistake: hand-edit the .repo file, forget the plugin, and
            # leave a base repo carrying a shadowing python build enabled
            base = Repository("sl-base", priority=90)
            base.add(Package(name="python", version="2.7.99", release="0.el6",
                             commands=("python",)))
            client = ws["client"]
            client.repos.use_priorities = False
            client.repos.add_repo(base)
            client.repos.add_repo(repo)
            ws["session"] = RecordingSession(client, repo, title="class retrofit")
            return "repository enabled WITHOUT yum-plugin-priorities"
        ws["session"] = RecordingSession(ws["client"], repo, title="class retrofit")
        ws["session"].setup_repo_manual()
        return "yum-plugin-priorities installed; xsede.repo written"

    def add_software(ws: dict) -> str:
        ws["session"].install("python", comment="the run-alike interpreter")
        ws["session"].install("gromacs", comment="the class MD workload")
        return "python + gromacs (and their chains) installed"

    def change_scheduler(ws: dict) -> str:
        ws["session"].install("torque", "maui", comment="change the schedulers")
        return "torque/maui installed beside the vendor Grid Engine"

    def audit(ws: dict) -> str:
        from ..errors import CompatibilityError
        from .compatibility import audit_host
        from .packages_xsede import xsede_packages

        client = ws["client"]
        report = audit_host(
            ws["cluster"].frontend,
            client.db,
            catalogue=[
                p
                for p in xsede_packages()
                if p.name in ("python", "gromacs", "torque", "maui")
            ],
        )
        if report.overall < 1.0 - 1e-9:
            missing = [
                item
                for dim in report.dimensions
                for item in dim.missing
            ]
            raise CompatibilityError(
                f"run-alike drift detected (audit {report.overall:.0%}): "
                f"missing {missing} — did you install yum-plugin-priorities?"
            )
        return f"audit clean: {report.overall:.0%} on the installed subset"

    def document(ws: dict) -> str:
        playbook = ws["session"].playbook
        ws["cluster"].frontend.fs.write(
            "/root/retrofit-playbook.json", playbook.to_json()
        )
        return (
            f"playbook with {len(playbook.steps)} steps written to "
            f"/root/retrofit-playbook.json"
        )

    return CurriculumModule(
        title="Retrofitting a running cluster with XNIT "
        "(Limulus HPC200 edition)",
        steps=(
            CurriculumStep("unbox", "Inspect the delivered cluster", unbox),
            CurriculumStep("enable-repo", "Enable the XSEDE Yum repository", enable_repo),
            CurriculumStep("add-software", "Install capabilities with yum", add_software),
            CurriculumStep("change-scheduler", "Add torque/maui via XNIT", change_scheduler),
            CurriculumStep("audit", "Audit run-alike compatibility", audit),
            CurriculumStep("document", "Write the reproducible playbook", document),
        ),
    )

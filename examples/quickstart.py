#!/usr/bin/env python3
"""Quickstart: build a LittleFe, install XCBC from scratch, audit it, run a job.

This is the 60-second tour of the library: hardware -> provisioning ->
compatibility -> batch work -> Linpack.  Run with::

    python examples/quickstart.py
"""

from repro.core import audit_host, build_xcbc_cluster
from repro.hardware import build_littlefe_modified
from repro.linpack import benchmark_machine, run_hpl_small
from repro.scheduler import ClusterResources, Job, MauiScheduler


def main() -> None:
    # 1. Hardware: the Section 5.1 modified LittleFe (validated assembly).
    quote = build_littlefe_modified()
    machine = quote.machine
    print(f"Built {machine.name}: {machine.node_count} nodes / "
          f"{machine.total_cores} cores / {machine.rpeak_gflops:.1f} GFLOPS "
          f"peak, BOM ${quote.bom_usd:,.0f}")

    # 2. Software: the all-at-once XCBC install (Rocks + XSEDE roll).
    report = build_xcbc_cluster(machine)
    cluster = report.cluster
    print(f"Installed XCBC {report.roll_version} with rolls: "
          f"{', '.join(cluster.roll_names())}")

    # 3. Audit: how XSEDE-compatible is the result?
    print()
    print(audit_host(cluster.frontend, cluster.frontend_db).render())

    # 4. Batch work through Torque/Maui.
    scheduler = MauiScheduler(ClusterResources(machine))
    job = scheduler.submit(
        Job("hello-mpi", "you", cores=4, walltime_limit_s=600, runtime_s=42)
    )
    stats = scheduler.run_to_completion()
    print(f"\nJob {job.name!r} completed in {job.charged_runtime_s:.0f}s "
          f"on {job.allocation}")
    print(f"Cluster utilisation for this trace: "
          f"{stats.utilization(scheduler.resources.total_cores):.0%}")

    # 5. Linpack: a real kernel run here, plus the modelled cluster figure.
    real = run_hpl_small(256)
    hpl = benchmark_machine(machine, estimated=True)
    print(f"\nReal LU solve (n=256) on this machine: {real.gflops:.2f} GFLOPS, "
          f"residual {real.residual:.3f} -> "
          f"{'PASSED' if real.passed else 'FAILED'}")
    print(f"Modelled cluster HPL: N={hpl.n}, Rmax {hpl.rmax_gflops:.1f} of "
          f"{hpl.rpeak_gflops:.1f} GFLOPS ({hpl.efficiency:.0%})")


def cluster_definition():
    """Pre-flight view of this example's build, for ``cluster-lint``."""
    from repro.core import xcbc_cluster_definition

    return xcbc_cluster_definition(build_littlefe_modified().machine)


if __name__ == "__main__":
    main()

"""The chaos harness: replay a fault plan against a whole cluster stack.

One call builds a machine (LittleFe or Limulus), a Maui scheduler, a
Ganglia monitoring mesh, and an XSEDE repo mirror on a single seeded
kernel; schedules a deterministic workload and the plan's faults as
kernel events; runs everything to quiescence; and then audits an
invariant set instead of trusting that "it didn't crash" means "it
worked":

* **completion** — every submitted job ended COMPLETED or FAILED; nothing
  is stuck PENDING or phantom-RUNNING;
* **no event-queue leaks** — once the periodic sampler stops, the kernel
  queue is empty and the heap holds zero lazily-cancelled corpses;
* **no resource leaks** — every online node's free cores equal capacity;
* **trace integrity** — the JSONL validates against the event schema with
  strictly increasing sequence numbers;
* **monitoring confluence** — permanently crashed nodes are on gmetad's
  dead list by the end of the run.

Determinism (same seed ⇒ byte-identical JSONL) is checked by the CLI
(``python -m repro.faults --check-determinism``) by running the whole
harness twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..distro.distribution import CENTOS_6_5
from ..distro.host import Host
from ..errors import FaultError, RetryExhaustedError
from ..hardware.builder import build_limulus_hpc200, build_littlefe_modified
from ..monitoring.gmetad import Gmetad
from ..monitoring.gmond import Gmond
from ..rpm.package import Package
from ..scheduler.base import ClusterResources
from ..scheduler.job import Job, JobState
from ..scheduler.torque import MauiScheduler
from ..sim import SimKernel, validate_jsonl
from ..yum.mirror import MirrorLink, RepoMirror
from ..yum.repository import Repository
from .inject import FaultInjector
from .plan import FaultKind, FaultPlan, FaultSpec
from .retry import RetryPolicy

__all__ = ["ChaosReport", "ChaosRun", "run_chaos", "demo_plan", "CLUSTERS"]

#: Machines the harness can build, by name.
CLUSTERS = {
    "littlefe": lambda: build_littlefe_modified().machine,
    "limulus": lambda: build_limulus_hpc200().machine,
}

#: Safety bound: no sane chaos run needs more kernel events than this.
_MAX_EVENTS = 2_000_000


@dataclass
class ChaosReport:
    """The audited outcome of one chaos run."""

    jobs_total: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    requeues: int = 0
    faults_injected: int = 0
    faults_recovered: int = 0
    retries: int = 0
    giveups: int = 0
    dead_hosts: list[str] = field(default_factory=list)
    mirror_sync_ok: bool | None = None
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [
            f"jobs: {self.jobs_completed} completed, {self.jobs_failed} failed "
            f"of {self.jobs_total} ({self.requeues} requeue(s))",
            f"faults: {self.faults_injected} injected, "
            f"{self.faults_recovered} recovered; "
            f"{self.retries} retry(ies), {self.giveups} giveup(s)",
            f"monitoring: dead hosts {self.dead_hosts or 'none'}",
        ]
        if self.mirror_sync_ok is not None:
            lines.append(
                "mirror: sync "
                + ("recovered" if self.mirror_sync_ok else "gave up (degraded)")
            )
        if self.violations:
            lines.append("INVARIANT VIOLATIONS:")
            lines.extend(f"  - {v}" for v in self.violations)
        else:
            lines.append("invariants: all hold")
        return "\n".join(lines)


@dataclass
class ChaosRun:
    """Everything a chaos run produced (for tests and the CLI)."""

    kernel: SimKernel
    scheduler: MauiScheduler
    gmetad: Gmetad
    mirror: RepoMirror | None
    injector: FaultInjector
    report: ChaosReport
    jsonl: str


def demo_plan(machine) -> FaultPlan:
    """The built-in scenario: crash two compute nodes mid-workload (one
    recovers, one stays dead), lose a heartbeat, and corrupt the mirror."""
    compute = [n.name for n in machine.compute_nodes]
    if len(compute) < 3:
        raise FaultError("demo plan needs at least three compute nodes")
    return FaultPlan(
        name=f"demo-{machine.name}",
        faults=(
            # Disk fills just before the sync starts, so the sync's first
            # attempts fail and the retry policy backs off until space frees.
            FaultSpec(FaultKind.DISK_FULL, "xsede-mirror", at_s=10.0,
                      duration_s=60.0),
            FaultSpec(FaultKind.MIRROR_CORRUPT, "xsede-mirror", at_s=5.0),
            FaultSpec(FaultKind.NODE_CRASH, compute[1], at_s=700.0,
                      duration_s=2400.0),
            FaultSpec(FaultKind.PSU_FAIL, compute[2], at_s=950.0),
            FaultSpec(FaultKind.HEARTBEAT_LOSS, compute[0], at_s=400.0,
                      duration_s=120.0),
        ),
    )


def _build_workload(kernel: SimKernel, machine, count: int) -> list[tuple[float, Job]]:
    """A deterministic (seed-driven) job mix with staggered submit times."""
    rng = kernel.rng
    per_node = min(n.cores for n in machine.compute_nodes)
    jobs = []
    submit_s = 0.0
    for index in range(count):
        submit_s += 60.0 * rng.randrange(1, 6)
        wide = rng.random() < 0.3
        cores = per_node * rng.randrange(2, 4) if wide else rng.randrange(1, per_node + 1)
        runtime_s = 300.0 + 60.0 * rng.randrange(0, 20)
        jobs.append(
            (
                submit_s,
                Job(
                    f"chaos-j{index:02d}", "chaos", cores=cores,
                    walltime_limit_s=4 * 3600.0, runtime_s=runtime_s,
                ),
            )
        )
    return jobs


def _build_mirror(kernel: SimKernel) -> RepoMirror:
    upstream = Repository("xsede", name="XSEDE campus bridging", priority=20)
    for index in range(12):
        upstream.add(
            Package(
                name=f"xsede-pkg{index:02d}", version="1.0",
                size_bytes=(index + 1) * 256 * 1024,
            )
        )
    return RepoMirror(
        upstream,
        MirrorLink(bandwidth_bytes_s=10e6, latency_s=0.05),
        repo_id="xsede-mirror",
        kernel=kernel,
        retry=RetryPolicy(max_attempts=5, base_delay_s=5.0, max_delay_s=120.0),
    )


def _drain(kernel: SimKernel) -> None:
    """Fire events until only periodic series (the sampler) remain."""
    fired = 0
    while len(kernel.queue) > kernel.periodic_count:
        kernel.step()
        fired += 1
        if fired > _MAX_EVENTS:
            raise FaultError(
                f"chaos run exceeded {_MAX_EVENTS} events; runaway schedule?"
            )


def run_chaos(
    plan: FaultPlan | None = None,
    *,
    seed: int = 0,
    cluster: str = "littlefe",
    job_count: int = 12,
    with_mirror: bool = True,
) -> ChaosRun:
    """Build the stack, apply the plan, run to quiescence, audit."""
    try:
        machine = CLUSTERS[cluster]()
    except KeyError:
        known = ", ".join(sorted(CLUSTERS))
        raise FaultError(f"unknown cluster {cluster!r} (known: {known})") from None

    kernel = SimKernel(seed=seed)
    scheduler = MauiScheduler(ClusterResources(machine), kernel=kernel)
    gmetad = Gmetad(machine.name, poll_period_s=15.0, kernel=kernel)
    for node in machine.nodes:
        host = Host(node, CENTOS_6_5, diskless_image=node.diskless)

        def load_for(node_name=node.name):
            total = 0
            for job in scheduler.running:
                if job.allocation is None:
                    continue
                for name, cores in job.allocation.by_node:
                    if name == node_name:
                        total += cores
            return total

        gmetad.attach(Gmond(host, load_source=load_for))

    mirror = _build_mirror(kernel) if with_mirror else None
    mirror_outcome: bool | None = None

    if plan is None:
        plan = demo_plan(machine)
    injector = FaultInjector(
        kernel,
        scheduler=scheduler,
        machine=machine,
        gmetad=gmetad,
        mirrors=(mirror,) if mirror is not None else (),
        pxe=None,
    )
    injector.apply(plan)

    workload = _build_workload(kernel, machine, job_count)
    all_jobs = [job for _t, job in workload]
    for submit_s, job in workload:
        kernel.at(submit_s, lambda job=job: scheduler.submit(job),
                  label=f"chaos.submit:{job.name}")

    if mirror is not None:
        def sync_mirror() -> None:
            nonlocal mirror_outcome
            try:
                mirror.sync()
                mirror_outcome = True
            except (RetryExhaustedError, FaultError):
                # Degraded, not dead: the mirror stays stale and the run
                # continues — exactly the behaviour the paper's admins need.
                mirror_outcome = False

        kernel.at(20.0, sync_mirror, label="chaos.mirror_sync")

    sampler = gmetad.start_sampling()
    _drain(kernel)
    # Wind-down: enough polling periods for the heartbeat detector to
    # declare permanently dead nodes, then stop sampling.
    for _ in range(max(2, gmetad.dead_after_misses + 1)):
        gmetad.poll_cycle()
    sampler.cancel()
    _drain(kernel)

    report = _audit(kernel, scheduler, gmetad, injector, all_jobs, mirror_outcome)
    return ChaosRun(
        kernel=kernel, scheduler=scheduler, gmetad=gmetad, mirror=mirror,
        injector=injector, report=report, jsonl=kernel.trace.to_jsonl(),
    )


def _audit(
    kernel: SimKernel,
    scheduler: MauiScheduler,
    gmetad: Gmetad,
    injector: FaultInjector,
    jobs: list[Job],
    mirror_outcome: bool | None,
) -> ChaosReport:
    trace = kernel.trace
    report = ChaosReport(
        jobs_total=len(jobs),
        jobs_completed=sum(1 for j in jobs if j.state is JobState.COMPLETED),
        jobs_failed=sum(1 for j in jobs if j.state is JobState.FAILED),
        requeues=trace.count("job.requeue"),
        faults_injected=trace.count("fault.inject"),
        faults_recovered=trace.count("fault.recover"),
        retries=trace.count("fault.retry"),
        giveups=trace.count("fault.giveup"),
        dead_hosts=gmetad.dead_hosts(),
        mirror_sync_ok=mirror_outcome,
    )

    # 1. completion: every job reached a terminal state
    for job in jobs:
        if job.state not in (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED):
            report.violations.append(
                f"job {job.name} ended in non-terminal state {job.state.value}"
            )
    if scheduler.pending or scheduler.running:
        report.violations.append(
            f"scheduler still holds {len(scheduler.pending)} pending / "
            f"{len(scheduler.running)} running job(s)"
        )

    # 2. event-queue leaks: nothing pending, no cancelled corpses
    if len(kernel.queue) != 0:
        report.violations.append(
            f"event queue still holds {len(kernel.queue)} live event(s)"
        )
    kernel.queue.compact()
    if kernel.queue.heap_size != 0:
        report.violations.append(
            f"event heap holds {kernel.queue.heap_size} entries after compaction"
        )

    # 3. resource leaks: nothing left allocated on any node (idle means
    #    free == capacity regardless of offline/failed flags)
    resources = scheduler.resources
    for node in resources.node_names():
        if not resources.is_idle(node):
            report.violations.append(
                f"node {node}: cores still allocated after the run"
            )

    # 4. trace integrity
    count, problems = validate_jsonl(kernel.trace.to_jsonl())
    for problem in problems:
        report.violations.append(f"trace: {problem}")

    # 5. monitoring confluence: permanently crashed nodes are on the dead list
    dead = set(gmetad.dead_hosts())
    for record in injector.history:
        if record.spec.kind in (FaultKind.NODE_CRASH, FaultKind.PSU_FAIL):
            if record.active and record.spec.target not in dead:
                report.violations.append(
                    f"crashed node {record.spec.target} never declared dead "
                    f"by gmetad"
                )
    return report

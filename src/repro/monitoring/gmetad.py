"""gmetad: the cluster-level Ganglia aggregator, plus the text dashboard.

The frontend's gmetad polls every node's gmond on a fixed period, stores
each (host, metric) stream in an RRD, and can answer the questions the web
frontend renders: cluster load, memory, down nodes, per-host detail.  The
``render_dashboard`` output stands in for the Ganglia web UI the paper's
training goals include.

Polling is clocked by a :class:`~repro.sim.SimKernel`: :meth:`poll_cycle`
advances shared simulated time by one period (firing any co-simulated
events due on the way), and :meth:`start_sampling` registers the poll as a
periodic kernel event so monitoring interleaves with scheduler and MPI
activity on one timeline.  Each poll publishes ``metric.sample`` and
``monitor.cycle`` trace events.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError
from ..sim import PeriodicEvent, SimKernel
from .gmond import Gmond
from .metrics import CORE_METRICS, MonitoringError
from .rrd import Rrd

__all__ = ["Gmetad", "ClusterSummary"]


@dataclass(frozen=True)
class ClusterSummary:
    """One aggregated snapshot of the whole cluster.

    ``hosts_dead`` counts hosts whose gmond has missed enough consecutive
    heartbeats to be declared dead — the degraded-but-still-reporting
    state a partially failed cluster settles into.
    """

    timestamp_s: float
    hosts_total: int
    hosts_up: int
    total_cores: int
    load_total: float
    mem_total_kb: float
    mem_free_kb: float
    failed_services: int
    hosts_dead: int = 0

    @property
    def hosts_down(self) -> int:
        return self.hosts_total - self.hosts_up

    @property
    def load_fraction(self) -> float:
        return self.load_total / self.total_cores if self.total_cores else 0.0

    @property
    def degraded(self) -> bool:
        """True when any host is down or declared dead."""
        return self.hosts_down > 0 or self.hosts_dead > 0


class Gmetad:
    """The aggregator on the frontend."""

    def __init__(
        self,
        cluster_name: str,
        *,
        poll_period_s: float = 15.0,
        kernel: SimKernel | None = None,
        dead_after_misses: int = 3,
    ) -> None:
        if poll_period_s <= 0:
            raise MonitoringError("poll period must be positive")
        if dead_after_misses < 1:
            raise MonitoringError("dead_after_misses must be >= 1")
        self.cluster_name = cluster_name
        self.poll_period_s = poll_period_s
        self.dead_after_misses = dead_after_misses
        self.kernel = kernel if kernel is not None else SimKernel()
        self._gmonds: dict[str, Gmond] = {}
        self._rrds: dict[tuple[str, str], Rrd] = {}
        self._missed: dict[str, int] = {}
        self._dead: set[str] = set()
        self._sampler: PeriodicEvent | None = None
        self.summaries: list[ClusterSummary] = []

    @property
    def now_s(self) -> float:
        """Current simulated time (the kernel clock)."""
        return self.kernel.now_s

    def attach(self, gmond: Gmond) -> None:
        """Register a node's gmond as a data source."""
        name = gmond.host.name
        if name in self._gmonds:
            raise MonitoringError(f"gmond for {name} already attached")
        self._gmonds[name] = gmond

    def hosts(self) -> list[str]:
        return sorted(self._gmonds)

    def gmond_for(self, host: str) -> Gmond:
        """The agent registered for one host (fault injection reaches it
        here)."""
        try:
            return self._gmonds[host]
        except KeyError:
            raise MonitoringError(f"unknown host {host!r}") from None

    def dead_hosts(self) -> list[str]:
        """Hosts declared dead after consecutive missed heartbeats."""
        return sorted(self._dead)

    def rrd_for(self, host: str, metric: str) -> Rrd:
        """The archive of one (host, metric) stream."""
        if metric not in CORE_METRICS:
            raise MonitoringError(f"unknown metric {metric!r}")
        if host not in self._gmonds:
            raise MonitoringError(f"unknown host {host!r}")
        key = (host, metric)
        if key not in self._rrds:
            self._rrds[key] = Rrd(step_s=self.poll_period_s)
        return self._rrds[key]

    def _sample(self, timestamp_s: float) -> ClusterSummary:
        """Pull every gmond at ``timestamp_s``, archive, summarise, trace."""
        up = 0
        total_cores = 0
        load_total = 0.0
        mem_total = 0.0
        mem_free = 0.0
        failed = 0
        trace = self.kernel.trace
        for name in self.hosts():
            gmond = self._gmonds[name]
            try:
                samples = {s.spec.name: s for s in gmond.poll(timestamp_s)}
            except ReproError:
                # An unresponsive gmond is a missed heartbeat, not a
                # monitoring crash: degrade the summary, declare the host
                # dead after enough consecutive misses.
                missed = self._missed.get(name, 0) + 1
                self._missed[name] = missed
                if missed >= self.dead_after_misses and name not in self._dead:
                    self._dead.add(name)
                    trace.emit(
                        "monitor.host_dead", t_s=timestamp_s,
                        subsystem="monitoring", host=name, missed=missed,
                    )
                continue
            self._missed[name] = 0
            self._dead.discard(name)
            for metric, sample in samples.items():
                self.rrd_for(name, metric).update(timestamp_s, sample.value)
                trace.emit(
                    "metric.sample", t_s=timestamp_s, subsystem="monitoring",
                    host=name, metric=metric, value=float(sample.value),
                )
            if samples["powered_on"].value > 0:
                up += 1
                total_cores += int(samples["cpu_num"].value)
                load_total += samples["load_one"].value
                mem_total += samples["mem_total"].value
                mem_free += samples["mem_free"].value
                failed += int(samples["svc_failed"].value)
        summary = ClusterSummary(
            timestamp_s=timestamp_s,
            hosts_total=len(self._gmonds),
            hosts_up=up,
            total_cores=total_cores,
            load_total=load_total,
            mem_total_kb=mem_total,
            mem_free_kb=mem_free,
            failed_services=failed,
            hosts_dead=len(self._dead),
        )
        self.summaries.append(summary)
        trace.emit(
            "monitor.cycle", t_s=timestamp_s, subsystem="monitoring",
            hosts_up=up, hosts_total=len(self._gmonds), load_total=load_total,
        )
        return summary

    def state_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot of the monitoring mesh state."""
        return {
            "cluster": self.cluster_name,
            "gmonds": {
                name: self._gmonds[name].state_dict() for name in self.hosts()
            },
            "rrds": {
                f"{host}/{metric}": rrd.state_dict()
                for (host, metric), rrd in sorted(self._rrds.items())
            },
            "missed": {
                k: v for k, v in sorted(self._missed.items()) if v
            },
            "dead": sorted(self._dead),
            "summaries": len(self.summaries),
        }

    def poll_cycle(self) -> ClusterSummary:
        """One polling period: advance a period, pull, archive, summarise.

        Advancing runs any co-simulated kernel events that fall inside the
        window first, so the poll observes the cluster as it is *then*.
        """
        self.kernel.run_until(self.now_s + self.poll_period_s)
        return self._sample(self.now_s)

    def run_cycles(self, count: int) -> ClusterSummary:
        """Poll ``count`` times; returns the last summary."""
        if count <= 0:
            raise MonitoringError("cycle count must be positive")
        last = None
        for _ in range(count):
            last = self.poll_cycle()
        assert last is not None
        return last

    def start_sampling(self, *, first_at_s: float | None = None) -> PeriodicEvent:
        """Register polling as a periodic kernel event (co-simulation mode).

        Time is then driven by whoever runs the kernel — the scheduler, a
        transfer, ``kernel.run_until`` — and each period fires a sample
        automatically.  Call :meth:`stop_sampling` (or cancel the returned
        handle) to stop.
        """
        if self._sampler is not None:
            raise MonitoringError("sampling is already running")
        self._sampler = self.kernel.every(
            self.poll_period_s,
            lambda: self._sample(self.kernel.now_s),
            first_at_s=first_at_s,
            label=f"gmetad.poll:{self.cluster_name}",
        )
        return self._sampler

    def stop_sampling(self) -> None:
        """Cancel the periodic poll registered by :meth:`start_sampling`."""
        if self._sampler is not None:
            self._sampler.cancel()
            self._sampler = None

    def down_hosts(self) -> list[str]:
        """Hosts whose latest powered_on sample is 0, plus hosts declared
        dead on missed heartbeats (the web UI's red rows)."""
        down = set(self._dead)
        for name in self.hosts():
            rrd = self.rrd_for(name, "powered_on")
            latest = rrd.latest()
            if latest is not None and latest.value < 0.5:
                down.add(name)
        return sorted(down)

    def render_dashboard(self) -> str:
        """The web frontend's cluster page, as text."""
        if not self.summaries:
            raise MonitoringError("no polling cycles have run")
        s = self.summaries[-1]
        lines = [
            f"=== Ganglia: {self.cluster_name} "
            f"(t={s.timestamp_s:.0f}s, {s.hosts_up}/{s.hosts_total} up) ===",
            f"load {s.load_total:.1f}/{s.total_cores} cores "
            f"({s.load_fraction:.0%}); mem free "
            f"{s.mem_free_kb / 1024 / 1024:.1f}/{s.mem_total_kb / 1024 / 1024:.1f} GiB; "
            f"failed services: {s.failed_services}",
            "",
            f"{'host':<18}{'up':>4}{'load':>8}{'cpus':>6}{'pkgs':>7}{'fail':>6}",
        ]
        for name in self.hosts():
            row = {
                metric: self.rrd_for(name, metric).latest()
                for metric in ("powered_on", "load_one", "cpu_num", "pkg_count", "svc_failed")
            }
            if name in self._dead:
                up = "DEAD"
            elif row["powered_on"] and row["powered_on"].value > 0.5:
                up = "yes"
            else:
                up = "NO"
            lines.append(
                f"{name:<18}{up:>4}"
                f"{row['load_one'].value if row['load_one'] else 0:>8.1f}"
                f"{row['cpu_num'].value if row['cpu_num'] else 0:>6.0f}"
                f"{row['pkg_count'].value if row['pkg_count'] else 0:>7.0f}"
                f"{row['svc_failed'].value if row['svc_failed'] else 0:>6.0f}"
            )
        return "\n".join(lines)

"""Stampede-mini: the XSEDE reference cluster.

Section 2 pins "current best practices" to "the current Stampede system":
XCBC's whole point is that a campus cluster *runs alike* it.  This module
builds a scaled-down Stampede — Sandy Bridge rack nodes, SLURM, the full
run-alike catalogue plus grid services — so compatibility can be audited
against a live reference instead of a static list, and the campus-bridging
examples have a real far end for job scripts and data.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.packages_xsede import xsede_packages
from ..core.machines import ExistingCluster, build_existing_cluster
from ..distro.distribution import CENTOS_6_5
from ..errors import ReproError
from ..hardware.chassis import ChassisModel, populate
from ..hardware.cooling import CoolerModel
from ..hardware.cpu import XEON_E5_2670
from ..hardware.memory import DDR3_8G_UDIMM
from ..hardware.motherboard import MotherboardModel
from ..hardware.nic import GIGE_ONBOARD
from ..hardware.node import NodeRole, assemble_node
from ..hardware.power import PsuModel
from ..hardware.storage import WD_RED_2TB
from ..rpm.package import Package
from ..rpm.transaction import Transaction

__all__ = ["build_stampede_mini"]

_SNB_BOARD = MotherboardModel(
    model="Stampede node board (LGA-2011)",
    form_factor="ATX",
    socket="LGA-2011",
    dimm_slots=8,
    msata_slots=0,
    sata_ports=4,
    nics=(GIGE_ONBOARD, GIGE_ONBOARD),
    cpu_clearance_mm=90.0,
    power_watts=35.0,
    price_usd=500.0,
)

_SNB_COOLER = CoolerModel(
    model="Stampede 2U cooler", height_mm=70.0, max_tdp_watts=160.0,
    power_watts=8.0, price_usd=30.0,
)

_SNB_PSU = PsuModel(
    model="Stampede node PSU", rating_watts=1400.0, efficiency=0.93,
    price_usd=250.0,
)

#: SLURM as the reference scheduler (Stampede ran SLURM).
_SLURM_STACK = (
    Package(
        name="slurm",
        version="14.03.0",
        category="vendor",
        summary="SLURM workload manager",
        commands=("sbatch", "squeue", "scancel", "sinfo", "srun"),
        services=("slurmctld", "slurmd"),
    ),
    Package(
        name="munge",
        version="0.5.11",
        category="vendor",
        summary="MUNGE auth",
        services=("munged",),
    ),
    # Stampede fronts its software through environment modules, same as the
    # Rocks base roll does on campus clusters.
    Package(
        name="modules",
        version="3.2.10",
        category="vendor",
        summary="Environment modules",
        commands=("module", "modulecmd"),
    ),
)


def build_stampede_mini(name: str = "stampede-mini", *, nodes: int = 8) -> ExistingCluster:
    """A scaled Stampede: E5-2670 nodes, SLURM, the full run-alike stack.

    ``nodes`` includes the login (frontend) node.  Every node carries the
    whole Table 2 catalogue (XSEDE installs it everywhere) plus the grid
    services on the login node — making the cluster a valid far end for
    GridFTP/GFFS and a 100 %-scoring audit reference.
    """
    if nodes < 2:
        raise ReproError("stampede-mini needs at least a login and one compute node")
    rack = ChassisModel(
        model="Stampede rack (scaled)",
        slots=nodes,
        max_board_form_factor="ATX",
        weight_lb=40.0 * nodes,
        portable=False,
        shared_psu=None,
        price_usd=2000.0,
    )
    built = [
        assemble_node(
            f"{name}-{'login' if i == 0 else f'c{i:03d}'}",
            role=NodeRole.FRONTEND if i == 0 else NodeRole.COMPUTE,
            board=_SNB_BOARD,
            cpu=XEON_E5_2670,
            dimms=(DDR3_8G_UDIMM,) * 4,
            storage=(WD_RED_2TB,),
            cooler=_SNB_COOLER,
            psu=_SNB_PSU,
        )
        for i in range(nodes)
    ]
    machine = populate(name, rack, built)
    cluster = build_existing_cluster(
        machine, release=CENTOS_6_5, vendor_packages=_SLURM_STACK
    )
    # XSEDE installs its software everywhere; grid endpoints on the login node.
    for host in cluster.hosts():
        db = cluster.client_for(host).db
        txn = Transaction(db)
        for pkg in xsede_packages():
            if pkg.category == "Scheduler and Resource Manager":
                continue  # SLURM site: no torque/maui
            if pkg.category == "XSEDE Tools" and host is not cluster.frontend:
                continue
            if not db.has(pkg.name):
                txn.install(pkg)
        if not txn.is_empty:
            txn.commit()
    return cluster

"""insert-ethers: Rocks' node-discovery tool.

The administrator runs ``insert-ethers`` on the frontend, powers compute
nodes on one at a time, and each unknown MAC seen by dhcpd gets registered
as the next ``compute-<rack>-<rank>`` appliance and handed the install
image.  This module reproduces that loop against the simulated DHCP/PXE
services.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RocksError
from ..network.dhcp import DhcpServer
from ..network.pxe import BootImage, PxeServer
from .database import HostRecord, InstallState, RocksDatabase

__all__ = ["InsertEthers"]


@dataclass
class InsertEthers:
    """The discovery session.

    Parameters mirror the real tool: the appliance type being inserted
    (compute by default) and the rack the nodes are in.
    """

    db: RocksDatabase
    dhcp: DhcpServer
    pxe: PxeServer
    rack: int = 0
    appliance: str = "compute"
    discovered: list[HostRecord] = field(default_factory=list)

    def poll(self) -> list[HostRecord]:
        """One pass over the DHCP log: register every unknown MAC.

        Returns the newly registered records (possibly empty).  Mirrors the
        tool's behaviour of assigning names in the order MACs first appear.
        """
        new_records: list[HostRecord] = []
        for mac in self.dhcp.unknown_macs(self.db.known_macs()):
            name = self.db.next_compute_name(self.rack)
            lease = self.dhcp.offer(mac, hostname=name)
            rank = int(name.rsplit("-", 1)[1])
            record = HostRecord(
                name=name,
                mac=mac,
                ip=lease.ip,
                appliance=self.appliance,
                rack=self.rack,
                rank=rank,
                state=InstallState.DISCOVERED,
            )
            self.db.add_host(record)
            new_records.append(record)
            self.discovered.append(record)
        return new_records

    def discover_boot(self, mac: str) -> HostRecord:
        """Drive one node's full discovery: PXE boot then register.

        Raises :class:`RocksError` if the MAC is already known (re-running
        insert-ethers against an installed node is an operator error the
        real tool also refuses).
        """
        if self.db.has_mac(mac):
            raise RocksError(f"MAC {mac} is already registered")
        self.pxe.boot(mac)
        records = self.poll()
        for record in records:
            if record.mac == mac:
                return record
        raise RocksError(f"discovery failed for MAC {mac}")  # pragma: no cover

"""Motherboard models.

Two boards carry the paper's narrative:

* The historical LittleFe system-on-board Atom mini-ITX boards (CPU soldered,
  no mSATA, single NIC).
* The Gigabyte **GA-Q87TN** (Section 5.1, ref [28]): mini-ITX, LGA-1150,
  dual NIC, on-board mSATA — the board that makes the modified LittleFe
  possible (socketed Haswell CPUs, a drive per node for Rocks, and a
  dual-homed head node with no add-in card).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import CatalogError
from .nic import NicModel, GIGE_ONBOARD, FASTE_ONBOARD

__all__ = [
    "MotherboardModel",
    "GA_Q87TN",
    "LITTLEFE_ATOM_BOARD",
    "LIMULUS_NODE_BOARD",
    "BOARD_CATALOG",
    "get_board",
]


@dataclass(frozen=True)
class MotherboardModel:
    """A motherboard SKU.

    ``socket`` of ``None`` means the CPU is soldered on (system-on-board);
    such a board has an implied CPU and refuses socketed CPU installs.
    ``cpu_clearance_mm`` is the vertical space above the CPU socket available
    for a cooler once the board sits in its chassis slot; the LittleFe frame
    allots very little, which is why the stock Celeron fan does not fit
    (Section 5.1) and the build uses a low-profile cooler.
    """

    model: str
    form_factor: str  # "mini-ITX", "ATX", ...
    socket: str | None
    dimm_slots: int
    msata_slots: int
    sata_ports: int
    nics: tuple[NicModel, ...]
    cpu_clearance_mm: float
    power_watts: float  # chipset + VRM overhead
    price_usd: float

    def __post_init__(self) -> None:
        if self.dimm_slots <= 0:
            raise CatalogError(f"board {self.model} has no DIMM slots")
        if not self.nics:
            raise CatalogError(f"board {self.model} has no NICs")

    @property
    def nic_count(self) -> int:
        """Number of on-board network interfaces."""
        return len(self.nics)

    @property
    def dual_homed_capable(self) -> bool:
        """True if the board alone can serve as a dual-homed head node."""
        return self.nic_count >= 2


#: The modified-LittleFe board: mini-ITX, LGA-1150, dual GigE, mSATA on-board.
GA_Q87TN = MotherboardModel(
    model="Gigabyte GA-Q87TN",
    form_factor="mini-ITX",
    socket="LGA-1150",
    dimm_slots=2,
    msata_slots=1,
    sata_ports=4,
    nics=(GIGE_ONBOARD, GIGE_ONBOARD),
    cpu_clearance_mm=47.0,  # LittleFe shelf pitch leaves ~47 mm above socket
    power_watts=12.0,
    price_usd=165.0,  # Q87 thin-mini-ITX boards carried a premium in 2015
)

#: Historical LittleFe v4 board: Atom D510 soldered on, single NIC, no mSATA.
LITTLEFE_ATOM_BOARD = MotherboardModel(
    model="Intel D510MO (Atom SoC board)",
    form_factor="mini-ITX",
    socket=None,
    dimm_slots=2,
    msata_slots=0,
    sata_ports=2,
    nics=(GIGE_ONBOARD,),
    cpu_clearance_mm=25.0,
    power_watts=8.0,
    price_usd=80.0,
)

#: Limulus HPC200 node board (LGA-1150 micro-ATX; diskless compute design).
LIMULUS_NODE_BOARD = MotherboardModel(
    model="Limulus node board (LGA-1150)",
    form_factor="micro-ATX",
    socket="LGA-1150",
    dimm_slots=4,
    msata_slots=0,
    sata_ports=4,
    nics=(GIGE_ONBOARD, GIGE_ONBOARD),
    cpu_clearance_mm=70.0,  # deskside case: stock coolers fit
    power_watts=15.0,
    price_usd=150.0,
)

BOARD_CATALOG: dict[str, MotherboardModel] = {
    b.model: b for b in (GA_Q87TN, LITTLEFE_ATOM_BOARD, LIMULUS_NODE_BOARD)
}


def get_board(model: str) -> MotherboardModel:
    """Look up a motherboard SKU, raising :class:`CatalogError` if unknown."""
    try:
        return BOARD_CATALOG[model]
    except KeyError:
        known = ", ".join(sorted(BOARD_CATALOG))
        raise CatalogError(f"unknown board model {model!r}; known: {known}") from None

"""Parallel-filesystem tests: striping arithmetic, capacity, bandwidth."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pfs import (
    LustreFs,
    PfsError,
    hawaii_storage,
    montana_hyalite_storage,
)


def small_fs(**kw):
    defaults = dict(
        ost_count=4,
        ost_capacity_bytes=100 * 1024**2,
        default_stripe_count=1,
    )
    defaults.update(kw)
    return LustreFs("testfs", **defaults)


class TestStriping:
    def test_single_stripe_lands_on_one_ost(self):
        fs = small_fs()
        record = fs.create("/scratch/a.dat", 10 * 1024**2)
        assert record.layout.stripe_count == 1
        charged = [o for o in fs.osts if o.used_bytes > 0]
        assert len(charged) == 1
        assert charged[0].used_bytes == 10 * 1024**2

    def test_wide_stripe_spreads_evenly(self):
        fs = small_fs()
        size = 8 * 1024**2  # 8 stripes of 1 MiB over 4 OSTs -> 2 MiB each
        record = fs.create("/scratch/wide.dat", size, stripe_count=4)
        for index in record.layout.ost_indices:
            assert record.chunk_bytes_on(index) == 2 * 1024**2

    def test_tail_remainder_distributed_correctly(self):
        fs = small_fs()
        size = 2 * 1024**2 + 512 * 1024  # 2.5 MiB over 2 stripes
        record = fs.create("/f", size, stripe_count=2)
        a, b = record.layout.ost_indices
        assert record.chunk_bytes_on(a) == 1 * 1024**2 + 512 * 1024
        assert record.chunk_bytes_on(b) == 1 * 1024**2
        assert record.chunk_bytes_on(99) == 0

    def test_round_robin_ost_selection(self):
        fs = small_fs()
        first = fs.create("/a", 1024).layout.ost_indices[0]
        second = fs.create("/b", 1024).layout.ost_indices[0]
        assert first != second

    def test_stripe_count_bounded_by_osts(self):
        fs = small_fs()
        with pytest.raises(PfsError, match="exceeds"):
            fs.create("/too-wide", 1024, stripe_count=5)

    @given(
        st.integers(min_value=0, max_value=50 * 1024**2),
        st.integers(min_value=1, max_value=4),
    )
    @settings(max_examples=50)
    def test_property_chunks_sum_to_file_size(self, size, stripes):
        fs = small_fs(ost_capacity_bytes=10**9)
        record = fs.create("/f", size, stripe_count=stripes)
        total = sum(record.chunk_bytes_on(i) for i in record.layout.ost_indices)
        assert total == size


class TestCapacity:
    def test_full_ost_rejects_even_when_fs_has_room(self):
        # the classic Lustre gotcha: single-stripe files on a full OST
        fs = small_fs(ost_count=2, ost_capacity_bytes=10 * 1024**2)
        fs.create("/big1", 10 * 1024**2, stripe_count=1)  # fills OST0
        fs.create("/big2", 10 * 1024**2, stripe_count=1)  # fills OST1
        assert fs.free_bytes == 0
        with pytest.raises(PfsError, match="full"):
            fs.create("/one-more", 1024, stripe_count=1)

    def test_failed_create_rolls_back_charges(self):
        fs = small_fs(ost_count=2, ost_capacity_bytes=10 * 1024**2)
        fs.create("/filler", 18 * 1024**2, stripe_count=2)  # 9 MiB each
        used_before = fs.used_bytes
        with pytest.raises(PfsError):
            fs.create("/too-big", 4 * 1024**2, stripe_count=2)  # 2 MiB each > 1 free
        assert fs.used_bytes == used_before

    def test_unlink_releases(self):
        fs = small_fs()
        fs.create("/f", 5 * 1024**2)
        fs.unlink("/f")
        assert fs.used_bytes == 0
        with pytest.raises(PfsError):
            fs.unlink("/f")

    def test_duplicate_path_rejected(self):
        fs = small_fs()
        fs.create("/f", 1)
        with pytest.raises(PfsError, match="exists"):
            fs.create("/f", 1)

    def test_df_renders(self):
        fs = small_fs()
        fs.create("/f", 1024**2)
        text = fs.df()
        assert "testfs-OST0000" in text and "total" in text


class TestBandwidth:
    def test_wider_stripes_faster_with_many_clients(self):
        fs = small_fs(ost_capacity_bytes=10**9)
        fs.create("/narrow", 10**8, stripe_count=1)
        fs.create("/wide", 10**8, stripe_count=4)
        assert fs.io_time_s("/wide", clients=8) < fs.io_time_s("/narrow", clients=8)

    def test_single_client_capped_by_its_link(self):
        fs = small_fs(ost_capacity_bytes=10**9)
        fs.create("/wide", 10**8, stripe_count=4)
        # one GigE client cannot exceed its own NIC no matter the stripes
        expected = 10**8 / 117.5e6
        assert fs.io_time_s("/wide", clients=1) == pytest.approx(expected)

    def test_offline_ost_degrades_then_fails(self):
        fs = small_fs(ost_capacity_bytes=10**9)
        record = fs.create("/f", 10**8, stripe_count=2)
        healthy = fs.io_time_s("/f", clients=16)
        fs.set_ost_online(record.layout.ost_indices[0], False)
        degraded = fs.io_time_s("/f", clients=16)
        assert degraded > healthy
        fs.set_ost_online(record.layout.ost_indices[1], False)
        with pytest.raises(PfsError, match="offline"):
            fs.io_time_s("/f", clients=16)


class TestTable3Storage:
    def test_montana_300tb(self):
        fs = montana_hyalite_storage()
        assert fs.capacity_bytes == 300 * 10**12

    def test_hawaii_40_plus_60(self):
        persistent, scratch = hawaii_storage()
        assert persistent.capacity_bytes == 40 * 10**12
        assert scratch.capacity_bytes == 60 * 10**12
        # scratch defaults to wide striping: built for bandwidth
        assert scratch.default_stripe_count > persistent.default_stripe_count

    def test_montana_can_hold_a_research_dataset(self):
        fs = montana_hyalite_storage()
        fs.create("/hyalite/genomes/run42.fastq", 2 * 10**12, stripe_count=8)
        assert fs.used_bytes == 2 * 10**12
        # 16 GigE clients reading it: OST bandwidth is not the bottleneck
        assert fs.io_time_s("/hyalite/genomes/run42.fastq", clients=16) > 0

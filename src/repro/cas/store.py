"""The deduplicated chunk store: content keyed by digest, retention by refcount.

A :class:`ChunkStore` holds chunks under their sha256 digest — storing the
same chunk twice is free, which is the whole point: adjacent RPM versions
share most of their chunks, so a store holding v1 gains only the delta
when v2 lands.

Two kinds of presence are tracked separately:

* **content** (``has`` / ``missing_of``) — the digest is physically here.
  ``missing_of`` is the transfer-delta query every sync and lazy fetch is
  built on: *what do I not already hold?*
* **retention** (``retain`` / ``release``) — a catalog generation pins the
  chunk.  Chunks at refcount zero are *cache*: still servable, but
  :meth:`gc` may evict them.  Retention is how transactional publish and
  rollback compose with garbage collection — a rolled-back generation
  releases its pins and the chunks it alone referenced become collectable,
  never dangling.

:meth:`refcount_problems` is the leak audit the chaos harness runs: it
recomputes the expected refcounts from the live catalog generations and
reports any drift (the classic symptom of a publish/rollback path that
forgot a release).
"""

from __future__ import annotations

from typing import Iterable

from ..errors import CasError, CasIntegrityError
from .chunks import Chunk, PackageManifest

__all__ = ["ChunkStore"]


class ChunkStore:
    """One tier's chunk holdings: digest -> size, plus catalog refcounts."""

    def __init__(self, name: str = "store") -> None:
        self.name = name
        #: digest -> chunk size; content presence (cache + retained alike)
        self._chunks: dict[str, int] = {}
        #: digest -> number of catalog generations pinning the chunk
        self._refs: dict[str, int] = {}

    # -- content ---------------------------------------------------------------

    def put(self, chunk: Chunk) -> bool:
        """Store one chunk; returns True if it was new (dedup hit = False)."""
        known = self._chunks.get(chunk.digest)
        if known is not None:
            if known != chunk.size:
                raise CasIntegrityError(
                    f"store {self.name}: digest {chunk.short} seen with two "
                    f"sizes ({known} and {chunk.size}) — corrupted content"
                )
            return False
        self._chunks[chunk.digest] = chunk.size
        return True

    def has(self, digest: str) -> bool:
        return digest in self._chunks

    def size_of(self, digest: str) -> int:
        size = self._chunks.get(digest)
        if size is None:
            raise CasError(f"store {self.name}: unknown chunk {digest[:12]}")
        return size

    def missing_of(self, chunks: Iterable[Chunk]) -> list[Chunk]:
        """The chunks not yet held — the transfer delta, order-preserving.

        Duplicates within the request count once (they would land with the
        first copy).
        """
        seen: set[str] = set()
        out: list[Chunk] = []
        for chunk in chunks:
            if chunk.digest not in self._chunks and chunk.digest not in seen:
                seen.add(chunk.digest)
                out.append(chunk)
        return out

    # -- retention -------------------------------------------------------------

    def retain(self, manifest: PackageManifest) -> None:
        """Pin a manifest's chunks (+1 each) on behalf of a catalog."""
        refs = self._refs
        for chunk in manifest.chunks:
            self.put(chunk)
            refs[chunk.digest] = refs.get(chunk.digest, 0) + 1

    def release(self, manifest: PackageManifest) -> None:
        """Drop one catalog's pin on a manifest's chunks."""
        refs = self._refs
        for chunk in manifest.chunks:
            count = refs.get(chunk.digest, 0)
            if count <= 0:
                raise CasError(
                    f"store {self.name}: release of unretained chunk "
                    f"{chunk.short} (manifest {manifest.nevra}) — refcount "
                    f"would go negative"
                )
            if count == 1:
                del refs[chunk.digest]
            else:
                refs[chunk.digest] = count - 1

    def refcount(self, digest: str) -> int:
        return self._refs.get(digest, 0)

    def gc(self) -> tuple[int, int]:
        """Evict every unpinned chunk; returns (chunks evicted, bytes freed)."""
        refs = self._refs
        evicted = [d for d in self._chunks if d not in refs]
        freed = 0
        for digest in evicted:
            freed += self._chunks.pop(digest)
        return len(evicted), freed

    # -- accounting ------------------------------------------------------------

    @property
    def chunk_count(self) -> int:
        return len(self._chunks)

    @property
    def total_bytes(self) -> int:
        """Deduplicated bytes held (each unique chunk counted once)."""
        return sum(self._chunks.values())

    def bytes_missing_of(self, chunks: Iterable[Chunk]) -> int:
        return sum(c.size for c in self.missing_of(chunks))

    # -- audit -----------------------------------------------------------------

    def refcount_problems(
        self, live_manifests: Iterable[PackageManifest]
    ) -> list[str]:
        """Drift between actual refcounts and the live catalog generations.

        ``live_manifests`` is every manifest of every retained generation
        (one entry per generation that references it).  Empty list = clean.
        """
        expected: dict[str, int] = {}
        for manifest in live_manifests:
            for chunk in manifest.chunks:
                expected[chunk.digest] = expected.get(chunk.digest, 0) + 1
        problems = []
        for digest in sorted(set(expected) | set(self._refs)):
            want = expected.get(digest, 0)
            have = self._refs.get(digest, 0)
            if want != have:
                problems.append(
                    f"store {self.name}: chunk {digest[:12]} refcount {have}, "
                    f"expected {want} from live catalogs"
                )
            if want and digest not in self._chunks:
                problems.append(
                    f"store {self.name}: chunk {digest[:12]} retained but "
                    f"content is missing"
                )
        return problems

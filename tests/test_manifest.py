"""Cluster-manifest tests: capture, round-trip, and structural diff."""

import pytest

from repro.core import (
    ClusterManifest,
    build_limulus_cluster,
    build_xnit_repository,
    integrate_host,
    manifest_of_cluster,
    setup_via_repo_rpm,
)
from repro.errors import ReproError


class TestCapture:
    def test_provisioned_cluster_capture(self, xcbc_littlefe):
        manifest = manifest_of_cluster(xcbc_littlefe.cluster)
        assert len(manifest.hosts) == 6
        fe = manifest.host("littlefe-iu-n0")
        assert fe.arch == "x86_64"
        assert fe.release == "CentOS 6.5"
        assert any(p.startswith("gromacs-") for p in fe.packages)
        assert "pbs_server" in fe.enabled_services

    def test_existing_cluster_capture(self, xnit_limulus):
        manifest = manifest_of_cluster(xnit_limulus)
        assert len(manifest.hosts) == 4
        assert any(
            p.startswith("limulus-manage")
            for p in manifest.host("limulus-hpc200-n0").packages
        )

    def test_uniform_packages(self, xcbc_littlefe):
        manifest = manifest_of_cluster(xcbc_littlefe.cluster)
        uniform = manifest.uniform_packages()
        assert any(p.startswith("gromacs-") for p in uniform)
        # grid services are frontend-only, so not uniform
        assert not any(p.startswith("globus-connect-server") for p in uniform)

    def test_unknown_cluster_shape_rejected(self):
        with pytest.raises(ReproError, match="manifest"):
            manifest_of_cluster(object())

    def test_unknown_host_rejected(self, xcbc_littlefe):
        manifest = manifest_of_cluster(xcbc_littlefe.cluster)
        with pytest.raises(ReproError, match="no host"):
            manifest.host("ghost")


class TestRoundTripAndDiff:
    def test_json_roundtrip(self, xcbc_littlefe):
        manifest = manifest_of_cluster(xcbc_littlefe.cluster)
        again = ClusterManifest.from_json(manifest.to_json())
        assert again.diff(manifest) == {}
        assert manifest.diff(again) == {}

    def test_malformed_json_rejected(self):
        with pytest.raises(ReproError, match="malformed"):
            ClusterManifest.from_json("[]")

    def test_diff_flags_package_drift(self, xcbc_littlefe):
        manifest = manifest_of_cluster(xcbc_littlefe.cluster)
        mutated = ClusterManifest.from_json(manifest.to_json())
        # simulate drift: compute-0-0 lost a package
        target = mutated.host("compute-0-0")
        trimmed = tuple(p for p in target.packages if not p.startswith("gromacs-"))
        mutated.hosts[mutated.hosts.index(target)] = target.__class__(
            hostname=target.hostname,
            arch=target.arch,
            release=target.release,
            packages=trimmed,
            enabled_services=target.enabled_services,
            modules=target.modules,
            mounts=target.mounts,
        )
        delta = manifest.diff(mutated)
        assert list(delta) == ["compute-0-0: packages"]
        assert delta["compute-0-0: packages"][0].startswith("+gromacs-")

    def test_diff_flags_missing_host(self, xcbc_littlefe):
        manifest = manifest_of_cluster(xcbc_littlefe.cluster)
        smaller = ClusterManifest.from_json(manifest.to_json())
        smaller.hosts.pop()
        delta = manifest.diff(smaller)
        assert "hosts_only_here" in delta

    def test_two_integration_paths_match_on_runalike(self, xcbc_littlefe, xnit_limulus):
        """Manifests make the convergence claim auditable from records
        alone: the run-alike NEVRAs agree across the two build paths."""
        a = manifest_of_cluster(xcbc_littlefe.cluster)
        b = manifest_of_cluster(xnit_limulus)
        from repro.core import xsede_package_names

        runalike = set(xsede_package_names())
        nevras_a = {
            p for p in a.host("littlefe-iu-n0").packages
            if p.rsplit("-", 2)[0] in runalike
        }
        nevras_b = {
            p for p in b.host("limulus-hpc200-n0").packages
            if p.rsplit("-", 2)[0] in runalike
        }
        assert nevras_a == nevras_b

"""Analyzer pass tests: every rule code gets a trigger (a definition broken
in exactly that way) and a clean counterpart (the same shape, fixed)."""

from dataclasses import replace

import pytest

from repro.analyze import ClusterDefinition, HardwarePlan, Severity, analyze
from repro.hardware.power import PICO_PSU_80, PsuModel
from repro.network.dhcp import DhcpPlan
from repro.rocks import GraphNode, KickstartGraph, Profile, Roll, RollGraphFragment
from repro.rpm import Package, Requirement
from repro.scheduler import QueueConfig, default_queue_for
from repro.yum import Repository
from repro.yum.repoconfig import RepoStanza


def codes_of(definition):
    return analyze(definition).codes()


def base_graph():
    g = KickstartGraph()
    g.add_node(GraphNode(Profile.FRONTEND))
    g.add_node(GraphNode(Profile.COMPUTE))
    return g


def stanza(repo_id, **kw):
    kw.setdefault("name", repo_id)
    kw.setdefault("baseurl", f"http://repo/{repo_id}/")
    return RepoStanza(repo_id=repo_id, **kw)


# -- kickstart (KS1xx) -------------------------------------------------------


class TestKickstartPass:
    def test_ks101_cycle(self):
        g = base_graph()
        g.add_node(GraphNode("a"))
        g.add_node(GraphNode("b"))
        g.add_edge(Profile.FRONTEND, "a")
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        result = analyze(ClusterDefinition(name="t", graph=g))
        assert "KS101" in result.codes()
        assert result.errors

    def test_ks102_unreachable_node(self):
        g = base_graph()
        g.add_node(GraphNode("orphan", packages=["lost"]))
        assert "KS102" in codes_of(ClusterDefinition(name="t", graph=g))

    def test_ks103_roll_package_unreferenced(self):
        g = base_graph()
        roll = Roll(
            name="r", version="1", summary="s",
            packages=(Package(name="ghost", version="1.0"),),
            fragments=(),
        )
        assert "KS103" in codes_of(
            ClusterDefinition(name="t", graph=g, rolls=(roll,))
        )

    def test_ks104_duplicate_post_action(self):
        g = base_graph()
        g.add_node(GraphNode("a", post_actions=["sync users"]))
        g.add_node(GraphNode("b", post_actions=["sync users"]))
        g.add_edge(Profile.FRONTEND, "a")
        g.add_edge(Profile.FRONTEND, "b")
        assert "KS104" in codes_of(ClusterDefinition(name="t", graph=g))

    def test_ks105_missing_profile_root(self):
        g = KickstartGraph()
        g.add_node(GraphNode(Profile.FRONTEND))
        result = analyze(ClusterDefinition(name="t", graph=g))
        assert "KS105" in result.codes()
        assert any(Profile.COMPUTE in d.message for d in result.errors)

    def test_clean_graph_no_kickstart_findings(self):
        g = base_graph()
        roll = Roll(
            name="r", version="1", summary="s",
            packages=(Package(name="tool", version="1.0"),),
            fragments=(
                RollGraphFragment(node_name="r-node", packages=("tool",)),
            ),
        )
        roll.apply_to_graph(g)
        result = analyze(ClusterDefinition(name="t", graph=g, rolls=(roll,)))
        assert not {c for c in result.codes() if c.startswith("KS")}

    def test_cycle_suppresses_closure_checks(self):
        g = base_graph()
        g.add_node(GraphNode("a", post_actions=["x", "x"]))
        g.add_edge(Profile.FRONTEND, "a")
        g.add_edge("a", Profile.FRONTEND)
        result = analyze(ClusterDefinition(name="t", graph=g))
        assert "KS101" in result.codes()
        assert "KS104" not in result.codes()


# -- yum repo configuration (RC2xx) ------------------------------------------


class TestRepoPass:
    def test_rc201_duplicate_id(self):
        definition = ClusterDefinition(
            name="t",
            repo_stanzas=(stanza("xsede"),),
            repositories=(Repository("xsede"),),
        )
        assert "RC201" in codes_of(definition)

    def test_rc202_priority_shadowing(self):
        os_repo = Repository("base", priority=10)
        os_repo.add(Package(name="torque", version="4.0"))
        updates = Repository("updates", priority=50)
        updates.add(Package(name="torque", version="4.2"))
        result = analyze(
            ClusterDefinition(name="t", repositories=(os_repo, updates))
        )
        assert "RC202" in result.codes()
        shadowed = [d for d in result.diagnostics if d.code == "RC202"]
        assert "updates" in shadowed[0].message

    def test_rc202_not_fired_when_best_tier_is_newest(self):
        os_repo = Repository("base", priority=10)
        os_repo.add(Package(name="torque", version="4.2"))
        updates = Repository("updates", priority=50)
        updates.add(Package(name="torque", version="4.0"))
        assert "RC202" not in codes_of(
            ClusterDefinition(name="t", repositories=(os_repo, updates))
        )

    def test_rc203_required_repo_missing(self):
        definition = ClusterDefinition(name="t", required_repo_ids=("xsede",))
        assert "RC203" in codes_of(definition)

    def test_rc203_required_repo_disabled(self):
        definition = ClusterDefinition(
            name="t",
            repo_stanzas=(stanza("xsede", enabled=False),),
            required_repo_ids=("xsede",),
        )
        result = analyze(definition)
        assert "RC203" in result.codes()
        assert "disabled" in result.errors[0].message

    def test_rc204_gpgcheck_off_is_info(self):
        result = analyze(
            ClusterDefinition(name="t", repo_stanzas=(stanza("xsede"),))
        )
        assert "RC204" in result.codes()
        assert result.infos and not result.errors

    def test_rc205_priority_out_of_range(self):
        definition = ClusterDefinition(
            name="t", repo_stanzas=(stanza("xsede", priority=0),)
        )
        assert "RC205" in codes_of(definition)

    def test_clean_repo_config(self):
        definition = ClusterDefinition(
            name="t",
            repo_stanzas=(stanza("xsede", gpgcheck=True, priority=50),),
            required_repo_ids=("xsede",),
        )
        assert analyze(definition).is_clean


# -- rpm metadata (RPM3xx) ---------------------------------------------------


class TestRpmPass:
    def test_rpm301_unsatisfiable_requires(self):
        pkg = Package(
            name="app", version="1.0", requires=(Requirement("libmissing"),)
        )
        assert "RPM301" in codes_of(ClusterDefinition(name="t", packages=(pkg,)))

    def test_rpm302_profile_conflict(self):
        g = base_graph()
        g.add_node(GraphNode("sched", packages=["torque", "slurm"]))
        g.add_edge(Profile.FRONTEND, "sched")
        packages = (
            Package(name="torque", version="4.0", conflicts=(Requirement("slurm"),)),
            Package(name="slurm", version="14.0"),
        )
        result = analyze(
            ClusterDefinition(name="t", graph=g, packages=packages)
        )
        assert "RPM302" in result.codes()

    def test_rpm302_no_conflict_when_profiles_split(self):
        g = base_graph()
        g.add_node(GraphNode("fe-sched", packages=["torque"]))
        g.add_node(GraphNode("c-sched", packages=["slurm"]))
        g.add_edge(Profile.FRONTEND, "fe-sched")
        g.add_edge(Profile.COMPUTE, "c-sched")
        packages = (
            Package(name="torque", version="4.0", conflicts=(Requirement("slurm"),)),
            Package(name="slurm", version="14.0"),
        )
        assert "RPM302" not in codes_of(
            ClusterDefinition(name="t", graph=g, packages=packages)
        )

    def test_rpm303_dangling_obsoletes(self):
        pkg = Package(
            name="new-tool", version="2.0", obsoletes=(Requirement("old-tool"),)
        )
        result = analyze(ClusterDefinition(name="t", packages=(pkg,)))
        assert "RPM303" in result.codes()
        assert result.warnings and not result.errors

    def test_clean_self_contained_universe(self):
        packages = (
            Package(name="lib", version="1.0"),
            Package(name="app", version="1.0", requires=(Requirement("lib"),)),
        )
        assert analyze(ClusterDefinition(name="t", packages=packages)).is_clean


# -- network (NET4xx) --------------------------------------------------------


class TestNetworkPass:
    def test_net401_pool_exhaustion(self):
        definition = ClusterDefinition(
            name="t",
            dhcp_plan=DhcpPlan(pool_start=10, pool_end=11),
            macs=("aa:00", "aa:01", "aa:02"),
        )
        assert "NET401" in codes_of(definition)

    def test_net402_duplicate_mac(self):
        definition = ClusterDefinition(
            name="t",
            dhcp_plan=DhcpPlan(),
            macs=("aa:00", "aa:00"),
        )
        assert "NET402" in codes_of(definition)

    def test_net403_pool_covers_frontend(self):
        definition = ClusterDefinition(
            name="t", dhcp_plan=DhcpPlan(pool_start=1, pool_end=100)
        )
        result = analyze(definition)
        assert "NET403" in result.codes()
        assert result.warnings

    def test_net404_invalid_bounds(self):
        definition = ClusterDefinition(
            name="t", dhcp_plan=DhcpPlan(pool_start=40, pool_end=20)
        )
        result = analyze(definition)
        assert "NET404" in result.codes()
        # Invalid bounds stop the dependent pool checks.
        assert "NET401" not in result.codes()

    def test_clean_network_plan(self):
        definition = ClusterDefinition(
            name="t",
            dhcp_plan=DhcpPlan(),
            macs=("aa:00", "aa:01"),
        )
        assert analyze(definition).is_clean


# -- scheduler (SCH5xx) ------------------------------------------------------


class TestSchedulerPass:
    def test_sch501_unknown_node(self, littlefe_machine):
        definition = ClusterDefinition(
            name="t",
            machine=littlefe_machine,
            queues=(QueueConfig(name="batch", node_names=("compute-99",)),),
        )
        assert "SCH501" in codes_of(definition)

    def test_sch502_core_overcommit(self, littlefe_machine):
        queue = default_queue_for(littlefe_machine)
        bloated = replace(queue, max_cores_per_job=queue.max_cores_per_job + 1)
        definition = ClusterDefinition(
            name="t", machine=littlefe_machine, queues=(bloated,)
        )
        assert "SCH502" in codes_of(definition)

    def test_sch503_empty_queue(self):
        definition = ClusterDefinition(
            name="t", queues=(QueueConfig(name="batch"),)
        )
        result = analyze(definition)
        assert "SCH503" in result.codes()
        assert result.warnings

    def test_clean_default_queue(self, littlefe_machine):
        definition = ClusterDefinition(
            name="t",
            machine=littlefe_machine,
            queues=(default_queue_for(littlefe_machine),),
        )
        assert not {
            c for c in analyze(definition).codes() if c.startswith("SCH")
        }


# -- hardware (HW6xx) --------------------------------------------------------


class TestHardwarePass:
    def shared_plan(self, machine, psu):
        nodes = tuple(replace(n, psu=None) for n in machine.nodes)
        return HardwarePlan(chassis=machine.chassis, nodes=nodes, shared_psu=psu)

    def test_hw601_budget_blown(self, littlefe_machine):
        plan = self.shared_plan(littlefe_machine, PICO_PSU_80)
        result = analyze(ClusterDefinition(name="t", hardware_plan=plan))
        assert "HW601" in result.codes()
        assert result.errors

    def test_hw602_thin_margin(self, littlefe_machine):
        draw = sum(n.draw_watts for n in littlefe_machine.nodes)
        tight = PsuModel(
            "tight-psu", rating_watts=draw * 1.2 / 0.95,
            efficiency=0.9, price_usd=1.0,
        )
        plan = self.shared_plan(littlefe_machine, tight)
        result = analyze(ClusterDefinition(name="t", hardware_plan=plan))
        assert "HW602" in result.codes()
        assert "HW601" not in result.codes()

    def test_hw603_psu_arrangement_conflict(self, littlefe_machine):
        # Nodes keep their own PSUs *and* the plan declares a shared one.
        plan = HardwarePlan(
            chassis=littlefe_machine.chassis,
            nodes=tuple(littlefe_machine.nodes),
            shared_psu=PsuModel("big", rating_watts=2000, efficiency=0.9,
                                price_usd=100.0),
        )
        assert "HW603" in codes_of(ClusterDefinition(name="t", hardware_plan=plan))

    def test_hw603_missing_psu(self, littlefe_machine):
        nodes = tuple(replace(n, psu=None) for n in littlefe_machine.nodes)
        plan = HardwarePlan(chassis=littlefe_machine.chassis, nodes=nodes)
        assert "HW603" in codes_of(ClusterDefinition(name="t", hardware_plan=plan))

    def test_hw604_slot_overcommit(self, littlefe_machine):
        plan = HardwarePlan(
            chassis=littlefe_machine.chassis,
            nodes=tuple(littlefe_machine.nodes) * 2,
        )
        assert "HW604" in codes_of(ClusterDefinition(name="t", hardware_plan=plan))

    def test_hw605_no_frontend(self, littlefe_machine):
        plan = HardwarePlan(
            chassis=littlefe_machine.chassis,
            nodes=tuple(littlefe_machine.compute_nodes),
        )
        assert "HW605" in codes_of(ClusterDefinition(name="t", hardware_plan=plan))

    def test_clean_real_machines(self, littlefe_machine, limulus_machine):
        for machine in (littlefe_machine, limulus_machine):
            definition = ClusterDefinition(name="t", machine=machine)
            assert not {
                c for c in analyze(definition).codes() if c.startswith("HW")
            }, machine.name


# -- empty definitions -------------------------------------------------------


def test_empty_definition_is_clean():
    result = analyze(ClusterDefinition(name="nothing"))
    assert result.is_clean
    assert result.exit_code == 0

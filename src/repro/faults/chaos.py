"""The chaos harness: replay a fault plan against a whole cluster stack.

One :class:`ChaosWorld` builds a machine (LittleFe or Limulus), a Maui
scheduler, a Ganglia monitoring mesh, an XSEDE repo mirror, and a
self-healing supervisor on a single seeded kernel; schedules a
deterministic workload and the plan's faults as kernel events; runs
everything to quiescence one ``step()`` at a time; and then audits an
invariant set instead of trusting that "it didn't crash" means "it
worked":

* **completion** — every submitted job ended COMPLETED or FAILED; nothing
  is stuck PENDING or phantom-RUNNING;
* **no event-queue leaks** — once the periodic sampler stops, the kernel
  queue is empty and the heap holds zero lazily-cancelled corpses;
* **no resource leaks** — every online node's free cores equal capacity;
* **trace integrity** — the JSONL validates against the event schema with
  strictly increasing sequence numbers;
* **monitoring confluence** — permanently crashed nodes are on gmetad's
  dead list by the end of the run (nodes the supervisor repaired are
  exempt: they came back, so staying off the dead list is correct);
* **rolling-update confluence** — a completed sweep leaves no node
  draining and no wave both succeeded and aborted;
* **repository-service confluence** — every ``repod.request`` reached a
  terminal state exactly once (vacuous unless the run drove
  :mod:`repro.repod`).

The world implements the checkpointable protocol of
:mod:`repro.recovery.checkpoint` — ``world_name`` / ``config`` /
``steps`` / ``step()`` / ``state_dict()`` / ``kernel`` — so a run can be
snapshotted at any driver-step boundary and resumed byte-identically
after a :class:`~repro.errors.HeadnodeCrashError` (the
``headnode.crash`` fault) kills the original process.

Determinism (same seed ⇒ byte-identical JSONL) is checked by the CLI
(``python -m repro.faults --check-determinism``) by running the whole
harness twice.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..distro.distribution import CENTOS_6_5
from ..distro.host import Host
from ..errors import FaultError, HeadnodeCrashError, RetryExhaustedError
from ..hardware.builder import build_limulus_hpc200, build_littlefe_modified
from ..monitoring.gmetad import Gmetad
from ..monitoring.gmond import Gmond
from ..recovery.checkpoint import register_world_factory
from ..recovery.journal import Journal
from ..recovery.supervisor import Supervisor
from ..rpm.package import Package
from ..scheduler.base import ClusterResources
from ..scheduler.job import Job, JobState
from ..scheduler.torque import MauiScheduler
from ..sim import SimKernel, validate_jsonl
from ..yum.mirror import MirrorLink, RepoMirror
from ..yum.repository import Repository
from .inject import FaultInjector
from .plan import FaultKind, FaultPlan, FaultSpec
from .retry import RetryPolicy

__all__ = [
    "ChaosReport",
    "ChaosRun",
    "ChaosWorld",
    "run_chaos",
    "demo_plan",
    "CLUSTERS",
]

#: Machines the harness can build, by name.
CLUSTERS = {
    "littlefe": lambda: build_littlefe_modified().machine,
    "limulus": lambda: build_limulus_hpc200().machine,
}

#: Safety bound: no sane chaos run needs more kernel events than this.
_MAX_EVENTS = 2_000_000


@dataclass
class ChaosReport:
    """The audited outcome of one chaos run."""

    jobs_total: int = 0
    jobs_completed: int = 0
    jobs_failed: int = 0
    requeues: int = 0
    faults_injected: int = 0
    faults_recovered: int = 0
    retries: int = 0
    giveups: int = 0
    repairs: int = 0
    dead_hosts: list[str] = field(default_factory=list)
    mirror_sync_ok: bool | None = None
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def render(self) -> str:
        lines = [
            f"jobs: {self.jobs_completed} completed, {self.jobs_failed} failed "
            f"of {self.jobs_total} ({self.requeues} requeue(s))",
            f"faults: {self.faults_injected} injected, "
            f"{self.faults_recovered} recovered; "
            f"{self.retries} retry(ies), {self.giveups} giveup(s)",
            f"supervisor: {self.repairs} repair(s)",
            f"monitoring: dead hosts {self.dead_hosts or 'none'}",
        ]
        if self.mirror_sync_ok is not None:
            lines.append(
                "mirror: sync "
                + ("recovered" if self.mirror_sync_ok else "gave up (degraded)")
            )
        if self.violations:
            lines.append("INVARIANT VIOLATIONS:")
            lines.extend(f"  - {v}" for v in self.violations)
        else:
            lines.append("invariants: all hold")
        return "\n".join(lines)


@dataclass
class ChaosRun:
    """Everything a chaos run produced (for tests and the CLI)."""

    kernel: SimKernel
    scheduler: MauiScheduler
    gmetad: Gmetad
    mirror: RepoMirror | None
    injector: FaultInjector
    report: ChaosReport
    jsonl: str
    world: "ChaosWorld | None" = None
    supervisor: Supervisor | None = None
    journal: Journal | None = None


def demo_plan(machine) -> FaultPlan:
    """The built-in scenario: crash two compute nodes mid-workload (one
    recovers, one stays dead), lose a heartbeat, and corrupt the mirror."""
    compute = [n.name for n in machine.compute_nodes]
    if len(compute) < 3:
        raise FaultError("demo plan needs at least three compute nodes")
    return FaultPlan(
        name=f"demo-{machine.name}",
        faults=(
            # Disk fills just before the sync starts, so the sync's first
            # attempts fail and the retry policy backs off until space frees.
            FaultSpec(FaultKind.DISK_FULL, "xsede-mirror", at_s=10.0,
                      duration_s=60.0),
            FaultSpec(FaultKind.MIRROR_CORRUPT, "xsede-mirror", at_s=5.0),
            FaultSpec(FaultKind.NODE_CRASH, compute[1], at_s=700.0,
                      duration_s=2400.0),
            FaultSpec(FaultKind.PSU_FAIL, compute[2], at_s=950.0),
            FaultSpec(FaultKind.HEARTBEAT_LOSS, compute[0], at_s=400.0,
                      duration_s=120.0),
        ),
    )


def _build_workload(kernel: SimKernel, machine, count: int) -> list[tuple[float, Job]]:
    """A deterministic (seed-driven) job mix with staggered submit times."""
    rng = kernel.rng
    per_node = min(n.cores for n in machine.compute_nodes)
    jobs = []
    submit_s = 0.0
    for index in range(count):
        submit_s += 60.0 * rng.randrange(1, 6)
        wide = rng.random() < 0.3
        cores = per_node * rng.randrange(2, 4) if wide else rng.randrange(1, per_node + 1)
        runtime_s = 300.0 + 60.0 * rng.randrange(0, 20)
        jobs.append(
            (
                submit_s,
                Job(
                    f"chaos-j{index:02d}", "chaos", cores=cores,
                    walltime_limit_s=4 * 3600.0, runtime_s=runtime_s,
                ),
            )
        )
    return jobs


def _build_mirror(kernel: SimKernel, journal: Journal) -> RepoMirror:
    upstream = Repository("xsede", name="XSEDE campus bridging", priority=20)
    for index in range(12):
        upstream.add(
            Package(
                name=f"xsede-pkg{index:02d}", version="1.0",
                size_bytes=(index + 1) * 256 * 1024,
            )
        )
    return RepoMirror(
        upstream,
        MirrorLink(bandwidth_bytes_s=10e6, latency_s=0.05),
        repo_id="xsede-mirror",
        kernel=kernel,
        retry=RetryPolicy(max_attempts=5, base_delay_s=5.0, max_delay_s=120.0),
        journal=journal,
    )


class ChaosWorld:
    """The whole chaos stack as one steppable, checkpointable world.

    ``config`` is a plain-JSON dict (it travels inside snapshots):

    * ``plan`` — a :meth:`FaultPlan.to_dict` dict, or None for the demo;
    * ``seed`` / ``cluster`` / ``job_count`` / ``with_mirror`` — as in
      :func:`run_chaos`;
    * ``supervise`` — wire in the self-healing supervisor (default True);
    * ``crash_armed`` — whether ``headnode.crash`` faults actually raise
      (True) or fire as silent no-ops (False).  The spec stays in the
      plan either way, so both runs schedule the identical event
      sequence — that parity is what makes the crashed run's trace a
      byte prefix of the uncrashed one.

    Driver steps are the checkpoint boundaries: each :meth:`step` fires
    exactly one kernel event (or one wind-down poll / phase transition),
    so ``steps`` is an unambiguous resume position even though nested
    ``run_until`` calls make ``events_processed`` grow faster.
    """

    world_name = "chaos"

    _DEFAULTS: dict[str, Any] = {
        "plan": None,
        "seed": 0,
        "cluster": "littlefe",
        "job_count": 12,
        "with_mirror": True,
        "supervise": True,
        "crash_armed": True,
    }

    def __init__(self, config: Mapping[str, Any] | None = None) -> None:
        merged = dict(self._DEFAULTS)
        merged.update(config or {})
        unknown = sorted(set(merged) - set(self._DEFAULTS))
        if unknown:
            raise FaultError(f"unknown chaos config key(s): {unknown}")
        self.config: dict[str, Any] = merged
        self.steps = 0
        self.phase = "main"
        self._winddown_left = 0

        try:
            self.machine = CLUSTERS[merged["cluster"]]()
        except KeyError:
            known = ", ".join(sorted(CLUSTERS))
            raise FaultError(
                f"unknown cluster {merged['cluster']!r} (known: {known})"
            ) from None

        kernel = SimKernel(seed=int(merged["seed"]))
        self.kernel = kernel
        self.journal = Journal()
        self.scheduler = MauiScheduler(ClusterResources(self.machine), kernel=kernel)
        self.gmetad = Gmetad(self.machine.name, poll_period_s=15.0, kernel=kernel)
        scheduler = self.scheduler
        for node in self.machine.nodes:
            host = Host(node, CENTOS_6_5, diskless_image=node.diskless)

            def load_for(node_name=node.name):
                total = 0
                for job in scheduler.running:
                    if job.allocation is None:
                        continue
                    for name, cores in job.allocation.by_node:
                        if name == node_name:
                            total += cores
                return total

            self.gmetad.attach(Gmond(host, load_source=load_for))

        self.mirror = (
            _build_mirror(kernel, self.journal) if merged["with_mirror"] else None
        )
        self.mirror_outcome: bool | None = None

        if merged["plan"] is None:
            self.plan = demo_plan(self.machine)
        else:
            self.plan = FaultPlan.from_dict(merged["plan"])
        self.injector = FaultInjector(
            kernel,
            scheduler=self.scheduler,
            machine=self.machine,
            gmetad=self.gmetad,
            mirrors=(self.mirror,) if self.mirror is not None else (),
            pxe=None,
            crash_armed=bool(merged["crash_armed"]),
        )
        self.injector.apply(self.plan)

        self.supervisor: Supervisor | None = None
        if merged["supervise"]:
            self.supervisor = Supervisor(
                kernel,
                scheduler=self.scheduler,
                gmetad=self.gmetad,
                machine=self.machine,
                power_probe=self._power_ok,
            )
            self.supervisor.start()

        workload = _build_workload(kernel, self.machine, int(merged["job_count"]))
        self.all_jobs = [job for _t, job in workload]
        for submit_s, job in workload:
            kernel.at(submit_s, lambda job=job: scheduler.submit(job),
                      label=f"chaos.submit:{job.name}")

        if self.mirror is not None:
            mirror = self.mirror

            def sync_mirror() -> None:
                try:
                    mirror.sync()
                    self.mirror_outcome = True
                except HeadnodeCrashError:
                    raise  # the frontend died mid-sync; nothing may absorb it
                except (RetryExhaustedError, FaultError):
                    # Degraded, not dead: the mirror stays stale and the run
                    # continues — exactly the behaviour the paper's admins need.
                    self.mirror_outcome = False

            kernel.at(20.0, sync_mirror, label="chaos.mirror_sync")

        self.sampler = self.gmetad.start_sampling()

    def _power_ok(self, node: str) -> bool:
        """Supervisor power probe: a live PSU fault means reboots are futile."""
        for record in self.injector.history:
            if (
                record.spec.kind is FaultKind.PSU_FAIL
                and record.spec.target == node
                and record.active
            ):
                return False
        return True

    # -- the drive loop ----------------------------------------------------------

    def step(self) -> bool:
        """Advance one driver step; False once the run is finished.

        Phases: **main** fires kernel events until only periodic series
        (sampler + supervisor sweep) remain; **winddown** runs enough
        extra poll cycles for the heartbeat detector to declare
        permanently dead nodes; **drain** cancels the periodics and fires
        any stragglers; then **done**.
        """
        if self.phase == "done":
            return False
        self.steps += 1
        if self.kernel.events_processed > _MAX_EVENTS:
            raise FaultError(
                f"chaos run exceeded {_MAX_EVENTS} events; runaway schedule?"
            )
        if self.phase == "main":
            if len(self.kernel.queue) > self.kernel.periodic_count:
                self.kernel.step()
            else:
                self.phase = "winddown"
                self._winddown_left = max(2, self.gmetad.dead_after_misses + 1)
            return True
        if self.phase == "winddown":
            if self._winddown_left > 0:
                self.gmetad.poll_cycle()
                self._winddown_left -= 1
            else:
                self.sampler.cancel()
                if self.supervisor is not None:
                    self.supervisor.stop()
                self.phase = "drain"
            return True
        # drain: anything still live after the periodics were cancelled
        if len(self.kernel.queue) > 0:
            self.kernel.step()
            return True
        self.phase = "done"
        return False

    def run(self) -> None:
        """Step to completion (no checkpointing)."""
        while self.step():
            pass

    # -- snapshots ---------------------------------------------------------------

    def state_dict(self) -> dict[str, Any]:
        """The whole stack, declaratively, for checkpoint digests."""
        return {
            "phase": self.phase,
            "steps": self.steps,
            "winddown_left": self._winddown_left,
            "kernel": self.kernel.state_dict(),
            "scheduler": self.scheduler.state_dict(),
            "gmetad": self.gmetad.state_dict(),
            "mirror": None if self.mirror is None else self.mirror.state_dict(),
            "mirror_outcome": self.mirror_outcome,
            "journal": self.journal.state_dict(),
            "supervisor": (
                None if self.supervisor is None else self.supervisor.state_dict()
            ),
            "hardware": {
                node.name: node.powered_on for node in self.machine.nodes
            },
            "faults": [
                {
                    "kind": record.spec.kind.value,
                    "target": record.spec.target,
                    "at_s": record.injected_at_s,
                    "recovered_at_s": record.recovered_at_s,
                }
                for record in self.injector.history
            ],
            "jobs": [job.state_dict() for job in self.all_jobs],
        }

    # -- reporting ---------------------------------------------------------------

    def audit(self) -> ChaosReport:
        return _audit(
            self.kernel, self.scheduler, self.gmetad, self.injector,
            self.all_jobs, self.mirror_outcome, self.supervisor, self.journal,
        )

    def result(self) -> ChaosRun:
        """Audit and bundle (call once the run is done)."""
        return ChaosRun(
            kernel=self.kernel, scheduler=self.scheduler, gmetad=self.gmetad,
            mirror=self.mirror, injector=self.injector, report=self.audit(),
            jsonl=self.kernel.trace.to_jsonl(), world=self,
            supervisor=self.supervisor, journal=self.journal,
        )


register_world_factory("chaos", ChaosWorld)


def run_chaos(
    plan: FaultPlan | None = None,
    *,
    seed: int = 0,
    cluster: str = "littlefe",
    job_count: int = 12,
    with_mirror: bool = True,
    supervise: bool = True,
) -> ChaosRun:
    """Build the stack, apply the plan, run to quiescence, audit."""
    world = ChaosWorld(
        {
            "plan": None if plan is None else plan.to_dict(),
            "seed": seed,
            "cluster": cluster,
            "job_count": job_count,
            "with_mirror": with_mirror,
            "supervise": supervise,
        }
    )
    world.run()
    return world.result()


def _audit(
    kernel: SimKernel,
    scheduler: MauiScheduler,
    gmetad: Gmetad,
    injector: FaultInjector,
    jobs: list[Job],
    mirror_outcome: bool | None,
    supervisor: Supervisor | None = None,
    journal: Journal | None = None,
) -> ChaosReport:
    trace = kernel.trace
    report = ChaosReport(
        jobs_total=len(jobs),
        jobs_completed=sum(1 for j in jobs if j.state is JobState.COMPLETED),
        jobs_failed=sum(1 for j in jobs if j.state is JobState.FAILED),
        requeues=trace.count("job.requeue"),
        faults_injected=trace.count("fault.inject"),
        faults_recovered=trace.count("fault.recover"),
        retries=trace.count("fault.retry"),
        giveups=trace.count("fault.giveup"),
        repairs=0 if supervisor is None else len(supervisor.repairs),
        dead_hosts=gmetad.dead_hosts(),
        mirror_sync_ok=mirror_outcome,
    )

    # 1. completion: every job reached a terminal state
    for job in jobs:
        if job.state not in (JobState.COMPLETED, JobState.FAILED, JobState.CANCELLED):
            report.violations.append(
                f"job {job.name} ended in non-terminal state {job.state.value}"
            )
    if scheduler.pending or scheduler.running:
        report.violations.append(
            f"scheduler still holds {len(scheduler.pending)} pending / "
            f"{len(scheduler.running)} running job(s)"
        )

    # 2. event-queue leaks: nothing pending, no cancelled corpses
    if len(kernel.queue) != 0:
        report.violations.append(
            f"event queue still holds {len(kernel.queue)} live event(s)"
        )
    kernel.queue.compact()
    if kernel.queue.heap_size != 0:
        report.violations.append(
            f"event heap holds {kernel.queue.heap_size} entries after compaction"
        )

    # 3. resource leaks: nothing left allocated on any node (idle means
    #    free == capacity regardless of offline/failed flags)
    resources = scheduler.resources
    for node in resources.node_names():
        if not resources.is_idle(node):
            report.violations.append(
                f"node {node}: cores still allocated after the run"
            )

    # 4. trace integrity
    count, problems = validate_jsonl(kernel.trace.to_jsonl())
    for problem in problems:
        report.violations.append(f"trace: {problem}")

    # 5. journal convergence: no transaction may end half-done — every
    #    begun transaction committed, aborted, rolled back, or replayed
    if journal is not None:
        for txn in journal.open_txns():
            report.violations.append(
                f"journal transaction {txn.txn_id} ({txn.kind}) still open "
                f"after the run"
            )

    # 6. monitoring confluence: permanently crashed nodes are on the dead
    #    list — unless the supervisor brought them back, in which case
    #    staying alive is the correct outcome
    dead = set(gmetad.dead_hosts())
    repaired = supervisor.repaired_nodes if supervisor is not None else set()
    for record in injector.history:
        if record.spec.kind in (FaultKind.NODE_CRASH, FaultKind.PSU_FAIL):
            target = record.spec.target
            if record.active and target not in dead and target not in repaired:
                report.violations.append(
                    f"crashed node {target} never declared dead by gmetad"
                )

    # 7. rolling-update confluence: a completed sweep leaves no node
    #    draining and no wave both succeeded and aborted (vacuous unless
    #    the run drove repro.shell's RollingUpdate)
    from ..shell import rolling_confluence_problems

    for problem in rolling_confluence_problems(
        trace.events, resources=resources
    ):
        report.violations.append(f"rolling: {problem}")

    # 8. repository-service confluence: every repod request terminal
    #    exactly once, no leaked connection slots / queue entries / coalesce
    #    groups (vacuous unless the run drove repro.repod)
    from ..repod.storm import repod_confluence_problems

    for problem in repod_confluence_problems(trace.events):
        report.violations.append(f"repod: {problem}")

    # 9. content-addressed delivery confluence: catalog serials only move
    #    forward, replicas never regress, no fetch over-reports hits
    #    (vacuous unless the run drove repro.cas)
    from ..cas import cas_confluence_problems

    for problem in cas_confluence_problems(trace.events):
        report.violations.append(f"cas: {problem}")
    return report

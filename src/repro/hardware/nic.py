"""Network interface models.

Section 5.1: "We used a hard-wired connection using a dual-homed headnode.
All nodes utilize the same motherboard, but only one of the two network
interfaces will be used on compute nodes."  NIC counts per board therefore
matter: the GA-Q87TN's two interfaces are what make the dual-homed head node
possible without an add-in card.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import CatalogError

__all__ = ["NicModel", "GIGE_ONBOARD", "FASTE_ONBOARD", "NIC_CATALOG", "get_nic"]


@dataclass(frozen=True)
class NicModel:
    """A network interface SKU (usually on-board)."""

    model: str
    speed_gbps: float
    latency_us: float
    power_watts: float
    price_usd: float = 0.0  # on-board NICs carry no marginal cost

    def __post_init__(self) -> None:
        if self.speed_gbps <= 0:
            raise CatalogError(f"NIC {self.model} has non-positive speed")
        if self.latency_us <= 0:
            raise CatalogError(f"NIC {self.model} has non-positive latency")

    @property
    def bandwidth_bytes_s(self) -> float:
        """Usable bandwidth in bytes/s (line rate; protocol overhead is
        applied by the fabric model, not here)."""
        return self.speed_gbps * 1e9 / 8.0


#: Gigabit Ethernet, the interconnect of both LittleFe and Limulus.
GIGE_ONBOARD = NicModel(
    model="Intel I217 GigE (onboard)",
    speed_gbps=1.0,
    latency_us=50.0,
    power_watts=1.0,
)

#: Fast Ethernet, for modelling truly ancient teaching hardware.
FASTE_ONBOARD = NicModel(
    model="100Mb Fast Ethernet (onboard)",
    speed_gbps=0.1,
    latency_us=90.0,
    power_watts=0.5,
)

NIC_CATALOG: dict[str, NicModel] = {n.model: n for n in (GIGE_ONBOARD, FASTE_ONBOARD)}


def get_nic(model: str) -> NicModel:
    """Look up a NIC SKU by name, raising :class:`CatalogError` if unknown."""
    try:
        return NIC_CATALOG[model]
    except KeyError:
        known = ", ".join(sorted(NIC_CATALOG))
        raise CatalogError(f"unknown NIC model {model!r}; known: {known}") from None

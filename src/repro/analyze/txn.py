"""Rule catalogue for RPM transaction validation (TX7xx).

These rules are emitted by :meth:`repro.rpm.transaction.Transaction.
check_diagnostics` rather than by an analyzer pass: transaction validation
runs inside the deployment simulation, but speaks the same diagnostic
vocabulary so tooling can treat "pre-flight lint" and "transaction refused"
findings uniformly.  This module must stay import-light — it is pulled in
by :mod:`repro.rpm.transaction`, far below the analyzer.
"""

from __future__ import annotations

from .diagnostic import Severity
from .registry import rule

__all__ = ["TX701", "TX702", "TX703", "TX704", "TX705", "TX706", "TX707"]

TX701 = rule(
    "TX701",
    "transaction",
    Severity.ERROR,
    "package architecture does not match the host",
    "rebuild for the host arch or use a noarch package",
)
TX702 = rule(
    "TX702",
    "transaction",
    Severity.ERROR,
    "erase names a package that is not installed",
    "check the package name; nothing to erase",
)
TX703 = rule(
    "TX703",
    "transaction",
    Severity.ERROR,
    "package is already installed at this exact version",
    "drop the install; it would be a no-op reinstall",
)
TX704 = rule(
    "TX704",
    "transaction",
    Severity.ERROR,
    "install would silently replace an installed version",
    "use Transaction.upgrade (or erase+install) to change versions",
)
TX705 = rule(
    "TX705",
    "transaction",
    Severity.ERROR,
    "a requirement of the final package set has no provider",
    "add the providing package to the transaction",
)
TX706 = rule(
    "TX706",
    "transaction",
    Severity.ERROR,
    "two packages in the final set declare a conflict",
    "erase one side or pick non-conflicting versions",
)
TX707 = rule(
    "TX707",
    "transaction",
    Severity.ERROR,
    "the write-ahead journal holds an unresolved transaction for this host",
    "run repro.rpm.transaction.recover_transaction before committing",
)

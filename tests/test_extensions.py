"""Extension-feature tests: architecture enforcement (the Raspberry Pi
argument), the Limulus/XNIT curriculum, and the 2020 capacity projection."""

import pytest

from repro.core import (
    TrainingSession,
    capacity_goal_projection,
    limulus_xnit_module,
)
from repro.distro import CENTOS_6_5, Host
from repro.errors import DeploymentError, DependencyError, TransactionError
from repro.hardware import (
    BCM2835,
    DDR3_4G_SODIMM,
    GIGE_ONBOARD,
    NodeRole,
    assemble_node,
)
from repro.hardware.motherboard import MotherboardModel
from repro.rpm import Package, RpmDatabase, Transaction


def raspberry_pi_host(name="pi-0"):
    """A Raspberry Pi as a cluster node (Section 8's counterexample)."""
    board = MotherboardModel(
        model="Raspberry Pi Model B board",
        form_factor="mini-ITX",  # close enough for the chassis check
        socket=None,
        dimm_slots=1,
        msata_slots=0,
        sata_ports=1,  # the SD card slot, effectively
        nics=(GIGE_ONBOARD,),
        cpu_clearance_mm=20.0,
        power_watts=1.0,
        price_usd=0.0,
    )
    from repro.hardware.storage import LAPTOP_HDD_500

    node = assemble_node(
        name,
        role=NodeRole.COMPUTE,
        board=board,
        cpu=BCM2835,
        dimms=(DDR3_4G_SODIMM,),
        storage=(LAPTOP_HDD_500,),
        cooler=None,
    )
    return Host(node, CENTOS_6_5)


class TestArchitectureEnforcement:
    def test_x86_host_reports_arch(self, frontend_host):
        assert frontend_host.arch == "x86_64"

    def test_pi_reports_arm(self):
        assert raspberry_pi_host().arch == "armv6l"

    def test_x86_rpm_refuses_to_install_on_pi(self):
        """Section 8: Pi clusters can't run the XSEDE software stack."""
        pi = raspberry_pi_host()
        db = RpmDatabase(pi)
        from repro.core import xsede_packages

        gromacs = next(p for p in xsede_packages() if p.name == "gromacs")
        txn = Transaction(db)
        txn.install(gromacs)
        with pytest.raises((TransactionError, DependencyError), match="x86_64"):
            txn.commit()
        assert len(db) == 0

    def test_noarch_installs_anywhere(self):
        pi = raspberry_pi_host()
        db = RpmDatabase(pi)
        docs = Package(name="xsede-docs", version="1.0", arch="noarch")
        Transaction(db).install(docs).commit()
        assert db.has("xsede-docs")

    def test_native_arm_package_installs(self):
        pi = raspberry_pi_host()
        db = RpmDatabase(pi)
        raspbian = Package(name="python-rpi", version="2.7.3", arch="armv6l",
                           commands=("python",))
        Transaction(db).install(raspbian).commit()
        assert pi.has_command("python")

    def test_x86_machines_accept_x86(self, xcbc_littlefe):
        # the whole XCBC build already ran on x86_64 — re-assert explicitly
        assert xcbc_littlefe.cluster.frontend.arch == "x86_64"


class TestLimulusCurriculum:
    def test_happy_path_all_steps_pass(self):
        session = TrainingSession(limulus_xnit_module(), students=6)
        session.run()
        assert session.passed_all, session.transcript()
        assert len(session.outcomes) == 6

    def test_playbook_written_and_loadable(self):
        from repro.core import Playbook

        session = TrainingSession(limulus_xnit_module())
        session.run()
        frontend = session.workspace["cluster"].frontend
        text = frontend.fs.read("/root/retrofit-playbook.json")
        playbook = Playbook.from_json(text)
        actions = [s.action for s in playbook.steps]
        assert actions == [
            "setup-repo-manual", "install", "install", "install"
        ]

    def test_forgotten_plugin_caught_by_audit(self):
        session = TrainingSession(
            limulus_xnit_module(skip_priorities_plugin=True)
        )
        session.run()
        by_step = {o.step: o for o in session.outcomes}
        assert not by_step["audit"].passed
        assert "yum-plugin-priorities" in by_step["audit"].detail
        # earlier steps succeeded: the mistake is silent until audited
        assert by_step["add-software"].passed

    def test_recorded_playbook_replays_on_fresh_hardware(self):
        from repro.core import (
            Playbook,
            build_limulus_cluster,
            build_xnit_repository,
            diff_environments,
            replay,
        )

        session = TrainingSession(limulus_xnit_module())
        session.run()
        source = session.workspace["cluster"]
        text = source.frontend.fs.read("/root/retrofit-playbook.json")

        fresh = build_limulus_cluster("take-home")
        client = fresh.client_for(fresh.frontend)
        replay(Playbook.from_json(text), client, build_xnit_repository())
        diff = diff_environments(
            source.client_for(source.frontend).db, client.db
        )
        assert diff.is_identical


class TestCapacityProjection:
    def test_paper_goal_requires_10x(self):
        factor, annual = capacity_goal_projection()
        assert factor == pytest.approx(10.08, abs=0.05)
        assert 0.6 < annual < 0.75  # ~67%/year

    def test_goal_year_validation(self):
        with pytest.raises(DeploymentError):
            capacity_goal_projection(start_year=2020, goal_year=2015)

"""Yum groups, the XNIT group catalogue, and playbook reproducibility."""

import pytest

from repro.core import (
    DOMAIN_GROUPS,
    Playbook,
    PlaybookStep,
    RecordingSession,
    build_limulus_cluster,
    build_xnit_repository,
    diff_environments,
    replay,
    xnit_group_catalog,
    xsede_package_names,
)
from repro.errors import ReproError, YumError
from repro.yum import GroupCatalog, PackageGroup, groupinstall


@pytest.fixture
def limulus_client():
    cluster = build_limulus_cluster()
    client = cluster.client_for(cluster.frontend)
    repo = build_xnit_repository()
    from repro.core import setup_via_manual_repo_file

    setup_via_manual_repo_file(client, repo)
    return cluster, client, repo


class TestPackageGroups:
    def test_group_validation(self):
        with pytest.raises(YumError, match="mandatory"):
            PackageGroup(group_id="g", name="G")
        with pytest.raises(YumError, match="both mandatory and optional"):
            PackageGroup(
                group_id="g", name="G", mandatory=("a",), optional=("a",)
            )

    def test_catalog_lookup_and_duplicates(self):
        catalog = GroupCatalog()
        catalog.add(PackageGroup("g", "G", mandatory=("a",)))
        assert catalog.get("g").name == "G"
        with pytest.raises(YumError, match="duplicate"):
            catalog.add(PackageGroup("g", "G2", mandatory=("b",)))
        with pytest.raises(YumError, match="known"):
            catalog.get("ghost")

    def test_groupinfo_renders(self):
        catalog = GroupCatalog()
        catalog.add(
            PackageGroup("g", "Group G", description="demo",
                         mandatory=("a",), optional=("b",))
        )
        info = catalog.groupinfo("g")
        assert "Mandatory Packages" in info and "Optional Packages" in info

    def test_xnit_catalog_covers_categories_and_domains(self):
        catalog = xnit_group_catalog()
        ids = {g.group_id for g in catalog.grouplist()}
        assert "xnit-scientific-applications" in ids
        assert set(DOMAIN_GROUPS) <= ids

    def test_domain_groups_reference_real_packages(self):
        names = set(xsede_package_names())
        for _gid, (_name, mandatory, optional) in DOMAIN_GROUPS.items():
            assert set(mandatory) <= names
            assert set(optional) <= names

    def test_groupinstall_bio_pipeline(self, limulus_client):
        _cluster, client, _repo = limulus_client
        catalog = xnit_group_catalog()
        result = groupinstall(client, catalog, "xnit-bio-pipeline")
        for name in ("ncbi-blast", "bowtie", "Samtools"):
            assert client.db.has(name), name
        assert not client.db.has("trinity")  # optional, not requested

    def test_groupinstall_with_optional(self, limulus_client):
        _cluster, client, _repo = limulus_client
        catalog = xnit_group_catalog()
        groupinstall(client, catalog, "xnit-bio-pipeline", with_optional=True)
        assert client.db.has("trinity")

    def test_groupinstall_nothing_to_do(self, limulus_client):
        _cluster, client, _repo = limulus_client
        catalog = xnit_group_catalog()
        groupinstall(client, catalog, "xnit-statistics", with_optional=True)
        with pytest.raises(YumError, match="nothing to do"):
            groupinstall(client, catalog, "xnit-statistics", with_optional=True)


class TestPlaybook:
    def test_step_validation(self):
        with pytest.raises(ReproError, match="unknown playbook action"):
            PlaybookStep(action="reboot")

    def test_recording_captures_actions(self, limulus_client):
        _cluster, client, repo = limulus_client
        # fresh client without the repo attached
        session = RecordingSession(
            client, repo, title="Limulus to XSEDE-compatible"
        )
        session.install("gromacs", comment="MD capability")
        session.install("R")
        rendered = session.playbook.render()
        assert "install gromacs" in rendered
        assert "# MD capability" in rendered
        assert client.db.has("gromacs") and client.db.has("R")

    def test_json_roundtrip(self):
        playbook = Playbook(
            title="t",
            steps=[
                PlaybookStep("setup-repo-rpm"),
                PlaybookStep("install", ("gromacs", "R"), comment="apps"),
            ],
        )
        again = Playbook.from_json(playbook.to_json())
        assert again == playbook

    def test_malformed_json_rejected(self):
        with pytest.raises(ReproError, match="malformed"):
            Playbook.from_json("{not json")
        with pytest.raises(ReproError, match="malformed"):
            Playbook.from_json('{"title": "x"}')

    def test_replay_reproduces_environment(self):
        """The Section 8 claim: the documented approach is reproducible."""
        repo = build_xnit_repository()

        # Machine A: an admin works interactively, recording as they go.
        cluster_a = build_limulus_cluster("lim-a")
        client_a = cluster_a.client_for(cluster_a.frontend)
        session = RecordingSession(client_a, repo, title="dept setup")
        session.setup_repo_manual()
        session.install("gromacs", comment="the chemist's request")
        session.install("torque", "maui", comment="change the schedulers")
        session.install("R")

        # Machine B: replay the document on identical delivered hardware.
        cluster_b = build_limulus_cluster("lim-b")
        client_b = cluster_b.client_for(cluster_b.frontend)
        outcomes = replay(session.playbook, client_b, build_xnit_repository())
        assert len(outcomes) == 4

        diff = diff_environments(client_a.db, client_b.db)
        assert diff.is_identical, (diff.only_on_a, diff.only_on_b)

    def test_replay_fails_loudly_with_step_identified(self):
        repo = build_xnit_repository()
        cluster = build_limulus_cluster()
        client = cluster.client_for(cluster.frontend)
        playbook = Playbook(
            title="broken",
            steps=[
                PlaybookStep("setup-repo-manual"),
                PlaybookStep("install", ("no-such-package",)),
            ],
        )
        with pytest.raises(ReproError, match="step 2"):
            replay(playbook, client, repo)

"""Shared helpers for the benchmark harness.

Every bench regenerates a paper table/figure (or runs a workflow/ablation),
times it with pytest-benchmark, and writes the regenerated artefact to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference stable
outputs.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def save_artifact():
    """Write a regenerated table/figure to benchmarks/results/."""

    def _save(name: str, text: str) -> pathlib.Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text if text.endswith("\n") else text + "\n")
        return path

    return _save

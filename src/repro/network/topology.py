"""Topology builders: the standard cluster network shapes.

The canonical paper topology is a dual-homed head node (Section 5.1): eth0
on the campus/public network, eth1 on the private cluster segment with every
compute node behind one switch.  :func:`build_cluster_network` wires a
:class:`~repro.hardware.chassis.Machine` that way and returns the pieces the
provisioner needs.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import NetworkError
from ..hardware.chassis import Machine
from ..hardware.node import NodeRole
from .dhcp import DhcpServer
from .fabric import Endpoint, Fabric, Switch

__all__ = ["ClusterNetwork", "build_cluster_network"]


@dataclass
class ClusterNetwork:
    """A wired cluster: fabric + the frontend's DHCP on the private side."""

    fabric: Fabric
    private_switch: Switch
    public_switch: Switch
    dhcp: DhcpServer
    machine: Machine

    def private_hosts(self) -> list[str]:
        """Hosts on the cluster segment (everything, incl. the frontend).

        With a leaf/spine private side, hosts sit on the leaves; gather from
        every private-side switch.
        """
        names: set[str] = set()
        for switch_name in self.fabric.switch_names():
            if switch_name.startswith("private"):
                names.update(self.fabric.get_switch(switch_name).attached_hosts())
        return sorted(names)

    def compute_macs(self) -> list[str]:
        """MACs of the compute nodes in slot order (insert-ethers order)."""
        return [n.mac_address for n in self.machine.compute_nodes]


def build_cluster_network(
    machine: Machine,
    *,
    switch_ports: int = 24,
    switch_latency_us: float = 5.0,
) -> ClusterNetwork:
    """Wire a machine into the standard dual-homed topology.

    The frontend's first NIC goes to the public switch, its second to the
    private side; every compute node's first NIC goes to the private side
    ("only one of the two network interfaces will be used on compute
    nodes", Section 5.1).  A frontend with fewer than two NICs is rejected.

    Small clusters fit behind one private switch.  When the node count
    exceeds one switch's ports, the private side becomes a leaf/spine: leaf
    switches hold the nodes (one uplink port reserved per leaf) and a spine
    joins them — campus-scale sites like Kansas's 220 nodes wire this way.
    """
    head = machine.head
    if len(head.nics) < 2:
        raise NetworkError(
            f"{head.name}: dual-homed frontend needs 2 NICs, has {len(head.nics)}"
        )
    if switch_ports < 4:
        raise NetworkError("switches need at least 4 ports")
    fabric = Fabric()
    public = fabric.add_switch(
        Switch("public", ports=switch_ports, latency_us=switch_latency_us)
    )
    fabric.attach("public", Endpoint(head.name, head.nics[0], "eth0"))

    endpoints_needed = 1 + len(machine.compute_nodes)  # head eth1 + computes
    if endpoints_needed <= switch_ports:
        private = fabric.add_switch(
            Switch("private", ports=switch_ports, latency_us=switch_latency_us)
        )
        fabric.attach("private", Endpoint(head.name, head.nics[1], "eth1"))
        for node in machine.compute_nodes:
            fabric.attach("private", Endpoint(node.name, node.nics[0], "eth0"))
    else:
        per_leaf = switch_ports - 1  # one port per leaf reserved for uplink
        leaf_count = -(-endpoints_needed // per_leaf)
        spine = fabric.add_switch(
            Switch(
                "private",  # the spine carries the canonical name
                ports=max(switch_ports, leaf_count),
                latency_us=switch_latency_us,
            )
        )
        leaves = []
        for i in range(leaf_count):
            leaf = fabric.add_switch(
                Switch(f"private-leaf{i}", ports=switch_ports,
                       latency_us=switch_latency_us)
            )
            fabric.connect_switches("private", leaf.name)
            leaves.append(leaf)
        attach_points = [
            Endpoint(head.name, head.nics[1], "eth1")
        ] + [
            Endpoint(node.name, node.nics[0], "eth0")
            for node in machine.compute_nodes
        ]
        for index, endpoint in enumerate(attach_points):
            fabric.attach(leaves[index // per_leaf].name, endpoint)
        private = spine

    # One /24 pool (245 leases) covers classic sites; a 10k-node fleet
    # needs the pool widened across overflow subnets.  Sizing from the
    # machine keeps small clusters byte-identical (subnets=1).
    single = DhcpServer()
    per_subnet = single.pool_end - single.pool_start + 1
    needed = len(machine.compute_nodes)
    if needed > per_subnet:
        single = DhcpServer(subnets=-(-needed // per_subnet))

    return ClusterNetwork(
        fabric=fabric,
        private_switch=private,
        public_switch=public,
        dhcp=single,
        machine=machine,
    )

"""The equivalence claim — XCBC-from-scratch vs XNIT-retrofit convergence.

Builds one cluster each way (the timed unit is the pair of full builds),
then diffs the resulting environments and audits both against the XSEDE
catalogue.  This is the paper's abstract rendered as a benchmark: "both
approaches ... aid cluster administrators ... and facilitate integration
and interoperability."
"""

import pytest

from repro.core import (
    audit_host,
    build_limulus_cluster,
    build_xcbc_cluster,
    build_xnit_repository,
    diff_environments,
    integrate_host,
    portability_check,
    setup_via_repo_rpm,
    xsede_package_names,
)
from repro.hardware import build_littlefe_modified


def build_both_paths():
    xcbc = build_xcbc_cluster(build_littlefe_modified().machine)
    limulus = build_limulus_cluster()
    repo = build_xnit_repository()
    for host in limulus.hosts():
        client = limulus.client_for(host)
        setup_via_repo_rpm(client, repo)
        integrate_host(client, full_toolkit=True)
    return xcbc, limulus


def test_convergence(benchmark, save_artifact):
    xcbc, limulus = benchmark(build_both_paths)

    xcbc_db = xcbc.cluster.frontend_db
    xnit_db = limulus.client_for(limulus.frontend).db
    diff = diff_environments(xcbc_db, xnit_db)
    audit_a = audit_host(xcbc.cluster.frontend, xcbc_db)
    audit_b = audit_host(limulus.frontend, xnit_db)
    workflow = ["qsub", "qstat", "mdrun", "R", "mpirun", "python", "blastn"]
    frac, broken = portability_check(
        xcbc.cluster.frontend, limulus.frontend, workflow
    )

    lines = [
        "Convergence: XCBC from scratch (LittleFe) vs XNIT retrofit (Limulus)",
        "",
        f"version mismatches on shared packages: {len(diff.version_mismatches)}",
        f"only on XCBC side: {len(diff.only_on_a)} "
        f"(Rocks/roll tooling: {diff.only_on_a[:5]} ...)",
        f"only on XNIT side: {len(diff.only_on_b)} "
        f"(vendor stack: {diff.only_on_b})",
        "",
        audit_a.render(),
        "",
        audit_b.render(),
        "",
        f"user workflow portability ({len(workflow)} commands): {frac:.0%}",
    ]
    save_artifact("convergence_xcbc_vs_xnit", "\n".join(lines))

    assert diff.converged
    assert audit_a.overall == pytest.approx(1.0)
    assert audit_b.overall == pytest.approx(1.0)
    assert frac == 1.0, broken
    # the run-alike catalogue is on BOTH sides in identical versions
    runalike = set(xsede_package_names())
    for name in runalike:
        if xcbc_db.has(name) and xnit_db.has(name):
            assert xcbc_db.get(name).evr == xnit_db.get(name).evr, name

"""Declarative fault plans: what breaks, where, when, for how long.

A :class:`FaultPlan` is pure data — a named, ordered schedule of typed
:class:`FaultSpec` entries — so chaos scenarios can live in JSON files,
be diffed in review, and be validated before a run (the same philosophy
as ``cluster-lint``: never crash on bad input you could have reported).
The :class:`~repro.faults.inject.FaultInjector` turns a plan into kernel
events.

JSON shape (one plan per file)::

    {
      "name": "two-node-crash",
      "faults": [
        {"kind": "node.crash", "target": "littlefe-iu-n2",
         "at_s": 600.0, "duration_s": 1800.0},
        {"kind": "mirror.corrupt", "target": "xsede-mirror",
         "at_s": 30.0, "params": {"files": 2}}
      ]
    }
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Mapping

from ..errors import FaultError

__all__ = ["FaultKind", "FaultSpec", "FaultPlan"]


class FaultKind(str, Enum):
    """The fault taxonomy (docs/FAULTS.md catalogues each mode)."""

    NODE_CRASH = "node.crash"          # kernel panic / dead board: jobs requeue
    PSU_FAIL = "psu.fail"              # power supply death: crash, no auto-heal
    LINK_FLAP = "link.flap"            # lossy WAN/segment: syncs die probabilistically
    DISK_FULL = "disk.full"            # mirror volume out of space
    BOOT_TIMEOUT = "boot.timeout"      # PXE/DHCP handshake times out N times
    MIRROR_CORRUPT = "mirror.corrupt"  # payloads arrive corrupted once
    HEARTBEAT_LOSS = "heartbeat.loss"  # gmond stops answering gmetad
    HEADNODE_CRASH = "headnode.crash"  # the frontend dies: the run itself stops
    ORIGIN_CRASH = "origin.crash"      # the XNIT repo origin dies mid-storm
    CONN_RESET = "conn.reset"          # a proxy uplink flaps: fetches reset


#: Kinds whose effect ends on its own (count-based) — scheduling a
#: recovery for them is a plan error.  HEADNODE_CRASH is one-shot too:
#: nothing inside a dead process can schedule its own recovery; the run
#: resumes out-of-band from a checkpoint (repro.recovery).
_ONE_SHOT_KINDS = frozenset(
    {FaultKind.BOOT_TIMEOUT, FaultKind.MIRROR_CORRUPT, FaultKind.HEADNODE_CRASH}
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    ``duration_s == 0`` means no automatic recovery (the fault persists
    until something else repairs it); otherwise the injector schedules the
    reverse action ``duration_s`` after injection.  ``params`` carries
    kind-specific knobs (``count`` for boot timeouts, ``loss_prob`` for
    link flaps, ``files`` for corruption).
    """

    kind: FaultKind
    target: str
    at_s: float
    duration_s: float = 0.0
    params: Mapping[str, Any] = field(default_factory=dict)

    def problems(self) -> list[str]:
        """Validation findings for this spec (empty = clean)."""
        found = []
        if not self.target:
            found.append(f"{self.kind.value}: empty target")
        if self.at_s < 0:
            found.append(f"{self.kind.value}@{self.target}: negative at_s")
        if self.duration_s < 0:
            found.append(f"{self.kind.value}@{self.target}: negative duration_s")
        if self.duration_s > 0 and self.kind in _ONE_SHOT_KINDS:
            found.append(
                f"{self.kind.value}@{self.target}: one-shot fault cannot "
                f"have a duration"
            )
        if self.kind in (FaultKind.LINK_FLAP, FaultKind.CONN_RESET):
            loss = self.params.get(
                "loss_prob", 0.5 if self.kind is FaultKind.LINK_FLAP else 1.0
            )
            if not isinstance(loss, (int, float)) or not 0 <= loss <= 1:
                found.append(
                    f"{self.kind.value}@{self.target}: loss_prob must be "
                    f"in [0, 1], got {loss!r}"
                )
        if self.kind is FaultKind.BOOT_TIMEOUT:
            count = self.params.get("count", 1)
            if not isinstance(count, int) or count < 1:
                found.append(
                    f"{self.kind.value}@{self.target}: count must be a "
                    f"positive int, got {count!r}"
                )
        return found

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "kind": self.kind.value,
            "target": self.target,
            "at_s": self.at_s,
        }
        if self.duration_s:
            out["duration_s"] = self.duration_s
        if self.params:
            out["params"] = dict(self.params)
        return out

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "FaultSpec":
        try:
            kind = FaultKind(obj["kind"])
        except KeyError:
            raise FaultError(f"fault entry missing 'kind': {dict(obj)!r}") from None
        except ValueError:
            known = ", ".join(k.value for k in FaultKind)
            raise FaultError(
                f"unknown fault kind {obj['kind']!r} (known: {known})"
            ) from None
        missing = [key for key in ("target", "at_s") if key not in obj]
        if missing:
            raise FaultError(
                f"{kind.value}: fault entry missing {missing}"
            )
        return cls(
            kind=kind,
            target=str(obj["target"]),
            at_s=float(obj["at_s"]),
            duration_s=float(obj.get("duration_s", 0.0)),
            params=dict(obj.get("params", {})),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A named, ordered schedule of faults."""

    name: str
    faults: tuple[FaultSpec, ...] = ()

    def __len__(self) -> int:
        return len(self.faults)

    def problems(self) -> list[str]:
        """Validation findings for the whole plan (empty = clean)."""
        found = [] if self.name else ["plan has no name"]
        for spec in self.faults:
            found.extend(spec.problems())
        return found

    def validate(self) -> "FaultPlan":
        """Raise :class:`FaultError` listing every problem; returns self."""
        found = self.problems()
        if found:
            raise FaultError(
                f"invalid fault plan {self.name!r}: " + "; ".join(found)
            )
        return self

    def sorted_by_time(self) -> "FaultPlan":
        """The same plan with faults ordered by injection time (stable)."""
        return FaultPlan(
            self.name, tuple(sorted(self.faults, key=lambda s: s.at_s))
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "faults": [spec.to_dict() for spec in self.faults],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, obj: Mapping[str, Any]) -> "FaultPlan":
        if "name" not in obj:
            raise FaultError("fault plan missing 'name'")
        entries = obj.get("faults", [])
        if not isinstance(entries, list):
            raise FaultError("'faults' must be a list of fault entries")
        return cls(
            name=str(obj["name"]),
            faults=tuple(FaultSpec.from_dict(e) for e in entries),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultError(f"fault plan is not valid JSON: {exc.msg}") from exc
        if not isinstance(obj, Mapping):
            raise FaultError("fault plan must be a JSON object")
        return cls.from_dict(obj)

    @classmethod
    def load(cls, path) -> "FaultPlan":
        return cls.from_json(pathlib.Path(path).read_text())

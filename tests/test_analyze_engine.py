"""Engine behaviour: configuration, baselines, ordering, JSON schema, and
the integration points (from_cluster, xcbc_cluster_definition, the shell's
cluster-lint command)."""

import json

import pytest

from repro.analyze import (
    AnalysisConfig,
    Baseline,
    ClusterDefinition,
    Diagnostic,
    RULES,
    Severity,
    analyze,
)
from repro.analyze.engine import ANALYSIS_SCHEMA
from repro.analyze.registry import BASELINE_SCHEMA
from repro.cli import ClusterShell
from repro.core.xcbc import build_xcbc_cluster, xcbc_cluster_definition
from repro.network.dhcp import DhcpPlan
from repro.rocks import GraphNode, KickstartGraph, Profile


def broken_definition():
    """One definition with findings at every severity."""
    g = KickstartGraph()
    g.add_node(GraphNode(Profile.FRONTEND))
    g.add_node(GraphNode(Profile.COMPUTE))
    g.add_node(GraphNode("orphan"))  # KS102 warning
    from repro.yum.repoconfig import RepoStanza

    return ClusterDefinition(
        name="broken",
        graph=g,
        repo_stanzas=(
            RepoStanza(repo_id="x", name="x", baseurl="u"),  # RC204 info
        ),
        dhcp_plan=DhcpPlan(pool_start=40, pool_end=20),  # NET404 error
    )


class TestEngine:
    def test_severity_ordering_in_output(self):
        result = analyze(broken_definition())
        ranks = [d.severity.rank for d in result.diagnostics]
        assert ranks == sorted(ranks)
        assert result.codes() == {"KS102", "RC204", "NET404"}

    def test_fail_on_threshold(self):
        definition = broken_definition()
        assert analyze(definition).exit_code == 1  # has an error
        warn_gate = analyze(
            definition, config=AnalysisConfig(fail_on=Severity.WARNING)
        )
        assert warn_gate.failed
        only_info = analyze(
            definition, config=AnalysisConfig(only=frozenset({"RC204"}))
        )
        assert not only_info.failed  # info never trips the default gate

    def test_only_and_disable(self):
        definition = broken_definition()
        only = analyze(definition, config=AnalysisConfig(only=frozenset({"NET404"})))
        assert only.codes() == {"NET404"}
        disabled = analyze(
            definition, config=AnalysisConfig(disabled=frozenset({"NET404"}))
        )
        assert "NET404" not in disabled.codes()
        assert "KS102" in disabled.codes()

    def test_unknown_code_from_pass_raises(self):
        with pytest.raises(KeyError):
            RULES.get("ZZ999")

    def test_baseline_suppression(self):
        definition = broken_definition()
        first = analyze(definition)
        baseline = Baseline.from_diagnostics(first.diagnostics, "seed debt")
        second = analyze(definition, baseline=baseline)
        assert second.is_clean
        assert len(second.suppressed) == len(first.diagnostics)
        assert second.exit_code == 0

    def test_baseline_round_trip(self):
        diag = Diagnostic(
            code="KS102", severity=Severity.WARNING, message="m",
            location="kickstart:node/orphan",
        )
        baseline = Baseline.from_diagnostics([diag], "known")
        text = baseline.to_text()
        parsed = Baseline.from_text(text)
        assert parsed.suppressions == {"KS102@kickstart:node/orphan": "known"}
        assert json.loads(text)["schema"] == BASELINE_SCHEMA

    def test_baseline_rejects_foreign_schema(self):
        with pytest.raises(ValueError, match="not a baseline"):
            Baseline.from_text('{"schema": "something/else"}')

    def test_json_document_schema(self):
        result = analyze(broken_definition())
        doc = result.to_dict()
        assert doc["schema"] == ANALYSIS_SCHEMA
        assert doc["definition"] == "broken"
        assert set(doc["counts"]) == {"error", "warning", "info", "suppressed"}
        assert doc["counts"]["error"] == 1
        for entry in doc["diagnostics"]:
            assert set(entry) == {
                "code", "severity", "subsystem", "location", "message", "hint"
            }
        json.loads(result.render_json())  # must be valid JSON

    def test_render_text_has_summary_and_hints(self):
        result = analyze(broken_definition())
        text = result.render_text()
        assert text.splitlines()[0].startswith("broken: 1 error(s)")
        assert "hint:" in text

    def test_str_of_diagnostic_is_message_only(self):
        result = analyze(broken_definition())
        for diag in result.diagnostics:
            assert str(diag) == diag.message
            assert diag.code not in str(diag)


class TestRuleCatalogue:
    def test_minimum_breadth(self):
        # The issue's acceptance floor: >= 10 codes across >= 5 subsystems.
        assert len(RULES.codes()) >= 10
        assert len(RULES.subsystems()) >= 5

    def test_codes_are_stable_format(self):
        for rule in RULES.all_rules():
            prefix = rule.code.rstrip("0123456789")
            assert prefix.isalpha() and prefix.isupper()
            assert rule.summary
            assert rule.subsystem


class TestIntegration:
    def test_xcbc_preflight_is_clean(self, littlefe_machine):
        definition = xcbc_cluster_definition(littlefe_machine)
        result = analyze(definition)
        assert result.is_clean, result.render_text()

    def test_preflight_without_deploying_installs_nothing(self, littlefe_machine):
        definition = xcbc_cluster_definition(littlefe_machine)
        assert definition.graph is not None
        assert definition.package_universe()
        # The machine's nodes have no hosts built for them: pre-flight only.
        assert definition.machine is littlefe_machine

    def test_from_cluster_round_trip(self, xcbc_littlefe):
        definition = ClusterDefinition.from_cluster(xcbc_littlefe.cluster)
        result = analyze(definition)
        assert result.is_clean, result.render_text()
        assert definition.required_repo_ids == ("rocks-dist",)

    def test_shell_cluster_lint(self, xcbc_littlefe):
        shell = ClusterShell(xcbc_littlefe.cluster)
        result = shell.run("cluster-lint")
        assert result.ok
        assert "0 error(s)" in result.output

    def test_shell_cluster_lint_json(self, xcbc_littlefe):
        shell = ClusterShell(xcbc_littlefe.cluster)
        result = shell.run("cluster-lint --json")
        doc = json.loads(result.output)
        assert doc["schema"] == ANALYSIS_SCHEMA

    def test_shell_cluster_lint_bad_flag(self, xcbc_littlefe):
        shell = ClusterShell(xcbc_littlefe.cluster)
        result = shell.run("cluster-lint --frobnicate")
        assert not result.ok

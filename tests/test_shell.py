"""repro.shell: the fan-out engine, clubak gathering, and rolling updates.

The contract under test is graceful degradation with receipts: a
fleet-wide sweep never raises for per-node trouble, never exceeds its
fanout, reports everything as folded NodeSets, and — same seed — emits
byte-identical traces even while faults land mid-sweep."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    HeadnodeCrashError,
    NodeOfflineError,
    ReproError,
    RetryExhaustedError,
    ShellError,
)
from repro.faults import CircuitBreaker, RetryPolicy
from repro.fleet import FleetTable, NodeSet
from repro.monitoring.hierarchy import FleetRack, GmetadTree
from repro.scheduler import ClusterResources, Job, TorqueScheduler
from repro.shell import (
    TRANSPORT_RC,
    RollingUpdate,
    ShellCommand,
    ShellEngine,
    bucket_by_rc,
    gather,
    render_groups,
    rolling_confluence_problems,
    worst_rc,
)
from repro.sim import SimKernel


def build_fleet(racks=2, per_rack=8, cores=4) -> FleetTable:
    fleet = FleetTable()
    for rack in range(racks):
        for rank in range(per_rack):
            fleet.add_row(
                name=f"compute-{rack}-{rank}", appliance="compute",
                rack=rack, rank=rank, cores=cores, state="os-installed",
            )
    return fleet


def engine_for(fleet, seed=7):
    return ShellEngine(fleet, kernel=SimKernel(seed=seed))


# ---------------------------------------------------------------------------
# clubak-style gathering


class TestGather:
    def test_identical_outputs_fold_under_one_label(self):
        groups = gather(
            [(f"compute-0-{i}", 0, "CentOS 6.5") for i in range(10)]
        )
        assert len(groups) == 1
        assert str(groups[0].nodes) == "compute-0-[0-9]"
        assert groups[0].label() == "compute-0-[0-9]: CentOS 6.5"

    def test_nonzero_rc_annotated_and_bucketed(self):
        groups = gather(
            [("compute-0-0", 0, "ok"), ("compute-0-1", 1, "no such package"),
             ("compute-0-2", 1, "no such package")]
        )
        labels = render_groups(groups)
        assert "compute-0-[1-2]: no such package [rc=1]" in labels
        assert worst_rc(groups) == 1
        buckets = bucket_by_rc(groups)
        assert str(buckets[1]) == "compute-0-[1-2]"
        assert str(buckets[0]) == "compute-0-0"

    def test_empty_input(self):
        assert gather([]) == []
        assert worst_rc([]) == 0

    @given(
        st.lists(
            st.tuples(
                st.integers(0, 199),
                st.integers(0, 2),
                st.sampled_from(["ok", "err", "warn"]),
            ),
            unique_by=lambda t: t[0],
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_gather_round_trips_through_nodeset_fold(self, rows):
        """Every gather group's folded label parses back to exactly the
        member names, the groups partition the input, and each group is
        output-homogeneous — the clubak merge loses nothing."""
        results = [
            (f"compute-{i // 40}-{i % 40}", rc, out) for i, rc, out in rows
        ]
        by_name = {name: (rc, out) for name, rc, out in results}
        groups = gather(results)
        seen: set[str] = set()
        for group in groups:
            names = set(NodeSet.parse(group.nodes.fold()))
            assert names == set(group.nodes)
            assert not names & seen, "groups must be disjoint"
            seen |= names
            for name in names:
                assert by_name[name] == (group.rc, group.output)
        assert seen == set(by_name)


# ---------------------------------------------------------------------------
# the fan-out engine


class TestShellEngine:
    def test_all_ok_folds_into_one_group(self):
        fleet = build_fleet()
        engine = engine_for(fleet)
        report = engine.run(fleet.nodeset(), "uptime", fanout=4)
        assert report.complete
        assert report.counts() == (16, 0, 0)
        assert str(report.ok_nodes()) == "compute-0-[0-7],compute-1-[0-7]"
        assert report.worst_rc == 0
        assert engine.kernel.trace.count("shell.cmd") == 1
        assert engine.kernel.trace.count("shell.gather") == 1

    def test_unreachable_nodes_skipped_and_reported(self):
        fleet = build_fleet()
        fleet.set_flag("failed", fleet.index_of("compute-0-1"), True)
        fleet.set_flag("powered", fleet.index_of("compute-0-2"), False)
        fleet.set_flag("responsive", fleet.index_of("compute-0-3"), False)
        engine = engine_for(fleet)
        report = engine.run(fleet.nodeset() | NodeSet.parse("ghost-0"), "w")
        assert report.counts() == (13, 0, 4)
        assert str(report.skipped_nodes()) == "compute-0-[1-3],ghost-0"
        reasons = {n: r.reason for n, r in report.results.items()
                   if r.status == "skipped"}
        assert reasons == {
            "compute-0-1": "failed",
            "compute-0-2": "powered off",
            "compute-0-3": "unresponsive",
            "ghost-0": "not in fleet table",
        }

    def test_drained_nodes_are_not_skipped(self):
        """Offline/draining are scheduler states; the admin plane still
        reaches them — that is how a rolling update updates its wave."""
        fleet = build_fleet()
        fleet.set_flag("draining", fleet.index_of("compute-0-0"), True)
        fleet.set_flag("offline", fleet.index_of("compute-0-1"), True)
        engine = engine_for(fleet)
        report = engine.run("compute-0-[0-1]", "yum -y update xnit")
        assert report.counts() == (2, 0, 0)

    def test_nonzero_rc_is_a_result_not_a_retry(self):
        fleet = build_fleet()
        engine = engine_for(fleet)

        def handler(node):
            return (2, "conflict") if node == "compute-0-0" else (0, "ok")

        report = engine.run(
            fleet.nodeset(), ShellCommand("rpm -i bad", handler=handler)
        )
        result = report.results["compute-0-0"]
        assert (result.status, result.rc, result.attempts) == ("failed", 2, 1)
        assert result.reason == "rc 2"
        assert engine.kernel.trace.count("shell.retry") == 0
        assert str(report.by_rc()[2]) == "compute-0-0"
        assert report.worst_rc == 2

    def test_transport_failure_retried_then_succeeds(self):
        fleet = build_fleet()
        engine = engine_for(fleet)
        calls = {"n": 0}

        def flaky(node):
            if node == "compute-0-0":
                calls["n"] += 1
                if calls["n"] < 3:
                    raise ShellError("connection refused")
            return 0, "ok"

        report = engine.run(
            fleet.nodeset(), ShellCommand("svc restart", handler=flaky)
        )
        result = report.results["compute-0-0"]
        assert (result.status, result.attempts) == ("ok", 3)
        assert engine.kernel.trace.count("shell.retry") == 2

    def test_retries_exhausted_records_transport_rc(self):
        fleet = build_fleet(racks=1, per_rack=4)
        engine = engine_for(fleet)

        def refuse(node):
            raise ShellError("connection refused")

        report = engine.run(
            fleet.nodeset(), ShellCommand("w", handler=refuse),
            policy=RetryPolicy(max_attempts=2, base_delay_s=1.0),
        )
        assert report.counts() == (0, 4, 0)
        for result in report.results.values():
            assert result.rc is None and result.attempts == 2
        assert all(rc == TRANSPORT_RC for _, rc, _ in report.executed())
        assert str(report.by_rc()[TRANSPORT_RC]) == "compute-0-[0-3]"

    def test_node_dying_mid_flight_is_a_transport_failure(self):
        fleet = build_fleet(racks=1, per_rack=2)
        engine = engine_for(fleet)
        kernel = engine.kernel
        kernel.at(
            5.0,
            lambda: fleet.set_flag("failed", fleet.index_of("compute-0-0"), True),
            label="fault",
        )
        report = engine.run(
            fleet.nodeset(), ShellCommand("sleep 10", duration_s=10.0),
            timeout_s=30.0,
            policy=RetryPolicy(max_attempts=2, base_delay_s=1.0),
        )
        result = report.results["compute-0-0"]
        assert (result.status, result.rc, result.reason) == (
            "failed", None, "failed"
        )
        assert report.results["compute-0-1"].status == "ok"

    def test_timeout_burns_an_attempt(self):
        fleet = build_fleet(racks=1, per_rack=1)
        engine = engine_for(fleet)
        report = engine.run(
            fleet.nodeset(), ShellCommand("hang", duration_s=100.0),
            timeout_s=10.0,
            policy=RetryPolicy(max_attempts=2, base_delay_s=1.0),
        )
        result = report.results["compute-0-0"]
        assert result.status == "failed"
        assert result.reason == "timeout after 10s"

    def test_open_breaker_skips_instead_of_hammering(self):
        fleet = build_fleet(racks=1, per_rack=4)
        engine = engine_for(fleet)
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout_s=1000.0)
        breaker.record_failure(engine.kernel.now_s)
        report = engine.run(fleet.nodeset(), "w", breaker=breaker)
        assert report.counts() == (0, 0, 4)
        assert all(r.reason == "circuit open"
                   for r in report.results.values())

    def test_headnode_crash_unwinds_but_partials_survive(self):
        fleet = build_fleet(racks=1, per_rack=8)
        engine = engine_for(fleet)

        def boom(node):
            if node == "compute-0-5":
                raise HeadnodeCrashError("frontend died mid-sweep")
            return 0, "ok"

        with pytest.raises(HeadnodeCrashError):
            engine.run(
                fleet.nodeset(), ShellCommand("w", handler=boom), fanout=1
            )
        partial = engine.last_report
        assert partial is not None and not partial.complete
        assert str(partial.ok_nodes()) == "compute-0-[0-4]"

    def test_validation(self):
        fleet = build_fleet(racks=1, per_rack=1)
        engine = engine_for(fleet)
        with pytest.raises(ShellError):
            engine.run(fleet.nodeset(), "w", fanout=0)
        with pytest.raises(ShellError):
            engine.run(fleet.nodeset(), "w", timeout_s=0)
        with pytest.raises(ShellError):
            ShellCommand("")
        with pytest.raises(ShellError):
            ShellCommand("w", jitter=1.5)
        with pytest.raises(ShellError):
            ShellCommand("w", duration_s=-1)

    @given(
        fanout=st.integers(1, 8),
        nodes=st.integers(1, 40),
        jitter=st.floats(0.0, 0.5),
        flaky=st.sets(st.integers(0, 39), max_size=6),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_fanout_never_exceeded(self, fanout, nodes, jitter, flaky, seed):
        """At every simulated instant at most ``fanout`` worker slots are
        held — including through retries and backoff — reconstructed from
        each node's [started_s, ended_s) interval, not from the engine's
        own counter."""
        fleet = build_fleet(racks=1, per_rack=nodes)
        engine = engine_for(fleet, seed=seed)

        def handler(node):
            if int(node.rsplit("-", 1)[1]) in flaky:
                raise ShellError("connection refused")
            return 0, "ok"

        report = engine.run(
            fleet.nodeset(),
            ShellCommand("w", duration_s=5.0, jitter=jitter, handler=handler),
            fanout=fanout,
            policy=RetryPolicy(max_attempts=3, base_delay_s=2.0, jitter=0.2),
        )
        assert report.complete
        assert report.max_inflight <= fanout
        steps = []
        for result in report.results.values():
            if result.started_s is None:
                continue
            steps.append((result.started_s, 1))
            steps.append((result.ended_s, -1))
        # At equal times a freed slot is reused by the next dispatch, so
        # ends sort before starts.
        held = peak = 0
        for _, delta in sorted(steps, key=lambda s: (s[0], s[1])):
            held += delta
            peak = max(peak, held)
        assert peak <= fanout

    def test_run_one_reuses_call_with_retry(self):
        fleet = build_fleet(racks=1, per_rack=2)
        engine = engine_for(fleet)
        rc, output = engine.run_one(
            "compute-0-0", ShellCommand("uptime", duration_s=3.0)
        )
        assert (rc, output) == (0, "ok")
        assert engine.kernel.now_s == pytest.approx(3.0)

        fleet.set_flag("responsive", fleet.index_of("compute-0-1"), False)
        with pytest.raises(RetryExhaustedError):
            engine.run_one(
                "compute-0-1", "uptime",
                policy=RetryPolicy(max_attempts=3, base_delay_s=1.0),
            )
        # the retry loop is repro.faults.call_with_retry, trace-visible
        assert engine.kernel.trace.count("fault.retry") == 2
        assert engine.kernel.trace.count("fault.giveup") == 1


# ---------------------------------------------------------------------------
# scheduler drain deadlines (the straggler gate)


class TestDrainDeadline:
    def setup_scheduler(self, runtime_s=500.0):
        fleet = build_fleet(racks=1, per_rack=4)
        kernel = SimKernel(seed=3)
        resources = ClusterResources.from_fleet(fleet)
        scheduler = TorqueScheduler(resources, kernel=kernel)
        scheduler.submit(
            Job(name="md-0", user="amy", cores=4, runtime_s=runtime_s,
                walltime_limit_s=4000.0)
        )
        return fleet, kernel, resources, scheduler

    def test_deadline_force_requeues_stragglers(self):
        fleet, kernel, resources, scheduler = self.setup_scheduler()
        scheduler.drain_node("compute-0-0", deadline_s=50.0)
        assert resources.is_draining("compute-0-0")
        kernel.run_until(60.0)
        assert kernel.trace.count("job.requeue") == 1
        assert resources.is_offline("compute-0-0")
        # the requeued job restarted on a free node
        assert kernel.trace.count("job.start") == 2
        scheduler.undrain_node("compute-0-0")
        assert not resources.is_draining("compute-0-0")
        assert not resources.is_offline("compute-0-0")

    def test_without_deadline_drain_waits_for_the_job(self):
        fleet, kernel, resources, scheduler = self.setup_scheduler()
        scheduler.drain_node("compute-0-0")
        kernel.run_until(499.0)
        assert resources.is_draining("compute-0-0")
        kernel.run_until(501.0)
        assert resources.is_offline("compute-0-0")
        assert kernel.trace.count("job.requeue") == 0

    def test_idle_node_drains_immediately_despite_deadline(self):
        fleet, kernel, resources, scheduler = self.setup_scheduler()
        scheduler.drain_node("compute-0-3", deadline_s=50.0)
        assert resources.is_offline("compute-0-3")
        kernel.run_until(60.0)  # the deadline event fires vacuously
        assert kernel.trace.count("job.requeue") == 0

    def test_deadline_validation(self):
        _, _, _, scheduler = self.setup_scheduler()
        with pytest.raises(ReproError):
            scheduler.drain_node("compute-0-0", deadline_s=0.0)


# ---------------------------------------------------------------------------
# rolling updates


def rolling_scenario(seed, *, flap_rack=1, max_failures=5, limit=None):
    """A 3-rack sweep where one rack's uplink flaps mid-sweep."""
    fleet = build_fleet(racks=3, per_rack=16)
    kernel = SimKernel(seed=seed)
    resources = ClusterResources.from_fleet(fleet)
    scheduler = TorqueScheduler(resources, kernel=kernel)
    scheduler.submit(
        Job(name="md-0", user="amy", cores=4, runtime_s=600.0,
            walltime_limit_s=4000.0)
    )
    tree = GmetadTree("t", kernel=kernel)
    indices = fleet.ordered_indices()
    for rack in range(3):
        tree.add_rack(
            FleetRack(f"rack{rack}", fleet,
                      [i for i in indices if fleet.racks[i] == rack])
        )
    window = (100.0, 400.0)

    def handler(node):
        if (fleet.racks[fleet.index_of(node)] == flap_rack
                and window[0] <= kernel.now_s < window[1]):
            raise ShellError("link flap")
        return 0, "updated"

    engine = ShellEngine(fleet, kernel=kernel)
    update = RollingUpdate(
        engine, scheduler=scheduler, tree=tree,
        wave_size=16, fanout=8, timeout_s=30.0,
        policy=RetryPolicy(max_attempts=2, base_delay_s=2.0, jitter=0.1),
        max_failures=max_failures, rack_failures_limit=limit,
        drain_deadline_s=40.0, health_cycles=1,
    )
    command = ShellCommand("yum -y update xnit", duration_s=10.0, jitter=0.1,
                           handler=handler)
    report = update.run(fleet.nodeset(), command)
    return fleet, kernel, resources, update, report, window


class TestRollingUpdate:
    def test_threshold_pauses_then_resume_completes(self):
        fleet, kernel, resources, update, report, window = rolling_scenario(11)
        assert report.state == "paused"
        assert "exceed max_failures=5" in report.pause_reason
        assert str(report.failed_nodes()) == "compute-1-[0-15]"
        assert len(report.remaining()) == 16  # rack 2 untouched
        # failures are parked offline, nothing left draining
        assert resources.draining_nodes() == []
        assert resources.is_offline("compute-1-0")
        with pytest.raises(ShellError):
            update.run(fleet.nodeset(), "again")  # not idle any more

        kernel.run_until(window[1] + 1.0)
        final = update.resume()
        assert final.state == "succeeded"
        assert str(final.ok_nodes()) == "compute-0-[0-15],compute-2-[0-15]"
        assert resources.draining_nodes() == []
        assert rolling_confluence_problems(
            kernel.trace.events, resources=resources
        ) == []

    def test_abort_mode_stops_for_good(self):
        fleet = build_fleet(racks=1, per_rack=8)
        kernel = SimKernel(seed=5)

        def refuse(node):
            raise ShellError("no route to host")

        update = RollingUpdate(
            ShellEngine(fleet, kernel=kernel),
            wave_size=4, fanout=4, max_failures=2, on_threshold="abort",
            policy=RetryPolicy(max_attempts=1, base_delay_s=1.0),
            health_cycles=0,
        )
        report = update.run(
            fleet.nodeset(), ShellCommand("w", handler=refuse)
        )
        assert report.state == "aborted"
        with pytest.raises(ShellError):
            update.resume()
        aborts = [e for e in kernel.trace.events if e.kind == "shell.abort"]
        assert len(aborts) == 1
        assert aborts[0].data["reason"].startswith("sweep aborted:")
        assert aborts[0].data["nodes"] == "compute-0-[4-7]"

    def test_rack_failure_domain_skips_the_rest_of_the_rack(self):
        fleet, kernel, resources, update, report, window = rolling_scenario(
            13, max_failures=1000, limit=8
        )
        # rack 1's first wave fails 16 >= 8 -> the rack is aborted, but the
        # sweep itself carries on and succeeds around it.
        assert report.state == "succeeded"
        assert 1 in update._aborted_racks
        assert str(report.failed_nodes()) == "compute-1-[0-15]"
        aborts = [e for e in kernel.trace.events if e.kind == "shell.abort"]
        assert len(aborts) == 1
        assert "rack 1" in aborts[0].data["reason"]
        assert rolling_confluence_problems(
            kernel.trace.events, resources=resources
        ) == []

    def test_unhealthy_after_update_counts_as_failure(self):
        """The health gate: a node whose heartbeat dies after a 'successful'
        command is a failure, and is parked instead of undrained."""
        fleet = build_fleet(racks=1, per_rack=4)
        kernel = SimKernel(seed=9)
        resources = ClusterResources.from_fleet(fleet)
        scheduler = TorqueScheduler(resources, kernel=kernel)
        tree = GmetadTree("t", kernel=kernel, poll_period_s=15.0)
        tree.add_rack(FleetRack("rack0", fleet, fleet.ordered_indices(),
                                dead_after_misses=3))

        def bad_update(node):
            if node == "compute-0-2":
                # the update "succeeds" but wedges the node's heartbeat
                kernel.at(
                    kernel.now_s + 1.0,
                    lambda: fleet.set_flag(
                        "responsive", fleet.index_of(node), False
                    ),
                    label="wedge",
                )
            return 0, "updated"

        update = RollingUpdate(
            ShellEngine(fleet, kernel=kernel), scheduler=scheduler, tree=tree,
            wave_size=4, fanout=4, health_cycles=4,
        )
        report = update.run(
            fleet.nodeset(), ShellCommand("fw flash", handler=bad_update)
        )
        assert report.state == "succeeded"
        wave = report.waves[0]
        assert str(wave.unhealthy) == "compute-0-2"
        assert str(wave.failed) == "compute-0-2"
        assert wave.status == "degraded"
        assert resources.is_offline("compute-0-2")
        assert not resources.is_draining("compute-0-2")

    def test_validation(self):
        fleet = build_fleet(racks=1, per_rack=2)
        engine = engine_for(fleet)
        with pytest.raises(ShellError):
            RollingUpdate(engine, wave_size=0)
        with pytest.raises(ShellError):
            RollingUpdate(engine, on_threshold="explode")
        with pytest.raises(ShellError):
            RollingUpdate(engine, max_failure_fraction=1.5)
        with pytest.raises(ShellError):
            RollingUpdate(engine, rack_failures_limit=0)
        with pytest.raises(ShellError):
            update = RollingUpdate(engine)
            update.resume()  # nothing paused

    @given(seed=st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_faulted_sweep_is_seed_deterministic(self, seed):
        """Same seed, same faults: the whole paused-then-resumed sweep
        serializes to byte-identical JSONL."""

        def one_run():
            fleet, kernel, _, update, report, window = rolling_scenario(seed)
            if report.state == "paused":
                kernel.run_until(window[1] + 1.0)
                update.resume()
            return kernel.trace.to_jsonl()

        assert one_run() == one_run()


# ---------------------------------------------------------------------------
# the confluence audit (chaos invariant 7)


class TestConfluenceAudit:
    def test_wave_cannot_both_succeed_and_abort(self):
        events = [
            {"kind": "shell.wave", "data": {"wave": 2, "status": "ok"}},
            {"kind": "shell.abort", "data": {"wave": 2, "reason": "rack 0"}},
        ]
        problems = rolling_confluence_problems(events)
        assert problems == ["wave 2 both succeeded and aborted (rack 0)"]

    def test_leftover_draining_is_flagged(self):
        fleet = build_fleet(racks=1, per_rack=2)
        resources = ClusterResources.from_fleet(fleet)
        resources.set_draining("compute-0-1", True)
        events = [
            {"kind": "shell.wave", "data": {"wave": 0, "status": "ok"}}
        ]
        problems = rolling_confluence_problems(events, resources=resources)
        assert problems == [
            "rolling update left node(s) draining: compute-0-1"
        ]

    def test_vacuous_without_rolling_events(self):
        fleet = build_fleet(racks=1, per_rack=2)
        resources = ClusterResources.from_fleet(fleet)
        resources.set_draining("compute-0-0", True)
        assert rolling_confluence_problems([], resources=resources) == []


# ---------------------------------------------------------------------------
# acceptance: a 1,000-node sweep under a fault plan


class TestAcceptance:
    def scenario(self, seed=42):
        """5 racks x 200 nodes; crashes plus a rack-3 uplink flap."""
        fleet = FleetTable()
        for rack in range(5):
            for rank in range(200):
                fleet.add_row(
                    name=f"compute-{rack}-{rank}", appliance="compute",
                    rack=rack, rank=rank, cores=8, state="os-installed",
                )
        kernel = SimKernel(seed=seed)
        resources = ClusterResources.from_fleet(fleet)
        scheduler = TorqueScheduler(resources, kernel=kernel)
        for k in range(4):
            scheduler.submit(
                Job(name=f"md-{k}", user="amy", cores=8, runtime_s=300.0,
                    walltime_limit_s=4000.0)
            )
        tree = GmetadTree("t", kernel=kernel)
        indices = fleet.ordered_indices()
        for rack in range(5):
            tree.add_rack(
                FleetRack(f"rack{rack}", fleet,
                          [i for i in indices if fleet.racks[i] == rack])
            )
        # the fault plan: 4 node crashes early, one long rack-3 flap
        for k, name in enumerate(
            ["compute-4-7", "compute-4-90", "compute-2-11", "compute-0-150"]
        ):
            kernel.at(
                40.0 + 30.0 * k,
                lambda n=name: fleet.set_flag(
                    "responsive", fleet.index_of(n), False
                ),
                label=f"crash:{name}",
            )
        window = (150.0, 1500.0)

        def handler(node):
            if (fleet.racks[fleet.index_of(node)] == 3
                    and window[0] <= kernel.now_s < window[1]):
                raise ShellError("link flap: connection reset")
            return 0, "xnit 0.0.9 applied"

        engine = ShellEngine(fleet, kernel=kernel)
        update = RollingUpdate(
            engine, scheduler=scheduler, tree=tree,
            wave_size=128, fanout=32, timeout_s=30.0,
            policy=RetryPolicy(max_attempts=2, base_delay_s=2.0, jitter=0.1),
            max_failures=30, rack_failures_limit=20,
            drain_deadline_s=60.0, health_cycles=2,
        )
        command = ShellCommand("yum -y update xnit", duration_s=10.0,
                               jitter=0.2, handler=handler)
        report = update.run(fleet.nodeset(), command)
        return fleet, kernel, resources, update, report, window

    def test_bounded_degraded_pausable_resumable(self):
        fleet, kernel, resources, update, report, window = self.scenario()

        # crossed the sweep threshold when the flapped rack failed en masse
        assert report.state == "paused"
        assert "exceed max_failures=30" in report.pause_reason
        # rack 3 tripped its failure-domain limit
        assert 3 in update._aborted_racks
        # concurrency stayed bounded through the whole storm
        assert all(w.report.max_inflight <= 32 for w in report.waves
                   if w.report is not None)
        # pre-wave crashed nodes were skipped-and-reported, not raised
        skipped = report.skipped_nodes()
        failed = report.failed_nodes()
        assert all(str(f) for f in (skipped, failed))

        # the operator waits out the flap and resumes to completion
        kernel.run_until(max(kernel.now_s, window[1] + 1.0))
        final = update.resume()
        assert final.state == "succeeded"
        ok, failed, skipped = (
            final.ok_nodes(), final.failed_nodes(), final.skipped_nodes()
        )
        assert len(ok) + len(failed) + len(skipped) == 1000
        # every rack-3 node either failed during the flap or was skipped
        # once the rack aborted; nothing fell through the cracks
        rack3 = NodeSet.parse("compute-3-[0-199]")
        assert (rack3 & ok) == NodeSet()
        assert (rack3 & (failed | skipped)) == rack3
        # folded reporting, not 1,000-line listings
        assert "compute-3-[" in str(failed | skipped)
        # crashed nodes were skipped with a reason
        assert "compute-4-7" in skipped
        # confluence: no leftover drains, no ok-and-aborted wave
        assert rolling_confluence_problems(
            kernel.trace.events, resources=resources
        ) == []
        assert resources.draining_nodes() == []

"""The ``cluster-lint`` command line: lint cluster-definition files.

A definition file is any Python file exposing either a zero-argument
``cluster_definition()`` callable or a module-level ``DEFINITION`` object
returning/holding a :class:`~repro.analyze.spec.ClusterDefinition` — every
file under ``examples/`` does.  Exit codes follow linter convention so CI
can gate directly on the process status:

* ``0`` — no finding at/above the failure threshold (default: error);
* ``1`` — at least one gating finding;
* ``2`` — usage or definition-load failure.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import pathlib
import sys

from .diagnostic import Severity
from .engine import AnalysisResult, analyze
from .registry import RULES, AnalysisConfig, Baseline
from .spec import ClusterDefinition

__all__ = ["main", "load_definitions"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


class DefinitionLoadError(Exception):
    """A definition file could not be loaded or carries no definition."""


def load_definitions(path: str | pathlib.Path) -> list[ClusterDefinition]:
    """Import a Python file and pull its cluster definition(s) out.

    Looks for ``cluster_definition()`` (callable, may return one definition
    or a list) first, then a module-level ``DEFINITION``.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise DefinitionLoadError(f"{path}: no such file")
    spec = importlib.util.spec_from_file_location(
        f"cluster_lint_{path.stem}", path
    )
    if spec is None or spec.loader is None:
        raise DefinitionLoadError(f"{path}: not an importable Python file")
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        raise DefinitionLoadError(f"{path}: import failed: {exc}") from exc

    source = getattr(module, "cluster_definition", None)
    if callable(source):
        try:
            produced = source()
        except Exception as exc:
            raise DefinitionLoadError(
                f"{path}: cluster_definition() raised: {exc}"
            ) from exc
    else:
        produced = getattr(module, "DEFINITION", None)
        if produced is None:
            raise DefinitionLoadError(
                f"{path}: defines neither cluster_definition() nor DEFINITION"
            )
    definitions = list(produced) if isinstance(produced, (list, tuple)) else [produced]
    for definition in definitions:
        if not isinstance(definition, ClusterDefinition):
            raise DefinitionLoadError(
                f"{path}: expected ClusterDefinition, got "
                f"{type(definition).__name__}"
            )
    return definitions


def _list_rules() -> str:
    lines = ["CODE    SEVERITY  SUBSYSTEM   SUMMARY"]
    for rule in RULES.all_rules():
        lines.append(
            f"{rule.code:<8}{rule.severity.value:<10}{rule.subsystem:<12}"
            f"{rule.summary}"
        )
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cluster-lint",
        description="Pre-flight static analysis of cluster definitions.",
    )
    parser.add_argument(
        "files", nargs="*", help="Python files exposing cluster_definition()"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="format_"
    )
    parser.add_argument(
        "--only", default="", help="comma-separated rule codes to run exclusively"
    )
    parser.add_argument(
        "--disable", default="", help="comma-separated rule codes to skip"
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "info", "never"),
        default="error",
        help="minimum severity that fails the run (default: error)",
    )
    parser.add_argument(
        "--baseline", default="", help="baseline suppression file to apply"
    )
    parser.add_argument(
        "--write-baseline",
        default="",
        metavar="PATH",
        help="write current findings to PATH as a baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def _parse_codes(raw: str) -> frozenset[str]:
    return frozenset(c.strip() for c in raw.split(",") if c.strip())


def main(argv: list[str] | None = None, *, stdout=None) -> int:
    out = stdout or sys.stdout
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules(), file=out)
        return EXIT_CLEAN
    if not args.files:
        parser.print_usage(out)
        print("cluster-lint: error: no definition files given", file=out)
        return EXIT_USAGE

    unknown = [
        c for c in (_parse_codes(args.only) | _parse_codes(args.disable))
        if c not in RULES
    ]
    if unknown:
        print(f"cluster-lint: error: unknown rule code(s): {sorted(unknown)}", file=out)
        return EXIT_USAGE

    if args.fail_on == "never":
        # A threshold below every severity: nothing can gate.
        fail_on = Severity.INFO
        never_fail = True
    else:
        fail_on = Severity(args.fail_on)
        never_fail = False
    config = AnalysisConfig(
        only=_parse_codes(args.only) or None,
        disabled=_parse_codes(args.disable),
        fail_on=fail_on,
    )

    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.from_text(
                pathlib.Path(args.baseline).read_text()
            )
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"cluster-lint: error: bad baseline: {exc}", file=out)
            return EXIT_USAGE

    results: list[AnalysisResult] = []
    for path in args.files:
        try:
            definitions = load_definitions(path)
        except DefinitionLoadError as exc:
            print(f"cluster-lint: error: {exc}", file=out)
            return EXIT_USAGE
        for definition in definitions:
            results.append(
                analyze(definition, config=config, baseline=baseline)
            )

    if args.write_baseline:
        merged = Baseline()
        for result in results:
            for diag in result.diagnostics:
                merged.add(diag, "accepted by --write-baseline")
        pathlib.Path(args.write_baseline).write_text(merged.to_text())
        print(
            f"cluster-lint: wrote {len(merged.suppressions)} suppression(s) "
            f"to {args.write_baseline}",
            file=out,
        )
        return EXIT_CLEAN

    if args.format_ == "json":
        document = {
            "schema": "repro.analyze.run/v1",
            "results": [r.to_dict() for r in results],
        }
        print(json.dumps(document, indent=2), file=out)
    else:
        for result in results:
            print(result.render_text(), file=out)

    if never_fail:
        return EXIT_CLEAN
    return (
        EXIT_FINDINGS if any(r.failed for r in results) else EXIT_CLEAN
    )

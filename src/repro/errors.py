"""Exception hierarchy for the repro package.

Every subsystem raises subclasses of :class:`ReproError` so callers can catch
all simulation failures with one handler while still being able to distinguish
hardware-assembly problems from package-dependency problems, etc.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "HardwareError",
    "AssemblyError",
    "PowerBudgetError",
    "ClearanceError",
    "CatalogError",
    "DistroError",
    "FilesystemError",
    "ServiceError",
    "UserError",
    "ModuleEnvError",
    "CommandError",
    "RpmError",
    "PackageNotFoundError",
    "DependencyError",
    "ConflictError",
    "TransactionError",
    "YumError",
    "RepoConfigError",
    "RepoPriorityError",
    "RocksError",
    "FleetError",
    "RollError",
    "KickstartError",
    "ProvisionError",
    "NetworkError",
    "DhcpError",
    "PxeError",
    "MpiError",
    "SimulationError",
    "TraceError",
    "FaultError",
    "RetryExhaustedError",
    "NodeOfflineError",
    "HeadnodeCrashError",
    "RecoveryError",
    "JournalError",
    "CheckpointError",
    "SchedulerError",
    "JobError",
    "ShellError",
    "RepodError",
    "RepodFetchError",
    "CasError",
    "CasIntegrityError",
    "LinpackError",
    "CompatibilityError",
    "DeploymentError",
    "TrainingError",
]


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


# --- hardware -------------------------------------------------------------


class HardwareError(ReproError):
    """Base class for hardware-simulation errors."""


class AssemblyError(HardwareError):
    """A node or chassis build violates a physical constraint."""


class PowerBudgetError(AssemblyError):
    """Component power draw exceeds the supply rating."""


class ClearanceError(AssemblyError):
    """A component does not physically fit in its allotted space."""


class CatalogError(HardwareError):
    """An unknown part was requested from the parts catalogue."""


# --- distro ----------------------------------------------------------------


class DistroError(ReproError):
    """Base class for simulated-OS errors."""


class FilesystemError(DistroError):
    """Invalid filesystem operation (missing path, not a directory, ...)."""


class ServiceError(DistroError):
    """Invalid service-manager operation."""


class UserError(DistroError):
    """Invalid user-database operation."""


class ModuleEnvError(DistroError):
    """Invalid environment-modules operation."""


class CommandError(DistroError):
    """A simulated shell command failed or was not found."""


# --- rpm / yum ---------------------------------------------------------------


class RpmError(ReproError):
    """Base class for RPM-engine errors."""


class PackageNotFoundError(RpmError):
    """No package with the requested name/capability exists."""


class DependencyError(RpmError):
    """A requirement could not be satisfied."""

    def __init__(self, message: str, missing: tuple[str, ...] = ()):
        super().__init__(message)
        #: capabilities that could not be resolved
        self.missing = missing


class ConflictError(RpmError):
    """Two packages in a transaction conflict."""


class TransactionError(RpmError):
    """A transaction could not be committed; the DB is unchanged."""


class YumError(RpmError):
    """Base class for yum-layer errors."""


class RepoConfigError(YumError):
    """A .repo configuration file is malformed."""


class RepoPriorityError(YumError):
    """Invalid repository priority value."""


# --- rocks ------------------------------------------------------------------


class RocksError(ReproError):
    """Base class for Rocks-provisioner errors."""


class FleetError(RocksError):
    """Invalid fleet-table operation or NodeSet expression."""


class RollError(RocksError):
    """Invalid roll definition or selection."""


class KickstartError(RocksError):
    """The kickstart graph is malformed (cycle, missing node, ...)."""


class ProvisionError(RocksError):
    """Node provisioning failed (no disk, PXE failure, ...)."""


# --- network / mpi ------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for fabric errors."""


class DhcpError(NetworkError):
    """DHCP protocol failure (pool exhausted, unknown MAC, ...)."""


class PxeError(NetworkError):
    """PXE boot failure."""


class MpiError(ReproError):
    """Invalid simulated-MPI operation."""


# --- simulation kernel ---------------------------------------------------------


class SimulationError(ReproError):
    """Invalid simulation-kernel operation (time regression, dead handle, ...)."""


class TraceError(SimulationError):
    """A trace event violates the schema (unknown kind, missing field, ...)."""


# --- fault injection / recovery -------------------------------------------------


class FaultError(ReproError):
    """Base class for injected-fault and recovery-machinery errors."""


class RetryExhaustedError(FaultError):
    """An operation failed on every attempt a :class:`RetryPolicy` allowed.

    ``last_error`` carries the final underlying failure; ``attempts`` the
    number of tries made before giving up.
    """

    def __init__(
        self, message: str, *, attempts: int = 0, last_error: Exception | None = None
    ):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class NodeOfflineError(FaultError):
    """An operation was routed to a node that is crashed, drained, or off."""


class HeadnodeCrashError(FaultError):
    """The simulated frontend died without warning.

    This exception is control flow, not an error report: it models the
    process dying, so nothing may catch it to "handle" the failure —
    retry loops and transaction rollback handlers must let it propagate
    (a crashed head node cannot run its own cleanup).  Recovery happens
    out-of-band through :mod:`repro.recovery` (checkpoint restore plus
    journal replay/rollback).
    """


# --- crash recovery (repro.recovery) ---------------------------------------------


class RecoveryError(FaultError):
    """Base class for checkpoint/journal/supervisor machinery errors."""


class JournalError(RecoveryError):
    """Invalid write-ahead-journal operation (closed txn, unknown op, ...)."""


class CheckpointError(RecoveryError):
    """A snapshot could not be captured, loaded, or verified on restore."""


# --- scheduler ----------------------------------------------------------------


class SchedulerError(ReproError):
    """Base class for batch-scheduler errors."""


class JobError(SchedulerError):
    """Invalid job specification or state transition."""


# --- parallel admin execution (repro.shell) --------------------------------------


class ShellError(ReproError):
    """Invalid parallel-execution request or a command transport failure."""


# --- repository service (repro.repod) --------------------------------------------


class RepodError(ReproError):
    """Invalid repository-service request or configuration."""


class RepodFetchError(RepodError):
    """A fetch through the repository service failed (shed, refused, reset).

    ``kind`` classifies the failure so callers can distinguish load
    shedding (``shed``) from a dead origin (``refused``/``crash``) and a
    flapping uplink (``reset``) — shedding is the service protecting
    itself and is worth retrying later; a reset mid-transfer is transient.
    """

    def __init__(self, message: str, *, kind: str = "failed"):
        super().__init__(message)
        self.kind = kind


# --- content-addressed delivery (repro.cas) --------------------------------------


class CasError(ReproError):
    """Invalid content-addressed store or stratum-hierarchy operation."""


class CasIntegrityError(CasError):
    """Chunk content failed verification (digest mismatch, missing chunk)."""


# --- linpack / core -------------------------------------------------------------


class LinpackError(ReproError):
    """Invalid HPL configuration."""


class CompatibilityError(ReproError):
    """A compatibility audit could not be performed."""


class DeploymentError(ReproError):
    """A site deployment specification is invalid."""


class TrainingError(ReproError):
    """Invalid curriculum/training session operation."""

"""Retry/backoff policies and the circuit breaker.

Campus-cluster recovery loops (PXE re-boot, mirror re-sync, GridFTP
re-transfer) all share the same shape: try, fail, wait an exponentially
growing-but-jittered delay, try again, give up after a bounded number of
attempts or a wall-clock budget.  :class:`RetryPolicy` is that shape as
data; :func:`call_with_retry` executes it *on the simulation kernel* —
backoff delays are spent with ``kernel.run_until`` so co-simulated events
fire inside the wait, jitter comes from the kernel's seeded RNG (same seed
⇒ same delays ⇒ byte-identical traces), and every attempt is published as
a ``fault.retry`` / ``fault.giveup`` trace event.

:class:`CircuitBreaker` guards a repeatedly failing dependency: after
``failure_threshold`` consecutive failures the circuit opens and calls
fail fast (no load on the dying service) until ``reset_timeout_s`` of
simulated time has passed, then one probe is allowed through (half-open).

:class:`RetryBudget` guards the *aggregate*: a token bucket shared by all
of one client's retry loops, so a degraded dependency sees the retry load
decay (tokens run out, new retries are denied and fail fast) instead of
every caller independently backing off into a synchronized storm.  SRE
folklore calls this a retry budget; repro.repod's update-storm scenario
is the workload that motivates it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, TypeVar

from ..errors import FaultError, HeadnodeCrashError, ReproError, RetryExhaustedError

__all__ = ["RetryPolicy", "CircuitBreaker", "RetryBudget", "call_with_retry"]

T = TypeVar("T")


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative exponential-backoff-with-jitter retry behaviour.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    try plus two retries.  ``deadline_s`` is a total simulated-time budget
    measured from the first attempt; once it is exhausted no further retry
    is scheduled even if attempts remain.  ``jitter`` is the +/- fraction
    applied to each delay (0 disables it; determinism is preserved either
    way because the randomness comes from the kernel RNG).
    """

    max_attempts: int = 4
    base_delay_s: float = 1.0
    multiplier: float = 2.0
    max_delay_s: float = 60.0
    jitter: float = 0.1
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise FaultError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise FaultError("delays must be non-negative")
        if self.multiplier < 1:
            raise FaultError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0 <= self.jitter < 1:
            raise FaultError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise FaultError("deadline must be positive")

    def delay_for(self, attempt: int, rng: random.Random | None = None) -> float:
        """Backoff before retry number ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise FaultError(f"attempt must be >= 1, got {attempt}")
        delay = min(
            self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1)
        )
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay


class CircuitBreaker:
    """Consecutive-failure circuit breaker over simulated time.

    States: *closed* (calls flow), *open* (calls fail fast with
    :class:`~repro.errors.FaultError`), *half-open* (one probe allowed
    after ``reset_timeout_s``; success closes the circuit, failure
    re-opens it).
    """

    def __init__(
        self, *, failure_threshold: int = 5, reset_timeout_s: float = 300.0
    ) -> None:
        if failure_threshold < 1:
            raise FaultError("failure threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise FaultError("reset timeout must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._consecutive_failures = 0
        self._opened_at_s: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        return (
            "closed"
            if self._opened_at_s is None
            else ("half-open" if self._probing else "open")
        )

    def allow(self, now_s: float) -> bool:
        """May a call proceed at ``now_s``?  (half-open admits one probe)"""
        if self._opened_at_s is None:
            return True
        if now_s - self._opened_at_s >= self.reset_timeout_s:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._opened_at_s = None
        self._probing = False

    def record_failure(self, now_s: float) -> None:
        self._consecutive_failures += 1
        if self._probing or self._consecutive_failures >= self.failure_threshold:
            self._opened_at_s = now_s
            self._probing = False

    def guard(self, now_s: float, service: str) -> None:
        """Raise :class:`FaultError` when the circuit refuses the call."""
        if not self.allow(now_s):
            remaining = self.reset_timeout_s - (now_s - (self._opened_at_s or 0.0))
            raise FaultError(
                f"circuit open for {service}: "
                f"{self._consecutive_failures} consecutive failure(s), "
                f"retry allowed in {remaining:.0f}s"
            )


class RetryBudget:
    """A token bucket that caps how many retries a client may spend.

    The bucket starts full at ``capacity`` tokens and refills continuously
    at ``refill_per_s``; each retry costs one token (:meth:`try_spend`).
    When the bucket is empty the retry is *denied* — the caller gives up
    immediately instead of adding another attempt to a dependency that is
    already drowning.  Individual backoff (:class:`RetryPolicy`) shapes
    *when* a retry lands; the budget bounds *how many* land at all, which
    is what turns a fleet-wide outage into decaying load instead of a
    synchronized retry storm.

    Wire a kernel in and every decision is published as a
    ``repod.retry_budget`` trace event (the budget was built for the XNIT
    repository service, but it is generic); without one it is pure
    bookkeeping.  Refill is computed lazily from elapsed simulated time,
    so the bucket never schedules events of its own.
    """

    def __init__(
        self,
        *,
        capacity: float = 10.0,
        refill_per_s: float = 0.1,
        owner: str = "retry-budget",
        kernel=None,
    ) -> None:
        if capacity <= 0:
            raise FaultError(f"budget capacity must be positive, got {capacity}")
        if refill_per_s < 0:
            raise FaultError(
                f"refill rate must be non-negative, got {refill_per_s}"
            )
        self.capacity = float(capacity)
        self.refill_per_s = float(refill_per_s)
        self.owner = owner
        self.kernel = kernel
        self._tokens = float(capacity)
        self._updated_s = 0.0 if kernel is None else kernel.now_s
        self.granted = 0
        self.denied = 0

    def tokens(self, now_s: float) -> float:
        """The balance at ``now_s`` (refills lazily; never rewinds)."""
        if now_s > self._updated_s:
            self._tokens = min(
                self.capacity,
                self._tokens + (now_s - self._updated_s) * self.refill_per_s,
            )
            self._updated_s = now_s
        return self._tokens

    def try_spend(self, now_s: float, *, op: str = "retry") -> bool:
        """Spend one token for a retry of ``op``; False = retry denied."""
        balance = self.tokens(now_s)
        allowed = balance >= 1.0
        if allowed:
            self._tokens = balance - 1.0
            self.granted += 1
        else:
            self.denied += 1
        if self.kernel is not None:
            self.kernel.trace.emit(
                "repod.retry_budget", t_s=now_s, subsystem="faults",
                owner=self.owner, op=op, allowed=allowed,
                tokens=round(self._tokens, 6),
            )
        return allowed

    def state_dict(self) -> dict[str, float | int | str]:
        return {
            "owner": self.owner,
            "capacity": self.capacity,
            "refill_per_s": self.refill_per_s,
            "tokens": self._tokens,
            "updated_s": self._updated_s,
            "granted": self.granted,
            "denied": self.denied,
        }


def call_with_retry(
    kernel,
    fn: Callable[[], T],
    *,
    policy: RetryPolicy,
    op: str,
    subsystem: str = "faults",
    retry_on: tuple[type[BaseException], ...] = (ReproError,),
    breaker: CircuitBreaker | None = None,
    budget: RetryBudget | None = None,
) -> T:
    """Run ``fn`` under ``policy`` on a :class:`~repro.sim.SimKernel`.

    Backoff is spent as simulated time (co-simulated events due inside the
    wait fire first), each retry emits ``fault.retry``, and exhaustion
    emits ``fault.giveup`` then raises
    :class:`~repro.errors.RetryExhaustedError` chaining the last failure.

    With a ``deadline_s`` on the policy, a backoff that would oversleep
    past the deadline is *clamped*: the loop sleeps exactly the remaining
    budget (so co-simulated events inside that window still fire and the
    giveup lands on the deadline, never past it) and the ``fault.giveup``
    event reports the unslept remainder as ``unslept_s``.

    A :class:`RetryBudget` governs the loop on top of the policy: every
    retry must win a token first, and a denied token is an immediate
    giveup (reason ``retry budget exhausted``) — no backoff, no further
    load on the failing dependency.
    """
    if breaker is not None:
        breaker.guard(kernel.now_s, op)
    started_s = kernel.now_s
    attempt = 0
    while True:
        attempt += 1
        try:
            result = fn()
        except HeadnodeCrashError:
            # A head-node crash is control flow, not a transient failure:
            # the machine running this retry loop just died, so no retry,
            # no backoff, no giveup event — the exception must unwind the
            # whole run untouched (recovery is checkpoint + journal).
            raise
        except retry_on as exc:
            if breaker is not None:
                breaker.record_failure(kernel.now_s)
            out_of_attempts = attempt >= policy.max_attempts
            delay = policy.delay_for(attempt, kernel.rng)
            remaining_s = (
                None
                if policy.deadline_s is None
                else policy.deadline_s - (kernel.now_s - started_s)
            )
            over_deadline = remaining_s is not None and delay > remaining_s
            if out_of_attempts or over_deadline:
                extra: dict[str, float] = {}
                if over_deadline and not out_of_attempts:
                    # Sleep only what the deadline allows — the giveup
                    # lands exactly on the deadline, never past it — and
                    # report the remainder the loop declined to sleep.
                    slept_s = max(0.0, remaining_s)
                    if slept_s > 0:
                        kernel.run_until(kernel.now_s + slept_s)
                    extra["unslept_s"] = delay - slept_s
                kernel.trace.emit(
                    "fault.giveup", t_s=kernel.now_s, subsystem=subsystem,
                    op=op, attempts=attempt, **extra,
                )
                reason = "deadline exceeded" if over_deadline else "attempts exhausted"
                raise RetryExhaustedError(
                    f"{op} failed after {attempt} attempt(s) ({reason}): {exc}",
                    attempts=attempt,
                    last_error=exc,
                ) from exc
            if budget is not None and not budget.try_spend(kernel.now_s, op=op):
                kernel.trace.emit(
                    "fault.giveup", t_s=kernel.now_s, subsystem=subsystem,
                    op=op, attempts=attempt,
                )
                raise RetryExhaustedError(
                    f"{op} failed after {attempt} attempt(s) "
                    f"(retry budget exhausted): {exc}",
                    attempts=attempt,
                    last_error=exc,
                ) from exc
            kernel.trace.emit(
                "fault.retry", t_s=kernel.now_s, subsystem=subsystem,
                op=op, attempt=attempt, delay_s=delay,
            )
            kernel.run_until(kernel.now_s + delay)
        else:
            if breaker is not None:
                breaker.record_success()
            return result

"""Structured diagnostics: the unit of output of every analyzer pass.

A :class:`Diagnostic` is one finding: a stable rule code (``KS101``), a
severity, a human-readable message, and enough location context to act on it
without re-running the analysis.  ``str(diag)`` is deliberately just the
message — pre-existing list-of-strings APIs (``Transaction.check``) are kept
alive by mapping ``str`` over their diagnostics; the structured fields ride
along for callers that want them.

This module has no dependencies on the rest of the package so that any
subsystem (rpm, rocks, yum, ...) can produce diagnostics without import
cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

__all__ = ["Severity", "Diagnostic"]


class Severity(str, Enum):
    """How bad a finding is.

    * ``ERROR`` — the definition will fail at deploy time (CI gates on these);
    * ``WARNING`` — deploys, but almost certainly not what was intended;
    * ``INFO`` — worth knowing; never fails a gate by default.
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    @property
    def rank(self) -> int:
        """Ordering key: lower is more severe."""
        return {"error": 0, "warning": 1, "info": 2}[self.value]

    def at_least(self, other: "Severity") -> bool:
        """True if this severity is as severe as ``other`` or more so."""
        return self.rank <= other.rank


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``location`` is a subsystem-scoped path such as ``kickstart:node/hpc`` or
    ``repo:[xsede]`` — stable across runs so baselines can match on it.
    ``hint`` says what to do about the problem, not just what the problem is.
    """

    code: str
    severity: Severity
    message: str
    subsystem: str = ""
    location: str = ""
    hint: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity used by baseline suppression files."""
        return f"{self.code}@{self.location}" if self.location else self.code

    def to_dict(self) -> dict:
        """JSON-stable representation (schema documented in docs/ANALYZE.md)."""
        return {
            "code": self.code,
            "severity": self.severity.value,
            "subsystem": self.subsystem,
            "location": self.location,
            "message": self.message,
            "hint": self.hint,
        }

    def render(self) -> str:
        """Full one-line text rendering for CLI output."""
        where = f" {self.location}:" if self.location else ""
        line = f"{self.severity.value:<7} {self.code}{where} {self.message}"
        if self.hint:
            line += f"\n        hint: {self.hint}"
        return line

    @property
    def sort_key(self) -> tuple:
        """Severity first, then code, then location — deterministic output."""
        return (self.severity.rank, self.code, self.location, self.message)

    def __str__(self) -> str:
        return self.message

"""Chassis models and populated machines.

Three chassis carry the paper:

* **LittleFe v4 frame** — an open luggable frame with six mini-ITX shelves,
  under 50 lb (Figures 1-2).  Historically powered by one shared DC supply;
  the modified build instead hangs an individual PSU off every shelf.
* **Limulus HPC200 deskside case** — one head node plus three diskless
  compute blades behind a single 850 W supply, 50 lb (Figure 3).
* **Generic 1U rack chassis** — used when rebuilding the Table 3 campus
  deployments.

A :class:`Machine` is a chassis populated with validated nodes; populating
one re-checks power (shared PSU vs sum of node draws) and slot counts, so a
held :class:`Machine` is always buildable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import AssemblyError
from .node import Node, NodeRole
from .power import PsuModel, check_budget

__all__ = [
    "ChassisModel",
    "Machine",
    "LITTLEFE_V4_FRAME",
    "LIMULUS_DESKSIDE",
    "RACK_1U",
    "populate",
]


@dataclass(frozen=True)
class ChassisModel:
    """A chassis/frame SKU.

    ``shared_psu`` is ``None`` when every node supplies its own power (the
    modified-LittleFe arrangement) — in that case every node handed to
    :func:`populate` must carry a PSU.  ``max_board_form_factor`` is the
    largest board that fits a slot.
    """

    model: str
    slots: int
    max_board_form_factor: str
    weight_lb: float
    portable: bool
    shared_psu: PsuModel | None
    price_usd: float

    def __post_init__(self) -> None:
        if self.slots <= 0:
            raise AssemblyError(f"chassis {self.model} has no slots")


#: Form factors ordered small to large for the slot fit check.
_FORM_FACTOR_ORDER = ["mini-ITX", "micro-ATX", "ATX"]


def _form_factor_fits(board_ff: str, max_ff: str) -> bool:
    try:
        return _FORM_FACTOR_ORDER.index(board_ff) <= _FORM_FACTOR_ORDER.index(max_ff)
    except ValueError:
        raise AssemblyError(f"unknown form factor {board_ff!r} or {max_ff!r}") from None


#: The LittleFe v4 frame.  ``shared_psu=None``: the modified build uses
#: per-node supplies (Section 5.1).  For the historical single-supply build,
#: pass ``shared_psu_override`` to :func:`populate`.
LITTLEFE_V4_FRAME = ChassisModel(
    model="LittleFe v4 frame",
    slots=6,
    max_board_form_factor="mini-ITX",
    weight_lb=48.0,
    portable=True,
    shared_psu=None,
    price_usd=250.0,
)

from .power import LIMULUS_850W  # noqa: E402  (constant reuse, no cycle)

#: The Limulus HPC200 deskside case with its single 850 W supply.
LIMULUS_DESKSIDE = ChassisModel(
    model="Limulus HPC200 deskside case",
    slots=4,
    max_board_form_factor="micro-ATX",
    weight_lb=50.0,
    portable=True,
    shared_psu=LIMULUS_850W,
    price_usd=400.0,
)

#: Generic 1U rack chassis for Table 3 site rebuilds.
RACK_1U = ChassisModel(
    model="generic 1U rack chassis",
    slots=1,
    max_board_form_factor="ATX",
    weight_lb=30.0,
    portable=False,
    shared_psu=None,
    price_usd=150.0,
)


@dataclass
class Machine:
    """A chassis populated with nodes — e.g. "the IU LittleFe"."""

    name: str
    chassis: ChassisModel
    nodes: list[Node]
    shared_psu: PsuModel | None = None

    @property
    def head(self) -> Node:
        """The frontend node; exactly one exists in a valid machine."""
        heads = [n for n in self.nodes if n.role == NodeRole.FRONTEND]
        if len(heads) != 1:
            raise AssemblyError(
                f"{self.name}: expected exactly one frontend, found {len(heads)}"
            )
        return heads[0]

    @property
    def compute_nodes(self) -> list[Node]:
        """All non-frontend nodes."""
        return [n for n in self.nodes if n.role == NodeRole.COMPUTE]

    @property
    def node_count(self) -> int:
        """Number of nodes (Table 4 'Nodes' column counts all nodes)."""
        return len(self.nodes)

    @property
    def cpu_count(self) -> int:
        """Number of CPU sockets (one per node in the paper machines)."""
        return len(self.nodes)

    @property
    def total_cores(self) -> int:
        """Total physical cores across the machine."""
        return sum(n.cores for n in self.nodes)

    @property
    def clock_ghz(self) -> float:
        """Uniform CPU clock (all paper machines are homogeneous)."""
        clocks = {n.clock_ghz for n in self.nodes}
        if len(clocks) != 1:
            raise AssemblyError(f"{self.name}: heterogeneous clocks {clocks}")
        return clocks.pop()

    @property
    def memory_bytes(self) -> int:
        """Aggregate RAM."""
        return sum(n.memory_bytes for n in self.nodes)

    @property
    def rpeak_gflops(self) -> float:
        """Theoretical peak (TOP500 convention) of the whole machine."""
        return sum(n.rpeak_gflops for n in self.nodes)

    @property
    def draw_watts(self) -> float:
        """Worst-case aggregate power draw of all currently powered nodes."""
        return sum(n.draw_watts for n in self.nodes if n.powered_on)

    @property
    def price_usd(self) -> float:
        """Parts cost: nodes + chassis (+ shared PSU when present)."""
        total = sum(n.price_usd for n in self.nodes) + self.chassis.price_usd
        if self.shared_psu is not None:
            total += self.shared_psu.price_usd
        return total

    @property
    def weight_lb(self) -> float:
        """Chassis weight (the paper quotes frame weights, not per-part)."""
        return self.chassis.weight_lb


def populate(
    name: str,
    chassis: ChassisModel,
    nodes: list[Node],
    *,
    shared_psu_override: PsuModel | None = None,
) -> Machine:
    """Place ``nodes`` into ``chassis``, validating slots and power.

    Rules:

    * node count must not exceed chassis slots;
    * every board must fit the chassis form factor;
    * exactly one frontend node;
    * power: if the chassis (or override) provides a shared PSU, the sum of
      node draws must fit it with headroom and nodes must NOT carry their
      own PSUs; otherwise every node must carry its own (already validated
      at assembly time).
    """
    if len(nodes) > chassis.slots:
        raise AssemblyError(
            f"{name}: {len(nodes)} nodes exceed the {chassis.slots} slots of "
            f"{chassis.model!r}"
        )
    if not nodes:
        raise AssemblyError(f"{name}: a machine needs at least one node")

    for node in nodes:
        if not _form_factor_fits(node.board.form_factor, chassis.max_board_form_factor):
            raise AssemblyError(
                f"{name}: board {node.board.model!r} ({node.board.form_factor}) "
                f"does not fit {chassis.model!r} "
                f"(max {chassis.max_board_form_factor})"
            )

    heads = [n for n in nodes if n.role == NodeRole.FRONTEND]
    if len(heads) != 1:
        raise AssemblyError(
            f"{name}: a machine needs exactly one frontend, got {len(heads)}"
        )

    shared = shared_psu_override or chassis.shared_psu
    if shared is not None:
        offenders = [n.name for n in nodes if n.psu is not None]
        if offenders:
            raise AssemblyError(
                f"{name}: chassis supplies shared power but nodes carry "
                f"their own PSUs: {offenders}"
            )
        draw = sum(n.draw_watts for n in nodes)
        check_budget(shared, draw, what=name)
    else:
        missing = [n.name for n in nodes if n.psu is None]
        if missing:
            raise AssemblyError(
                f"{name}: chassis {chassis.model!r} provides no shared PSU; "
                f"these nodes need their own: {missing}"
            )

    return Machine(name=name, chassis=chassis, nodes=list(nodes), shared_psu=shared)

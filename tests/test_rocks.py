"""Rocks provisioner tests: graph, rolls, database, insert-ethers, install,
reinstall, and update rolls."""

import pytest

from repro.errors import (
    KickstartError,
    ProvisionError,
    RocksError,
    RollError,
)
from repro.network import DhcpServer, PxeServer, BootImage
from repro.rocks import (
    GraphNode,
    HostRecord,
    InsertEthers,
    InstallState,
    KickstartGraph,
    Profile,
    Roll,
    RollGraphFragment,
    RocksDatabase,
    all_standard_rolls,
    apply_update_roll,
    create_update_roll,
    install_cluster,
    optional_rolls,
)
from repro.rocks.installer import RocksInstaller
from repro.rpm import Package


class TestKickstartGraph:
    def build(self):
        g = KickstartGraph()
        g.add_node(GraphNode(Profile.FRONTEND))
        g.add_node(GraphNode(Profile.COMPUTE))
        g.add_node(GraphNode("common", packages=["rocks"], enable_services=["sshd"]))
        g.add_edge(Profile.FRONTEND, "common")
        g.add_edge(Profile.COMPUTE, "common")
        return g

    def test_resolve_packages_via_edges(self):
        g = self.build()
        assert g.resolve_packages(Profile.FRONTEND) == ["rocks"]

    def test_merge_on_readd(self):
        g = self.build()
        g.add_node(GraphNode("common", packages=["modules"]))
        assert g.resolve_packages(Profile.COMPUTE) == ["rocks", "modules"]

    def test_cycle_detected(self):
        g = self.build()
        g.add_node(GraphNode("a"))
        g.add_node(GraphNode("b"))
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        g.add_edge(Profile.FRONTEND, "a")
        with pytest.raises(KickstartError, match="cycle"):
            g.resolve_packages(Profile.FRONTEND)

    def test_edge_to_unknown_node_rejected(self):
        g = self.build()
        with pytest.raises(KickstartError, match="unknown"):
            g.add_edge(Profile.FRONTEND, "ghost")

    def test_self_edge_rejected(self):
        g = self.build()
        with pytest.raises(KickstartError, match="self-edge"):
            g.add_edge("common", "common")

    def test_unknown_profile_rejected(self):
        with pytest.raises(KickstartError):
            self.build().resolve_packages("gpu-appliance")

    def test_services_resolved(self):
        assert self.build().resolve_services(Profile.COMPUTE) == ["sshd"]

    def test_post_actions_merge_without_duplication(self):
        # Regression: re-adding a node (a roll re-extending a shared node)
        # must not queue its post-install actions twice.
        g = self.build()
        g.add_node(GraphNode("common", post_actions=["sync users", "fix ssh"]))
        g.add_node(GraphNode("common", post_actions=["sync users"]))
        assert g.node("common").post_actions == ["sync users", "fix ssh"]
        assert g.resolve_actions(Profile.FRONTEND) == ["sync users", "fix ssh"]

    def test_has_node_and_edges(self):
        g = self.build()
        assert g.has_node("common") and not g.has_node("ghost")
        assert (Profile.FRONTEND, "common") in g.edges()
        assert len(g.edges()) == 2

    def test_find_cycle_reports_path_without_raising(self):
        g = self.build()
        g.add_node(GraphNode("a"))
        g.add_node(GraphNode("b"))
        g.add_edge("a", "b")
        g.add_edge("b", "a")
        cycle = g.find_cycle()
        assert cycle is not None
        assert cycle[0] == cycle[-1]
        assert {"a", "b"} <= set(cycle)
        assert self.build().find_cycle() is None

    def test_reachable_from_profiles(self):
        g = self.build()
        g.add_node(GraphNode("orphan"))
        reachable = g.reachable_from([Profile.FRONTEND, Profile.COMPUTE])
        assert "common" in reachable
        assert "orphan" not in reachable
        # unknown roots are skipped, not fatal — pre-flight must not raise
        assert g.reachable_from(["ghost"]) == set()


class TestRolls:
    def test_roll_validates_fragment_packages(self):
        with pytest.raises(RollError, match="does not carry"):
            Roll(
                name="broken",
                version="1",
                summary="",
                packages=(Package(name="a", version="1"),),
                fragments=(
                    RollGraphFragment(node_name="n", packages=("a", "ghost")),
                ),
            )

    def test_standard_rolls_catalogue_is_table1(self):
        rolls = all_standard_rolls()
        for name in (
            "area51", "bio", "fingerprint", "htcondor", "ganglia", "hpc",
            "kvm", "perl", "python", "web-server", "zfs-linux",
        ):
            assert name in rolls, name
        assert {"torque", "slurm", "sge"} <= set(rolls)
        assert not rolls["base"].optional

    def test_apply_roll_extends_graph(self):
        g = KickstartGraph()
        g.add_node(GraphNode(Profile.FRONTEND))
        g.add_node(GraphNode(Profile.COMPUTE))
        optional_rolls()["hpc"].apply_to_graph(g)
        assert "rocks-openmpi" in g.resolve_packages(Profile.COMPUTE)
        assert "hpc" in g.rolls_in(Profile.FRONTEND)


class TestRocksDatabase:
    def test_add_and_lookup(self):
        db = RocksDatabase()
        db.add_host(HostRecord("frontend-0", "02:aa", "10.1.1.1", "frontend", 0, 0))
        db.add_host(HostRecord("compute-0-0", "02:bb", "10.1.1.10", "compute", 0, 0))
        assert db.get("compute-0-0").mac == "02:bb"
        assert db.by_mac("02:aa").name == "frontend-0"
        assert [r.name for r in db.hosts()] == ["frontend-0", "compute-0-0"]

    def test_duplicate_name_and_mac_rejected(self):
        db = RocksDatabase()
        db.add_host(HostRecord("n", "02:aa", "ip", "compute", 0, 0))
        with pytest.raises(RocksError):
            db.add_host(HostRecord("n", "02:bb", "ip", "compute", 0, 1))
        with pytest.raises(RocksError):
            db.add_host(HostRecord("m", "02:aa", "ip", "compute", 0, 1))

    def test_next_compute_name_sequence(self):
        db = RocksDatabase()
        assert db.next_compute_name(0) == "compute-0-0"
        db.add_host(HostRecord("compute-0-0", "02:aa", "ip", "compute", 0, 0))
        assert db.next_compute_name(0) == "compute-0-1"
        assert db.next_compute_name(1) == "compute-1-0"

    def test_remove_host_frees_mac(self):
        db = RocksDatabase()
        db.add_host(HostRecord("n", "02:aa", "ip", "compute", 0, 0))
        db.remove_host("n")
        db.add_host(HostRecord("m", "02:aa", "ip", "compute", 0, 0))


class TestInsertEthers:
    def make(self):
        db = RocksDatabase()
        dhcp = DhcpServer()
        pxe = PxeServer(dhcp)
        pxe.set_default_image(BootImage("ks", kickstart_profile=Profile.COMPUTE))
        return InsertEthers(db=db, dhcp=dhcp, pxe=pxe), db, dhcp

    def test_discovery_assigns_rocks_names(self):
        inserter, db, dhcp = self.make()
        r1 = inserter.discover_boot("02:aa")
        r2 = inserter.discover_boot("02:bb")
        assert r1.name == "compute-0-0" and r2.name == "compute-0-1"
        assert r1.ip == "10.1.1.10"

    def test_known_mac_rejected(self):
        inserter, _db, _dhcp = self.make()
        inserter.discover_boot("02:aa")
        with pytest.raises(RocksError, match="already registered"):
            inserter.discover_boot("02:aa")

    def test_poll_ignores_known(self):
        inserter, db, dhcp = self.make()
        inserter.discover_boot("02:aa")
        dhcp.offer("02:aa")  # renewal from a known node
        assert inserter.poll() == []


class TestInstaller:
    def test_full_install(self, littlefe_machine):
        cluster = install_cluster(littlefe_machine, rolls=[optional_rolls()["hpc"]])
        assert len(cluster.hosts()) == 6
        assert cluster.frontend.has_command("rocks")
        assert cluster.frontend.services.is_running("rocks-dhcpd")
        compute = cluster.compute["compute-0-0"][0]
        assert compute.has_command("mpirun-rocks")
        assert compute.services.is_running("pbs_mom")
        assert not compute.services.is_running("pbs_server")

    def test_diskless_machine_refused(self, original_littlefe_quote):
        with pytest.raises(ProvisionError, match="diskless"):
            install_cluster(original_littlefe_quote.machine)

    def test_scheduler_choice_slurm(self, littlefe_machine):
        cluster = install_cluster(littlefe_machine, scheduler="slurm")
        assert cluster.frontend.has_command("sbatch")
        assert not cluster.frontend.has_command("qsub")
        compute = cluster.compute["compute-0-0"][0]
        assert compute.services.is_running("slurmd")

    def test_unknown_scheduler_rejected(self, littlefe_machine):
        with pytest.raises(RocksError, match="job-management"):
            RocksInstaller(littlefe_machine, scheduler="lsf")

    def test_duplicate_roll_rejected(self, littlefe_machine):
        hpc = optional_rolls()["hpc"]
        with pytest.raises(RocksError, match="twice"):
            RocksInstaller(littlefe_machine, rolls=[hpc, hpc])

    def test_cluster_db_names_match_hosts(self, littlefe_machine):
        cluster = install_cluster(littlefe_machine)
        names = {r.name for r in cluster.rocksdb.hosts()}
        assert names == {h.name for h in cluster.hosts()}
        assert all(
            r.state is InstallState.INSTALLED for r in cluster.rocksdb.hosts()
        )

    def test_installed_everywhere_uniform(self, littlefe_machine):
        cluster = install_cluster(littlefe_machine)
        common = cluster.installed_everywhere()
        assert "rocks" in common and "modules" in common and "torque" in common

    def test_reinstall_node_restores_uniformity(self, littlefe_machine):
        installer = RocksInstaller(littlefe_machine)
        cluster = installer.run()
        # drift: someone hand-erased a package on one node
        _host, db = cluster.compute["compute-0-1"]
        from repro.rpm import Transaction

        Transaction(db).erase("modules").commit()
        assert "modules" not in cluster.installed_everywhere()
        installer.reinstall_node(cluster, "compute-0-1")
        assert "modules" in cluster.installed_everywhere()

    def test_reinstall_frontend_refused(self, littlefe_machine):
        installer = RocksInstaller(littlefe_machine)
        cluster = installer.run()
        with pytest.raises(RocksError, match="compute"):
            installer.reinstall_node(cluster, littlefe_machine.head.name)

    def test_db_for_unknown_host_rejected(self, littlefe_machine, frontend_host):
        cluster = install_cluster(littlefe_machine)
        with pytest.raises(RocksError):
            cluster.db_for(frontend_host)


class TestUpdateRoll:
    def test_create_and_apply(self, littlefe_machine):
        from repro.yum import Repository

        cluster = install_cluster(littlefe_machine)
        upstream = Repository("xsede")
        upstream.add(Package(name="torque", version="4.2.11",
                             commands=("qsub", "qstat", "qdel", "pbsnodes"),
                             services=("pbs_server", "pbs_mom")))
        roll = create_update_roll(cluster, upstream, name="updates-2015-03")
        assert [p.version for p in roll.packages] == ["4.2.11"]
        counts = apply_update_roll(cluster, roll)
        assert all(count == 1 for count in counts.values())
        for host in cluster.hosts():
            assert cluster.db_for(host).get("torque").version == "4.2.11"

    def test_empty_update_roll_rejected(self, littlefe_machine):
        from repro.yum import Repository

        cluster = install_cluster(littlefe_machine)
        with pytest.raises(RollError, match="already current"):
            create_update_roll(cluster, Repository("xsede"))

    def test_future_reinstalls_pick_up_update(self, littlefe_machine):
        from repro.yum import Repository

        installer = RocksInstaller(littlefe_machine)
        cluster = installer.run()
        upstream = Repository("xsede")
        upstream.add(Package(name="modules", version="3.2.11", commands=("module", "modulecmd")))
        roll = create_update_roll(cluster, upstream)
        apply_update_roll(cluster, roll)
        host = installer.reinstall_node(cluster, "compute-0-2")
        db = cluster.db_for(host)
        assert db.get("modules").version == "3.2.11"

"""Physical and monetary quantities used throughout the simulation.

The paper's evaluation is largely arithmetic over hardware specifications:
clock rates (GHz), theoretical throughput (GFLOPS), power (watts), storage
(bytes), and money (USD).  Keeping these as tiny typed helpers avoids the
classic unit-confusion bugs (MHz vs GHz, GFLOPS vs TFLOPS) that would silently
corrupt Table 3/5 reproductions.

All quantities are stored in a single canonical unit (documented per function)
and plain ``float``/``int`` are used at rest for numpy-friendliness; these
helpers are for *construction* and *formatting*.
"""

from __future__ import annotations

__all__ = [
    "ghz",
    "mhz",
    "gflops",
    "tflops",
    "gflops_to_tflops",
    "tflops_to_gflops",
    "watts",
    "kib",
    "mib",
    "gib",
    "tib",
    "gb",
    "tb",
    "usd",
    "dollars_per_gflops",
    "fmt_gflops",
    "fmt_tflops",
    "fmt_bytes",
    "fmt_usd",
    "fmt_watts",
    "seconds_per_hour",
    "hours_per_year",
]

#: seconds in an hour (for energy and cloud-cost integration)
seconds_per_hour = 3600.0
#: hours in a (non-leap) year, used by the cloud cost model
hours_per_year = 8760.0


def ghz(value: float) -> float:
    """Clock rate in GHz (canonical unit for clocks)."""
    return float(value)


def mhz(value: float) -> float:
    """Clock rate given in MHz, converted to canonical GHz."""
    return float(value) / 1000.0


def gflops(value: float) -> float:
    """Throughput in GFLOPS (canonical unit for compute rates)."""
    return float(value)


def tflops(value: float) -> float:
    """Throughput given in TFLOPS, converted to canonical GFLOPS."""
    return float(value) * 1000.0


def gflops_to_tflops(value_gflops: float) -> float:
    """Convert canonical GFLOPS to TFLOPS for reporting."""
    return value_gflops / 1000.0


def tflops_to_gflops(value_tflops: float) -> float:
    """Convert TFLOPS to canonical GFLOPS."""
    return value_tflops * 1000.0


def watts(value: float) -> float:
    """Power in watts (canonical unit for power)."""
    return float(value)


def kib(value: float) -> int:
    """Size given in KiB, converted to canonical bytes."""
    return int(value * 1024)


def mib(value: float) -> int:
    """Size given in MiB, converted to canonical bytes."""
    return int(value * 1024**2)


def gib(value: float) -> int:
    """Size given in GiB, converted to canonical bytes."""
    return int(value * 1024**3)


def tib(value: float) -> int:
    """Size given in TiB, converted to canonical bytes."""
    return int(value * 1024**4)


def gb(value: float) -> int:
    """Size given in decimal GB (vendor units), converted to bytes."""
    return int(value * 10**9)


def tb(value: float) -> int:
    """Size given in decimal TB (vendor units), converted to bytes."""
    return int(value * 10**12)


def usd(value: float) -> float:
    """Money in US dollars (canonical currency)."""
    return float(value)


def dollars_per_gflops(cost_usd: float, rate_gflops: float) -> float:
    """Price/performance as reported in Table 5 ($/GFLOPS).

    Raises ``ZeroDivisionError`` if ``rate_gflops`` is zero, which would mean a
    cluster with no compute capability — always a modelling bug upstream.
    """
    return cost_usd / rate_gflops


def fmt_gflops(value_gflops: float) -> str:
    """Render a GFLOPS value the way the paper's tables do (one decimal)."""
    return f"{value_gflops:.1f} GFLOPS"


def fmt_tflops(value_gflops: float) -> str:
    """Render a canonical-GFLOPS value in TFLOPS with two decimals."""
    return f"{value_gflops / 1000.0:.2f} TFLOPS"


def fmt_bytes(value_bytes: int) -> str:
    """Human-readable byte size using binary prefixes."""
    size = float(value_bytes)
    for prefix in ("B", "KiB", "MiB", "GiB", "TiB", "PiB"):
        if size < 1024.0 or prefix == "PiB":
            if prefix == "B":
                return f"{int(size)} B"
            return f"{size:.1f} {prefix}"
        size /= 1024.0
    raise AssertionError("unreachable")


def fmt_usd(value_usd: float) -> str:
    """Render dollars with thousands separators, e.g. ``$3,600``."""
    if value_usd == int(value_usd):
        return f"${int(value_usd):,}"
    return f"${value_usd:,.2f}"


def fmt_watts(value_watts: float) -> str:
    """Render a power figure, e.g. ``43.06 W``."""
    return f"{value_watts:g} W"

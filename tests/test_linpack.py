"""Linpack tests: real kernels validated HPL-style, and the calibrated
cluster model against the Table 5 figures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LinpackError
from repro.linpack import (
    HplModelInput,
    benchmark_machine,
    blocked_lu,
    kernel_efficiency,
    lu_solve,
    measure_dgemm_gflops,
    predict_hpl,
    predict_machine,
    price_performance,
    problem_size,
    rank,
    render_table5_row,
    residual_check,
    run_hpl_small,
)


class TestKernels:
    @pytest.mark.parametrize("n, block", [(1, 64), (7, 3), (64, 16), (150, 64), (200, 200)])
    def test_blocked_lu_matches_numpy_solve(self, n, block):
        rng = np.random.default_rng(1)
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        b = rng.standard_normal(n)
        lu, piv = blocked_lu(a, block=block)
        x = lu_solve(lu, piv, b)
        assert np.allclose(x, np.linalg.solve(a, b), atol=1e-8)

    def test_lu_rejects_nonsquare(self):
        with pytest.raises(LinpackError):
            blocked_lu(np.zeros((3, 4)))

    def test_lu_rejects_singular(self):
        with pytest.raises(LinpackError, match="singular"):
            blocked_lu(np.zeros((4, 4)))

    def test_residual_check_formula(self):
        rng = np.random.default_rng(2)
        a = rng.standard_normal((50, 50)) + 50 * np.eye(50)
        x = rng.standard_normal(50)
        b = a @ x
        assert residual_check(a, x, b) < 16.0  # exact solution passes
        assert residual_check(a, x + 1.0, b) > 16.0  # corrupted fails

    def test_run_hpl_small_passes_validation(self):
        result = run_hpl_small(128)
        assert result.passed
        assert result.gflops > 0.01
        assert result.n == 128

    def test_run_hpl_rejects_bad_n(self):
        with pytest.raises(LinpackError):
            run_hpl_small(0)

    def test_measure_dgemm_returns_positive_rate(self):
        m = measure_dgemm_gflops(128, repeats=1)
        assert m.gflops > 0.05
        with pytest.raises(LinpackError):
            measure_dgemm_gflops(0)

    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=1, max_value=16))
    @settings(max_examples=20, deadline=None)
    def test_property_lu_solves_random_systems(self, n, block):
        rng = np.random.default_rng(n * 100 + block)
        a = rng.standard_normal((n, n)) + n * np.eye(n)
        x_true = rng.standard_normal(n)
        lu, piv = blocked_lu(a, block=block)
        x = lu_solve(lu, piv, a @ x_true)
        assert residual_check(a, x, a @ x_true) < 16.0


class TestProblemSizing:
    def test_fills_80_percent_of_memory(self):
        mem = 64 * 1024**3
        n = problem_size(mem)
        assert 8.0 * n * n <= 0.8 * mem
        assert n % 192 == 0

    def test_bad_fill_rejected(self):
        with pytest.raises(LinpackError):
            problem_size(1024**3, fill=0.0)


class TestClusterModel:
    def test_littlefe_rpeak_exact(self, littlefe_quote):
        pred = predict_machine(littlefe_quote.machine)
        assert pred.rpeak_gflops == pytest.approx(537.6)

    def test_limulus_rmax_matches_measured(self, limulus_quote):
        # Table 5 measured: 498.3 GFLOPS (62.8 % efficiency); the model is
        # calibrated to land within a few percent
        pred = predict_machine(limulus_quote.machine)
        assert pred.rmax_gflops == pytest.approx(498.3, rel=0.05)
        assert 0.58 <= pred.efficiency <= 0.68

    def test_littlefe_rmax_near_paper_estimate(self, littlefe_quote):
        # The paper *estimates* 75 % of peak (403.2); the model's genuine
        # prediction should land in the same band
        pred = predict_machine(littlefe_quote.machine)
        assert pred.rmax_gflops == pytest.approx(403.2, rel=0.10)

    def test_rmax_below_rpeak_always(self, littlefe_quote, limulus_quote):
        for q in (littlefe_quote, limulus_quote):
            pred = predict_machine(q.machine)
            assert pred.rmax_gflops < pred.rpeak_gflops

    def test_single_node_pays_no_comm(self):
        spec = HplModelInput(
            total_cores=4, per_core_gflops=49.6, node_count=1,
            memory_bytes=16 * 1024**3,
            interconnect_bandwidth_bytes_s=117.5e6,
            interconnect_latency_s=60e-6, kernel_eff=0.88,
        )
        pred = predict_hpl(spec)
        assert pred.t_bw_s == 0.0 and pred.t_lat_s == 0.0
        assert pred.efficiency == pytest.approx(0.88, rel=0.01)

    def test_faster_interconnect_raises_rmax(self, littlefe_quote):
        gige = predict_machine(
            littlefe_quote.machine, interconnect_bandwidth_bytes_s=117.5e6
        )
        tengig = predict_machine(
            littlefe_quote.machine, interconnect_bandwidth_bytes_s=1.175e9
        )
        assert tengig.rmax_gflops > gige.rmax_gflops

    def test_kernel_efficiency_by_arch(self):
        from repro.hardware import ATOM_D510, CELERON_G1840

        assert kernel_efficiency(CELERON_G1840) == pytest.approx(0.88)
        assert kernel_efficiency(ATOM_D510) < kernel_efficiency(CELERON_G1840)

    def test_model_input_validation(self):
        with pytest.raises(LinpackError):
            HplModelInput(
                total_cores=0, per_core_gflops=1, node_count=1,
                memory_bytes=1, interconnect_bandwidth_bytes_s=1,
                interconnect_latency_s=1, kernel_eff=0.5,
            )
        with pytest.raises(LinpackError):
            HplModelInput(
                total_cores=1, per_core_gflops=1, node_count=1,
                memory_bytes=1, interconnect_bandwidth_bytes_s=1,
                interconnect_latency_s=1, kernel_eff=1.5,
            )


class TestTable5Derived:
    def test_price_performance_columns(self, littlefe_quote):
        report = benchmark_machine(littlefe_quote.machine, estimate_fraction=0.75)
        pp = price_performance(report, littlefe_quote.quoted_usd)
        # paper: $7/GFLOP Rpeak, $9/GFLOPS Rmax
        assert round(pp.usd_per_rpeak_gflops) == 7
        assert round(pp.usd_per_rmax_gflops) == 9

    def test_estimate_fraction_validation(self, littlefe_quote):
        from repro.errors import LinpackError

        with pytest.raises(LinpackError):
            benchmark_machine(littlefe_quote.machine, estimate_fraction=1.5)

    def test_limulus_price_performance(self, limulus_quote):
        report = benchmark_machine(limulus_quote.machine)
        pp = price_performance(report, limulus_quote.quoted_usd)
        # paper: $8/GFLOP Rpeak, $12/GFLOPS Rmax
        assert round(pp.usd_per_rpeak_gflops) == 8
        assert round(pp.usd_per_rmax_gflops) == 12

    def test_rank_orders_by_rmax(self, littlefe_quote, limulus_quote):
        reports = [
            benchmark_machine(littlefe_quote.machine, estimated=True),
            benchmark_machine(limulus_quote.machine),
        ]
        ranked = rank(reports)
        assert ranked[0].machine_name.startswith("limulus")

    def test_render_row_flags_estimate(self, littlefe_quote):
        report = benchmark_machine(littlefe_quote.machine, estimated=True)
        pp = price_performance(report, littlefe_quote.quoted_usd)
        assert "*" in render_table5_row(pp, estimated=True)

    def test_price_performance_validation(self, littlefe_quote):
        report = benchmark_machine(littlefe_quote.machine)
        with pytest.raises(LinpackError):
            price_performance(report, 0.0)

"""DHCP on the cluster's private segment.

Rocks' frontend runs dhcpd on the private interface; insert-ethers watches
the DHCP log for unknown MACs and registers them as compute nodes.  The
server hands out deterministic leases from a pool (Rocks uses 10.x space;
we default to ``10.1.1.0/24`` style addressing).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import DhcpError

__all__ = ["DhcpLease", "DhcpPlan", "DhcpServer"]


@dataclass(frozen=True)
class DhcpLease:
    """One MAC -> IP binding."""

    mac: str
    ip: str
    hostname: str = ""


@dataclass(frozen=True)
class DhcpPlan:
    """The declarative shape of a private-segment DHCP pool.

    Unlike :class:`DhcpServer` (which refuses to start on a bad pool), a
    plan is pure data and never raises — so the pre-flight analyzer can lint
    an invalid range instead of crashing on it.  ``realize`` turns a valid
    plan into a running server.
    """

    network_prefix: str = "10.1.1"
    pool_start: int = 10
    pool_end: int = 254

    @property
    def server_ip(self) -> str:
        """The frontend's own address on the segment (always ``.1``)."""
        return f"{self.network_prefix}.1"

    @property
    def is_valid(self) -> bool:
        """True if :class:`DhcpServer` would accept this pool."""
        return 0 < self.pool_start <= self.pool_end <= 254

    @property
    def capacity(self) -> int:
        """Number of dynamic leases the pool can hand out."""
        if not self.is_valid:
            return 0
        return self.pool_end - self.pool_start + 1

    def covers_host(self, last_octet: int) -> bool:
        """True if the dynamic pool includes ``prefix.last_octet``."""
        return self.pool_start <= last_octet <= self.pool_end

    def realize(self) -> "DhcpServer":
        """Start a server from this plan (raises on an invalid pool)."""
        return DhcpServer(
            network_prefix=self.network_prefix,
            pool_start=self.pool_start,
            pool_end=self.pool_end,
        )


class DhcpServer:
    """The frontend's DHCP daemon on the private segment.

    One subnet (the default) allocates ``prefix.pool_start`` through
    ``prefix.pool_end`` — at most 245 leases with the defaults, which caps
    the fleet well short of 10k nodes.  ``subnets > 1`` widens the pool
    across consecutive third octets (``10.1.1.x``, ``10.1.2.x``, ...), the
    way a real frontend adds dhcpd subnet declarations per rack segment;
    allocation order stays deterministic (fill one subnet, roll to the
    next).
    """

    def __init__(
        self,
        *,
        network_prefix: str = "10.1.1",
        pool_start: int = 10,
        pool_end: int = 254,
        subnets: int = 1,
    ):
        if not 0 < pool_start <= pool_end <= 254:
            raise DhcpError(
                f"invalid pool {pool_start}..{pool_end} (must be within 1..254)"
            )
        if subnets < 1:
            raise DhcpError(f"subnet count must be positive, got {subnets}")
        self.network_prefix = network_prefix
        self.pool_start = pool_start
        self.pool_end = pool_end
        self.subnets = subnets
        self._by_mac: dict[str, DhcpLease] = {}
        self._next = pool_start
        self._subnet = 0
        #: every DISCOVER seen, known or not (insert-ethers tails this)
        self.request_log: list[str] = []

    @property
    def server_ip(self) -> str:
        """The frontend's own address on the segment."""
        return f"{self.network_prefix}.1"

    @property
    def capacity(self) -> int:
        """Total leases the pool can hand out across all subnets."""
        return (self.pool_end - self.pool_start + 1) * self.subnets

    def _prefix_for(self, subnet: int) -> str:
        """The /24 prefix of one subnet (subnet 0 is ``network_prefix``)."""
        if subnet == 0:
            return self.network_prefix
        head, _, third = self.network_prefix.rpartition(".")
        return f"{head}.{int(third) + subnet}"

    def offer(self, mac: str, *, hostname: str = "") -> DhcpLease:
        """Handle a DISCOVER: return the existing lease or allocate one."""
        if not mac:
            raise DhcpError("empty MAC address")
        self.request_log.append(mac)
        existing = self._by_mac.get(mac)
        if existing is not None:
            return existing
        if self._next > self.pool_end:
            if self._subnet + 1 < self.subnets:
                self._subnet += 1
                self._next = self.pool_start
            else:
                suffix = (
                    f" (and {self.subnets - 1} overflow subnet(s))"
                    if self.subnets > 1
                    else ""
                )
                raise DhcpError(
                    f"address pool {self.network_prefix}.{self.pool_start}-"
                    f"{self.pool_end}{suffix} exhausted"
                )
        lease = DhcpLease(
            mac=mac,
            ip=f"{self._prefix_for(self._subnet)}.{self._next}",
            hostname=hostname,
        )
        self._next += 1
        self._by_mac[mac] = lease
        return lease

    def offer_batch(
        self, macs: list[str], *, hostnames: list[str] | None = None
    ) -> list[DhcpLease]:
        """Handle a burst of DISCOVERs in order (one install wave booting).

        ``hostnames``, when given, pairs with ``macs`` positionally.
        """
        if hostnames is not None and len(hostnames) != len(macs):
            raise DhcpError(
                f"{len(macs)} MAC(s) but {len(hostnames)} hostname(s)"
            )
        return [
            self.offer(mac, hostname=hostnames[i] if hostnames else "")
            for i, mac in enumerate(macs)
        ]

    def lease_for(self, mac: str) -> DhcpLease:
        """Look up an existing lease."""
        try:
            return self._by_mac[mac]
        except KeyError:
            raise DhcpError(
                f"no lease for MAC {mac} "
                f"({len(self._by_mac)} active lease(s) on this segment)"
            ) from None

    def release(self, mac: str) -> None:
        """Drop a lease (the address is NOT returned to the pool — matching
        dhcpd's conservative behaviour within a lease epoch)."""
        if mac not in self._by_mac:
            raise DhcpError(
                f"no lease for MAC {mac} "
                f"({len(self._by_mac)} active lease(s) on this segment)"
            )
        del self._by_mac[mac]

    def leases(self) -> list[DhcpLease]:
        """All active leases sorted by IP."""
        return sorted(self._by_mac.values(), key=lambda l: [int(x) for x in l.ip.split(".")])

    def unknown_macs(self, known: set[str]) -> list[str]:
        """MACs seen in the request log that are not in ``known`` — the
        insert-ethers discovery feed."""
        seen: list[str] = []
        for mac in self.request_log:
            if mac not in known and mac not in seen:
                seen.append(mac)
        return seen

"""RPM version comparison (``rpmvercmp``) and EVR handling, from scratch.

XNIT is "based on the Yum repository for installation or updates of RPMs"
(Section 1); everything yum decides — is this an update? which candidate is
newest? — reduces to comparing ``epoch:version-release`` (EVR) triples with
RPM's segment algorithm:

1. walk both strings, skipping separator characters (anything that is not
   alphanumeric or ``~``);
2. ``~`` (tilde) sorts before everything, including end-of-string — this is
   how pre-releases like ``1.0~rc1`` sort before ``1.0``;
3. take the next maximal run of digits *or* letters from each side; a
   numeric segment always beats an alphabetic one;
4. numeric segments compare as integers (leading zeros stripped), alphabetic
   segments compare as C strings;
5. if all compared segments tie, the string with leftover content wins.

Epoch dominates version, version dominates release.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering

from ..errors import RpmError

__all__ = ["rpmvercmp", "EVR", "parse_evr", "compare_evr"]


def _is_sep(ch: str) -> bool:
    return not (ch.isalnum() or ch == "~")


def rpmvercmp(a: str, b: str) -> int:
    """Compare two version strings with RPM's algorithm.

    Returns -1, 0 or 1 as ``a`` is older than, equal to, or newer than ``b``.
    """
    if a == b:
        return 0
    i, j = 0, 0
    la, lb = len(a), len(b)
    while i < la or j < lb:
        while i < la and _is_sep(a[i]):
            i += 1
        while j < lb and _is_sep(b[j]):
            j += 1
        # Tilde: sorts lower than anything, including running out of string.
        a_tilde = i < la and a[i] == "~"
        b_tilde = j < lb and b[j] == "~"
        if a_tilde or b_tilde:
            if not b_tilde:
                return -1
            if not a_tilde:
                return 1
            i += 1
            j += 1
            continue
        if i >= la or j >= lb:
            break
        # Segment type is decided by the left string (RPM convention).
        if a[i].isdigit():
            x = i
            while x < la and a[x].isdigit():
                x += 1
            y = j
            while y < lb and b[y].isdigit():
                y += 1
            numeric = True
        else:
            x = i
            while x < la and a[x].isalpha():
                x += 1
            y = j
            while y < lb and b[y].isalpha():
                y += 1
            numeric = False
        seg_a = a[i:x]
        seg_b = b[j:y]
        if not seg_b:
            # Different segment types: numeric beats alphabetic.
            return 1 if numeric else -1
        if numeric:
            seg_a = seg_a.lstrip("0") or "0"
            seg_b = seg_b.lstrip("0") or "0"
            if len(seg_a) != len(seg_b):
                return 1 if len(seg_a) > len(seg_b) else -1
        if seg_a != seg_b:
            return 1 if seg_a > seg_b else -1
        i, j = x, y
    # All compared segments equal; leftover content wins.
    if i >= la and j >= lb:
        return 0
    return 1 if i < la else -1


_EVR_RE = re.compile(
    r"^(?:(?P<epoch>\d+):)?(?P<version>[^:-]+)(?:-(?P<release>[^:-]+))?$"
)


@total_ordering
@dataclass(frozen=True)
class EVR:
    """An epoch:version-release triple with RPM ordering."""

    epoch: int
    version: str
    release: str

    def __str__(self) -> str:
        base = self.version + (f"-{self.release}" if self.release else "")
        return f"{self.epoch}:{base}" if self.epoch else base

    def _cmp(self, other: "EVR") -> int:
        if self.epoch != other.epoch:
            return 1 if self.epoch > other.epoch else -1
        c = rpmvercmp(self.version, other.version)
        if c != 0:
            return c
        # A missing release compares equal to any release (RPM's behaviour
        # when matching versioned dependencies like ``>= 1.2``).
        if not self.release or not other.release:
            return 0
        return rpmvercmp(self.release, other.release)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EVR):
            return NotImplemented
        return self._cmp(other) == 0

    def __lt__(self, other: "EVR") -> bool:
        if not isinstance(other, EVR):
            return NotImplemented
        return self._cmp(other) < 0

    def __hash__(self) -> int:
        return hash((self.epoch, self.version, self.release))


def parse_evr(text: str) -> EVR:
    """Parse ``[epoch:]version[-release]`` into an :class:`EVR`.

    Raises :class:`~repro.errors.RpmError` on malformed input (empty string,
    negative epoch, embedded whitespace).
    """
    if not text or text != text.strip() or " " in text:
        raise RpmError(f"malformed EVR string: {text!r}")
    m = _EVR_RE.match(text)
    if m is None:
        raise RpmError(f"malformed EVR string: {text!r}")
    return EVR(
        epoch=int(m.group("epoch") or 0),
        version=m.group("version"),
        release=m.group("release") or "",
    )


def compare_evr(a: str, b: str) -> int:
    """Convenience: parse and compare two EVR strings, returning -1/0/1."""
    ea, eb = parse_evr(a), parse_evr(b)
    return ea._cmp(eb)

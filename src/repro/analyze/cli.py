"""The ``cluster-lint`` / ``simlint`` command line.

Two modes share one flag surface, one rule registry, and one exit-code
contract:

* **definition mode** (default) lints cluster-definition files — any
  Python file exposing a zero-argument ``cluster_definition()`` callable
  or a module-level ``DEFINITION`` holding a
  :class:`~repro.analyze.spec.ClusterDefinition`; every file under
  ``examples/`` does.
* **source mode** (``--source``, or the ``simlint`` console script) runs
  the ``SL*`` rules over Python source trees (default: ``src/repro``),
  honouring ``[tool.simlint]`` per-path opt-outs from ``pyproject.toml``
  and optionally replaying a trace JSONL (``--check-trace``).

Exit codes follow linter convention so CI can gate directly on the
process status:

* ``0`` — no finding at/above the failure threshold (default: error);
* ``1`` — at least one gating finding;
* ``2`` — usage or definition-load failure.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import pathlib
import sys

from .diagnostic import Severity
from .engine import AnalysisResult, analyze
from .registry import RULES, AnalysisConfig, Baseline
from .spec import ClusterDefinition

__all__ = ["main", "main_simlint", "load_definitions"]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


class DefinitionLoadError(Exception):
    """A definition file could not be loaded or carries no definition."""


def load_definitions(path: str | pathlib.Path) -> list[ClusterDefinition]:
    """Import a Python file and pull its cluster definition(s) out.

    Looks for ``cluster_definition()`` (callable, may return one definition
    or a list) first, then a module-level ``DEFINITION``.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise DefinitionLoadError(f"{path}: no such file")
    spec = importlib.util.spec_from_file_location(
        f"cluster_lint_{path.stem}", path
    )
    if spec is None or spec.loader is None:
        raise DefinitionLoadError(f"{path}: not an importable Python file")
    module = importlib.util.module_from_spec(spec)
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        raise DefinitionLoadError(f"{path}: import failed: {exc}") from exc

    source = getattr(module, "cluster_definition", None)
    if callable(source):
        try:
            produced = source()
        except Exception as exc:
            raise DefinitionLoadError(
                f"{path}: cluster_definition() raised: {exc}"
            ) from exc
    else:
        produced = getattr(module, "DEFINITION", None)
        if produced is None:
            raise DefinitionLoadError(
                f"{path}: defines neither cluster_definition() nor DEFINITION"
            )
    definitions = list(produced) if isinstance(produced, (list, tuple)) else [produced]
    for definition in definitions:
        if not isinstance(definition, ClusterDefinition):
            raise DefinitionLoadError(
                f"{path}: expected ClusterDefinition, got "
                f"{type(definition).__name__}"
            )
    return definitions


def _list_rules() -> str:
    lines = ["CODE    SEVERITY  SUBSYSTEM   SUMMARY"]
    for rule in RULES.all_rules():
        lines.append(
            f"{rule.code:<8}{rule.severity.value:<10}{rule.subsystem:<12}"
            f"{rule.summary}"
        )
    return "\n".join(lines)


def _build_parser(prog: str = "cluster-lint") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=(
            "Pre-flight static analysis of cluster definitions, or (with "
            "--source) of the repro source tree itself."
        ),
    )
    parser.add_argument(
        "files",
        nargs="*",
        help=(
            "definition files exposing cluster_definition(); with --source, "
            "Python files/directories to lint (default: src/repro)"
        ),
    )
    parser.add_argument(
        "--source",
        action="store_true",
        help="run the SL* source rules (simlint) instead of definition passes",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        dest="format_",
    )
    parser.add_argument(
        "--only", default="", help="comma-separated rule codes to run exclusively"
    )
    parser.add_argument(
        "--disable", default="", help="comma-separated rule codes to skip"
    )
    parser.add_argument(
        "--fail-on",
        choices=("error", "warning", "info", "never"),
        default="error",
        help="minimum severity that fails the run (default: error)",
    )
    parser.add_argument(
        "--baseline", default="", help="baseline suppression file to apply"
    )
    parser.add_argument(
        "--write-baseline",
        default="",
        metavar="PATH",
        help="write current findings to PATH as a baseline and exit 0",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help=(
            "rewrite the --baseline file without entries whose rule code no "
            "longer exists, then continue with the pruned baseline"
        ),
    )
    parser.add_argument(
        "--check-trace",
        default="",
        metavar="PATH",
        help=(
            "(source mode) replay a trace JSONL with same-timestamp events "
            "permuted and verify it is byte-reproducible (SL302/SL303)"
        ),
    )
    parser.add_argument(
        "--pyproject",
        default="pyproject.toml",
        metavar="PATH",
        help=(
            "(source mode) pyproject file holding the [tool.simlint] "
            "per-path opt-outs (default: pyproject.toml)"
        ),
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    return parser


def _parse_codes(raw: str) -> frozenset[str]:
    return frozenset(c.strip() for c in raw.split(",") if c.strip())


#: Default lint target in source mode when no paths are given.
_SOURCE_DEFAULT = "src/repro"


def main(
    argv: list[str] | None = None, *, stdout=None, prog: str = "cluster-lint"
) -> int:
    out = stdout or sys.stdout
    parser = _build_parser(prog)
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules(), file=out)
        return EXIT_CLEAN
    if not args.files and not args.source:
        parser.print_usage(out)
        print(f"{prog}: error: no definition files given", file=out)
        return EXIT_USAGE
    if args.check_trace and not args.source:
        print(f"{prog}: error: --check-trace requires --source", file=out)
        return EXIT_USAGE
    if args.prune_baseline and not args.baseline:
        print(f"{prog}: error: --prune-baseline requires --baseline", file=out)
        return EXIT_USAGE

    unknown = [
        c for c in (_parse_codes(args.only) | _parse_codes(args.disable))
        if c not in RULES
    ]
    if unknown:
        print(f"{prog}: error: unknown rule code(s): {sorted(unknown)}", file=out)
        return EXIT_USAGE

    if args.fail_on == "never":
        # A threshold below every severity: nothing can gate.
        fail_on = Severity.INFO
        never_fail = True
    else:
        fail_on = Severity(args.fail_on)
        never_fail = False
    config = AnalysisConfig(
        only=_parse_codes(args.only) or None,
        disabled=_parse_codes(args.disable),
        fail_on=fail_on,
    )

    baseline = None
    if args.baseline:
        try:
            baseline = Baseline.from_text(
                pathlib.Path(args.baseline).read_text()
            )
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"{prog}: error: bad baseline: {exc}", file=out)
            return EXIT_USAGE
        stale = baseline.stale_fingerprints()
        # keep machine-readable stdout (json/sarif) clean: route the
        # warnings to stderr there, to the report stream otherwise
        warn_stream = sys.stderr if args.format_ != "text" else out
        for fingerprint in stale:
            print(
                f"{prog}: warning: baseline entry {fingerprint} references "
                f"a rule that no longer exists (stale)",
                file=warn_stream,
            )
        if args.prune_baseline:
            baseline, dropped = baseline.pruned()
            pathlib.Path(args.baseline).write_text(baseline.to_text())
            print(
                f"{prog}: pruned {len(dropped)} stale suppression(s) from "
                f"{args.baseline}",
                file=out,
            )

    results: list[AnalysisResult] = []
    if args.source:
        from .source import SimlintConfig, analyze_source

        try:
            simlint_config = SimlintConfig.from_pyproject(args.pyproject)
        except (ValueError, OSError) as exc:
            print(f"{prog}: error: bad [tool.simlint] config: {exc}", file=out)
            return EXIT_USAGE
        paths = args.files or [_SOURCE_DEFAULT]
        results.append(
            analyze_source(
                paths,
                config=config,
                simlint=simlint_config,
                baseline=baseline,
            )
        )
        if args.check_trace:
            from .passes.source_traceorder import check_trace

            trace_path = pathlib.Path(args.check_trace)
            try:
                text = trace_path.read_text()
            except OSError as exc:
                print(f"{prog}: error: cannot read trace: {exc}", file=out)
                return EXIT_USAGE
            trace_diags = check_trace(text, location=str(trace_path))
            if baseline is not None:
                kept, suppressed = baseline.split(trace_diags)
            else:
                kept, suppressed = trace_diags, []
            results.append(
                AnalysisResult(
                    definition_name=f"trace:{trace_path}",
                    diagnostics=kept,
                    suppressed=suppressed,
                    fail_on=config.fail_on,
                )
            )
    else:
        for path in args.files:
            try:
                definitions = load_definitions(path)
            except DefinitionLoadError as exc:
                print(f"{prog}: error: {exc}", file=out)
                return EXIT_USAGE
            for definition in definitions:
                results.append(
                    analyze(definition, config=config, baseline=baseline)
                )

    if args.write_baseline:
        merged = Baseline()
        for result in results:
            for diag in result.diagnostics:
                merged.add(diag, "accepted by --write-baseline")
        pathlib.Path(args.write_baseline).write_text(merged.to_text())
        print(
            f"{prog}: wrote {len(merged.suppressions)} suppression(s) "
            f"to {args.write_baseline}",
            file=out,
        )
        return EXIT_CLEAN

    if args.format_ == "json":
        document = {
            "schema": "repro.analyze.run/v1",
            "results": [r.to_dict() for r in results],
        }
        print(json.dumps(document, indent=2), file=out)
    elif args.format_ == "sarif":
        from .sarif import render_sarif

        reasons = dict(baseline.suppressions) if baseline is not None else {}
        print(
            render_sarif(
                results,
                tool_name="simlint" if args.source else prog,
                suppression_reasons=reasons,
            ),
            file=out,
        )
    else:
        for result in results:
            print(result.render_text(), file=out)

    if never_fail:
        return EXIT_CLEAN
    return (
        EXIT_FINDINGS if any(r.failed for r in results) else EXIT_CLEAN
    )


def main_simlint(argv: list[str] | None = None, *, stdout=None) -> int:
    """Entry point for the ``simlint`` console script: source mode on."""
    return main(["--source", *(argv if argv is not None else sys.argv[1:])],
                stdout=stdout, prog="simlint")

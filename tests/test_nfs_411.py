"""NFS mounts, exports, and Rocks 411 account-sync tests."""

import pytest

from repro.distro import CENTOS_6_5, Filesystem, Host
from repro.distro.nfs import NfsServer, nfs_mount
from repro.errors import DistroError, FilesystemError, RocksError
from repro.rocks import install_cluster
from repro.rocks.sync411 import Sync411, make_cluster_uniform


class TestFilesystemMounts:
    def make_pair(self):
        server, client = Filesystem(), Filesystem()
        server.mkdir("/export/home", exist_ok=True)
        server.write("/export/home/alice/notes.txt", "hello")
        client.mkdir("/home", exist_ok=True)
        return server, client

    def test_mount_routes_reads(self):
        server, client = self.make_pair()
        client.mount("/home", server, "/export/home")
        assert client.read("/home/alice/notes.txt") == "hello"
        assert client.listdir("/home") == ["alice"]

    def test_writes_land_on_server(self):
        server, client = self.make_pair()
        client.mount("/home", server, "/export/home")
        client.write("/home/alice/new.txt", "from client")
        assert server.read("/export/home/alice/new.txt") == "from client"

    def test_mount_point_must_be_empty_dir(self):
        server, client = self.make_pair()
        client.write("/home/existing", "x")
        with pytest.raises(FilesystemError, match="not empty"):
            client.mount("/home", server, "/export/home")

    def test_overlapping_mounts_rejected(self):
        server, client = self.make_pair()
        client.mount("/home", server, "/export/home")
        client.mkdir("/home2", exist_ok=True)
        with pytest.raises(FilesystemError, match="overlaps"):
            client.mount("/home/alice", server, "/export/home")

    def test_self_mount_rejected(self):
        fs = Filesystem()
        fs.mkdir("/a", exist_ok=True)
        with pytest.raises(FilesystemError, match="itself"):
            fs.mount("/a", fs, "/")

    def test_unmount_restores_local_view(self):
        server, client = self.make_pair()
        client.mount("/home", server, "/export/home")
        assert client.exists("/home/alice/notes.txt")
        client.unmount("/home")
        assert not client.exists("/home/alice/notes.txt")
        assert client.is_dir("/home")  # the local empty dir is back

    def test_mount_table(self):
        server, client = self.make_pair()
        client.mount("/home", server, "/export/home")
        assert client.mounts() == {"/home": "/export/home"}

    def test_remove_owned_stays_local(self):
        server, client = self.make_pair()
        server.write("/export/home/alice/pkgfile", "x", owner="pkg")
        client.mount("/home", server, "/export/home")
        client.remove_owned("pkg")  # local scan: must not touch the server
        assert server.exists("/export/home/alice/pkgfile")


class TestNfsServer:
    def make_hosts(self, littlefe_machine):
        fe = Host(littlefe_machine.head, CENTOS_6_5)
        comp = Host(littlefe_machine.compute_nodes[0], CENTOS_6_5)
        return fe, comp

    def test_export_and_mount(self, littlefe_machine):
        fe, comp = self.make_hosts(littlefe_machine)
        nfs = NfsServer(fe)
        nfs.export("/home")
        fe.fs.write("/home/alice/data.txt", "payload")
        nfs_mount(comp, nfs, "/home", "/home")
        assert comp.fs.read("/home/alice/data.txt") == "payload"
        assert "nfs" in comp.fs.read("/etc/mtab")

    def test_unexported_path_refused(self, littlefe_machine):
        fe, comp = self.make_hosts(littlefe_machine)
        nfs = NfsServer(fe)
        with pytest.raises(DistroError, match="not exported"):
            nfs_mount(comp, nfs, "/home", "/home")

    def test_stopped_nfsd_refused(self, littlefe_machine):
        fe, comp = self.make_hosts(littlefe_machine)
        nfs = NfsServer(fe)
        nfs.export("/home")
        fe.services.stop("nfsd")
        with pytest.raises(DistroError, match="nfsd not running"):
            nfs_mount(comp, nfs, "/home", "/home")

    def test_exports_file_written(self, littlefe_machine):
        fe, _comp = self.make_hosts(littlefe_machine)
        nfs = NfsServer(fe)
        nfs.export("/home")
        text = fe.fs.read("/etc/exports")
        assert "/home 10.1.1.0/24(rw" in text
        nfs.unexport("/home")
        assert fe.fs.read("/etc/exports") == ""

    def test_export_missing_dir_refused(self, littlefe_machine):
        fe, _comp = self.make_hosts(littlefe_machine)
        with pytest.raises(DistroError, match="non-directory"):
            NfsServer(fe).export("/no/such/dir")


class TestSync411:
    @pytest.fixture
    def cluster(self, littlefe_machine):
        return install_cluster(littlefe_machine)

    def test_requires_411_service(self, littlefe_machine):
        bare = Host(littlefe_machine.head, CENTOS_6_5)
        with pytest.raises(RocksError, match="411"):
            Sync411(bare)

    def test_push_replicates_accounts(self, cluster):
        sync, _nfs = make_cluster_uniform(cluster)
        cluster.frontend.users.add_user("alice")
        cluster.frontend.users.add_user("bob")
        created = sync.push()
        assert created == 10  # 2 users x 5 compute nodes
        assert sync.in_sync()
        comp = cluster.compute["compute-0-3"][0]
        assert comp.users.has_user("alice") and comp.users.has_user("bob")

    def test_push_is_idempotent(self, cluster):
        sync, _nfs = make_cluster_uniform(cluster)
        cluster.frontend.users.add_user("alice")
        sync.push()
        assert sync.push() == 0

    def test_home_shared_cluster_wide(self, cluster):
        _sync, _nfs = make_cluster_uniform(cluster)
        cluster.frontend.users.add_user("alice")
        cluster.frontend.fs.write("/home/alice/.bashrc", "module load R")
        comp = cluster.compute["compute-0-1"][0]
        assert comp.fs.read("/home/alice/.bashrc") == "module load R"
        comp.fs.write("/home/alice/out.log", "job output")
        assert cluster.frontend.fs.read("/home/alice/out.log") == "job output"

    def test_master_not_registered_as_listener(self, cluster):
        sync, _nfs = make_cluster_uniform(cluster)
        with pytest.raises(RocksError):
            sync.register(cluster.frontend)

    def test_double_register_rejected(self, cluster):
        sync, _nfs = make_cluster_uniform(cluster)
        comp = cluster.compute["compute-0-0"][0]
        with pytest.raises(RocksError, match="already registered"):
            sync.register(comp)

    def test_profile_modules_travel(self, cluster):
        sync, _nfs = make_cluster_uniform(cluster)
        alice = cluster.frontend.users.add_user("alice")
        alice.profile_modules = ["gromacs/4.6.5"]
        sync.push()
        comp = cluster.compute["compute-0-0"][0]
        assert comp.users.get_user("alice").profile_modules == ["gromacs/4.6.5"]

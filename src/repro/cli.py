"""A cluster shell: drive the simulation with the real tools' command lines.

Section 6's training value is that students type the *actual commands*
(`rocks list host`, `yum install`, `qsub`, `module load`) against hardware
they built.  :class:`ClusterShell` binds a provisioned cluster (plus an
optional scheduler and yum repositories) and executes those command lines,
returning the text a terminal would show.  Unknown commands and commands
whose binary is not installed on the current host fail the way a real shell
would.
"""

from __future__ import annotations

import shlex
from dataclasses import dataclass, field

from .distro.host import Host
from .distro.modules_env import ModuleSession
from .errors import CommandError, ReproError
from .fleet import NodeSet
from .rocks.installer import ProvisionedCluster
from .scheduler.base import BaseScheduler
from .scheduler.job import Job
from .shell import ShellCommand, ShellEngine, render_groups
from .yum.client import YumClient
from .yum.repository import Repository

__all__ = ["ClusterShell", "ShellResult"]


@dataclass
class ShellResult:
    """One executed command line."""

    command: str
    output: str
    ok: bool = True

    def __str__(self) -> str:
        return self.output


class ClusterShell:
    """An interactive-style session against a provisioned cluster."""

    def __init__(
        self,
        cluster: ProvisionedCluster,
        *,
        scheduler: BaseScheduler | None = None,
        repositories: dict[str, Repository] | None = None,
        group_catalog=None,
        condor_pool=None,
        gmetad=None,
        lustre=None,
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.repositories = repositories or {}
        self.group_catalog = group_catalog
        self.condor_pool = condor_pool
        self.gmetad = gmetad
        self.lustre = lustre
        self.current: Host = cluster.frontend
        self._yum_clients: dict[str, YumClient] = {}
        self._module_sessions: dict[str, ModuleSession] = {}
        self._shell_engine: ShellEngine | None = None
        self._last_clush = None
        self.history: list[ShellResult] = []

    # -- plumbing -----------------------------------------------------------------

    def _yum(self) -> YumClient:
        name = self.current.name
        if name not in self._yum_clients:
            client = YumClient(self.current, self.cluster.db_for(self.current))
            for repo in self.repositories.values():
                client.repos.add_repo(repo)
            self._yum_clients[name] = client
        return self._yum_clients[name]

    def _modules(self) -> ModuleSession:
        name = self.current.name
        if name not in self._module_sessions:
            self._module_sessions[name] = ModuleSession(self.current.modules)
        return self._module_sessions[name]

    def _require_command(self, binary: str) -> None:
        if not self.current.has_command(binary):
            raise CommandError(
                f"{self.current.name}: bash: {binary}: command not found"
            )

    # -- dispatch ----------------------------------------------------------------

    def run(self, command_line: str) -> ShellResult:
        """Execute one command line on the current host."""
        tokens = shlex.split(command_line)
        if not tokens:
            raise CommandError("empty command")
        verb, args = tokens[0], tokens[1:]
        handler = getattr(self, f"_cmd_{verb.replace('-', '_')}", None)
        try:
            if handler is None:
                # fall back: does the binary at least exist?
                self._require_command(verb)
                output = f"{verb}: ok"
            else:
                output = handler(args)
            result = ShellResult(command=command_line, output=output)
        except ReproError as exc:
            result = ShellResult(command=command_line, output=str(exc), ok=False)
        self.history.append(result)
        return result

    # -- host selection -----------------------------------------------------------

    def _cmd_ssh(self, args: list[str]) -> str:
        """ssh <host>: hop to another cluster node."""
        if len(args) != 1:
            raise CommandError("usage: ssh <host>")
        target = args[0]
        for host in self.cluster.hosts():
            if host.name == target:
                self.current = host
                return f"Last login: now on {target}"
        raise CommandError(f"ssh: could not resolve hostname {target}")

    def _cmd_hostname(self, args: list[str]) -> str:
        return self.current.name

    # -- inspection ------------------------------------------------------------------

    def _cmd_cat(self, args: list[str]) -> str:
        if len(args) != 1:
            raise CommandError("usage: cat <path>")
        return self.current.fs.read(args[0])

    def _cmd_which(self, args: list[str]) -> str:
        if len(args) != 1:
            raise CommandError("usage: which <command>")
        return self.current.which(args[0])

    def _cmd_df(self, args: list[str]) -> str:
        mounts = self.current.fs.mounts()
        lines = ["Filesystem            Mounted on"]
        lines.append("/dev/sda1             /")
        for mount_point, src in mounts.items():
            lines.append(f"{src:<22}{mount_point}")
        return "\n".join(lines)

    def _cmd_rpm(self, args: list[str]) -> str:
        self._require_command("rpm")
        db = self.cluster.db_for(self.current)
        if args[:1] == ["-qa"]:
            return "\n".join(p.nevra for p in db.installed())
        if args[:1] == ["-q"] and len(args) == 2:
            name = args[1]
            if db.has(name):
                return db.get(name).nevra
            raise CommandError(f"package {name} is not installed")
        raise CommandError("usage: rpm -q <name> | rpm -qa")

    # -- yum ---------------------------------------------------------------------------

    def _cmd_yum(self, args: list[str]) -> str:
        self._require_command("yum")
        if not args:
            raise CommandError("usage: yum <install|update|check-update|repolist> ...")
        client = self._yum()
        verb, rest = args[0], args[1:]
        if verb == "install":
            result = client.install(*rest)
            return result.summary() + "\nComplete!"
        if verb == "update":
            result = client.update(*rest)
            if result is None:
                return "No Packages marked for Update"
            return result.summary() + "\nComplete!"
        if verb == "check-update":
            pending = client.check_update()
            if not pending:
                return ""
            return "\n".join(str(u) for u in pending)
        if verb == "repolist":
            lines = ["repo id            priority  packages"]
            lines += [
                f"{rid:<19}{prio:>8}{count:>10}"
                for rid, prio, count in client.repolist()
            ]
            return "\n".join(lines)
        if verb == "erase":
            result = client.erase(*rest)
            return result.summary() + "\nComplete!"
        if verb == "grouplist":
            if self.group_catalog is None:
                raise CommandError("no group metadata (comps) available")
            lines = ["Available Groups:"]
            lines += [
                f"   {g.name} ({g.group_id})"
                for g in self.group_catalog.grouplist()
            ]
            return "\n".join(lines)
        if verb == "groupinfo" and len(rest) == 1:
            if self.group_catalog is None:
                raise CommandError("no group metadata (comps) available")
            return self.group_catalog.groupinfo(rest[0])
        if verb == "groupinstall" and rest:
            if self.group_catalog is None:
                raise CommandError("no group metadata (comps) available")
            from .yum.groups import groupinstall as _groupinstall

            result = _groupinstall(client, self.group_catalog, rest[0])
            return result.summary() + "\nComplete!"
        raise CommandError(f"unknown yum verb {verb!r}")

    # -- rocks ---------------------------------------------------------------------------

    def _cmd_rocks(self, args: list[str]) -> str:
        self._require_command("rocks")
        if args[:2] == ["list", "host"]:
            lines = ["HOST            MAC                IP           APPLIANCE  STATE"]
            for rec in self.cluster.rocksdb.hosts():
                lines.append(
                    f"{rec.name:<16}{rec.mac:<19}{rec.ip:<13}"
                    f"{rec.appliance:<11}{rec.state.value}"
                )
            return "\n".join(lines)
        if args[:2] == ["list", "roll"]:
            lines = ["NAME          VERSION  PACKAGES"]
            for name in self.cluster.roll_names():
                roll = self.cluster.rolls[name]
                lines.append(f"{name:<14}{roll.version:<9}{len(roll.packages)}")
            return "\n".join(lines)
        if args[:2] == ["run", "host"] and len(args) >= 3:
            # rocks run host [compute|<name>] "<command>" — fan a command
            # out across appliances, like the real tool
            selector = args[2] if len(args) >= 4 else "compute"
            command = args[3] if len(args) >= 4 else args[2]
            targets = []
            for host in self.cluster.hosts():
                record = self.cluster.rocksdb.get(host.name)
                if selector in (host.name, record.appliance):
                    targets.append(host)
            if not targets:
                raise CommandError(f"rocks run host: no hosts match {selector!r}")
            saved = self.current
            lines = []
            try:
                for host in targets:
                    self.current = host
                    result = self.run(command)
                    first = result.output.splitlines()[0] if result.output else ""
                    lines.append(f"{host.name}: {first}")
            finally:
                self.current = saved
            return "\n".join(lines)
        raise CommandError(
            "usage: rocks list host | rocks list roll | "
            "rocks run host [selector] <command>"
        )

    # -- parallel admin execution (clush / clubak / nodeset) ---------------------------

    def _fleet_groups(self) -> dict[str, NodeSet]:
        """``@appliance`` groups (plus ``@all``) over the live fleet table."""
        fleet = self.cluster.rocksdb.fleet
        names: dict[str, list[str]] = {}
        for i in fleet.ordered_indices():
            names.setdefault(fleet.appliances[i], []).append(fleet.names[i])
        groups = {
            appliance: NodeSet.from_names(members)
            for appliance, members in sorted(names.items())
        }
        groups["all"] = fleet.nodeset()
        return groups

    def _engine(self) -> ShellEngine:
        """The lazily-built fan-out engine, on the scheduler's kernel when
        there is one (so clush time shares the cluster's timeline)."""
        if self._shell_engine is None:
            kernel = self.scheduler.kernel if self.scheduler is not None else None
            self._shell_engine = ShellEngine(
                self.cluster.rocksdb.fleet, kernel=kernel
            )
        return self._shell_engine

    def _cmd_nodeset(self, args: list[str]) -> str:
        """nodeset --fold|--expand|--count <expr>...: NodeSet arithmetic."""
        modes = ("--fold", "-f", "--expand", "-e", "--count", "-c")
        if len(args) < 2 or args[0] not in modes:
            raise CommandError("usage: nodeset --fold|--expand|--count <nodeset>...")
        mode, groups = args[0], self._fleet_groups()
        nodes = NodeSet()
        for expr in args[1:]:
            nodes = nodes | NodeSet.parse(expr, groups=groups)
        if mode in ("--fold", "-f"):
            return nodes.fold()
        if mode in ("--expand", "-e"):
            return " ".join(nodes)
        return str(len(nodes))

    def _cmd_clush(self, args: list[str]) -> str:
        """clush -w <nodeset> [-b] [-f fanout] [-t timeout] <command>."""
        nodes_expr: str | None = None
        fanout, timeout_s, fold_output = 32, 30.0, False
        rest: list[str] = []
        i = 0
        while i < len(args):
            arg = args[i]
            if arg == "-w" and i + 1 < len(args):
                nodes_expr = args[i + 1]
                i += 2
            elif arg == "-f" and i + 1 < len(args):
                fanout = int(args[i + 1])
                i += 2
            elif arg == "-t" and i + 1 < len(args):
                timeout_s = float(args[i + 1])
                i += 2
            elif arg == "-b":
                fold_output = True
                i += 1
            else:
                rest = args[i:]
                break
        if nodes_expr is None or not rest:
            raise CommandError(
                "usage: clush -w <nodeset> [-b] [-f fanout] [-t timeout_s] "
                "<command>"
            )
        targets = NodeSet.parse(nodes_expr, groups=self._fleet_groups())
        line = " ".join(rest)

        def on_node(node: str) -> tuple[int, str]:
            saved = self.current
            try:
                self.current = self.cluster.host_for(node)
                result = self.run(line)
                first = result.output.splitlines()[0] if result.output else ""
                return (0 if result.ok else 1), first
            finally:
                self.current = saved

        report = self._engine().run(
            targets,
            ShellCommand(line, duration_s=0.5, handler=on_node),
            fanout=fanout,
            timeout_s=timeout_s,
        )
        self._last_clush = report
        if fold_output:
            return report.render()
        lines = []
        for name, result in report.results.items():
            if result.status == "skipped":
                lines.append(f"clush: {name}: skipped ({result.reason})")
            elif result.rc is None:
                lines.append(f"clush: {name}: {result.reason}")
            else:
                lines.append(f"{name}: {result.output}")
        ok, failed, skipped = report.counts()
        lines.append(f"clush: {ok} ok, {failed} failed, {skipped} skipped")
        return "\n".join(lines)

    def _cmd_clubak(self, args: list[str]) -> str:
        """clubak: fold the last clush run's outputs under NodeSet labels."""
        if self._last_clush is None:
            raise CommandError("clubak: no clush output to fold (run clush first)")
        folded = render_groups(self._last_clush.groups())
        return folded if folded else "(no output)"

    # -- modules -----------------------------------------------------------------------------

    def _cmd_module(self, args: list[str]) -> str:
        self._require_command("module")
        if not args:
            raise CommandError("usage: module <avail|load|unload|list> ...")
        session = self._modules()
        verb, rest = args[0], args[1:]
        if verb == "avail":
            return "\n".join(self.current.modules.avail())
        if verb == "load" and len(rest) == 1:
            module = session.load(rest[0])
            return f"Loading {module.fullname}"
        if verb == "unload" and len(rest) == 1:
            session.unload(rest[0])
            return f"Unloading {rest[0]}"
        if verb == "list":
            loaded = session.loaded()
            if not loaded:
                return "No Modulefiles Currently Loaded."
            return "Currently Loaded Modulefiles:\n  " + "\n  ".join(loaded)
        raise CommandError(f"unknown module verb {verb!r}")

    # -- batch -----------------------------------------------------------------------------------

    def _cmd_qsub(self, args: list[str]) -> str:
        """qsub -l nodes=N:ppn=M -N name -u user -t runtime -w walltime"""
        self._require_command("qsub")
        if self.scheduler is None:
            raise CommandError("no scheduler attached to this shell")
        options = {"-N": "job", "-u": "user", "-t": "60", "-w": "3600", "-c": "1"}
        it = iter(args)
        for token in it:
            if token in options:
                options[token] = next(it, options[token])
            else:
                raise CommandError(f"qsub: unknown option {token}")
        job = Job(
            name=options["-N"],
            user=options["-u"],
            cores=int(options["-c"]),
            walltime_limit_s=float(options["-w"]),
            runtime_s=float(options["-t"]),
        )
        self.scheduler.submit(job)
        return f"{job.job_id}.{self.cluster.frontend.name}"

    def _cmd_qstat(self, args: list[str]) -> str:
        self._require_command("qstat")
        if self.scheduler is None:
            raise CommandError("no scheduler attached to this shell")
        lines = ["Job ID    Name          User      S"]
        states = {"pending": "Q", "running": "R", "completed": "C",
                  "failed": "E", "cancelled": "C"}
        for job in (
            self.scheduler.running + self.scheduler.pending + self.scheduler.finished
        ):
            lines.append(
                f"{job.job_id:<10}{job.name:<14}{job.user:<10}"
                f"{states[job.state.value]}"
            )
        return "\n".join(lines)

    def _cmd_showq(self, args: list[str]) -> str:
        """Maui's showq: active, then eligible jobs."""
        self._require_command("showq")
        if self.scheduler is None:
            raise CommandError("no scheduler attached to this shell")
        lines = ["ACTIVE JOBS"]
        for job in self.scheduler.running:
            lines.append(
                f"  {job.job_id:<6}{job.name:<16}{job.user:<10}"
                f"{job.cores:>4} cores  Running"
            )
        lines.append("ELIGIBLE JOBS")
        for job in self.scheduler.pending:
            lines.append(
                f"  {job.job_id:<6}{job.name:<16}{job.user:<10}"
                f"{job.cores:>4} cores  Idle"
            )
        lines.append(
            f"Total jobs: {len(self.scheduler.running) + len(self.scheduler.pending)}"
        )
        return "\n".join(lines)

    def _cmd_pbsnodes(self, args: list[str]) -> str:
        """Torque's pbsnodes -a: per-node state and core counts."""
        self._require_command("pbsnodes")
        if self.scheduler is None:
            raise CommandError("no scheduler attached to this shell")
        res = self.scheduler.resources
        lines = []
        for node in res.node_names():
            state = "offline" if res.is_offline(node) else (
                "job-exclusive" if res.free_of(node) == 0 else "free"
            )
            lines.append(f"{node}")
            lines.append(f"     state = {state}")
            lines.append(
                f"     np = {res.capacity_of(node)} "
                f"(free {res.free_of(node)})"
            )
        return "\n".join(lines)

    def _cmd_useradd(self, args: list[str]) -> str:
        if len(args) != 1:
            raise CommandError("usage: useradd <name>")
        user = self.current.users.add_user(args[0])
        return f"created {user.name} (uid {user.uid}, home {user.home})"

    # -- static analysis ---------------------------------------------------------

    def _cmd_cluster_lint(self, args: list[str]) -> str:
        """cluster-lint [--json] [--fail-on error|warning|info]: run the
        pre-flight analyzer over this cluster's own recipe."""
        from .analyze import AnalysisConfig, ClusterDefinition, Severity, analyze

        fail_on = Severity.ERROR
        as_json = False
        it = iter(args)
        for token in it:
            if token == "--json":
                as_json = True
            elif token == "--fail-on":
                value = next(it, "")
                try:
                    fail_on = Severity(value)
                except ValueError:
                    raise CommandError(
                        f"cluster-lint: bad --fail-on {value!r} "
                        f"(error|warning|info)"
                    )
            else:
                raise CommandError(
                    "usage: cluster-lint [--json] [--fail-on <severity>]"
                )
        definition = ClusterDefinition.from_cluster(self.cluster)
        result = analyze(definition, config=AnalysisConfig(fail_on=fail_on))
        return result.render_json() if as_json else result.render_text()

    # -- roll-provided tools ----------------------------------------------------

    def _cmd_condor_status(self, args: list[str]) -> str:
        self._require_command("condor_submit")
        if self.condor_pool is None:
            raise CommandError("no condor pool attached to this shell")
        return self.condor_pool.condor_status()

    def _cmd_condor_q(self, args: list[str]) -> str:
        self._require_command("condor_q")
        if self.condor_pool is None:
            raise CommandError("no condor pool attached to this shell")
        lines = ["ID     OWNER      ST  NAME"]
        states = {"idle": "I", "running": "R", "evicted": "I"}
        for job in self.condor_pool.queue:
            lines.append(
                f"{job.job_id:<7}{job.owner:<11}"
                f"{states.get(job.state.value, '?'):<4}{job.ad.name}"
            )
        lines.append(
            f"{len(self.condor_pool.queue)} jobs; "
            f"{len(self.condor_pool.running_jobs())} running"
        )
        return "\n".join(lines)

    def _cmd_ganglia(self, args: list[str]) -> str:
        if self.gmetad is None:
            raise CommandError("no gmetad attached to this shell")
        return self.gmetad.render_dashboard()

    def _cmd_lfs(self, args: list[str]) -> str:
        if self.lustre is None:
            raise CommandError("no Lustre filesystem attached to this shell")
        if args[:1] == ["df"]:
            return self.lustre.df()
        if args[:2] == ["getstripe", args[1] if len(args) > 1 else ""]:
            record = self.lustre.stat(args[1])
            return (
                f"{record.path}\n"
                f"lmm_stripe_count:  {record.layout.stripe_count}\n"
                f"lmm_stripe_size:   {record.layout.stripe_size_bytes}\n"
                f"obdidx: {list(record.layout.ost_indices)}"
            )
        raise CommandError("usage: lfs df | lfs getstripe <path>")

"""simlint: run the ``SL*`` source rules over the repro source tree itself.

:func:`analyze_source` is to Python files what
:func:`~repro.analyze.engine.analyze` is to cluster definitions — same
:class:`~repro.analyze.diagnostic.Diagnostic` type, same
:class:`~repro.analyze.registry.RULES` registry, same baseline machinery,
one :class:`~repro.analyze.engine.AnalysisResult` out — so the CLI,
rendering, and CI gating come for free.

Configuration lives in ``pyproject.toml`` under ``[tool.simlint]``::

    [tool.simlint.per-path]
    # glob (posix, repo-relative) -> rule codes disabled under it
    "src/repro/linpack/*" = ["SL101"]   # measures real hardware by design

Every opt-out should carry a justification comment next to it — the table
is the source-rule analogue of a baseline file, reviewed in diffs.
"""

from __future__ import annotations

import ast
import fnmatch
import pathlib
from dataclasses import dataclass, field

from .diagnostic import Diagnostic, Severity
from .registry import RULES, AnalysisConfig, Baseline
from .engine import AnalysisResult
from . import passes as _passes

__all__ = [
    "SimlintConfig",
    "analyze_source",
    "iter_source_files",
    "SOURCE_RESULT_NAME",
]

#: ``AnalysisResult.definition_name`` for a source run.
SOURCE_RESULT_NAME = "simlint"

#: Ordered (subsystem, pass) list for source analysis — like the engine's
#: ``_PASS_ORDER``, the order is part of the output contract.
_SOURCE_PASS_ORDER = [
    ("source", _passes.source_determinism.run),
    ("source", _passes.source_epochs.run),
    ("source", _passes.source_traceorder.run),
]


@dataclass(frozen=True)
class SimlintConfig:
    """Per-path rule opt-outs from ``[tool.simlint]``.

    ``per_path`` maps a glob pattern to the rule codes disabled for files
    matching it.  Patterns match the posix-style path as passed on the
    command line (typically repo-relative, ``src/repro/linpack/hpl.py``).
    """

    per_path: dict[str, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def from_pyproject(cls, path: str | pathlib.Path) -> "SimlintConfig":
        """Load ``[tool.simlint]`` from a pyproject file (missing table or
        missing file → empty config)."""
        import tomllib

        path = pathlib.Path(path)
        if not path.exists():
            return cls()
        table = (
            tomllib.loads(path.read_text()).get("tool", {}).get("simlint", {})
        )
        per_path = {}
        for pattern, codes in table.get("per-path", {}).items():
            if not isinstance(codes, list):
                raise ValueError(
                    f"[tool.simlint.per-path] {pattern!r}: expected a list "
                    f"of rule codes, got {type(codes).__name__}"
                )
            unknown = [c for c in codes if c not in RULES]
            if unknown:
                raise ValueError(
                    f"[tool.simlint.per-path] {pattern!r} disables unknown "
                    f"rule code(s): {sorted(unknown)}"
                )
            per_path[pattern] = frozenset(codes)
        return cls(per_path=per_path)

    def disabled_for(self, path: str) -> frozenset[str]:
        """Rule codes opted out for one file path."""
        posix = pathlib.PurePath(path).as_posix()
        disabled: set[str] = set()
        for pattern, codes in self.per_path.items():
            if fnmatch.fnmatch(posix, pattern):
                disabled |= codes
        return frozenset(disabled)


def iter_source_files(paths: list[str | pathlib.Path]) -> list[pathlib.Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: list[pathlib.Path] = []
    for raw in paths:
        path = pathlib.Path(raw)
        if path.is_dir():
            out.extend(sorted(path.rglob("*.py")))
        else:
            out.append(path)
    # de-dup while keeping the deterministic sorted-walk order
    seen: set[pathlib.Path] = set()
    unique = []
    for path in out:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def analyze_source(
    paths: list[str | pathlib.Path],
    *,
    config: AnalysisConfig | None = None,
    simlint: SimlintConfig | None = None,
    baseline: Baseline | None = None,
) -> AnalysisResult:
    """Run every SL source pass over ``paths`` (files or directories).

    A file that fails to read or parse is itself a finding (``SL000``,
    error severity), never an exception — CI must report, not crash.
    """
    config = config or AnalysisConfig()
    simlint = simlint or SimlintConfig()
    collected: list[Diagnostic] = []

    for path in iter_source_files(paths):
        rel = pathlib.PurePath(path).as_posix()
        path_disabled = simlint.disabled_for(rel)

        def emit(
            code: str,
            message: str,
            *,
            location: str = "",
            severity: Severity | None = None,
            hint: str | None = None,
            _disabled: frozenset[str] = path_disabled,
        ) -> None:
            if not config.is_enabled(code) or code in _disabled:
                return
            rule = RULES.get(code)
            collected.append(
                Diagnostic(
                    code=code,
                    severity=severity or rule.severity,
                    message=message,
                    subsystem=rule.subsystem,
                    location=location,
                    hint=rule.hint if hint is None else hint,
                )
            )

        try:
            tree = ast.parse(path.read_text(), filename=str(path))
        except (OSError, SyntaxError) as exc:
            emit("SL000", f"cannot analyze: {exc}", location=rel)
            continue
        for _subsystem, run_pass in _SOURCE_PASS_ORDER:
            run_pass(tree, rel, emit)

    collected.sort(key=lambda d: d.sort_key)
    if baseline is not None:
        kept, suppressed = baseline.split(collected)
    else:
        kept, suppressed = collected, []
    return AnalysisResult(
        definition_name=SOURCE_RESULT_NAME,
        diagnostics=kept,
        suppressed=suppressed,
        fail_on=config.fail_on,
    )

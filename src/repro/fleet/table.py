"""The columnar fleet table: node state as parallel arrays, not objects.

At 10k+ nodes, one Python object per node per subsystem is the scaling
bottleneck (ROADMAP item 1).  A :class:`FleetTable` stores every
per-appliance fact in parallel columns — ``array`` module arrays for
numeric state, ``bytearray`` for flags, plain lists for strings — so hot
paths (installer waves, monitoring rollups, scheduler usability masks)
run as column scans instead of attribute chases.  Existing call sites
keep working through :class:`FleetRow`, a thin cached proxy that exposes
the legacy ``HostRecord``-style attribute API over a row index.

Cache coherence follows the repo's epoch protocol (docs/ANALYZE.md,
SL201): every mutation bumps :attr:`epoch`; the sorted-order index used
by ``hosts()``-style iteration is rebuilt lazily when its epoch marker
trails the table's.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator, Sequence

from ..errors import FleetError
from .nodeset import NodeSet

__all__ = ["FleetTable", "FleetRow", "DEFAULT_STATES"]

#: Default install-state vocabulary (matches rocks.InstallState values);
#: callers may pass richer state objects (e.g. the enum itself) whose
#: ``index()`` position defines the stored code.
DEFAULT_STATES: tuple[str, ...] = (
    "discovered",
    "installing",
    "os-installed",
    "install-failed",
)


class FleetRow:
    """A live window onto one row of a :class:`FleetTable`.

    Attribute-compatible with the legacy ``HostRecord`` (name, mac, ip,
    appliance, rack, rank, state) plus the node-facing columns the
    scheduler and monitors read (cores, powered_on, load, ...).  Rows are
    cached per index, so two lookups of the same host return the *same*
    proxy object.
    """

    __slots__ = ("_table", "_index")

    def __init__(self, table: "FleetTable", index: int) -> None:
        self._table = table
        self._index = index

    @property
    def index(self) -> int:
        """This row's position in the table's columns."""
        return self._index

    @property
    def name(self) -> str:
        return self._table.names[self._index]

    @property
    def mac(self) -> str:
        return self._table.macs[self._index]

    @property
    def ip(self) -> str:
        return self._table.ips[self._index]

    @property
    def appliance(self) -> str:
        return self._table.appliances[self._index]

    @property
    def rack(self) -> int:
        return self._table.racks[self._index]

    @property
    def rank(self) -> int:
        return self._table.ranks[self._index]

    @property
    def state(self):
        t = self._table
        return t.state_values[t.states[self._index]]

    @state.setter
    def state(self, value) -> None:
        self._table.set_state_code(self._index, self._table.state_code(value))

    @property
    def cores(self) -> int:
        return self._table.cores[self._index]

    @cores.setter
    def cores(self, value: int) -> None:
        self._table.set_cores(self._index, value)

    @property
    def mem_kb(self) -> float:
        return self._table.mem_kb[self._index]

    @mem_kb.setter
    def mem_kb(self, value: float) -> None:
        self._table.set_mem_kb(self._index, value)

    @property
    def load(self) -> float:
        return self._table.load[self._index]

    @load.setter
    def load(self, value: float) -> None:
        self._table.set_load(self._index, value)

    @property
    def powered_on(self) -> bool:
        return bool(self._table.powered[self._index])

    @powered_on.setter
    def powered_on(self, value: bool) -> None:
        self._table.set_flag("powered", self._index, value)

    @property
    def responsive(self) -> bool:
        return bool(self._table.responsive[self._index])

    @responsive.setter
    def responsive(self, value: bool) -> None:
        self._table.set_flag("responsive", self._index, value)

    @property
    def alive(self) -> bool:
        """False once the row was removed (tombstoned)."""
        return bool(self._table.alive[self._index])

    def __repr__(self) -> str:
        return (
            f"FleetRow(name={self.name!r}, mac={self.mac!r}, ip={self.ip!r}, "
            f"appliance={self.appliance!r}, rack={self.rack}, "
            f"rank={self.rank}, state={self.state!r})"
        )


class FleetTable:
    """Columnar state for a whole fleet of appliances.

    Columns (all parallel, indexed by row):

    ========== =========== ==================================================
    column      storage     meaning
    ========== =========== ==================================================
    names       list[str]   appliance name (``compute-0-15``)
    macs        list[str]   NIC MAC ("" = not yet discovered)
    ips         list[str]   leased/static IP
    appliances  list[str]   interned appliance type ("frontend"/"compute")
    racks       array('l')  rack number
    ranks       array('l')  rank within the rack
    states      array('B')  install-state code into :attr:`state_values`
    cores       array('l')  core count (filled at discovery/install)
    mem_kb      array('d')  memory in KiB
    load        array('d')  current load (monitoring fast path)
    powered     bytearray   1 = powered on
    responsive  bytearray   1 = heartbeats answered (monitoring)
    offline     bytearray   1 = not allocatable (scheduler mask)
    failed      bytearray   1 = hardware failed (scheduler mask)
    draining    bytearray   1 = draining (scheduler mask)
    alive       bytearray   0 = removed (tombstone; skipped by iteration)
    ========== =========== ==================================================

    Removal tombstones the row (columns never shift), so row indices — and
    the cached :class:`FleetRow` proxies holding them — stay valid for the
    table's lifetime.
    """

    def __init__(self, *, state_values: Sequence = DEFAULT_STATES) -> None:
        if not state_values:
            raise FleetError("state_values must be non-empty")
        self.state_values: tuple = tuple(state_values)
        self._state_code: dict = {v: i for i, v in enumerate(self.state_values)}
        self.names: list[str] = []
        self.macs: list[str] = []
        self.ips: list[str] = []
        self.appliances: list[str] = []
        self.racks = array("l")
        self.ranks = array("l")
        self.states = array("B")
        self.cores = array("l")
        self.mem_kb = array("d")
        self.load = array("d")
        self.powered = bytearray()
        self.responsive = bytearray()
        self.offline = bytearray()
        self.failed = bytearray()
        self.draining = bytearray()
        self.alive = bytearray()
        self._by_name: dict[str, int] = {}
        self._by_mac: dict[str, int] = {}
        self._rows: list[FleetRow] = []
        self._epoch = 0
        #: sorted-order index for hosts(): (appliance != "frontend", rack,
        #: rank) — rebuilt lazily when its marker trails :attr:`epoch`.
        self._order: list[int] = []
        self._order_epoch = -1

    @property
    def epoch(self) -> int:
        """Monotonic mutation counter (epoch cache-coherence protocol)."""
        return self._epoch

    def __len__(self) -> int:
        """Live (non-tombstoned) row count."""
        return len(self._by_name)

    @property
    def row_count(self) -> int:
        """Total rows including tombstones."""
        return len(self.names)

    def state_code(self, value) -> int:
        """The column code for a state value."""
        try:
            return self._state_code[value]
        except KeyError:
            raise FleetError(f"unknown state {value!r}") from None

    # -- row creation / removal ---------------------------------------------

    def add_row(
        self,
        *,
        name: str,
        mac: str = "",
        ip: str = "",
        appliance: str = "compute",
        rack: int = 0,
        rank: int = 0,
        state=None,
        cores: int = 0,
        mem_kb: float = 0.0,
        powered_on: bool = True,
    ) -> FleetRow:
        """Append one appliance; name (and MAC, when given) must be new."""
        if name in self._by_name:
            raise FleetError(f"row {name} already in table")
        if mac and mac in self._by_mac:
            raise FleetError(f"MAC {mac} already in table")
        index = len(self.names)
        self.names.append(name)
        self.macs.append(mac)
        self.ips.append(ip)
        self.appliances.append(appliance)
        self.racks.append(rack)
        self.ranks.append(rank)
        code = 0 if state is None else self.state_code(state)
        self.states.append(code)
        self.cores.append(cores)
        self.mem_kb.append(mem_kb)
        self.load.append(0.0)
        self.powered.append(1 if powered_on else 0)
        self.responsive.append(1)
        self.offline.append(0)
        self.failed.append(0)
        self.draining.append(0)
        self.alive.append(1)
        self._by_name[name] = index
        if mac:
            self._by_mac[mac] = index
        self._rows.append(FleetRow(self, index))
        self._epoch += 1
        return self._rows[index]

    def remove(self, name: str) -> None:
        """Tombstone a row; its index is never reused."""
        index = self.index_of(name)
        self.alive[index] = 0
        del self._by_name[name]
        mac = self.macs[index]
        if mac and self._by_mac.get(mac) == index:
            del self._by_mac[mac]
        self._epoch += 1

    # -- lookups -------------------------------------------------------------

    def index_of(self, name: str) -> int:
        try:
            return self._by_name[name]
        except KeyError:
            raise FleetError(f"no row {name} in table") from None

    def index_of_mac(self, mac: str) -> int:
        try:
            return self._by_mac[mac]
        except KeyError:
            raise FleetError(f"no row with MAC {mac} in table") from None

    def has(self, name: str) -> bool:
        return name in self._by_name

    def has_mac(self, mac: str) -> bool:
        return mac in self._by_mac

    def row(self, index: int) -> FleetRow:
        """The (stable, per-index) proxy for one row."""
        return self._rows[index]

    def by_name(self, name: str) -> FleetRow:
        return self.row(self.index_of(name))

    def by_mac(self, mac: str) -> FleetRow:
        return self.row(self.index_of_mac(mac))

    def known_macs(self) -> set[str]:
        return set(self._by_mac)

    # -- ordered iteration ----------------------------------------------------

    def _ordered(self) -> list[int]:
        if self._order_epoch != self._epoch:
            self._order = sorted(
                self._by_name.values(),
                key=lambda i: (
                    self.appliances[i] != "frontend",
                    self.racks[i],
                    self.ranks[i],
                ),
            )
            self._order_epoch = self._epoch
        return self._order

    def ordered_indices(self) -> list[int]:
        """Live row indices, frontend first then (rack, rank)."""
        return list(self._ordered())

    def rows(self) -> list[FleetRow]:
        """Live rows in the canonical order."""
        return [self.row(i) for i in self._ordered()]

    def compute_indices(self) -> list[int]:
        return [i for i in self._ordered() if self.appliances[i] == "compute"]

    def __iter__(self) -> Iterator[FleetRow]:
        return iter(self.rows())

    # -- column mutators (each bumps the epoch) --------------------------------

    def set_state_code(self, index: int, code: int) -> None:
        if not 0 <= code < len(self.state_values):
            raise FleetError(f"state code {code} out of range")
        self.states[index] = code
        self._epoch += 1

    def set_cores(self, index: int, value: int) -> None:
        self.cores[index] = value
        self._epoch += 1

    def set_mem_kb(self, index: int, value: float) -> None:
        self.mem_kb[index] = value
        self._epoch += 1

    def set_load(self, index: int, value: float) -> None:
        self.load[index] = value
        self._epoch += 1

    def set_flag(self, column: str, index: int, value: bool) -> None:
        if column not in ("powered", "responsive", "offline", "failed", "draining"):
            raise FleetError(f"unknown flag column {column!r}")
        getattr(self, column)[index] = 1 if value else 0
        self._epoch += 1

    # -- fleet-scale queries ---------------------------------------------------

    def nodeset(self, indices: Iterable[int] | None = None) -> NodeSet:
        """Fold (a subset of) live row names into a :class:`NodeSet`."""
        if indices is None:
            indices = self._ordered()
        return NodeSet.from_names(self.names[i] for i in indices)

    def select(self, nodes: NodeSet) -> list[int]:
        """Live row indices of every table member of ``nodes``, in the
        table's canonical order."""
        return [i for i in self._ordered() if self.names[i] in nodes]

    def count_state(self, state) -> int:
        """How many live rows are in ``state`` (one column scan)."""
        code = self.state_code(state)
        states, alive = self.states, self.alive
        return sum(
            1
            for i in self._by_name.values()
            if states[i] == code and alive[i]
        )

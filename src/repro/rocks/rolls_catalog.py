"""The standard Rocks rolls of Table 1, plus the base roll and OS packages.

Table 1 lists what a current XCBC build draws from stock Rocks:

* Basics — Rocks 6.1.1, CentOS 6.5, modules, apache-ant, fdepend, gmake,
  gnu-make, scons;
* Job management — "Torque, SLURM, sge (choose one)";
* Optional rolls — area51, bio, fingerprint, htcondor, ganglia, hpc, kvm,
  perl, python, Web-server, Zfs-linux.

Every roll here is a real :class:`~repro.rocks.roll.Roll` with packages that
materialise commands/services/modulefiles, so an installed cluster has an
inspectable surface (the Table 1 bench regenerates the table from these
definitions — the single source of truth).
"""

from __future__ import annotations

from ..distro.distribution import DistroRelease
from ..rpm.package import Capability, Flag, Package, Requirement
from .kickstart import Profile
from .roll import Roll, RollGraphFragment

__all__ = [
    "base_os_packages",
    "base_roll",
    "job_management_rolls",
    "optional_rolls",
    "all_standard_rolls",
    "TABLE1_BASICS",
    "TABLE1_OPTIONAL_ROLLS",
]

#: The Table 1 "Basics" row, verbatim.
TABLE1_BASICS = (
    "rocks",
    "modules",
    "apache-ant",
    "fdepend",
    "gmake",
    "gnu-make",
    "scons",
)

#: The Table 1 optional-roll rows: name -> description (verbatim from the paper).
TABLE1_OPTIONAL_ROLLS = {
    "area51": "Security-related packages for analyzing the integrity of files and the kernel",
    "bio": "Bioinformatics utilities",
    "fingerprint": "Fingerprint application dependencies",
    "htcondor": "HTCondor high-throughput computing workload management system",
    "ganglia": "Cluster monitoring system",
    "hpc": "Tools for running parallel applications",
    "kvm": "Support for building Kernel-Based Virtual Machine (KVM) virtual machines on cluster nodes",
    "perl": "Perl RPM, CPAN support utilities, and various CPAN modules",
    "python": "Python 2.7 and Python 3.x",
    "web-server": "Rocks web server roll",
    "zfs-linux": "Zetabyte File System (ZFS) drivers for Linux",
}


def base_os_packages(release: DistroRelease) -> list[Package]:
    """The stock packages a fresh OS install carries (CentOS base set)."""
    version = release.version
    pkgs = []
    for name in release.base_packages:
        commands: tuple[str, ...] = ()
        services: tuple[str, ...] = ()
        if name == "bash":
            commands = ("sh",)
        elif name == "coreutils":
            commands = ("ls", "cp", "mv", "cat", "chmod")
        elif name == "rpm":
            commands = ("rpm",)
        elif name == "yum":
            commands = ("yum",)
        elif name == "openssh":
            commands = ("ssh", "scp")
        elif name == "openssh-server":
            services = ("sshd",)
        elif name == "net-tools":
            commands = ("ifconfig", "netstat")
        elif name == "cronie":
            commands = ("crontab",)
            services = ("crond",)
        elif name == "util-linux":
            commands = ("mount", "fdisk")
        pkgs.append(
            Package(
                name=name,
                version=version if name != "kernel" else release.kernel_version,
                category="os-base",
                summary=f"{release.name} base package",
                commands=commands,
                services=services,
            )
        )
    return pkgs


def base_roll() -> Roll:
    """The mandatory Rocks base roll: rocks commands, modules, build tools."""
    packages = (
        Package(
            name="rocks",
            version="6.1.1",
            category="Basics",
            summary="Rocks cluster distribution core",
            commands=("rocks", "insert-ethers"),
            services=("rocks-dhcpd", "httpd"),
        ),
        Package(
            name="modules",
            version="3.2.10",
            category="Basics",
            summary="Environment modules",
            commands=("module", "modulecmd"),
        ),
        Package(
            name="apache-ant",
            version="1.8.4",
            category="Basics",
            summary="Java build tool",
            commands=("ant",),
            requires=(Requirement("java-1.7.0-openjdk"),),
        ),
        Package(
            name="fdepend",
            version="1.0",
            category="Basics",
            summary="Fortran dependency generator",
            commands=("fdepend",),
        ),
        Package(
            name="gmake",
            version="3.81",
            category="Basics",
            summary="GNU make (gmake spelling)",
            commands=("gmake",),
            provides=(Capability("make-engine", "3.81"),),
        ),
        Package(
            name="gnu-make",
            version="3.81",
            category="Basics",
            summary="GNU make",
            commands=("make",),
            provides=(Capability("make-engine", "3.81"),),
        ),
        Package(
            name="scons",
            version="2.3.0",
            category="Basics",
            summary="SCons build tool",
            commands=("scons",),
            requires=(Requirement("python-base"),),
        ),
        Package(
            name="java-1.7.0-openjdk",
            version="1.7.0.75",
            category="Basics",
            summary="OpenJDK 7 runtime",
            commands=("java",),
        ),
        Package(
            name="rocks-411",
            version="6.1.1",
            category="Basics",
            summary="Rocks 411 secure information service",
            services=("411",),
        ),
    )
    fragments = (
        RollGraphFragment(
            node_name="base-common",
            packages=("rocks", "modules", "gnu-make", "gmake"),
            attach_to=(Profile.FRONTEND, Profile.COMPUTE),
        ),
        RollGraphFragment(
            node_name="base-build-tools",
            packages=("apache-ant", "java-1.7.0-openjdk", "fdepend", "scons"),
            attach_to=(Profile.FRONTEND, Profile.COMPUTE),
        ),
        RollGraphFragment(
            node_name="base-frontend-services",
            packages=("rocks-411",),
            attach_to=(Profile.FRONTEND,),
            enable_services=("rocks-dhcpd", "httpd", "411"),
            post_actions=("configure dual-homed network", "start kickstart server"),
        ),
    )
    return Roll(
        name="base",
        version="6.1.1",
        summary="Rocks base: cluster core, modules, build tools",
        packages=packages,
        fragments=fragments,
        optional=False,
    )


def job_management_rolls() -> dict[str, Roll]:
    """The "choose one" job-management rolls: torque, slurm, sge.

    The torque roll carries Maui (Table 2 lists maui+torque as XCBC's
    scheduler pairing).  The three conflict with one another.
    """
    torque_pkgs = (
        Package(
            name="torque",
            version="4.2.10",
            category="Scheduler and Resource Manager",
            summary="Torque resource manager",
            commands=("qsub", "qstat", "qdel", "pbsnodes"),
            services=("pbs_server", "pbs_mom"),
            conflicts=(Requirement("slurm"), Requirement("sge")),
        ),
        Package(
            name="maui",
            version="3.3.1",
            category="Scheduler and Resource Manager",
            summary="Maui scheduler",
            commands=("showq", "checkjob", "setqos"),
            services=("maui",),
            requires=(Requirement("torque"),),
        ),
    )
    slurm_pkgs = (
        Package(
            name="slurm",
            version="14.03.0",
            category="Scheduler and Resource Manager",
            summary="SLURM workload manager",
            commands=("sbatch", "squeue", "scancel", "sinfo", "srun"),
            services=("slurmctld", "slurmd"),
            conflicts=(Requirement("torque"), Requirement("sge")),
        ),
        Package(
            name="munge",
            version="0.5.11",
            category="Scheduler and Resource Manager",
            summary="MUNGE authentication for SLURM",
            services=("munged",),
        ),
    )
    sge_pkgs = (
        Package(
            name="sge",
            version="8.1.8",
            category="Scheduler and Resource Manager",
            summary="Son of Grid Engine",
            commands=("qsub", "qstat", "qdel", "qconf"),
            services=("sge_qmaster", "sge_execd"),
            conflicts=(Requirement("torque"), Requirement("slurm")),
        ),
    )

    def scheduler_roll(name: str, pkgs: tuple[Package, ...], services: tuple[str, ...]) -> Roll:
        return Roll(
            name=name,
            version="6.1.1",
            summary=f"{name} job management roll",
            packages=pkgs,
            fragments=(
                RollGraphFragment(
                    node_name=f"{name}-server",
                    packages=tuple(p.name for p in pkgs),
                    attach_to=(Profile.FRONTEND,),
                    enable_services=services[:1] + services[2:],
                ),
                RollGraphFragment(
                    node_name=f"{name}-client",
                    packages=(pkgs[0].name,) + tuple(p.name for p in pkgs[1:] if p.services and p.name == "munge"),
                    attach_to=(Profile.COMPUTE,),
                    enable_services=services[1:2],
                ),
            ),
        )

    return {
        "torque": scheduler_roll("torque", torque_pkgs, ("pbs_server", "pbs_mom", "maui")),
        "slurm": scheduler_roll("slurm", slurm_pkgs, ("slurmctld", "slurmd", "munged")),
        "sge": scheduler_roll("sge", sge_pkgs, ("sge_qmaster", "sge_execd")),
    }


def _simple_roll(
    name: str,
    version: str,
    summary: str,
    package_defs: list[Package],
    *,
    frontend_only: bool = False,
    services: tuple[str, ...] = (),
) -> Roll:
    attach = (Profile.FRONTEND,) if frontend_only else (Profile.FRONTEND, Profile.COMPUTE)
    return Roll(
        name=name,
        version=version,
        summary=summary,
        packages=tuple(package_defs),
        fragments=(
            RollGraphFragment(
                node_name=f"{name}-packages",
                packages=tuple(p.name for p in package_defs),
                attach_to=attach,
                enable_services=services,
            ),
        ),
    )


def optional_rolls() -> dict[str, Roll]:
    """The Table 1 optional rolls, each with representative packages."""
    rolls: dict[str, Roll] = {}
    rolls["area51"] = _simple_roll(
        "area51", "6.1.1", TABLE1_OPTIONAL_ROLLS["area51"],
        [
            Package(name="tripwire", version="2.4.2", category="area51",
                    summary="File integrity checker", commands=("tripwire",)),
            Package(name="chkrootkit", version="0.49", category="area51",
                    summary="Rootkit detector", commands=("chkrootkit",)),
        ],
    )
    rolls["bio"] = _simple_roll(
        "bio", "6.1.1", TABLE1_OPTIONAL_ROLLS["bio"],
        [
            Package(name="hmmer-roll", version="3.1", category="bio",
                    summary="Profile HMM search", commands=("hmmsearch-roll",)),
            Package(name="ncbi-blast-roll", version="2.2.29", category="bio",
                    summary="BLAST sequence search", commands=("blastn-roll",)),
            Package(name="clustalw", version="2.1", category="bio",
                    summary="Multiple sequence alignment", commands=("clustalw2",)),
        ],
    )
    rolls["fingerprint"] = _simple_roll(
        "fingerprint", "6.1.1", TABLE1_OPTIONAL_ROLLS["fingerprint"],
        [
            Package(name="fingerprint", version="1.1", category="fingerprint",
                    summary="Application dependency fingerprinting",
                    commands=("fingerprint",)),
        ],
    )
    rolls["htcondor"] = _simple_roll(
        "htcondor", "6.1.1", TABLE1_OPTIONAL_ROLLS["htcondor"],
        [
            Package(name="htcondor", version="8.2.2", category="htcondor",
                    summary="High-throughput computing",
                    commands=("condor_submit", "condor_q"),
                    services=("condor_master",)),
        ],
        services=("condor_master",),
    )
    rolls["ganglia"] = _simple_roll(
        "ganglia", "6.1.1", TABLE1_OPTIONAL_ROLLS["ganglia"],
        [
            Package(name="ganglia-gmond", version="3.6.0", category="ganglia",
                    summary="Ganglia monitoring daemon", services=("gmond",)),
            Package(name="ganglia-gmetad", version="3.6.0", category="ganglia",
                    summary="Ganglia meta daemon", services=("gmetad",),
                    requires=(Requirement("ganglia-gmond"),)),
        ],
        services=("gmond",),
    )
    rolls["hpc"] = _simple_roll(
        "hpc", "6.1.1", TABLE1_OPTIONAL_ROLLS["hpc"],
        [
            Package(name="rocks-openmpi", version="1.6.2", category="hpc",
                    summary="OpenMPI (Rocks build)",
                    commands=("mpirun-rocks",),
                    libraries=("librocksmpi.so.1",)),
            Package(name="mpi-tests", version="6.1.1", category="hpc",
                    summary="Ping-pong and stream benchmarks",
                    commands=("mpi-ping-pong", "stream"),
                    requires=(Requirement("rocks-openmpi"),)),
            Package(name="iozone", version="3.424", category="hpc",
                    summary="Filesystem benchmark", commands=("iozone",)),
        ],
    )
    rolls["kvm"] = _simple_roll(
        "kvm", "6.1.1", TABLE1_OPTIONAL_ROLLS["kvm"],
        [
            Package(name="qemu-kvm", version="0.12.1", category="kvm",
                    summary="KVM hypervisor", commands=("qemu-kvm",),
                    services=("libvirtd",)),
            Package(name="libvirt", version="0.10.2", category="kvm",
                    summary="Virtualisation API", commands=("virsh",),
                    requires=(Requirement("qemu-kvm"),)),
        ],
    )
    rolls["perl"] = _simple_roll(
        "perl", "6.1.1", TABLE1_OPTIONAL_ROLLS["perl"],
        [
            Package(name="perl", version="5.10.1", category="perl",
                    summary="Perl interpreter", commands=("perl",)),
            Package(name="perl-CPAN", version="1.9402", category="perl",
                    summary="CPAN support utilities", commands=("cpan",),
                    requires=(Requirement("perl"),)),
            Package(name="perl-BioPerl", version="1.6.9", category="perl",
                    summary="CPAN module: BioPerl",
                    requires=(Requirement("perl"),)),
        ],
    )
    rolls["python"] = _simple_roll(
        "python", "6.1.1", TABLE1_OPTIONAL_ROLLS["python"],
        [
            Package(name="python27", version="2.7.8", category="python",
                    summary="Python 2.7", commands=("python2.7",),
                    modulefile="python27/2.7.8"),
            Package(name="python3", version="3.4.1", category="python",
                    summary="Python 3.x", commands=("python3",),
                    modulefile="python3/3.4.1"),
        ],
    )
    rolls["web-server"] = _simple_roll(
        "web-server", "6.1.1", TABLE1_OPTIONAL_ROLLS["web-server"],
        [
            Package(name="httpd-roll", version="2.2.15", category="web-server",
                    summary="Apache httpd (Rocks web server)",
                    services=("httpd-web",)),
            Package(name="wordpress", version="3.9", category="web-server",
                    summary="Rocks site frontend",
                    requires=(Requirement("httpd-roll"),)),
        ],
        frontend_only=True,
        services=("httpd-web",),
    )
    rolls["zfs-linux"] = _simple_roll(
        "zfs-linux", "6.1.1", TABLE1_OPTIONAL_ROLLS["zfs-linux"],
        [
            Package(name="zfs", version="0.6.3", category="zfs-linux",
                    summary="ZFS on Linux", commands=("zpool", "zfs"),
                    services=("zfs-import",)),
            Package(name="spl", version="0.6.3", category="zfs-linux",
                    summary="Solaris porting layer"),
        ],
        frontend_only=True,
    )
    return rolls


def all_standard_rolls() -> dict[str, Roll]:
    """base + job management + every optional roll, keyed by name."""
    rolls = {"base": base_roll()}
    rolls.update(job_management_rolls())
    rolls.update(optional_rolls())
    return rolls

"""Near-miss fixture: looks time-adjacent but reads no wall clock (SL101)."""

import time
from datetime import datetime


def sample_now(kernel, bus):
    # simulated time, not the host clock
    bus.emit("tick", t_s=kernel.now_s, subsystem="demo")


def pure_conversion(epoch_s):
    # gmtime with an explicit argument is a pure function of its input
    return time.gmtime(epoch_s)


def parse_stamp(text):
    # constructing a datetime from data is fine; *reading* the clock is not
    return datetime.fromisoformat(text)


class Timeline:
    def time(self):  # a method merely *named* time is not time.time
        return 0.0


def drive(timeline):
    return timeline.time()

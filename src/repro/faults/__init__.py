"""repro.faults: deterministic fault injection and retry machinery.

Three layers, importable in increasing weight:

* :mod:`repro.faults.retry` — :class:`RetryPolicy`, :class:`CircuitBreaker`
  and :func:`call_with_retry`: seeded exponential backoff with jitter,
  deadline budgets, and breaker guards, all spending simulated time on the
  kernel.  This layer is imported *by* the subsystems (PXE, yum mirror,
  GridFTP), so it must stay dependency-light.
* :mod:`repro.faults.plan` / :mod:`repro.faults.inject` — declarative
  :class:`FaultPlan` schedules and the :class:`FaultInjector` that turns
  them into kernel events (duck-typed against whatever subsystems you
  wire in).
* :mod:`repro.faults.chaos` — the whole-stack chaos harness behind
  ``python -m repro.faults``.  **Not** imported here: it pulls in the
  scheduler, monitoring, and hardware layers, which in turn import this
  package; reach it as ``repro.faults.chaos`` explicitly.
"""

from .inject import ActiveFault, FaultInjector
from .plan import FaultKind, FaultPlan, FaultSpec
from .retry import CircuitBreaker, RetryBudget, RetryPolicy, call_with_retry

__all__ = [
    "ActiveFault",
    "CircuitBreaker",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "RetryBudget",
    "RetryPolicy",
    "call_with_retry",
]

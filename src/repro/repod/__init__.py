"""repro.repod: the XNIT repository *service*, built to survive overload.

The paper's Table 3 registry is a fleet of campuses all pulling from one
XNIT repository; this package models that server side on the simulation
kernel, with robustness — not raw capacity — as the headline:

* :mod:`repro.repod.server` — :class:`RepoServer`, the origin: bounded
  connection slots, a bounded *admission queue* with deadline-aware load
  shedding (a request whose client deadline already expired is shed, not
  served), and crash/recover hooks for the ``origin.crash`` fault.
* :mod:`repro.repod.proxy` — :class:`SiteProxy`, the campus cache tier:
  hit/miss accounting, request *coalescing* (N concurrent misses for one
  artifact produce one origin fetch), and *serve-stale* graceful
  degradation when the origin is dead or shedding.
* :mod:`repro.repod.client` — :class:`RepoClient`, a campus sync whose
  retries follow :class:`~repro.faults.RetryPolicy` but are governed by a
  token-bucket :class:`~repro.faults.RetryBudget`, so a degraded origin
  sees load decay instead of a retry storm.
* :mod:`repro.repod.storm` — :class:`UpdateStormScenario`: the security
  release that makes every campus sync at once, with the origin crashing
  and proxy uplinks flapping mid-storm, plus the invariant audit
  (:func:`repod_confluence_problems`) chaos invariant 8 runs.

Every decision lands on the trace bus as ``repod.*`` events (request /
shed / coalesce / stale / retry_budget) — same seed, byte-identical
JSONL, even mid-storm.  See docs/REPOD.md.
"""

from .client import RepoClient, RequestRecord
from .proxy import SiteProxy
from .server import FetchResult, RepoServer, payload_for
from .storm import (
    StormReport,
    UpdateStormScenario,
    repod_confluence_problems,
    run_storm,
)

__all__ = [
    "FetchResult",
    "RepoClient",
    "RepoServer",
    "RequestRecord",
    "SiteProxy",
    "StormReport",
    "UpdateStormScenario",
    "payload_for",
    "repod_confluence_problems",
    "run_storm",
]

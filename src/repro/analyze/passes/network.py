"""Network-plan checks: the DHCP pool versus the nodes that will boot.

insert-ethers registers every compute node through the frontend's DHCP pool,
one lease per MAC, and the pool never recycles addresses within a lease
epoch — so a pool smaller than the node count is a guaranteed mid-install
:class:`~repro.errors.DhcpError`, and a duplicate MAC silently registers one
node instead of two.  Both are knowable before a single node powers on.
"""

from __future__ import annotations

from collections import Counter

from ..diagnostic import Severity
from ..registry import rule

NET401 = rule(
    "NET401",
    "network",
    Severity.ERROR,
    "DHCP pool is smaller than the number of nodes to install",
    "widen pool_start..pool_end (or split racks across segments); "
    "insert-ethers needs one lease per compute node",
)
NET402 = rule(
    "NET402",
    "network",
    Severity.ERROR,
    "duplicate MAC address in the insert-ethers feed",
    "two nodes share a MAC; only one will register — fix the inventory",
)
NET403 = rule(
    "NET403",
    "network",
    Severity.WARNING,
    "dynamic pool covers the frontend's own address",
    "start the pool at .2 or later; the frontend owns .1 on the segment",
)
NET404 = rule(
    "NET404",
    "network",
    Severity.ERROR,
    "DHCP pool bounds are invalid",
    "pool must satisfy 0 < start <= end <= 254",
)


def run(definition, emit) -> None:
    plan = definition.dhcp_plan
    macs = definition.effective_macs()
    if plan is None and not macs:
        return

    if plan is not None:
        where = f"network:{plan.network_prefix}.0/24"
        if not plan.is_valid:
            emit(
                "NET404",
                f"pool {plan.pool_start}..{plan.pool_end} is not a valid "
                f"range within 1..254",
                location=where,
            )
        else:
            if macs and len(macs) > plan.capacity:
                emit(
                    "NET401",
                    f"{len(macs)} nodes need leases but the pool "
                    f"{plan.network_prefix}.{plan.pool_start}-"
                    f"{plan.pool_end} holds only {plan.capacity}",
                    location=where,
                )
            if plan.covers_host(1):
                emit(
                    "NET403",
                    f"pool starts at .{plan.pool_start} and would hand out "
                    f"the frontend's own address {plan.server_ip}",
                    location=where,
                )

    counts = Counter(macs)
    for mac, count in sorted(counts.items()):
        if count > 1:
            emit(
                "NET402",
                f"MAC {mac} appears {count} times in the insert-ethers feed",
                location=f"network:mac/{mac}",
            )

"""Linux distribution releases.

XCBC 0.0.8 moved the base OS from CentOS 6.3 to 6.5 (Section 2), Rocks 6.1.1
is built on CentOS 6.5, and the Limulus HPC200 ships Scientific Linux — "an
RPM-based Red Hat Linux variant" (Section 5).  A release here is mostly an
identity plus the stock package set the OS install lays down before any
XCBC/XNIT software arrives.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import DistroError

__all__ = [
    "DistroRelease",
    "CENTOS_6_3",
    "CENTOS_6_5",
    "SCIENTIFIC_LINUX_6_5",
    "RELEASES",
    "get_release",
]


@dataclass(frozen=True)
class DistroRelease:
    """One distribution release."""

    name: str
    version: str
    family: str  # "rhel" for all paper distros
    kernel_version: str
    #: package names the base install provides (consumed by the RPM layer;
    #: versions are resolved against the base repository)
    base_packages: tuple[str, ...]

    def __post_init__(self) -> None:
        if self.family != "rhel":
            raise DistroError(
                f"only RHEL-family distros are modelled, got {self.family!r}"
            )

    @property
    def release_string(self) -> str:
        """e.g. ``"CentOS 6.5"`` — what /etc/redhat-release would say."""
        return f"{self.name} {self.version}"

    def is_compatible_upgrade_of(self, other: "DistroRelease") -> bool:
        """True if in-place yum upgrade from ``other`` is supported
        (same family, same major version, not a downgrade)."""
        if self.family != other.family:
            return False
        smaj, smin = (int(x) for x in self.version.split("."))
        omaj, omin = (int(x) for x in other.version.split("."))
        return smaj == omaj and smin >= omin


#: Minimal but realistic base set every RHEL-6 era install carries.
_RHEL6_BASE = (
    "glibc",
    "bash",
    "coreutils",
    "kernel",
    "rpm",
    "yum",
    "openssh",
    "openssh-server",
    "python-base",
    "perl-base",
    "chkconfig",
    "initscripts",
    "util-linux",
    "e2fsprogs",
    "net-tools",
    "cronie",
)

CENTOS_6_3 = DistroRelease(
    name="CentOS",
    version="6.3",
    family="rhel",
    kernel_version="2.6.32-279",
    base_packages=_RHEL6_BASE,
)

CENTOS_6_5 = DistroRelease(
    name="CentOS",
    version="6.5",
    family="rhel",
    kernel_version="2.6.32-431",
    base_packages=_RHEL6_BASE,
)

SCIENTIFIC_LINUX_6_5 = DistroRelease(
    name="Scientific Linux",
    version="6.5",
    family="rhel",
    kernel_version="2.6.32-431",
    base_packages=_RHEL6_BASE,
)

RELEASES: dict[str, DistroRelease] = {
    r.release_string: r for r in (CENTOS_6_3, CENTOS_6_5, SCIENTIFIC_LINUX_6_5)
}


def get_release(release_string: str) -> DistroRelease:
    """Look up a release by its ``"Name X.Y"`` string."""
    try:
        return RELEASES[release_string]
    except KeyError:
        known = ", ".join(sorted(RELEASES))
        raise DistroError(
            f"unknown release {release_string!r}; known: {known}"
        ) from None

"""``python -m repro.perf`` — run the hot-path benches, compare baselines.

Default run executes every bench and writes ``BENCH_hotpaths.json`` in the
current directory (the repo root, in CI and normal use), merging into any
existing file so full and ``--quick`` entries coexist.  With ``--against``
the run becomes a regression gate: no file is written (unless ``--out`` is
given explicitly) and the process exits 1 when any bench is more than
``--tolerance`` slower than its baseline entry.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Mapping

from .benches import BENCHES, BenchResult, run_benches

__all__ = ["main", "load_results", "write_results", "compare_results"]

DEFAULT_OUT = "BENCH_hotpaths.json"
DEFAULT_TOLERANCE = 0.25


def load_results(path: str | pathlib.Path) -> dict[str, dict]:
    """Read a results file; ``{bench: {ops_per_s, wall_s, n}}``."""
    data = json.loads(pathlib.Path(path).read_text())
    if not isinstance(data, dict):
        raise ValueError(f"{path}: expected a JSON object at top level")
    return data


def write_results(
    results: Mapping[str, BenchResult], path: str | pathlib.Path
) -> dict[str, dict]:
    """Merge ``results`` into ``path`` (kept sorted); returns what was written."""
    target = pathlib.Path(path)
    merged: dict[str, dict] = {}
    if target.exists():
        merged.update(load_results(target))
    for name, result in results.items():
        merged[name] = result.to_dict()
    merged = {name: merged[name] for name in sorted(merged)}
    target.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
    return merged


def compare_results(
    current: Mapping[str, BenchResult],
    baseline: Mapping[str, Mapping],
    *,
    tolerance: float = DEFAULT_TOLERANCE,
) -> list[str]:
    """Regressions: benches more than ``tolerance`` slower than baseline.

    Only benches present in both sets are compared (a quick run against a
    full baseline matches on the ``@quick`` keys).  Returns human-readable
    problem strings; empty means the gate passes.
    """
    problems: list[str] = []
    for name, result in current.items():
        entry = baseline.get(name)
        if entry is None:
            continue
        base_ops = float(entry.get("ops_per_s", 0.0))
        if base_ops <= 0:
            continue
        floor = base_ops * (1.0 - tolerance)
        if result.ops_per_s < floor:
            drop = 1.0 - result.ops_per_s / base_ops
            problems.append(
                f"{name}: {result.ops_per_s:,.1f} ops/s vs baseline "
                f"{base_ops:,.1f} ({drop:.0%} slower, tolerance {tolerance:.0%})"
            )
    return problems


def _render_table(
    results: Mapping[str, BenchResult], baseline: Mapping[str, Mapping] | None
) -> str:
    lines = [f"{'bench':<28}{'ops/s':>14}{'wall_s':>10}{'n':>8}{'vs baseline':>14}"]
    for name, result in results.items():
        delta = ""
        if baseline is not None:
            entry = baseline.get(name)
            if entry and float(entry.get("ops_per_s", 0.0)) > 0:
                ratio = result.ops_per_s / float(entry["ops_per_s"])
                delta = f"{ratio:.2f}x"
        lines.append(
            f"{name:<28}{result.ops_per_s:>14,.1f}{result.wall_s:>10.4f}"
            f"{result.n:>8}{delta:>14}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.perf",
        description="Run the canonical hot-path benches and gate regressions.",
    )
    parser.add_argument(
        "benches",
        nargs="*",
        metavar="BENCH",
        help=f"benches to run (default: all of {', '.join(BENCHES)})",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrunk workloads for CI smoke runs (results keyed <name>@quick)",
    )
    parser.add_argument(
        "--naive",
        action="store_true",
        help="run through the _scan_* reference paths with all caches off "
        "(ablation baseline; results keyed <name>@naive, never written)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help=f"results file to write/merge (default: {DEFAULT_OUT}; "
        "with --against, only written when given explicitly)",
    )
    parser.add_argument(
        "--against",
        metavar="PATH",
        default=None,
        help="baseline results file to compare with; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        metavar="FRAC",
        help="allowed fractional slowdown vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list bench names and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, fn in BENCHES.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:<24}{doc}")
        return 0

    names = args.benches or None
    try:
        if args.naive:
            from .naive import naive_mode

            with naive_mode():
                results = run_benches(
                    names, quick=args.quick, progress=lambda n: print(f"[naive] {n} ...")
                )
            results = {
                f"{name}@naive": BenchResult(
                    f"{name}@naive", r.ops_per_s, r.wall_s, r.n
                )
                for name, r in results.items()
            }
        else:
            results = run_benches(
                names, quick=args.quick, progress=lambda n: print(f"{n} ...")
            )
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    baseline: dict[str, dict] | None = None
    if args.against is not None:
        try:
            baseline = load_results(args.against)
        except FileNotFoundError:
            print(f"error: baseline {args.against} not found", file=sys.stderr)
            return 2

    print(_render_table(results, baseline))

    if args.naive:
        if args.out is not None:
            print("note: --naive results are never written; ignoring --out")
    elif args.against is None or args.out is not None:
        out = args.out if args.out is not None else DEFAULT_OUT
        write_results(results, out)
        print(f"wrote {out}")

    if baseline is not None:
        problems = compare_results(results, baseline, tolerance=args.tolerance)
        if problems:
            print("\nPERF REGRESSION:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        compared = sum(1 for name in results if name in baseline)
        print(f"perf gate OK ({compared} bench(es) within {args.tolerance:.0%})")
    return 0

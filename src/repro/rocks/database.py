"""The Rocks cluster database.

"Using an internal database, Rocks can manage many compute nodes" (Section
3).  The database tracks every appliance: name, MAC, IP, appliance type,
rack/rank position, and install state — the table ``rocks list host`` shows.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import RocksError

__all__ = ["InstallState", "HostRecord", "RocksDatabase"]


class InstallState(str, Enum):
    """Rocks' view of an appliance's lifecycle."""

    DISCOVERED = "discovered"   # seen by insert-ethers, not yet installed
    INSTALLING = "installing"   # kickstart in progress
    INSTALLED = "os-installed"  # ready for jobs
    FAILED = "install-failed"   # kickstart crashed; node needs attention


@dataclass
class HostRecord:
    """One row of the hosts table."""

    name: str
    mac: str
    ip: str
    appliance: str  # "frontend" | "compute"
    rack: int
    rank: int
    state: InstallState = InstallState.DISCOVERED


class RocksDatabase:
    """The frontend's cluster database."""

    def __init__(self) -> None:
        self._by_name: dict[str, HostRecord] = {}
        self._by_mac: dict[str, HostRecord] = {}

    def add_host(self, record: HostRecord) -> HostRecord:
        """Register an appliance (name and MAC must both be new)."""
        if record.name in self._by_name:
            raise RocksError(f"host {record.name} already in database")
        if record.mac in self._by_mac:
            raise RocksError(f"MAC {record.mac} already in database")
        self._by_name[record.name] = record
        self._by_mac[record.mac] = record
        return record

    def remove_host(self, name: str) -> None:
        """rocks remove host."""
        record = self.get(name)
        del self._by_name[name]
        del self._by_mac[record.mac]

    def get(self, name: str) -> HostRecord:
        try:
            return self._by_name[name]
        except KeyError:
            raise RocksError(f"no host {name} in database") from None

    def by_mac(self, mac: str) -> HostRecord:
        try:
            return self._by_mac[mac]
        except KeyError:
            raise RocksError(f"no host with MAC {mac} in database") from None

    def has_mac(self, mac: str) -> bool:
        return mac in self._by_mac

    def hosts(self) -> list[HostRecord]:
        """All records, frontend first then compute by (rack, rank)."""
        return sorted(
            self._by_name.values(),
            key=lambda r: (r.appliance != "frontend", r.rack, r.rank),
        )

    def compute_hosts(self) -> list[HostRecord]:
        return [r for r in self.hosts() if r.appliance == "compute"]

    def known_macs(self) -> set[str]:
        return set(self._by_mac)

    def set_state(self, name: str, state: InstallState) -> None:
        self.get(name).state = state

    def state_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot of the hosts table (checkpointing)."""
        return {
            "hosts": [
                {
                    "name": r.name,
                    "mac": r.mac,
                    "ip": r.ip,
                    "appliance": r.appliance,
                    "rack": r.rack,
                    "rank": r.rank,
                    "state": r.state.value,
                }
                for r in self.hosts()
            ]
        }

    def next_compute_name(self, rack: int) -> str:
        """The compute-<rack>-<rank> naming Rocks uses."""
        ranks = [
            r.rank
            for r in self._by_name.values()
            if r.appliance == "compute" and r.rack == rack
        ]
        rank = max(ranks) + 1 if ranks else 0
        return f"compute-{rack}-{rank}"

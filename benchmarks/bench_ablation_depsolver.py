"""Ablation 2 — dependency closure and topological install ordering.

Two properties of the transaction engine are ablated by construction:

* without closure resolution, naming only the leaf package fails — the
  depsolver turns one requested name into the full dependency set;
* the committed install order never places a dependant before its
  dependency, across the whole Table 2 catalogue (checked position by
  position), whereas a naive name-sorted order violates it many times.
"""

from repro.core import xsede_packages
from repro.distro import CENTOS_6_5, Host
from repro.hardware import build_littlefe_modified
from repro.rocks import base_os_packages
from repro.rpm import RpmDatabase, Transaction
from repro.yum import RepoSet, Repository, resolve_install


def closure_for_gromacs():
    repo = Repository("xsede", priority=50)
    repo.add_all(xsede_packages())
    host = Host(build_littlefe_modified().machine.head, CENTOS_6_5)
    db = RpmDatabase(host)
    return resolve_install(["gromacs"], RepoSet([repo]), db)


def _violations(order):
    """Count dependant-before-dependency violations in an install order."""
    position = {p.name: i for i, p in enumerate(order)}
    count = 0
    for pkg in order:
        for req in pkg.requires:
            for provider in order:
                if provider.name != pkg.name and provider.satisfies(req):
                    if position[provider.name] > position[pkg.name]:
                        count += 1
                    break
    return count


def test_ablation_closure(benchmark, save_artifact):
    import time

    from repro.perf import naive_mode
    from repro.yum.depsolver import clear_resolution_cache

    resolution = benchmark(closure_for_gromacs)
    names = sorted(resolution.install_names)

    # The index/cache ablation, measured live on the resolve alone
    # (catalogue and host built once, outside the timed region): the same
    # closure through the retained _scan_* paths with every cache disabled,
    # through the capability indexes with the resolution cache cleared per
    # round, and fully warm (docs/PERF.md).
    repo = Repository("xsede", priority=50)
    repo.add_all(xsede_packages())
    repos = RepoSet([repo])
    host = Host(build_littlefe_modified().machine.head, CENTOS_6_5)
    rounds = 50

    def per_resolve(clear_each_round):
        t0 = time.perf_counter()
        for _ in range(rounds):
            if clear_each_round:
                clear_resolution_cache()
            resolve_install(["gromacs"], repos, RpmDatabase(host))
        return (time.perf_counter() - t0) / rounds

    with naive_mode():
        clear_resolution_cache()
        naive_s = per_resolve(clear_each_round=False)
    indexed_s = per_resolve(clear_each_round=True)
    warm_s = per_resolve(clear_each_round=False)
    save_artifact(
        "ablation_depsolver_closure",
        "requested: gromacs\n"
        "resolved closure: " + ", ".join(names) + "\n"
        "\n"
        f"naive scan resolve (s)             {naive_s:>10.6f}\n"
        f"indexed resolve, cold cache (s)    {indexed_s:>10.6f}"
        f"   ({naive_s / indexed_s:.1f}x)\n"
        f"indexed resolve, warm cache (s)    {warm_s:>10.6f}"
        f"   ({naive_s / warm_s:.1f}x)",
    )
    # one name became the full chain
    assert "gromacs" in names and "openmpi" in names and "fftw" in names
    assert "gcc" in names  # openmpi's own dependency, transitively
    assert len(names) >= 5


def test_ablation_install_order(benchmark, save_artifact):
    host = Host(build_littlefe_modified().machine.head, CENTOS_6_5)
    db = RpmDatabase(host)
    txn = Transaction(db)
    catalogue = base_os_packages(CENTOS_6_5) + xsede_packages()
    for pkg in catalogue:
        txn.install(pkg)
    ordered = benchmark.pedantic(txn._install_order, rounds=5, iterations=1)
    naive = sorted(catalogue, key=lambda p: p.name)

    good = _violations(ordered)
    bad = _violations(naive)
    save_artifact(
        "ablation_depsolver_order",
        f"catalogue size: {len(catalogue)}\n"
        f"topological order violations: {good}\n"
        f"naive name-sorted order violations: {bad}",
    )
    assert good == 0
    assert bad > 10  # the naive order is badly broken
    txn.commit()
    assert db.unsatisfied_requirements() == []

"""Ablation 2 — dependency closure and topological install ordering.

Two properties of the transaction engine are ablated by construction:

* without closure resolution, naming only the leaf package fails — the
  depsolver turns one requested name into the full dependency set;
* the committed install order never places a dependant before its
  dependency, across the whole Table 2 catalogue (checked position by
  position), whereas a naive name-sorted order violates it many times.
"""

from repro.core import xsede_packages
from repro.distro import CENTOS_6_5, Host
from repro.hardware import build_littlefe_modified
from repro.rocks import base_os_packages
from repro.rpm import RpmDatabase, Transaction
from repro.yum import RepoSet, Repository, resolve_install


def closure_for_gromacs():
    repo = Repository("xsede", priority=50)
    repo.add_all(xsede_packages())
    host = Host(build_littlefe_modified().machine.head, CENTOS_6_5)
    db = RpmDatabase(host)
    return resolve_install(["gromacs"], RepoSet([repo]), db)


def _violations(order):
    """Count dependant-before-dependency violations in an install order."""
    position = {p.name: i for i, p in enumerate(order)}
    count = 0
    for pkg in order:
        for req in pkg.requires:
            for provider in order:
                if provider.name != pkg.name and provider.satisfies(req):
                    if position[provider.name] > position[pkg.name]:
                        count += 1
                    break
    return count


def test_ablation_closure(benchmark, save_artifact):
    resolution = benchmark(closure_for_gromacs)
    names = sorted(resolution.install_names)
    save_artifact(
        "ablation_depsolver_closure",
        "requested: gromacs\nresolved closure: " + ", ".join(names),
    )
    # one name became the full chain
    assert "gromacs" in names and "openmpi" in names and "fftw" in names
    assert "gcc" in names  # openmpi's own dependency, transitively
    assert len(names) >= 5


def test_ablation_install_order(benchmark, save_artifact):
    host = Host(build_littlefe_modified().machine.head, CENTOS_6_5)
    db = RpmDatabase(host)
    txn = Transaction(db)
    catalogue = base_os_packages(CENTOS_6_5) + xsede_packages()
    for pkg in catalogue:
        txn.install(pkg)
    ordered = benchmark.pedantic(txn._install_order, rounds=5, iterations=1)
    naive = sorted(catalogue, key=lambda p: p.name)

    good = _violations(ordered)
    bad = _violations(naive)
    save_artifact(
        "ablation_depsolver_order",
        f"catalogue size: {len(catalogue)}\n"
        f"topological order violations: {good}\n"
        f"naive name-sorted order violations: {bad}",
    )
    assert good == 0
    assert bad > 10  # the naive order is badly broken
    txn.commit()
    assert db.unsatisfied_requirements() == []

"""Table 3 deployment-registry tests: published figures and full rebuilds."""

import pytest

from repro.core import (
    AdoptionPath,
    PETAFLOPS_GOAL_2020_GFLOPS,
    TABLE3_SITES,
    rebuild_site_hardware,
    table3_totals,
)
from repro.errors import DeploymentError


class TestPublishedFigures:
    def test_totals_row(self):
        # Table 3 totals: 304 nodes, 2708 cores, 49.61 TFLOPS
        assert table3_totals() == (304, 2708, 49.61)

    def test_six_sites(self):
        assert len(TABLE3_SITES) == 6

    def test_adoption_split_matches_section_4(self):
        by_site = {s.site: s.adoption for s in TABLE3_SITES}
        assert by_site["Marshall University"] is AdoptionPath.XCBC
        assert by_site["Montana State University"] is AdoptionPath.XNIT
        hawaii = next(s for s in TABLE3_SITES if "Hawaii" in s.site)
        assert hawaii.adoption is AdoptionPath.XNIT

    def test_marshall_gpu_row(self):
        marshall = next(s for s in TABLE3_SITES if "Marshall" in s.site)
        assert marshall.gpu_nodes == 8
        assert marshall.gpu_cuda_cores == 3584

    def test_half_petaflops_goal_far_from_current(self):
        _n, _c, tf = table3_totals()
        assert tf * 1000 < PETAFLOPS_GOAL_2020_GFLOPS
        assert PETAFLOPS_GOAL_2020_GFLOPS / (tf * 1000) > 10

    def test_invalid_site_rejected(self):
        from repro.core.deployments import SiteDeployment

        with pytest.raises(DeploymentError):
            SiteDeployment(
                site="bad", nodes=3, cores=10, rpeak_tflops=1.0,
                adoption=AdoptionPath.XCBC,
            )  # cores not divisible by nodes


class TestHardwareRebuilds:
    @pytest.mark.parametrize("site", TABLE3_SITES, ids=lambda s: s.site[:24])
    def test_rebuild_matches_published_row(self, site):
        machine = rebuild_site_hardware(site)
        assert machine.node_count == site.nodes
        assert machine.total_cores == site.cores
        # Rpeak within 1 % (the IU rows carry the paper's 2-decimal rounding)
        assert machine.rpeak_gflops == pytest.approx(site.rpeak_gflops, rel=0.01)

    def test_rebuilt_totals_match_table(self):
        total_gflops = sum(
            rebuild_site_hardware(s).rpeak_gflops for s in TABLE3_SITES
        )
        assert total_gflops / 1000 == pytest.approx(49.61, rel=0.01)

    def test_marshall_rebuild_has_gpus(self):
        marshall = next(s for s in TABLE3_SITES if "Marshall" in s.site)
        machine = rebuild_site_hardware(marshall)
        gpu_nodes = [n for n in machine.nodes if n.gpus]
        assert len(gpu_nodes) == 8
        assert sum(g.cuda_cores for n in gpu_nodes for g in n.gpus) == 3584

    def test_iu_rows_rebuild_as_paper_machines(self):
        littlefe_site = next(s for s in TABLE3_SITES if "LittleFe" in s.other_info)
        machine = rebuild_site_hardware(littlefe_site)
        assert machine.nodes[0].cpu.model == "Intel Celeron G1840"
        limulus_site = next(s for s in TABLE3_SITES if "Limulus" in s.other_info)
        machine = rebuild_site_hardware(limulus_site)
        assert machine.nodes[0].cpu.model == "Intel Core i7-4770S"


class TestSoftwareRebuilds:
    """Small sites rebuilt through their actual adoption path."""

    def test_xcbc_path_on_marshall_scale_site(self):
        from repro.core import build_xcbc_cluster

        marshall = next(s for s in TABLE3_SITES if "Marshall" in s.site)
        machine = rebuild_site_hardware(marshall)
        report = build_xcbc_cluster(machine, include_optional_rolls=False)
        assert len(report.cluster.hosts()) == 22
        assert report.cluster.frontend.has_command("qsub")

    def test_xnit_path_on_hawaii_scale_site(self):
        from repro.core import (
            build_existing_cluster,
            build_xnit_repository,
            integrate_host,
            setup_via_repo_rpm,
        )

        hawaii = next(s for s in TABLE3_SITES if "Hawaii" in s.site)
        machine = rebuild_site_hardware(hawaii)
        cluster = build_existing_cluster(machine)
        repo = build_xnit_repository()
        client = cluster.client_for(cluster.frontend)
        setup_via_repo_rpm(client, repo)
        report = integrate_host(client, packages=["gromacs", "ncbi-blast"])
        assert report.preexisting_untouched
        assert cluster.frontend.has_command("blastn")

"""Simulated cluster hardware: parts, nodes, chassis, and reference builds.

This package models the physical machines the paper evaluates — the modified
LittleFe v4 and the Limulus HPC200 (Sections 5, 7) — plus generic rack
hardware for rebuilding the Table 3 campus deployments.  Assembly functions
validate physical constraints eagerly (socket match, cooler clearance, power
budget), so any object you can hold is a buildable machine.
"""

from .builder import (
    BuildQuote,
    LIMULUS_QUOTED_PRICE_USD,
    LITTLEFE_QUOTED_PRICE_USD,
    build_limulus_hpc200,
    build_littlefe_modified,
    build_littlefe_original,
)
from .catalog import all_parts, find_part, price_bom
from .chassis import (
    LIMULUS_DESKSIDE,
    LITTLEFE_V4_FRAME,
    RACK_1U,
    ChassisModel,
    Machine,
    populate,
)
from .cooling import (
    INTEL_STOCK_LGA1150,
    PASSIVE_SINK_PLUS_FAN,
    ROSEWILL_RCX_Z775_LP,
    CoolerModel,
    check_cooler_fit,
)
from .cpu import (
    ATOM_D510,
    BCM2835,
    CELERON_G1840,
    CPU_CATALOG,
    I7_4770S,
    XEON_E5_2670,
    CpuModel,
    calibrated_cpu,
    get_cpu,
)
from .gpu import GpuModel, TESLA_C2050, calibrated_gpu
from .memory import DDR3_4G_SODIMM, DDR3_8G_UDIMM, DimmModel, get_dimm
from .motherboard import (
    GA_Q87TN,
    LIMULUS_NODE_BOARD,
    LITTLEFE_ATOM_BOARD,
    MotherboardModel,
    get_board,
)
from .nic import FASTE_ONBOARD, GIGE_ONBOARD, NicModel, get_nic
from .partlist import PartsLine, parts_list, render_parts_list
from .node import Node, NodeRole, assemble_node
from .power import (
    ATX_450W,
    LIMULUS_850W,
    PICO_PSU_80,
    PICO_PSU_160,
    PsuModel,
    check_budget,
    get_psu,
)
from .render import render_limulus, render_littlefe, render_machine
from .storage import (
    CRUCIAL_M550_128_MSATA,
    LAPTOP_HDD_500,
    WD_RED_2TB,
    MountKind,
    StorageKind,
    StorageModel,
    get_storage,
)

__all__ = [
    "BuildQuote",
    "build_littlefe_original",
    "build_littlefe_modified",
    "build_limulus_hpc200",
    "LITTLEFE_QUOTED_PRICE_USD",
    "LIMULUS_QUOTED_PRICE_USD",
    "all_parts",
    "find_part",
    "price_bom",
    "ChassisModel",
    "Machine",
    "populate",
    "LITTLEFE_V4_FRAME",
    "LIMULUS_DESKSIDE",
    "RACK_1U",
    "CoolerModel",
    "check_cooler_fit",
    "PASSIVE_SINK_PLUS_FAN",
    "INTEL_STOCK_LGA1150",
    "ROSEWILL_RCX_Z775_LP",
    "CpuModel",
    "get_cpu",
    "calibrated_cpu",
    "CPU_CATALOG",
    "ATOM_D510",
    "BCM2835",
    "CELERON_G1840",
    "I7_4770S",
    "XEON_E5_2670",
    "GpuModel",
    "TESLA_C2050",
    "calibrated_gpu",
    "DimmModel",
    "get_dimm",
    "DDR3_4G_SODIMM",
    "DDR3_8G_UDIMM",
    "MotherboardModel",
    "get_board",
    "GA_Q87TN",
    "LITTLEFE_ATOM_BOARD",
    "LIMULUS_NODE_BOARD",
    "NicModel",
    "get_nic",
    "GIGE_ONBOARD",
    "FASTE_ONBOARD",
    "Node",
    "NodeRole",
    "assemble_node",
    "PsuModel",
    "get_psu",
    "check_budget",
    "PICO_PSU_80",
    "PICO_PSU_160",
    "ATX_450W",
    "LIMULUS_850W",
    "PartsLine",
    "parts_list",
    "render_parts_list",
    "render_machine",
    "render_littlefe",
    "render_limulus",
    "StorageModel",
    "StorageKind",
    "MountKind",
    "get_storage",
    "CRUCIAL_M550_128_MSATA",
    "LAPTOP_HDD_500",
    "WD_RED_2TB",
]

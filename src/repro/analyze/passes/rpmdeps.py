"""RPM metadata checks: a dry run of the dependency machinery.

Reuses the yum layer (:class:`~repro.yum.repository.RepoSet`,
:func:`~repro.yum.depsolver.best_provider`) against the definition's package
universe without touching any host database — the same closure logic the
installer will run, executed before anything is deployed.
"""

from __future__ import annotations

from ...errors import DependencyError, YumError
from ...yum.depsolver import best_provider
from ...yum.repository import Repository, RepoSet
from ..diagnostic import Severity
from ..registry import rule

RPM301 = rule(
    "RPM301",
    "rpm",
    Severity.ERROR,
    "package requirement is satisfiable by nothing in the definition",
    "add a package providing the capability to a roll or repository, or "
    "drop the requirement",
)
RPM302 = rule(
    "RPM302",
    "rpm",
    Severity.ERROR,
    "two packages installed by the same profile conflict",
    "profiles co-install their whole closure; keep exactly one of the "
    "conflicting packages per profile",
)
RPM303 = rule(
    "RPM303",
    "rpm",
    Severity.WARNING,
    "obsoletes names a package that exists nowhere in the definition",
    "dangling obsoletes do nothing; drop the tag or fix the name",
)


def _universe_repos(universe) -> RepoSet:
    """The definition's packages as a single enabled repository."""
    repo = Repository("cluster-lint-universe", priority=1)
    for pkg in universe:
        try:
            repo.add(pkg)
        except YumError:  # pragma: no cover - universe is pre-deduped
            pass
    return RepoSet([repo])


def run(definition, emit) -> None:
    universe = definition.package_universe()
    if not universe:
        return
    repos = _universe_repos(universe)

    # RPM301: every requirement of every package must have a provider —
    # the requires-closure the installer will compute, dry-run.
    for pkg in universe:
        for req in pkg.requires:
            try:
                best_provider(req, repos)
            except DependencyError:
                emit(
                    "RPM301",
                    f"{pkg.nevra} requires {req}, which nothing in the "
                    f"definition provides",
                    location=f"rpm:{pkg.nevra}",
                )

    # RPM303: obsoletes pointing at nothing.
    names = {p.name for p in universe}
    for pkg in universe:
        for obs in pkg.obsoletes:
            if obs.name not in names:
                emit(
                    "RPM303",
                    f"{pkg.nevra} obsoletes {obs.name!r}, which exists "
                    f"nowhere in the definition",
                    location=f"rpm:{pkg.nevra}",
                )

    # RPM302: pairwise conflicts inside each profile's install closure.
    graph = definition.graph
    if graph is None or graph.find_cycle() is not None:
        return
    by_name: dict[str, list] = {}
    for pkg in universe:
        by_name.setdefault(pkg.name, []).append(pkg)
    for profile in definition.profiles:
        if not graph.has_node(profile):
            continue
        closure = [
            max(by_name[n], key=lambda p: p.evr)
            for n in graph.resolve_packages(profile)
            if n in by_name
        ]
        declaring = [p for p in closure if p.conflicts]
        seen_pairs: set[tuple[str, str]] = set()
        for pkg in declaring:
            for other in closure:
                if other.name == pkg.name or not pkg.conflicts_with(other):
                    continue
                pair = tuple(sorted((pkg.name, other.name)))
                if pair in seen_pairs:
                    continue
                seen_pairs.add(pair)
                emit(
                    "RPM302",
                    f"profile {profile!r} installs both {pkg.nevra} and "
                    f"{other.nevra}, which conflict",
                    location=f"rpm:profile/{profile}",
                )

"""The simulation kernel: clock, queue, timelines, trace bus, determinism.

The property tests pin the three contracts every refactored subsystem now
leans on: simulated time never decreases, events scheduled for the same
instant fire in submission order, and identical seeds produce
byte-identical JSONL traces.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError, TraceError
from repro.sim import (
    EVENT_SCHEMA,
    EventQueue,
    SimClock,
    SimKernel,
    Timeline,
    TraceBus,
    register_event_kind,
    validate_event,
    validate_jsonl,
)

TIMES = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                  allow_infinity=False)


class TestClock:

    def test_starts_at_start(self):
        assert SimClock(5.0).now_s == 5.0

    def test_advance_forward_and_equal(self):
        clock = SimClock()
        clock.advance_to(10.0)
        clock.advance_to(10.0)  # equal is a no-op
        assert clock.now_s == 10.0

    def test_regression_raises(self):
        clock = SimClock(3.0)
        with pytest.raises(SimulationError, match="backwards"):
            clock.advance_to(2.0)

    def test_nan_rejected(self):
        with pytest.raises(SimulationError, match="NaN"):
            SimClock(float("nan"))

    @given(st.lists(TIMES, min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_property_time_never_decreases(self, times):
        """Feeding arbitrary times through max-monotonisation, the clock
        reading is non-decreasing at every step."""
        clock = SimClock()
        readings = []
        for t in times:
            clock.advance_to(max(clock.now_s, t))
            readings.append(clock.now_s)
        assert readings == sorted(readings)


class TestTimeline:

    def test_advance_and_meet(self):
        tl = Timeline("rank0", start_s=100.0)
        tl.advance(5.0)
        assert tl.now_s == 105.0
        tl.meet(50.0)  # already past: no-op
        assert tl.now_s == 105.0
        tl.meet(200.0)
        assert tl.now_s == 200.0

    def test_negative_advance_rejected(self):
        with pytest.raises(SimulationError, match="advance"):
            Timeline("x").advance(-1.0)

    def test_reset_starts_new_epoch(self):
        tl = Timeline("x", start_s=10.0)
        tl.advance(90.0)
        tl.reset(10.0)
        assert tl.now_s == 10.0

    def test_kernel_registers_and_uniquifies(self):
        kernel = SimKernel()
        a = kernel.timeline("mpi.rank0")
        b = kernel.timeline("mpi.rank0")
        assert a.name == "mpi.rank0" and b.name == "mpi.rank0~2"
        assert kernel.timelines() == [a, b]


class TestEventQueue:

    def test_pops_in_time_order(self):
        q = EventQueue()
        fired = []
        q.schedule(2.0, lambda: fired.append("b"))
        q.schedule(1.0, lambda: fired.append("a"))
        while (h := q.pop()) is not None:
            h.callback()
        assert fired == ["a", "b"]

    def test_cancel_is_lazy_but_skipped(self):
        q = EventQueue()
        keep = q.schedule(1.0, lambda: "keep")
        drop = q.schedule(0.5, lambda: "drop")
        q.cancel(drop)
        assert len(q) == 1
        assert q.peek() is keep
        assert q.pop() is keep
        assert q.pop() is None

    def test_double_cancel_raises(self):
        q = EventQueue()
        h = q.schedule(1.0, lambda: None)
        q.cancel(h)
        with pytest.raises(SimulationError, match="already"):
            q.cancel(h)

    def test_fired_handle_cannot_be_cancelled(self):
        q = EventQueue()
        h = q.schedule(1.0, lambda: None)
        assert q.pop() is h and not h.active
        with pytest.raises(SimulationError):
            q.cancel(h)

    def test_infinite_time_rejected(self):
        q = EventQueue()
        with pytest.raises(SimulationError):
            q.schedule(float("inf"), lambda: None)

    def test_reschedule_takes_fresh_serial(self):
        """A rescheduled event fires AFTER events already queued for the
        same instant — re-entry at the back of that instant's FIFO."""
        q = EventQueue()
        fired = []
        moved = q.schedule(1.0, lambda: fired.append("moved"))
        q.schedule(5.0, lambda: fired.append("resident"))
        new = q.reschedule(moved, 5.0)
        assert not moved.active and new.active
        while (h := q.pop()) is not None:
            h.callback()
        assert fired == ["resident", "moved"]

    @given(st.lists(st.tuples(TIMES, st.booleans()), min_size=1, max_size=40))
    @settings(max_examples=50, deadline=None)
    def test_property_equal_times_fire_in_submission_order(self, spec):
        """With coarsely bucketed times (forcing collisions), pop order is
        (time, submission serial) — stable FIFO within an instant."""
        q = EventQueue()
        handles = []
        for time_s, cancel in spec:
            bucket = float(int(time_s) % 3)  # force many identical times
            handles.append((q.schedule(bucket, lambda: None), cancel))
        for handle, cancel in handles:
            if cancel and handle.active:
                q.cancel(handle)
        popped = []
        while (h := q.pop()) is not None:
            popped.append((h.time_s, h.seq))
        assert popped == sorted(popped)
        assert len(popped) == sum(1 for h, c in handles if not c)


class TestKernel:

    def test_step_advances_clock_to_event(self):
        kernel = SimKernel()
        seen = []
        kernel.at(4.0, lambda: seen.append(kernel.now_s))
        assert kernel.step() is True
        assert seen == [4.0] and kernel.now_s == 4.0

    def test_at_in_the_past_rejected(self):
        kernel = SimKernel()
        kernel.run_until(10.0)
        with pytest.raises(SimulationError, match="cannot schedule"):
            kernel.at(5.0, lambda: None)

    def test_run_until_fires_due_then_lands(self):
        kernel = SimKernel()
        seen = []
        kernel.at(1.0, lambda: seen.append(1))
        kernel.at(9.0, lambda: seen.append(9))
        fired = kernel.run_until(5.0)
        assert fired == 1 and seen == [1] and kernel.now_s == 5.0

    def test_run_unbounded_with_periodic_raises(self):
        kernel = SimKernel()
        kernel.every(10.0, lambda: None)
        with pytest.raises(SimulationError, match="periodic"):
            kernel.run()

    def test_periodic_fires_each_period_and_cancels(self):
        kernel = SimKernel()
        ticks = []
        periodic = kernel.every(10.0, lambda: ticks.append(kernel.now_s))
        kernel.run_until(35.0)
        assert ticks == [10.0, 20.0, 30.0]
        periodic.cancel()
        periodic.cancel()  # idempotent
        kernel.run_until(100.0)
        assert ticks == [10.0, 20.0, 30.0]

    def test_reschedule_moves_event(self):
        kernel = SimKernel()
        seen = []
        handle = kernel.at(5.0, lambda: seen.append(kernel.now_s))
        kernel.reschedule(handle, 7.5)
        kernel.run_until(10.0)
        assert seen == [7.5]

    def test_same_seed_same_rng_stream(self):
        a, b = SimKernel(seed=99), SimKernel(seed=99)
        assert [a.rng.random() for _ in range(5)] == [
            b.rng.random() for _ in range(5)
        ]


def _scripted_trace(seed, script):
    """Run a small scripted simulation; returns its JSONL trace."""
    kernel = SimKernel(seed=seed)
    for i, (delay, cores) in enumerate(script):
        jitter = delay + kernel.rng.random()

        def emit(i=i, jitter=jitter, cores=cores):
            kernel.trace.emit(
                "job.submit", t_s=kernel.now_s, subsystem="scheduler",
                job=f"j{i}", user="u", cores=cores,
            )

        kernel.after(jitter, emit)
    kernel.run(max_events=len(script))
    return kernel.trace.to_jsonl()


class TestTraceDeterminism:

    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.lists(
            st.tuples(TIMES, st.integers(min_value=1, max_value=64)),
            min_size=1, max_size=12,
        ),
    )
    @settings(max_examples=25, deadline=None)
    def test_property_same_seed_byte_identical_jsonl(self, seed, script):
        first = _scripted_trace(seed, script)
        second = _scripted_trace(seed, script)
        assert first == second  # byte-for-byte
        count, problems = validate_jsonl(first)
        assert problems == [] and count == len(script)

    def test_different_seed_diverges(self):
        script = [(1.0, 4), (1.0, 8)]
        assert _scripted_trace(1, script) != _scripted_trace(2, script)


class TestTraceBus:

    def test_emit_validates_kind_and_fields(self):
        bus = TraceBus()
        with pytest.raises(TraceError, match="unknown event kind"):
            bus.emit("job.teleport", t_s=0.0, subsystem="x")
        with pytest.raises(TraceError, match="missing data field"):
            bus.emit("job.end", t_s=0.0, subsystem="scheduler", job="j")
        with pytest.raises(TraceError, match="wanted int"):
            bus.emit("job.submit", t_s=0.0, subsystem="scheduler",
                     job="j", user="u", cores="four")

    def test_counters_and_count(self):
        bus = TraceBus()
        bus.emit("job.cancel", t_s=0.0, subsystem="scheduler", job="a")
        bus.emit("node.power_off", t_s=1.0, subsystem="power", node="n0")
        assert bus.count("job.cancel") == 1
        assert bus.count(subsystem="power") == 1
        assert bus.count() == 2 and len(bus) == 2

    def test_disabled_bus_is_noop(self):
        bus = TraceBus(enabled=False)
        assert bus.emit("job.cancel", t_s=0.0, subsystem="s", job="a") is None
        assert len(bus) == 0

    def test_subscribers_see_events_synchronously(self):
        bus = TraceBus()
        seen = []
        bus.subscribe(seen.append)
        event = bus.emit("node.power_on", t_s=2.0, subsystem="power",
                         node="n1", boot_delay_s=60)
        assert seen == [event]

    def test_jsonl_roundtrip_validates(self):
        bus = TraceBus()
        bus.emit("mpi.barrier", t_s=1.0, subsystem="mpi", ranks=4)
        bus.emit("grid.xfer", t_s=2.0, subsystem="grid",
                 file="data.h5", nbytes=10, retries=0)
        count, problems = validate_jsonl(bus.to_jsonl())
        assert count == 2 and problems == []
        # extra fields beyond the schema are allowed
        line = json.loads(bus.to_jsonl().splitlines()[0])
        assert line["kind"] == "mpi.barrier"

    def test_validate_event_reports_problems(self):
        bad = {"seq": 0, "t": 1.0, "kind": "job.end", "sub": "scheduler",
               "data": {"job": "j"}}
        assert any("state" in p for p in validate_event(bad))
        assert validate_jsonl('{"seq": 1}\nnot json\n')[1]

    def test_validate_jsonl_rejects_nonincreasing_seq(self):
        bus = TraceBus()
        bus.emit("job.cancel", t_s=0.0, subsystem="s", job="a")
        line = bus.to_jsonl()
        _, problems = validate_jsonl(line + line)  # seq repeats
        assert any("not increasing" in p for p in problems)

    def test_register_event_kind(self):
        register_event_kind("test.custom", {"flag": bool})
        try:
            bus = TraceBus()
            bus.emit("test.custom", t_s=0.0, subsystem="test", flag=True)
            with pytest.raises(TraceError, match="already registered"):
                register_event_kind("test.custom", {})
        finally:
            del EVENT_SCHEMA["test.custom"]

"""Compatibility-audit tests: scoring, convergence, and portability."""

import pytest

from repro.core import (
    audit_host,
    diff_environments,
    portability_check,
)
from repro.rpm import Package, RpmDatabase, Transaction


class TestAuditScoring:
    def test_bare_host_scores_low(self, frontend_host):
        db = RpmDatabase(frontend_host)
        report = audit_host(frontend_host, db)
        assert report.overall < 0.2

    def test_xcbc_frontend_scores_perfect(self, xcbc_littlefe):
        cluster = xcbc_littlefe.cluster
        report = audit_host(cluster.frontend, cluster.frontend_db)
        assert report.overall == pytest.approx(1.0)
        for dim in report.dimensions:
            assert dim.score == pytest.approx(1.0), dim.name

    def test_xnit_frontend_scores_perfect(self, xnit_limulus):
        client = xnit_limulus.client_for(xnit_limulus.frontend)
        report = audit_host(xnit_limulus.frontend, client.db)
        assert report.overall == pytest.approx(1.0)

    def test_partial_install_scores_partial(self, frontend_host):
        db = RpmDatabase(frontend_host)
        from repro.core import xsede_packages

        subset = [p for p in xsede_packages() if not p.requires][:10]
        txn = Transaction(db)
        for p in subset:
            txn.install(p)
        txn.commit()
        report = audit_host(frontend_host, db)
        assert 0.0 < report.dimension("package coverage").score < 0.2

    def test_stale_version_flagged(self, frontend_host):
        db = RpmDatabase(frontend_host)
        Transaction(db).install(Package(name="fftw", version="2.0")).commit()
        report = audit_host(frontend_host, db)
        currency = report.dimension("version currency")
        assert currency.score == 0.0
        assert any("fftw" in miss for miss in currency.missing)

    def test_render_contains_dimensions(self, frontend_host):
        report = audit_host(frontend_host, RpmDatabase(frontend_host))
        text = report.render()
        assert "package coverage" in text and "OVERALL" in text

    def test_custom_catalogue(self, frontend_host):
        db = RpmDatabase(frontend_host)
        pkg = Package(name="onlything", version="1.0", commands=("onlything",))
        Transaction(db).install(pkg).commit()
        report = audit_host(frontend_host, db, catalogue=[pkg])
        assert report.overall == pytest.approx(1.0)


class TestConvergence:
    """The central claim: both paths produce the same environment."""

    def test_run_alike_sets_identical(self, xcbc_littlefe, xnit_limulus):
        xcbc_db = xcbc_littlefe.cluster.frontend_db
        xnit_db = xnit_limulus.client_for(xnit_limulus.frontend).db
        diff = diff_environments(xcbc_db, xnit_db)
        # zero version skew on shared packages
        assert diff.converged, diff.version_mismatches
        # one-sided packages are explainable: Rocks-side tooling vs vendor stack
        from repro.core import xsede_package_names

        runalike = set(xsede_package_names())
        assert not (set(diff.only_on_a) & runalike - {"torque", "maui"})
        assert not (set(diff.only_on_b) & runalike - {"torque", "maui"})

    def test_identical_detection(self, frontend_host, littlefe_machine):
        from repro.distro import CENTOS_6_5, Host

        other = Host(littlefe_machine.compute_nodes[0], CENTOS_6_5)
        db_a, db_b = RpmDatabase(frontend_host), RpmDatabase(other)
        pkg = Package(name="x", version="1.0")
        Transaction(db_a).install(pkg).commit()
        Transaction(db_b).install(pkg).commit()
        assert diff_environments(db_a, db_b).is_identical

    def test_version_skew_detected(self, frontend_host, littlefe_machine):
        from repro.distro import CENTOS_6_5, Host

        other = Host(littlefe_machine.compute_nodes[0], CENTOS_6_5)
        db_a, db_b = RpmDatabase(frontend_host), RpmDatabase(other)
        Transaction(db_a).install(Package(name="x", version="1.0")).commit()
        Transaction(db_b).install(Package(name="x", version="2.0")).commit()
        diff = diff_environments(db_a, db_b)
        assert not diff.converged
        assert diff.version_mismatches == ["x: 1.0-1 vs 2.0-1"]


class TestPortability:
    def test_workflow_moves_between_xcbc_and_xnit(self, xcbc_littlefe, xnit_limulus):
        # "A user's knowledge of software, system commands, etc., becomes
        # portable from one cluster built with XCBC to another"
        workflow = ["qsub", "qstat", "qdel", "module", "mpirun", "mdrun", "R",
                    "python", "octave", "blastn"]
        # note: module command is Rocks-side only on the Limulus unless XNIT
        # brought modules; drop it from the cross-cluster check
        workflow = [c for c in workflow if c != "module"]
        frac, broken = portability_check(
            xcbc_littlefe.cluster.frontend, xnit_limulus.frontend, workflow
        )
        assert frac == 1.0, broken

    def test_broken_commands_reported(self, frontend_host, littlefe_machine):
        from repro.distro import CENTOS_6_5, Host

        other = Host(littlefe_machine.compute_nodes[0], CENTOS_6_5)
        frontend_host.fs.write("/usr/bin/mdrun", "x", mode=0o755)
        frac, broken = portability_check(frontend_host, other, ["mdrun", "bash"])
        assert broken == ["mdrun"]
        assert frac == pytest.approx(0.5)

    def test_empty_workflow_is_vacuously_portable(self, frontend_host):
        frac, broken = portability_check(frontend_host, frontend_host, [])
        assert frac == 1.0 and broken == []

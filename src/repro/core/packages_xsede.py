"""The Table 2 catalogue: every package of the XSEDE "run-alike" layer.

Table 2 lists the XCBC components "specific to XSEDE cluster run-alike
compatibility", kept consistent with Stampede: same versions, libraries in
the same places, commands that work the same way.  This module is the
single source of truth for that catalogue — the Table 2 bench regenerates
the table from it, the XSEDE roll packages it, and the XNIT repository
publishes it.

Categories follow the table verbatim:

* ``Compilers, libraries, and programming``
* ``Scientific Applications``
* ``Miscellaneous Tools``
* ``Scheduler and Resource Manager``
* ``XSEDE Tools``

Package definitions are compact spec tuples expanded into
:class:`~repro.rpm.package.Package` objects; dependencies stay within this
catalogue plus the OS base so every install closure resolves.
"""

from __future__ import annotations

from ..rpm.package import Capability, Flag, Package, Requirement

__all__ = [
    "CATEGORY_COMPILERS",
    "CATEGORY_SCIENCE",
    "CATEGORY_MISC",
    "CATEGORY_SCHEDULER",
    "CATEGORY_XSEDE",
    "TABLE2_CATEGORIES",
    "xsede_packages",
    "xsede_package_names",
    "packages_by_category",
    "XNIT_EXTRAS",
    "xnit_extra_packages",
]

CATEGORY_COMPILERS = "Compilers, libraries, and programming"
CATEGORY_SCIENCE = "Scientific Applications"
CATEGORY_MISC = "Miscellaneous Tools"
CATEGORY_SCHEDULER = "Scheduler and Resource Manager"
CATEGORY_XSEDE = "XSEDE Tools"

TABLE2_CATEGORIES = (
    CATEGORY_COMPILERS,
    CATEGORY_SCIENCE,
    CATEGORY_MISC,
    CATEGORY_SCHEDULER,
    CATEGORY_XSEDE,
)

# Spec tuple: (name, version, category, requires, commands, libraries, module)
# requires entries are "name" or "name>=ver" strings.
_SPECS: list[tuple[str, str, str, tuple[str, ...], tuple[str, ...], tuple[str, ...], str]] = [
    # --- Compilers, libraries, and programming --------------------------------
    ("gcc", "4.4.7", CATEGORY_COMPILERS, (), ("gcc", "g++"), ("libgcc_s.so.1",), ""),
    ("gcc-gfortran", "4.4.7", CATEGORY_COMPILERS, ("gcc",), ("gfortran",), (), ""),
    ("compat-gcc-34-g77", "3.4.6", CATEGORY_COMPILERS, (), ("g77",), (), ""),
    ("charm", "6.5.1", CATEGORY_COMPILERS, ("gcc",), ("charmrun",), ("libcharm.so",), "charm/6.5.1"),
    ("fftw2", "2.1.5", CATEGORY_COMPILERS, (), (), ("libfftw2.so.2",), ""),
    ("fftw", "3.3.3", CATEGORY_COMPILERS, (), ("fftw-wisdom",), ("libfftw3.so.3",), "fftw3/3.3.3"),
    ("gmp", "4.3.1", CATEGORY_COMPILERS, (), (), ("libgmp.so.3",), ""),
    ("mpfr", "2.4.1", CATEGORY_COMPILERS, ("gmp",), (), ("libmpfr.so.1",), ""),
    ("hdf5", "1.8.13", CATEGORY_COMPILERS, (), ("h5dump",), ("libhdf5.so.8",), "hdf5/1.8.13"),
    ("java-1.7.0-openjdk", "1.7.0.79", CATEGORY_COMPILERS, (), ("java", "javac"), (), ""),
    ("openmpi", "1.6.4", CATEGORY_COMPILERS, ("gcc",), ("mpirun", "mpicc", "mpif90"), ("libmpi.so.1",), "openmpi/1.6.4"),
    ("mpich2", "1.9", CATEGORY_COMPILERS, ("gcc",), ("mpiexec.hydra",), ("libmpich.so.3",), "mpich2/1.9"),
    ("mpi4py-common", "1.3.1", CATEGORY_COMPILERS, ("python",), (), (), ""),
    ("mpi4py-openmpi", "1.3.1", CATEGORY_COMPILERS, ("mpi4py-common", "openmpi"), (), (), ""),
    ("mpi4py-tools", "1.3.1", CATEGORY_COMPILERS, ("mpi4py-common",), (), (), ""),
    ("psm", "3.3", CATEGORY_COMPILERS, (), (), ("libpsm_infinipath.so.1",), ""),
    ("numactl", "2.0.9", CATEGORY_COMPILERS, (), ("numactl",), ("libnuma.so.1",), ""),
    ("librdmacm", "1.0.17", CATEGORY_COMPILERS, (), (), ("librdmacm.so.1",), ""),
    ("libibverbs", "1.1.7", CATEGORY_COMPILERS, (), (), ("libibverbs.so.1",), ""),
    ("papi", "5.1.1", CATEGORY_COMPILERS, (), ("papi_avail",), ("libpapi.so.5",), "papi/5.1.1"),
    ("python", "2.7.9", CATEGORY_COMPILERS, (), ("python", "python2.7-xsede"), ("libpython2.7.so.1.0",), "python/2.7.9"),
    ("tcl", "8.5.7", CATEGORY_COMPILERS, (), ("tclsh",), ("libtcl8.5.so",), ""),
    ("R-core", "3.1.2", CATEGORY_COMPILERS, (), ("R", "Rscript"), ("libR.so",), "R/3.1.2"),
    ("R", "3.1.2", CATEGORY_COMPILERS, ("R-core",), (), (), ""),
    ("R-core-devel", "3.1.2", CATEGORY_COMPILERS, ("R-core",), (), (), ""),
    ("R-devel", "3.1.2", CATEGORY_COMPILERS, ("R-core-devel",), (), (), ""),
    ("R-java", "3.1.2", CATEGORY_COMPILERS, ("R-core", "java-1.7.0-openjdk"), (), (), ""),
    ("R-java-devel", "3.1.2", CATEGORY_COMPILERS, ("R-java",), (), (), ""),
    ("libRmath", "3.1.2", CATEGORY_COMPILERS, (), (), ("libRmath.so",), ""),
    ("libRmath-devel", "3.1.2", CATEGORY_COMPILERS, ("libRmath",), (), (), ""),
    # --- Scientific Applications ------------------------------------------------
    ("GotoBLAS2", "1.13", CATEGORY_SCIENCE, (), (), ("libgoto2.so",), ""),
    ("atlas", "3.8.4", CATEGORY_SCIENCE, (), (), ("libatlas.so.3",), ""),
    ("arpack", "3.1.3", CATEGORY_SCIENCE, ("gcc-gfortran",), (), ("libarpack.so.2",), ""),
    ("PLAPACK", "3.2", CATEGORY_SCIENCE, ("openmpi",), (), ("libPLAPACK.so",), ""),
    ("scalapack-common", "2.0.2", CATEGORY_SCIENCE, ("openmpi",), (), ("libscalapack.so.2",), ""),
    ("PnetCDF", "1.4.1", CATEGORY_SCIENCE, ("openmpi",), ("ncmpidump",), ("libpnetcdf.so",), ""),
    ("netcdf", "4.3.2", CATEGORY_SCIENCE, ("hdf5",), ("ncdump",), ("libnetcdf.so.7",), "netcdf/4.3.2"),
    ("nco", "4.4.4", CATEGORY_SCIENCE, ("netcdf",), ("ncks",), (), ""),
    ("ncl", "6.2.0", CATEGORY_SCIENCE, ("netcdf", "ncl-common"), ("ncl",), (), "ncl/6.2.0"),
    ("ncl-common", "6.2.0", CATEGORY_SCIENCE, (), (), (), ""),
    ("numpy", "1.8.2", CATEGORY_SCIENCE, ("python", "atlas"), (), (), ""),
    ("octave", "3.8.2", CATEGORY_SCIENCE, ("atlas", "fftw"), ("octave",), (), "octave/3.8.2"),
    ("boost", "1.55.0", CATEGORY_SCIENCE, (), (), ("libboost_system.so.1.55.0",), "boost/1.55.0"),
    ("petsc", "3.5.2", CATEGORY_SCIENCE, ("openmpi", "atlas"), (), ("libpetsc.so.3.5",), "petsc/3.5.2"),
    ("slepc", "3.5.3", CATEGORY_SCIENCE, ("petsc",), (), ("libslepc.so.3.5",), ""),
    ("sundials", "2.5.0", CATEGORY_SCIENCE, (), (), ("libsundials_cvode.so.1",), ""),
    ("sprng", "2.0", CATEGORY_SCIENCE, ("openmpi",), (), ("libsprng.so",), ""),
    ("glpk", "4.52", CATEGORY_SCIENCE, ("gmp",), ("glpsol",), ("libglpk.so.36",), ""),
    ("elemental", "0.84", CATEGORY_SCIENCE, ("openmpi",), (), ("libelemental.so",), ""),
    ("espresso-ab", "5.0.3", CATEGORY_SCIENCE, ("openmpi", "fftw"), ("pw.x",), (), "espresso/5.0.3"),
    ("gromacs", "4.6.5", CATEGORY_SCIENCE, ("openmpi", "fftw", "gromacs-libs", "gromacs-common"), ("mdrun", "grompp"), (), "gromacs/4.6.5"),
    ("gromacs-common", "4.6.5", CATEGORY_SCIENCE, (), (), (), ""),
    ("gromacs-libs", "4.6.5", CATEGORY_SCIENCE, (), (), ("libgmx.so.8",), ""),
    ("lammps", "20140628", CATEGORY_SCIENCE, ("openmpi", "fftw", "lammps-common"), ("lmp_openmpi",), (), "lammps/20140628"),
    ("lammps-common", "20140628", CATEGORY_SCIENCE, (), (), (), ""),
    ("meep", "1.2.1", CATEGORY_SCIENCE, ("openmpi", "hdf5"), ("meep",), (), "meep/1.2.1"),
    ("valgrind", "3.9.0", CATEGORY_SCIENCE, (), ("valgrind",), (), ""),
    ("gnuplot", "4.6.5", CATEGORY_SCIENCE, ("gnuplot-common", "gd", "libXpm"), ("gnuplot",), (), ""),
    ("gnuplot-common", "4.6.5", CATEGORY_SCIENCE, (), (), (), ""),
    ("gd", "2.0.35", CATEGORY_SCIENCE, ("giflib",), (), ("libgd.so.2",), ""),
    ("libXpm", "3.5.10", CATEGORY_SCIENCE, (), (), ("libXpm.so.4",), ""),
    ("plplot", "5.10.0", CATEGORY_SCIENCE, (), (), ("libplplot.so.12",), ""),
    ("lua", "5.1.4", CATEGORY_SCIENCE, (), ("lua",), ("liblua-5.1.so",), ""),
    ("libgfortran", "4.4.7", CATEGORY_SCIENCE, (), (), ("libgfortran.so.3",), ""),
    ("libgomp", "4.4.7", CATEGORY_SCIENCE, (), (), ("libgomp.so.1",), ""),
    ("libtool-ltdl", "2.2.6", CATEGORY_SCIENCE, (), (), ("libltdl.so.7",), ""),
    ("libmspack", "0.4", CATEGORY_SCIENCE, (), (), ("libmspack.so.0",), ""),
    ("libgtextutils", "0.6.1", CATEGORY_SCIENCE, (), (), ("libgtextutils.so.0",), ""),
    ("sparsehash-devel", "2.0.2", CATEGORY_SCIENCE, (), (), (), ""),
    ("saga", "2.1.2", CATEGORY_SCIENCE, ("boost",), (), ("libsaga_core.so",), ""),
    ("wxBase3", "3.0.1", CATEGORY_SCIENCE, (), (), ("libwx_baseu-3.0.so.0",), ""),
    ("wxGTK3", "3.0.1", CATEGORY_SCIENCE, ("wxBase3",), (), ("libwx_gtk3u_core-3.0.so.0",), ""),
    # bioinformatics block
    ("BEDTools", "2.19.1", CATEGORY_SCIENCE, (), ("bedtools",), (), ""),
    ("SHRiMP", "2.2.3", CATEGORY_SCIENCE, (), ("gmapper",), (), ""),
    ("shrimp", "2.2.3b", CATEGORY_SCIENCE, ("SHRiMP",), (), (), ""),
    ("Abyss", "1.5.2", CATEGORY_SCIENCE, ("openmpi", "boost", "sparsehash-devel"), ("abyss-pe",), (), ""),
    ("autodocksuite", "4.2.5", CATEGORY_SCIENCE, (), ("autodock4",), (), ""),
    ("bowtie", "1.0.1", CATEGORY_SCIENCE, (), ("bowtie",), (), ""),
    ("bwa", "0.7.10", CATEGORY_SCIENCE, (), ("bwa",), (), ""),
    ("ncbi-blast", "2.2.29", CATEGORY_SCIENCE, (), ("blastn", "blastp"), (), "blast/2.2.29"),
    ("mpiblast", "1.6.0", CATEGORY_SCIENCE, ("openmpi", "ncbi-blast"), ("mpiblast",), (), ""),
    ("hmmer", "3.1b1", CATEGORY_SCIENCE, (), ("hmmsearch", "hmmscan"), (), ""),
    ("mrbayes", "3.2.2", CATEGORY_SCIENCE, ("openmpi",), ("mb",), (), ""),
    ("gatk", "3.2.2", CATEGORY_SCIENCE, ("java-1.7.0-openjdk",), ("gatk",), (), ""),
    ("picard-tools", "1.119", CATEGORY_SCIENCE, ("java-1.7.0-openjdk",), ("picard",), (), ""),
    ("Samtools", "0.1.19", CATEGORY_SCIENCE, (), ("samtools",), (), ""),
    ("sratoolkit", "2.3.5", CATEGORY_SCIENCE, (), ("fastq-dump",), (), ""),
    ("trinity", "20140717", CATEGORY_SCIENCE, ("bowtie", "Samtools", "java-1.7.0-openjdk"), ("Trinity",), (), ""),
    # I/O characterisation
    ("darshan-util", "2.3.0", CATEGORY_SCIENCE, (), ("darshan-parser",), (), ""),
    ("darshan-runtime-openmpi", "2.3.0", CATEGORY_SCIENCE, ("openmpi", "darshan-util"), (), ("libdarshan-openmpi.so",), ""),
    ("darshan-runtime-mpich", "2.3.0", CATEGORY_SCIENCE, ("mpich2", "darshan-util"), (), ("libdarshan-mpich.so",), ""),
    # --- Miscellaneous Tools ----------------------------------------------------
    ("ant", "1.7.1", CATEGORY_MISC, ("java-1.7.0-openjdk",), ("ant-xsede",), (), ""),
    ("scone", "1.0", CATEGORY_MISC, ("python",), ("scone",), (), ""),
    ("giflib", "4.1.6", CATEGORY_MISC, (), (), ("libgif.so.4",), ""),
    ("libesmtp", "1.0.4", CATEGORY_MISC, (), (), ("libesmtp.so.5",), ""),
    ("libicu", "4.2.1", CATEGORY_MISC, (), (), ("libicuuc.so.42",), ""),
    ("pulseaudio-libs", "0.9.21", CATEGORY_MISC, ("libsndfile", "libasyncns"), (), ("libpulse.so.0",), ""),
    ("libasyncns", "0.8", CATEGORY_MISC, (), (), ("libasyncns.so.0",), ""),
    ("libsndfile", "1.0.20", CATEGORY_MISC, ("libvorbis", "flac"), (), ("libsndfile.so.1",), ""),
    ("libvorbis", "1.2.3", CATEGORY_MISC, ("libogg",), (), ("libvorbis.so.0",), ""),
    ("flac", "1.2.1", CATEGORY_MISC, ("libogg",), (), ("libFLAC.so.8",), ""),
    ("libogg", "1.1.4", CATEGORY_MISC, (), (), ("libogg.so.0",), ""),
    ("libXtst", "1.2.2", CATEGORY_MISC, (), (), ("libXtst.so.6",), ""),
    ("rhino", "1.7", CATEGORY_MISC, ("java-1.7.0-openjdk", "jline"), ("rhino",), (), ""),
    ("jpackage-utils", "1.7.5", CATEGORY_MISC, (), (), (), ""),
    ("jline", "0.9.94", CATEGORY_MISC, ("java-1.7.0-openjdk",), (), (), ""),
    ("tzdata-java", "2015a", CATEGORY_MISC, (), (), (), ""),
    ("wxBase", "2.8.12", CATEGORY_MISC, (), (), ("libwx_baseu-2.8.so.0",), ""),
    ("wxGTK", "2.8.12", CATEGORY_MISC, ("wxBase",), (), ("libwx_gtk2u_core-2.8.so.0",), ""),
    ("wxGTK-devel", "2.8.12", CATEGORY_MISC, ("wxGTK",), ("wx-config",), (), ""),
    ("xorg-x11-fonts-Type1", "7.2", CATEGORY_MISC, ("xorg-x11-fonts-utils",), (), (), ""),
    ("xorg-x11-fonts-utils", "7.2", CATEGORY_MISC, (), ("mkfontdir",), (), ""),
    # --- Scheduler and Resource Manager ---------------------------------------------
    ("torque", "4.2.10", CATEGORY_SCHEDULER, (), ("qsub", "qstat", "qdel", "pbsnodes"), (), ""),
    ("maui", "3.3.1", CATEGORY_SCHEDULER, ("torque",), ("showq", "checkjob"), (), ""),
    # --- XSEDE Tools ---------------------------------------------------------------
    ("globus-connect-server", "2.0.30", CATEGORY_XSEDE, (), ("globus-connect-server-setup", "globus-url-copy"), (), ""),
    ("genesis2", "2.7.1", CATEGORY_XSEDE, ("java-1.7.0-openjdk",), ("grid",), (), ""),
    ("gffs", "2.7.1", CATEGORY_XSEDE, ("genesis2",), ("gffs-ls",), (), ""),
]


#: Daemons registered by catalogue packages at install time (the real RPMs
#: drop init scripts; yum does not start them — the admin enables/boots).
_SERVICES: dict[str, tuple[str, ...]] = {
    "torque": ("pbs_server", "pbs_mom"),
    "maui": ("maui",),
    "globus-connect-server": ("gridftp",),
}


def _parse_req(text: str) -> Requirement:
    for op in (">=", "<=", "=", ">", "<"):
        if op in text:
            name, _, ver = text.partition(op)
            return Requirement(name.strip(), Flag(op), ver.strip())
    return Requirement(text.strip())


def _expand(
    spec: tuple[str, str, str, tuple[str, ...], tuple[str, ...], tuple[str, ...], str],
    *,
    release: str = "1",
) -> Package:
    name, version, category, requires, commands, libraries, module = spec
    return Package(
        name=name,
        version=version,
        release=release,
        category=category,
        summary=f"{name} (XSEDE run-alike build)",
        requires=tuple(_parse_req(r) for r in requires),
        commands=commands,
        libraries=libraries,
        services=_SERVICES.get(name, ()),
        modulefile=module,
        # XSEDE convention: application trees under /opt/<name>
        files=(f"/opt/{name}/.keep",) if module else (),
    )


def xsede_packages() -> list[Package]:
    """Every Table 2 package as a built RPM (release 1)."""
    return [_expand(spec) for spec in _SPECS]


def xsede_package_names() -> list[str]:
    """Catalogue names, table order."""
    return [spec[0] for spec in _SPECS]


def packages_by_category() -> dict[str, list[Package]]:
    """The catalogue grouped the way Table 2 prints it."""
    grouped: dict[str, list[Package]] = {c: [] for c in TABLE2_CATEGORIES}
    for pkg in xsede_packages():
        grouped[pkg.category].append(pkg)
    return grouped


#: Software XNIT carries beyond the basic XCBC build ("XNIT also includes
#: software not included in the basic XCBC build ... increased over time in
#: response to community requests", Section 1).
XNIT_EXTRAS: list[tuple[str, str, tuple[str, ...], tuple[str, ...], str]] = [
    # (name, version, requires, commands, module)
    ("paraview", "4.1.0", ("openmpi",), ("pvserver", "pvbatch"), "paraview/4.1.0"),
    ("visit", "2.7.3", ("openmpi",), ("visit",), "visit/2.7.3"),
    ("scipy", "0.14.0", ("numpy",), (), ""),
    ("ipython", "2.3.0", ("python",), ("ipython",), ""),
    ("git", "1.8.2", (), ("git",), ""),
    ("cmake", "2.8.12", (), ("cmake", "ctest"), "cmake/2.8.12"),
    ("swift-lang", "0.95", ("java-1.7.0-openjdk",), ("swift",), ""),
    ("tau", "2.23.1", ("papi", "openmpi"), ("tau_exec", "pprof"), "tau/2.23.1"),
    ("hpctoolkit", "5.3.2", ("papi",), ("hpcrun", "hpcviewer"), ""),
    ("nwchem", "6.5", ("openmpi", "GotoBLAS2"), ("nwchem",), "nwchem/6.5"),
]


def xnit_extra_packages() -> list[Package]:
    """The XNIT-only additions as built RPMs (category 'XNIT Extras')."""
    out = []
    for name, version, requires, commands, module in XNIT_EXTRAS:
        out.append(
            Package(
                name=name,
                version=version,
                category="XNIT Extras",
                summary=f"{name} (XNIT community addition)",
                requires=tuple(_parse_req(r) for r in requires),
                commands=commands,
                modulefile=module,
                files=(f"/opt/{name}/.keep",) if module else (),
            )
        )
    return out

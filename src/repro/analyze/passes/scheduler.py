"""Scheduler-config checks: declared queues versus the hardware inventory.

A queue naming a node the cluster does not have never errors at deploy time
— jobs just pend forever, the classic "the cluster is slow" ticket that is
actually a typo in a node list.  With the hardware plan in hand these are
static facts.
"""

from __future__ import annotations

from ..diagnostic import Severity
from ..registry import rule

SCH501 = rule(
    "SCH501",
    "scheduler",
    Severity.ERROR,
    "queue references a node that is not in the hardware inventory",
    "fix the node name or remove it; jobs routed there will pend forever",
)
SCH502 = rule(
    "SCH502",
    "scheduler",
    Severity.ERROR,
    "queue's per-job core cap exceeds what its nodes physically have",
    "cap max_cores_per_job at the sum of the queue's node cores",
)
SCH503 = rule(
    "SCH503",
    "scheduler",
    Severity.WARNING,
    "queue has no nodes",
    "an empty queue accepts jobs it can never start; add nodes or drop it",
)


def run(definition, emit) -> None:
    if not definition.queues:
        return
    plan = definition.effective_hardware_plan()
    inventory = {n.name: n for n in plan.nodes} if plan is not None else None

    for queue in definition.queues:
        where = f"scheduler:queue/{queue.name}"
        if not queue.node_names:
            emit("SCH503", f"queue {queue.name!r} lists no nodes", location=where)
            continue
        known_cores = 0
        complete = True
        for node_name in queue.node_names:
            if inventory is None:
                complete = False
                continue
            node = inventory.get(node_name)
            if node is None:
                complete = False
                emit(
                    "SCH501",
                    f"queue {queue.name!r} references node {node_name!r}, "
                    f"which the hardware inventory does not contain",
                    location=where,
                )
            else:
                known_cores += node.cores
        # Only meaningful when every named node resolved to hardware.
        if complete and queue.max_cores_per_job > known_cores:
            emit(
                "SCH502",
                f"queue {queue.name!r} allows {queue.max_cores_per_job}-core "
                f"jobs but its nodes total {known_cores} cores",
                location=where,
            )

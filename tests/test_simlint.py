"""simlint tests: the SL source rules, fixture corpus, config, and CLI.

Every rule is exercised both ways — a known-bad fixture it must flag and a
near-miss it must stay silent on (tests/fixtures/simlint/).  The corpus is
the contract: a rule change that starts flagging the near-miss (or stops
flagging the bad shape) fails here before it pollutes CI.
"""

import io
import json
import pathlib
import subprocess
import sys

import pytest

from repro.analyze.cli import EXIT_CLEAN, EXIT_FINDINGS, EXIT_USAGE, main, main_simlint
from repro.analyze.diagnostic import Severity
from repro.analyze.passes.source_traceorder import check_trace
from repro.analyze.registry import RULES, AnalysisConfig, Baseline
from repro.analyze.source import SimlintConfig, analyze_source, iter_source_files

ROOT = pathlib.Path(__file__).resolve().parents[1]
FIXTURES = ROOT / "tests" / "fixtures" / "simlint"

#: Everything-gates config so WARNING rules (SL301) show up in exit codes.
ALL = AnalysisConfig(fail_on=Severity.INFO)


def codes_for(path, config=ALL, **kwargs):
    result = analyze_source([path], config=config, **kwargs)
    return sorted({d.code for d in result.diagnostics})


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), stdout=out)
    return code, out.getvalue()


# ---------------------------------------------------------------------------
# fixture corpus: every rule fires on its bad shape, stays silent on the
# near-miss


BAD_FIXTURES = [
    ("bad_syntax.py", "SL000"),
    ("bad_wallclock.py", "SL101"),
    ("bad_random.py", "SL102"),
    ("bad_env.py", "SL103"),
    ("bad_unordered_trace.py", "SL104"),
    ("bad_epoch_skip.py", "SL201"),
    ("bad_memo.py", "SL202"),
    ("bad_same_time.py", "SL301"),
]

OK_FIXTURES = [
    "ok_syntax.py",
    "ok_wallclock.py",
    "ok_random.py",
    "ok_env.py",
    "ok_unordered_trace.py",
    "ok_epoch_skip.py",
    "ok_memo.py",
    "ok_same_time.py",
]


class TestFixtureCorpus:
    @pytest.mark.parametrize("name,code", BAD_FIXTURES)
    def test_bad_fixture_fires_exactly_its_rule(self, name, code):
        assert codes_for(FIXTURES / name) == [code]

    @pytest.mark.parametrize("name", OK_FIXTURES)
    def test_near_miss_stays_silent(self, name):
        assert codes_for(FIXTURES / name) == []

    def test_every_sl_rule_is_covered_by_the_corpus(self):
        sl_rules = {c for c in RULES.codes() if c.startswith("SL")}
        dynamic = {"SL302", "SL303"}  # exercised via trace fixtures below
        covered = {code for _name, code in BAD_FIXTURES}
        assert sl_rules - dynamic == covered

    def test_wallclock_sites_are_individually_reported(self):
        result = analyze_source([FIXTURES / "bad_wallclock.py"], config=ALL)
        # time.time, aliased perf_counter, datetime.now
        assert len(result.diagnostics) == 3

    def test_unordered_trace_flags_all_four_flows(self):
        # set literal, set() call, set-typed attribute, helper summary
        result = analyze_source(
            [FIXTURES / "bad_unordered_trace.py"], config=ALL
        )
        assert len(result.diagnostics) == 4

    def test_epoch_skip_names_the_field_and_method(self):
        result = analyze_source([FIXTURES / "bad_epoch_skip.py"], config=ALL)
        messages = [d.message for d in result.diagnostics]
        assert any("sneaky_remove" in m and "_by_name" in m for m in messages)
        assert any("maybe_install" in m for m in messages)


# ---------------------------------------------------------------------------
# the dynamic trace checks (SL302/SL303)


class TestCheckTrace:
    def read(self, name):
        return (FIXTURES / name).read_text()

    def test_canonical_trace_is_clean(self):
        assert check_trace(self.read("trace_good.jsonl")) == []

    def test_duplicate_seq_is_sl303(self):
        diags = check_trace(self.read("trace_bad_dup_seq.jsonl"))
        assert [d.code for d in diags] == ["SL303"]

    def test_non_canonical_serialisation_is_sl302(self):
        diags = check_trace(self.read("trace_bad_noncanonical.jsonl"))
        assert [d.code for d in diags] == ["SL302"]

    def test_missing_envelope_field_is_sl303(self):
        diags = check_trace(self.read("trace_bad_envelope.jsonl"))
        assert [d.code for d in diags] == ["SL303"]

    def test_invalid_json_is_sl303(self):
        diags = check_trace('{"seq": 0, "t": 1.0}\nnot json\n')
        assert [d.code for d in diags] == ["SL303"]

    def test_real_kernel_trace_survives_permutation(self):
        from repro.sim.kernel import SimKernel

        kernel = SimKernel(seed=7)
        for i in range(3):
            kernel.at(
                1.0,
                lambda i=i: kernel.trace.emit(
                    "job.submit", t_s=kernel.now_s, subsystem="sched",
                    job=f"j{i}", user="u", cores=1,
                ),
            )
        kernel.at(
            2.0,
            lambda: kernel.trace.emit(
                "job.submit", t_s=kernel.now_s, subsystem="sched",
                job="late", user="u", cores=2,
            ),
        )
        kernel.run()
        assert check_trace(kernel.trace.to_jsonl()) == []


# ---------------------------------------------------------------------------
# [tool.simlint] configuration


class TestSimlintConfig:
    def test_from_pyproject_reads_per_path_table(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            '[tool.simlint.per-path]\n"pkg/bench/*" = ["SL101"]\n'
        )
        config = SimlintConfig.from_pyproject(pyproject)
        assert config.disabled_for("pkg/bench/timer.py") == {"SL101"}
        assert config.disabled_for("pkg/core/timer.py") == frozenset()

    def test_missing_file_is_empty_config(self, tmp_path):
        config = SimlintConfig.from_pyproject(tmp_path / "absent.toml")
        assert config.per_path == {}

    def test_unknown_rule_code_is_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text('[tool.simlint.per-path]\n"x/*" = ["ZZ999"]\n')
        with pytest.raises(ValueError, match="ZZ999"):
            SimlintConfig.from_pyproject(pyproject)

    def test_opted_out_rule_is_suppressed_for_matching_path_only(self):
        simlint = SimlintConfig(
            per_path={"**/bad_wallclock.py": frozenset({"SL101"})}
        )
        silenced = codes_for(FIXTURES / "bad_wallclock.py", simlint=simlint)
        still_on = codes_for(FIXTURES / "bad_random.py", simlint=simlint)
        assert silenced == []
        assert still_on == ["SL102"]


# ---------------------------------------------------------------------------
# the tree itself: src/repro lints clean under the shipped configuration
# (and the violations simlint surfaced stay pinned to their pre-opt-out
# shape — satellite regression tests)


class TestSourceTree:
    def test_src_repro_lints_clean_under_shipped_config(self, monkeypatch):
        monkeypatch.chdir(ROOT)
        result = analyze_source(
            ["src/repro"],
            config=ALL,
            simlint=SimlintConfig.from_pyproject("pyproject.toml"),
        )
        assert result.diagnostics == []

    def test_linpack_wallclock_reads_still_fire_without_optout(
        self, monkeypatch
    ):
        # The opt-out documents a *deliberate* violation; this pins the
        # pre-opt-out shape so silently losing the finding (rule decay) or
        # the read itself (benchmark rewrite) both surface here.
        monkeypatch.chdir(ROOT)
        result = analyze_source(["src/repro/linpack/hpl.py"], config=ALL)
        locations = {d.location for d in result.diagnostics}
        assert {d.code for d in result.diagnostics} == {"SL101"}
        assert locations == {
            "src/repro/linpack/hpl.py:58",
            "src/repro/linpack/hpl.py:61",
        }

    def test_perf_harness_wallclock_reads_still_fire_without_optout(
        self, monkeypatch
    ):
        monkeypatch.chdir(ROOT)
        result = analyze_source(["src/repro/perf/benches.py"], config=ALL)
        assert {d.code for d in result.diagnostics} == {"SL101"}
        assert len(result.diagnostics) == 12

    def test_iter_source_files_is_sorted_and_deduped(self, tmp_path):
        (tmp_path / "b.py").write_text("x = 1\n")
        (tmp_path / "a.py").write_text("x = 1\n")
        sub = tmp_path / "sub"
        sub.mkdir()
        (sub / "c.py").write_text("x = 1\n")
        files = iter_source_files([tmp_path, tmp_path / "a.py"])
        assert files == [tmp_path / "a.py", tmp_path / "b.py", sub / "c.py"]


# ---------------------------------------------------------------------------
# CLI: --source mode, sarif, --check-trace, baselines


class TestSourceCli:
    def test_source_mode_flags_bad_fixture(self):
        code, output = run_cli(
            "--source", "--pyproject", "/dev/null",
            str(FIXTURES / "bad_wallclock.py"),
        )
        assert code == EXIT_FINDINGS
        assert "SL101" in output

    def test_simlint_entry_point_is_source_mode(self):
        out = io.StringIO()
        code = main_simlint(
            ["--pyproject", "/dev/null", str(FIXTURES / "ok_wallclock.py")],
            stdout=out,
        )
        assert code == EXIT_CLEAN
        assert "simlint" in out.getvalue()

    def test_sarif_format_has_rules_results_and_locations(self):
        code, output = run_cli(
            "--source", "--format", "sarif", "--pyproject", "/dev/null",
            str(FIXTURES / "bad_random.py"),
        )
        assert code == EXIT_FINDINGS
        doc = json.loads(output)
        assert doc["version"] == "2.1.0"
        run = doc["runs"][0]
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == ["SL102"]
        first = run["results"][0]
        assert first["ruleId"] == "SL102"
        physical = first["locations"][0]["physicalLocation"]
        assert physical["artifactLocation"]["uri"].endswith("bad_random.py")
        assert physical["region"]["startLine"] > 0

    def test_check_trace_gates_on_bad_trace(self):
        code, output = run_cli(
            "--source", "--pyproject", "/dev/null",
            "--check-trace", str(FIXTURES / "trace_bad_dup_seq.jsonl"),
            str(FIXTURES / "ok_syntax.py"),
        )
        assert code == EXIT_FINDINGS
        assert "SL303" in output

    def test_check_trace_clean_trace_passes(self):
        code, output = run_cli(
            "--source", "--pyproject", "/dev/null",
            "--check-trace", str(FIXTURES / "trace_good.jsonl"),
            str(FIXTURES / "ok_syntax.py"),
        )
        assert code == EXIT_CLEAN

    def test_check_trace_requires_source_mode(self):
        code, output = run_cli("--check-trace", "whatever.jsonl", "x.py")
        assert code == EXIT_USAGE
        assert "--source" in output

    def test_missing_trace_file_is_usage_error(self):
        code, output = run_cli(
            "--source", "--pyproject", "/dev/null",
            "--check-trace", "does/not/exist.jsonl",
            str(FIXTURES / "ok_syntax.py"),
        )
        assert code == EXIT_USAGE

    def test_bad_pyproject_config_is_usage_error(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text('[tool.simlint.per-path]\n"x/*" = ["ZZ999"]\n')
        code, output = run_cli(
            "--source", "--pyproject", str(pyproject),
            str(FIXTURES / "ok_syntax.py"),
        )
        assert code == EXIT_USAGE
        assert "ZZ999" in output

    def test_write_then_apply_baseline_in_source_mode(self, tmp_path):
        baseline = tmp_path / "baseline.json"
        bad = str(FIXTURES / "bad_wallclock.py")
        code, output = run_cli(
            "--source", "--pyproject", "/dev/null", bad,
            "--write-baseline", str(baseline),
        )
        assert code == EXIT_CLEAN
        assert "3 suppression(s)" in output

        code, output = run_cli(
            "--source", "--pyproject", "/dev/null", bad,
            "--baseline", str(baseline),
        )
        assert code == EXIT_CLEAN
        assert "3 baseline-suppressed" in output

    def test_default_target_is_src_repro(self, monkeypatch):
        monkeypatch.chdir(ROOT)
        code, output = run_cli("--source")
        assert code == EXIT_CLEAN
        assert "simlint:" in output

    def test_python_dash_m_source_mode(self):
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.analyze", "--source",
                "--pyproject", "/dev/null",
                str(FIXTURES / "bad_env.py"),
            ],
            capture_output=True, text=True, cwd=ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == EXIT_FINDINGS
        assert "SL103" in proc.stdout


# ---------------------------------------------------------------------------
# stale-baseline handling


class TestStaleBaseline:
    def stale_baseline(self, tmp_path):
        path = tmp_path / "baseline.json"
        baseline = Baseline(
            suppressions={
                "ZZ999@gone.py:1": "rule retired long ago",
                "SL101@tests/fixtures/simlint/bad_wallclock.py:9": "kept",
            }
        )
        path.write_text(baseline.to_text())
        return path

    def test_stale_fingerprints_detects_retired_codes(self):
        baseline = Baseline(
            suppressions={"ZZ999@x.py:1": "", "SL101@y.py:2": ""}
        )
        assert baseline.stale_fingerprints() == ["ZZ999@x.py:1"]

    def test_cli_warns_on_stale_entry(self, tmp_path):
        path = self.stale_baseline(tmp_path)
        code, output = run_cli(
            "--source", "--pyproject", "/dev/null",
            "--baseline", str(path), str(FIXTURES / "ok_syntax.py"),
        )
        assert code == EXIT_CLEAN
        assert "ZZ999@gone.py:1" in output
        assert "stale" in output

    def test_prune_baseline_rewrites_the_file(self, tmp_path):
        path = self.stale_baseline(tmp_path)
        code, output = run_cli(
            "--source", "--pyproject", "/dev/null",
            "--baseline", str(path), "--prune-baseline",
            str(FIXTURES / "ok_syntax.py"),
        )
        assert code == EXIT_CLEAN
        assert "pruned 1 stale suppression(s)" in output
        reloaded = Baseline.from_text(path.read_text())
        assert list(reloaded.suppressions) == [
            "SL101@tests/fixtures/simlint/bad_wallclock.py:9"
        ]

    def test_prune_requires_baseline_flag(self):
        code, output = run_cli(
            "--source", "--prune-baseline", str(FIXTURES / "ok_syntax.py")
        )
        assert code == EXIT_USAGE
        assert "--baseline" in output

"""The installed-package database (``/var/lib/rpm`` of a host).

Tracks which :class:`~repro.rpm.package.Package` objects are installed on a
host and answers capability queries.  Mutation goes through
:mod:`repro.rpm.transaction` — the DB's own ``_install_unchecked`` /
``_erase_unchecked`` are the primitive operations transactions build on.

Capability queries (``providers_of`` / ``is_satisfied`` — the depsolver's
innermost loop) are served from an inverted provides-name → packages index.
Every mutation bumps a monotonic :attr:`epoch`; the index is kept current
incrementally once built, and downstream caches (the depsolver's resolution
cache) key on ``(host, epoch)`` or on :meth:`fingerprint` to stay sound.
The pre-index scans survive as ``_scan_*`` reference oracles.

The bump discipline is machine-checked: simlint's SL201 walks every
method of this class path-sensitively and flags any route that mutates
indexed state without bumping :attr:`epoch` (or syncing a validity
marker, or raising).  See docs/ANALYZE.md.
"""

from __future__ import annotations

import hashlib
from typing import Iterable

from ..distro.host import Host
from ..distro.modules_env import ModuleFile
from ..errors import PackageNotFoundError, RpmError
from .package import Capability, Package, Requirement

__all__ = ["RpmDatabase"]


class RpmDatabase:
    """Installed packages of one host, with payload materialisation."""

    def __init__(self, host: Host) -> None:
        self.host = host
        self._by_name: dict[str, Package] = {}
        self._epoch = 0
        self._index_epoch = -1
        self._provides_index: dict[str, list[Package]] = {}
        self._fingerprint_epoch = -1
        self._fingerprint = ""

    @property
    def epoch(self) -> int:
        """Monotonic mutation counter: bumped by every install/erase."""
        return self._epoch

    def fingerprint(self) -> str:
        """Content digest of the installed set (memoised per epoch).

        Two databases with equal fingerprints hold the same NEVRAs, so
        resolution results computed against one are valid for the other —
        the XCBC "same stack on every node" cache key (docs/PERF.md).
        """
        if self._fingerprint_epoch != self._epoch:
            digest = hashlib.sha256()
            for nevra in sorted(p.nevra for p in self._by_name.values()):
                digest.update(nevra.encode())
            self._fingerprint = digest.hexdigest()
            self._fingerprint_epoch = self._epoch
        return self._fingerprint

    # -- capability index ----------------------------------------------------

    def _ensure_index(self) -> None:
        if self._index_epoch == self._epoch:
            return
        index: dict[str, list[Package]] = {}
        for pkg in self._by_name.values():
            for cap in pkg.all_provides():
                index.setdefault(cap.name, []).append(pkg)
        self._provides_index = index
        self._index_epoch = self._epoch

    def _index_add(self, pkg: Package) -> None:
        """Fold one installed package into a current index (incremental)."""
        for cap in pkg.all_provides():
            self._provides_index.setdefault(cap.name, []).append(pkg)

    def _index_discard(self, pkg: Package) -> None:
        """Drop one erased package from a current index (incremental)."""
        for cap in pkg.all_provides():
            bucket = self._provides_index.get(cap.name)
            if bucket is not None:
                self._provides_index[cap.name] = [
                    p for p in bucket if p is not pkg
                ]

    # -- queries ------------------------------------------------------------

    def installed(self) -> list[Package]:
        """All installed packages sorted by name."""
        return [self._by_name[n] for n in sorted(self._by_name)]

    def names(self) -> set[str]:
        """Installed package names."""
        return set(self._by_name)

    def has(self, name: str) -> bool:
        """rpm -q: is a package with this name installed?"""
        return name in self._by_name

    def get(self, name: str) -> Package:
        """Fetch an installed package by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise PackageNotFoundError(
                f"{self.host.name}: package {name} is not installed"
            ) from None

    def providers_of(self, req: Requirement) -> list[Package]:
        """Installed packages satisfying ``req`` (index lookup)."""
        self._ensure_index()
        candidates = self._provides_index.get(req.name)
        if not candidates:
            return []
        return sorted(
            (p for p in candidates if p.satisfies(req)), key=lambda p: p.name
        )

    def _scan_providers_of(self, req: Requirement) -> list[Package]:
        """Reference oracle for :meth:`providers_of`: the pre-index scan."""
        return [p for p in self.installed() if p.satisfies(req)]

    def is_satisfied(self, req: Requirement) -> bool:
        """True if some installed package satisfies ``req``."""
        self._ensure_index()
        candidates = self._provides_index.get(req.name)
        if not candidates:
            return False
        return any(p.satisfies(req) for p in candidates)

    def _scan_is_satisfied(self, req: Requirement) -> bool:
        """Reference oracle for :meth:`is_satisfied`."""
        return any(p.satisfies(req) for p in self._by_name.values())

    def unsatisfied_requirements(self) -> list[tuple[Package, Requirement]]:
        """Integrity check: every requirement of every installed package that
        no installed package satisfies.  A healthy DB returns ``[]``."""
        broken = []
        for pkg in self.installed():
            for req in pkg.requires:
                if not self.is_satisfied(req):
                    broken.append((pkg, req))
        return broken

    def verify(self, name: str) -> list[str]:
        """``rpm -V``: check a package's payload against the filesystem.

        Returns a list of discrepancies (missing paths, replaced content —
        detected via ownership changes), empty when the package is intact.
        Drift found here is what :meth:`RocksInstaller.reinstall_node` is
        for.
        """
        pkg = self.get(name)
        problems: list[str] = []
        for path in pkg.default_paths():
            if not self.host.fs.exists(path):
                problems.append(f"missing   {path}")
                continue
            node = self.host.fs.get(path)
            if node.owner_package != pkg.name:
                problems.append(
                    f"replaced  {path} (now owned by {node.owner_package})"
                )
        for service in pkg.services:
            try:
                record = self.host.services.get(service)
            except Exception:
                problems.append(f"unregistered service {service}")
                continue
            if record.package != pkg.name:
                problems.append(
                    f"service {service} re-owned by {record.package}"
                )
        return problems

    def verify_all(self) -> dict[str, list[str]]:
        """``rpm -Va``: verify every installed package; only packages with
        discrepancies appear in the result."""
        out: dict[str, list[str]] = {}
        for pkg in self.installed():
            problems = self.verify(pkg.name)
            if problems:
                out[pkg.name] = problems
        return out

    def whatrequires(self, name: str) -> list[Package]:
        """Installed packages whose requirements are satisfied *only* through
        capabilities of ``name`` (i.e. erasing ``name`` would break them)."""
        target = self._by_name.get(name)
        if target is None:
            return []
        dependants = []
        others = [p for p in self._by_name.values() if p.name != name]
        for pkg in others:
            for req in pkg.requires:
                if target.satisfies(req) and not any(
                    o.satisfies(req) for o in others if o.name != pkg.name
                ):
                    dependants.append(pkg)
                    break
        return sorted(dependants, key=lambda p: p.name)

    def state_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot of the installed set (checkpointing)."""
        return {
            "host": self.host.name,
            "installed": sorted(p.nevra for p in self._by_name.values()),
        }

    # -- primitive mutations (used by the transaction layer) ---------------------

    def _install_unchecked(self, pkg: Package) -> None:
        """Install a package and materialise its payload (no dep checking)."""
        if pkg.name in self._by_name:
            raise RpmError(
                f"{self.host.name}: package {pkg.name} is already installed "
                f"({self._by_name[pkg.name].nevra})"
            )
        self._by_name[pkg.name] = pkg
        if self._index_epoch == self._epoch:
            self._index_add(pkg)
            self._index_epoch += 1
        self._epoch += 1
        for path in pkg.files:
            self.host.fs.write(path, f"payload of {pkg.nevra}", owner=pkg.name)
        for command in pkg.commands:
            self.host.fs.write(
                f"/usr/bin/{command}",
                f"#!ELF {command} from {pkg.nevra}",
                owner=pkg.name,
                mode=0o755,
            )
        for lib in pkg.libraries:
            self.host.fs.write(
                f"/usr/lib64/{lib}", f"shared object from {pkg.nevra}", owner=pkg.name
            )
        for service in pkg.services:
            self.host.services.register(service, package=pkg.name)
        if pkg.modulefile:
            name, _, version = pkg.modulefile.partition("/")
            self.host.modules.install(
                ModuleFile(
                    name=name,
                    version=version or pkg.version,
                    prepend_path=(("PATH", f"/opt/{name}/bin"),),
                    whatis=pkg.summary or pkg.name,
                )
            )
            self.host.fs.write(
                f"/etc/modulefiles/{name}/{version or pkg.version}",
                f"#%Module for {pkg.nevra}",
                owner=pkg.name,
            )

    def _erase_unchecked(self, name: str) -> Package:
        """Erase a package and its payload (no dependant checking)."""
        pkg = self.get(name)
        del self._by_name[name]
        if self._index_epoch == self._epoch:
            self._index_discard(pkg)
            self._index_epoch += 1
        self._epoch += 1
        self.host.fs.remove_owned(name)
        self.host.services.unregister_package(name)
        if pkg.modulefile:
            mname, _, mversion = pkg.modulefile.partition("/")
            try:
                self.host.modules.remove(mname, mversion or pkg.version)
            except Exception:
                pass  # modulefile may have been replaced by an upgrade
        return pkg

    def __len__(self) -> int:
        return len(self._by_name)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

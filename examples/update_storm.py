#!/usr/bin/env python3
"""A security-release update storm against the XNIT repository service.

The advisory lands, and every Table 3 campus — workshop-scale clients at
each — starts syncing the fixed packages through its campus proxy within
minutes.  Mid-storm, the fault plan turns the screws: the origin daemon
crashes outright (``origin.crash``) and the two largest campuses' WAN
uplinks start resetting connections (``conn.reset``).  The service
survives on three robustness mechanisms from :mod:`repro.repod`:

* **admission control** — the origin's bounded slots and queue shed
  excess load explicitly (``repod.shed``) instead of queueing to death;
* **coalescing + serve-stale proxies** — N concurrent campus misses cost
  one origin fetch (``repod.coalesce``), and while the origin is down a
  proxy serves its previous copy (``repod.stale``) so campuses stay
  installable on the old release;
* **retry budgets** — each campus's clients share a token bucket
  (``repod.retry_budget``); when it runs dry, clients stop retrying, so
  the recovering origin sees decaying load instead of a thundering herd.

Run with ``--naive-style`` for the ablation (no budget, hammering retry
loops) and watch origin arrivals multiply.  Two runs with the same seed
produce byte-identical traces (checked below).
"""

import argparse
import sys

from repro.repod import UpdateStormScenario

CLIENTS_PER_CAMPUS = 6


def run_storm(seed: int = 2015, *, governed: bool = True, trace_path=None):
    """One full storm: build, drive to quiescence, audit."""
    scenario = UpdateStormScenario(
        seed=seed, governed=governed, clients_per_campus=CLIENTS_PER_CAMPUS
    )
    report = scenario.run()
    if trace_path is not None:
        scenario.kernel.trace.write_jsonl(trace_path)
    return scenario, report


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=2015)
    parser.add_argument("--naive-style", action="store_true",
                        help="ablation: no retry budget, impatient clients")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write the JSONL trace here")
    args = parser.parse_args(argv if argv is not None else [])

    governed = not args.naive_style
    scenario, report = run_storm(
        args.seed, governed=governed, trace_path=args.trace
    )
    trace = scenario.kernel.trace

    style = "governed (budgeted)" if governed else "NAIVE (no budget)"
    print(f"=== Update storm: {report.campuses} campuses x "
          f"{CLIENTS_PER_CAMPUS} clients, {style} ===")
    print(f"offered {report.offered} requests; "
          f"ok={report.ok} stale={report.stale} failed={report.failed} "
          f"-> goodput {report.goodput_ratio:.1%}")
    print(f"origin: arrivals={report.origin_arrivals} "
          f"served={report.origin_served} "
          f"shed={report.origin_shed_full + report.origin_shed_deadline} "
          f"refused-while-down={report.origin_refused}")
    print(f"proxies: hits={report.proxy_hits} misses={report.proxy_misses} "
          f"coalesced={report.proxy_coalesced} "
          f"stale-served={report.proxy_stale_served} "
          f"uplink-resets={report.uplink_resets}")
    print(f"retries: {report.retries} "
          f"(budget granted={report.budget_granted} "
          f"denied={report.budget_denied})")
    counts = {k: v for k, v in sorted(trace.by_kind.items())
              if k.startswith("repod.")}
    print(f"repod.* events: {counts}")
    if report.problems:
        print("INVARIANT VIOLATIONS:")
        for problem in report.problems:
            print(f"  - {problem}")
    else:
        print("invariant audit: clean "
              "(exactly-once terminals, no leaked slots, goodput floor)")

    again, again_report = run_storm(args.seed, governed=governed)
    identical = again.kernel.trace.to_jsonl() == trace.to_jsonl()
    print(f"\nsame seed re-run, traces byte-identical: {identical}")
    if args.trace:
        print(f"trace written to {args.trace} "
              f"(validate: python -m repro.sim {args.trace})")


def cluster_definition():
    """An equivalent synthetic site, for ``cluster-lint``."""
    from repro.analyze import ClusterDefinition
    from repro.core.deployments import build_synthetic_fleet
    from repro.scheduler import default_queue_for

    machine = build_synthetic_fleet(60)
    return ClusterDefinition(
        name="update-storm",
        machine=machine,
        queues=(default_queue_for(machine),),
    )


if __name__ == "__main__":
    main(sys.argv[1:])

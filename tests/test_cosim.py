"""Co-simulation acceptance: scheduler, power, MPI and monitoring share
one kernel timeline, the trace validates against the schema, and identical
seeds reproduce the trace byte-for-byte."""

import importlib.util
import pathlib

import pytest

from repro.sim import validate_jsonl

_PATH = pathlib.Path(__file__).parent.parent / "examples" / "cosim_limulus.py"
_spec = importlib.util.spec_from_file_location("cosim_limulus", _PATH)
cosim = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(cosim)


@pytest.fixture(scope="module")
def run():
    return cosim.run_cosim(seed=7)


class TestOneTimeline:
    def test_all_subsystems_share_the_kernel(self, run):
        kernel = run["kernel"]
        assert run["scheduler"].kernel is kernel
        assert run["gmetad"].kernel is kernel
        # MPI rank timelines registered on the same kernel
        assert any(t.name.startswith("mpi.rank") for t in kernel.timelines())

    def test_every_subsystem_published_events(self, run):
        by_sub = run["kernel"].trace.by_subsystem
        for subsystem in ("scheduler", "power", "monitoring", "mpi"):
            assert by_sub[subsystem] > 0, subsystem

    def test_monitoring_interleaves_with_jobs(self, run):
        """Polls land between job start and end — periodic kernel events
        fire inside the scheduler's windows, not around them."""
        events = run["kernel"].trace.events
        starts = [e.seq for e in events if e.kind == "job.start"]
        ends = [e.seq for e in events if e.kind == "job.end"]
        cycles = [e.seq for e in events if e.kind == "monitor.cycle"]
        assert any(min(starts) < c < max(ends) for c in cycles)

    def test_jobs_completed_with_boot_delay(self, run):
        stats = run["stats"]
        assert stats.completed == 3 and stats.failed == 0
        assert run["kernel"].trace.count("node.power_on") >= 1

    def test_mpi_profile_recorded(self, run):
        profile = run["profiles"]["mpi-allreduce"]
        assert profile.ranks == 8
        assert profile.communication_s > 0


class TestTraceContract:
    def test_trace_validates_against_schema(self, run):
        count, problems = validate_jsonl(run["jsonl"])
        assert problems == []
        assert count == len(run["kernel"].trace)

    def test_same_seed_byte_identical(self, run):
        again = cosim.run_cosim(seed=7)
        assert again["jsonl"] == run["jsonl"]

    def test_different_seed_differs(self, run):
        other = cosim.run_cosim(seed=8)
        assert other["jsonl"] != run["jsonl"]

    def test_trace_written_to_disk_matches(self, run, tmp_path):
        path = tmp_path / "cosim.jsonl"
        again = cosim.run_cosim(seed=7, trace_path=path)
        assert path.read_text() == again["jsonl"] == run["jsonl"]

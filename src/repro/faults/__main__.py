"""Chaos-run CLI: replay a fault plan against a simulated cluster.

::

    python -m repro.faults                         # built-in demo plan, littlefe
    python -m repro.faults --cluster limulus --seed 7
    python -m repro.faults --plan plans/crash.json --trace out.jsonl
    python -m repro.faults --check-determinism     # run twice, diff traces

Crash recovery (the full loop)::

    # run with periodic checkpoints and a head-node crash at t=1800s
    python -m repro.faults --seed 3 --checkpoint-every 50 \\
        --checkpoint-path chaos.ckpt --crash-at 1800      # exits 3 (crashed)

    # resume from the last checkpoint; the crash fires disarmed this time
    python -m repro.faults --seed 3 --checkpoint-path chaos.ckpt --resume \\
        --trace resumed.jsonl

    # the reference run: same plan, crash disarmed, no interruption
    python -m repro.faults --seed 3 --crash-at 1800 --no-crash \\
        --trace baseline.jsonl
    # resumed.jsonl and baseline.jsonl are byte-identical

Exit codes: 0 all invariants hold; 1 audit failure or determinism
divergence; 2 setup errors (bad plan, bad flags, unreadable checkpoint);
3 the head node crashed (a checkpoint was saved — resume with
``--resume``).
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from ..errors import HeadnodeCrashError, ReproError
from ..recovery import CheckpointManager, Snapshot
from .chaos import CLUSTERS, ChaosWorld, demo_plan
from .plan import FaultKind, FaultPlan, FaultSpec


def _load_plan(args) -> FaultPlan | None:
    """The plan the flags describe (None = let the world build the demo)."""
    plan = FaultPlan.load(args.plan) if args.plan is not None else None
    if args.crash_at is None:
        return plan
    if plan is None:
        # The crash spec must live inside the plan (armed or not) so both
        # runs schedule the identical event sequence; materialize the demo.
        plan = demo_plan(CLUSTERS[args.cluster]())
    return FaultPlan(
        name=f"{plan.name}+crash",
        faults=plan.faults
        + (FaultSpec(FaultKind.HEADNODE_CRASH, "frontend", at_s=args.crash_at),),
    )


def _world_config(args, plan: FaultPlan | None, *, crash_armed: bool) -> dict:
    return {
        "plan": None if plan is None else plan.to_dict(),
        "seed": args.seed,
        "cluster": args.cluster,
        "job_count": args.jobs,
        "supervise": not args.no_supervise,
        "crash_armed": crash_armed,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="Replay a fault plan against a simulated cluster "
        "and audit invariants.",
    )
    parser.add_argument(
        "--plan", type=pathlib.Path, default=None,
        help="JSON fault plan (default: built-in two-node-crash demo)",
    )
    parser.add_argument(
        "--cluster", choices=sorted(CLUSTERS), default="littlefe",
        help="which reference machine to build (default: littlefe)",
    )
    parser.add_argument("--seed", type=int, default=0, help="kernel RNG seed")
    parser.add_argument(
        "--jobs", type=int, default=12, help="workload size (default: 12)"
    )
    parser.add_argument(
        "--trace", type=pathlib.Path, default=None,
        help="write the JSONL trace here",
    )
    parser.add_argument(
        "--no-supervise", action="store_true",
        help="run without the self-healing supervisor",
    )
    parser.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="N",
        help="snapshot the world every N driver steps",
    )
    parser.add_argument(
        "--checkpoint-path", type=pathlib.Path, default=None,
        help="where the latest snapshot is saved / resumed from",
    )
    parser.add_argument(
        "--crash-at", type=float, default=None, metavar="T",
        help="inject a headnode.crash fault at simulated time T seconds",
    )
    parser.add_argument(
        "--no-crash", action="store_true",
        help="keep the --crash-at spec in the plan but fire it disarmed "
        "(the byte-diff baseline for a resumed run)",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="restore from --checkpoint-path and run to completion",
    )
    parser.add_argument(
        "--check-determinism", action="store_true",
        help="run the scenario twice and require byte-identical traces",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the report"
    )
    args = parser.parse_args(argv)

    crash_armed = args.crash_at is not None and not args.no_crash
    if args.resume and args.checkpoint_path is None:
        print("--resume needs --checkpoint-path", file=sys.stderr)
        return 2
    if args.check_determinism and crash_armed:
        print(
            "--check-determinism needs --no-crash (an armed crash kills "
            "both runs before the traces complete)", file=sys.stderr,
        )
        return 2
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        print("--checkpoint-every must be >= 1", file=sys.stderr)
        return 2

    try:
        if args.resume:
            # import repro.faults.chaos above registered the "chaos" factory
            snapshot = Snapshot.load(args.checkpoint_path)
            world = CheckpointManager.restore(snapshot, crash_armed=False)
            if not args.quiet:
                print(
                    f"resumed {snapshot.world!r} from {args.checkpoint_path} "
                    f"at step {snapshot.steps} (t={snapshot.now_s:.0f}s)"
                )
            world.run()
        else:
            plan = _load_plan(args)
            world = ChaosWorld(_world_config(args, plan, crash_armed=crash_armed))
            manager = (
                CheckpointManager(world, every=args.checkpoint_every)
                if args.checkpoint_every is not None
                else None
            )
            try:
                while world.step():
                    if manager is None:
                        continue
                    snapshot = manager.maybe_capture()
                    if snapshot is not None and args.checkpoint_path is not None:
                        snapshot.save(args.checkpoint_path)
            except HeadnodeCrashError as exc:
                open_txns = len(world.journal.open_txns())
                print(f"CRASH: {exc}", file=sys.stderr)
                print(
                    f"journal: {open_txns} transaction(s) left open "
                    f"(recoverable)", file=sys.stderr,
                )
                if manager is not None and manager.latest is not None:
                    if args.checkpoint_path is not None:
                        print(
                            f"checkpoint: step {manager.latest.steps} saved to "
                            f"{args.checkpoint_path}; resume with --resume",
                            file=sys.stderr,
                        )
                else:
                    print("checkpoint: none taken", file=sys.stderr)
                return 3
        run = world.result()
    except (ReproError, OSError, ValueError) as exc:
        # OSError: unreadable --plan/--checkpoint path; ValueError: bad JSON.
        print(f"chaos run failed: {exc}", file=sys.stderr)
        return 2

    if args.trace is not None:
        args.trace.write_text(run.jsonl)

    if not args.quiet:
        print(
            f"chaos: cluster={args.cluster} seed={args.seed} "
            f"events={run.kernel.events_processed} "
            f"t_end={run.kernel.now_s:.0f}s"
        )
        print(run.report.render())

    status = 0 if run.report.ok else 1

    if args.check_determinism:
        rerun_world = ChaosWorld(
            _world_config(args, _load_plan(args), crash_armed=crash_armed)
        )
        rerun_world.run()
        if rerun_world.kernel.trace.to_jsonl() != run.jsonl:
            print(
                "determinism check FAILED: same seed produced different "
                "traces", file=sys.stderr,
            )
            status = 1
        elif not args.quiet:
            print(
                f"determinism check: OK "
                f"({len(run.jsonl.encode())} bytes, both runs identical)"
            )

    return status


if __name__ == "__main__":
    sys.exit(main())

"""Blocked DGEMM and LU micro-kernels (real numpy compute).

HPL spends ~90 % of its time in DGEMM, so a Linpack reproduction needs a
real kernel to (a) validate the solver machinery end-to-end and (b) measure
*this* machine's achievable flop rate for the examples.  The cluster-scale
Rmax numbers in Table 5 come from the analytic model in
:mod:`repro.linpack.model`; these kernels are the ground-truth engine under
it.

Following the hpc-parallel guide: the hot loops are expressed as numpy
operations (BLAS underneath), not Python loops.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..errors import LinpackError

__all__ = ["blocked_lu", "lu_solve", "residual_check", "measure_dgemm_gflops"]


def blocked_lu(a: np.ndarray, block: int = 64) -> tuple[np.ndarray, np.ndarray]:
    """Right-looking blocked LU with partial pivoting, in place.

    Returns ``(lu, piv)`` where ``lu`` holds L (unit lower) and U packed
    together and ``piv`` is the pivot row chosen at each step.  This is the
    same decomposition HPL performs, at laptop scale.
    """
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise LinpackError(f"LU needs a square matrix, got {a.shape}")
    if block <= 0:
        raise LinpackError(f"block size must be positive, got {block}")
    n = a.shape[0]
    lu = np.array(a, dtype=np.float64, copy=True)
    piv = np.zeros(n, dtype=np.int64)
    for k0 in range(0, n, block):
        k1 = min(k0 + block, n)
        # Panel factorisation with partial pivoting (unblocked within panel).
        for k in range(k0, k1):
            pivot = k + int(np.argmax(np.abs(lu[k:, k])))
            piv[k] = pivot
            if lu[pivot, k] == 0.0:
                raise LinpackError(f"matrix is singular at column {k}")
            if pivot != k:
                lu[[k, pivot], :] = lu[[pivot, k], :]
            lu[k + 1 :, k] /= lu[k, k]
            if k + 1 < k1:
                lu[k + 1 :, k + 1 : k1] -= np.outer(lu[k + 1 :, k], lu[k, k + 1 : k1])
        if k1 < n:
            # U12 update: solve L11 * U12 = A12 (unit lower triangular).
            l11 = np.tril(lu[k0:k1, k0:k1], -1) + np.eye(k1 - k0)
            lu[k0:k1, k1:] = np.linalg.solve(l11, lu[k0:k1, k1:])
            # Trailing update: the DGEMM that dominates HPL.
            lu[k1:, k1:] -= lu[k1:, k0:k1] @ lu[k0:k1, k1:]
    return lu, piv


def lu_solve(lu: np.ndarray, piv: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``Ax = b`` given :func:`blocked_lu` output."""
    n = lu.shape[0]
    x = np.array(b, dtype=np.float64, copy=True)
    for k in range(n):  # apply pivots then forward substitution (unit L)
        p = int(piv[k])
        if p != k:
            x[[k, p]] = x[[p, k]]
    for k in range(n):
        x[k + 1 :] -= lu[k + 1 :, k] * x[k]
    for k in range(n - 1, -1, -1):  # back substitution
        x[k] = (x[k] - lu[k, k + 1 :] @ x[k + 1 :]) / lu[k, k]
    return x


def residual_check(a: np.ndarray, x: np.ndarray, b: np.ndarray) -> float:
    """HPL's scaled residual: ||Ax-b||_inf / (eps * (||A|| ||x|| + ||b||) * n).

    HPL declares a run valid when this is below 16.0.
    """
    n = a.shape[0]
    eps = np.finfo(np.float64).eps
    num = np.linalg.norm(a @ x - b, np.inf)
    den = eps * (np.linalg.norm(a, np.inf) * np.linalg.norm(x, np.inf)
                 + np.linalg.norm(b, np.inf)) * n
    if den == 0.0:
        raise LinpackError("degenerate residual denominator")
    return float(num / den)


@dataclass(frozen=True)
class DgemmMeasurement:
    """One measured DGEMM point."""

    n: int
    seconds: float
    gflops: float


def measure_dgemm_gflops(n: int = 512, *, repeats: int = 3, seed: int = 7) -> DgemmMeasurement:
    """Time ``n x n`` DGEMM on the actual machine (examples use this to show
    a real measured flop rate next to the modelled ones)."""
    if n <= 0 or repeats <= 0:
        raise LinpackError("n and repeats must be positive")
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    b = rng.standard_normal((n, n))
    a @ b  # warm-up (thread pools, caches)
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        a @ b
        best = min(best, time.perf_counter() - t0)
    flops = 2.0 * n**3
    return DgemmMeasurement(n=n, seconds=best, gflops=flops / best / 1e9)

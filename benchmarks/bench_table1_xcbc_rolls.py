"""Table 1 — Components of the current XCBC build, part 1.

Regenerates the general-cluster-setup table (basics, job management, the
optional Rocks rolls) from the roll catalogue, then verifies every row the
paper prints is present.  The benchmark times a full roll-catalogue
construction plus graph attachment — the work `rocks create distro` does.
"""

from repro.rocks import (
    TABLE1_BASICS,
    TABLE1_OPTIONAL_ROLLS,
    GraphNode,
    KickstartGraph,
    Profile,
    all_standard_rolls,
)


def regenerate_table1() -> str:
    rolls = all_standard_rolls()
    lines = ["Table 1. Components of current XCBC build Part 1", ""]
    lines.append(f"{'Category':<16} Specific packages")
    basics = ", ".join(
        ["Rocks 6.1.1", "Centos 6.5"]
        + [b for b in TABLE1_BASICS if b != "rocks"]
    )
    lines.append(f"{'Basics':<16} {basics}")
    lines.append(f"{'Job Management':<16} Torque, SLURM, sge (choose one)")
    lines.append("")
    lines.append("Rocks optional rolls")
    for name, description in TABLE1_OPTIONAL_ROLLS.items():
        roll = rolls[name]
        packages = ", ".join(roll.package_names())
        lines.append(f"{name:<16} {description}")
        lines.append(f"{'':<16}   carries: {packages}")
    return "\n".join(lines)


def build_and_graph():
    """The timed unit: build every roll and attach it to a kickstart graph."""
    rolls = all_standard_rolls()
    graph = KickstartGraph()
    graph.add_node(GraphNode(Profile.FRONTEND))
    graph.add_node(GraphNode(Profile.COMPUTE))
    for name, roll in rolls.items():
        if name in ("slurm", "sge"):
            continue  # "choose one": torque is the default choice
        roll.apply_to_graph(graph)
    return graph


def test_table1_regeneration(benchmark, save_artifact):
    graph = benchmark(build_and_graph)
    table = regenerate_table1()
    save_artifact("table1_xcbc_rolls", table)

    # every paper row exists
    for roll_name in TABLE1_OPTIONAL_ROLLS:
        assert roll_name in table
    for basic in ("modules", "apache-ant", "fdepend", "gmake", "gnu-make", "scons"):
        assert basic in table
    assert "Torque, SLURM, sge (choose one)" in table
    # and the graph actually delivers the packages to both appliances
    assert "rocks" in graph.resolve_packages(Profile.COMPUTE)
    assert {"base", "torque"} <= graph.rolls_in(Profile.FRONTEND)

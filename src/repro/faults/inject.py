"""The fault injector: a plan becomes kernel events, deterministically.

:class:`FaultInjector` wires a :class:`~repro.faults.plan.FaultPlan` onto
a running simulation.  Each fault is scheduled as an ordinary kernel event
at its ``at_s`` (so it interleaves with job completions, polls, and
transfers in the one ``(time, seq)`` order every run replays identically),
its effect is applied to the wired subsystem, and — for faults with a
``duration_s`` — the reverse action is scheduled as a second event.
Every injection emits ``fault.inject`` and every automatic repair emits
``fault.recover`` on the trace bus, so a chaos run's JSONL is a complete,
diffable record of what broke and when it healed.

The injector is duck-typed on purpose: it holds whatever subsystem
handles you give it (scheduler, machine, gmetad, mirrors, PXE) and raises
:class:`~repro.errors.FaultError` at *apply* time if a plan needs one
that is missing — never silently dropping a fault.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import FaultError, HeadnodeCrashError
from .plan import FaultKind, FaultPlan, FaultSpec

__all__ = ["FaultInjector", "ActiveFault"]


@dataclass
class ActiveFault:
    """One injected fault awaiting (or past) recovery."""

    spec: FaultSpec
    injected_at_s: float
    recovered_at_s: float | None = None

    @property
    def active(self) -> bool:
        return self.recovered_at_s is None


class FaultInjector:
    """Applies fault plans to wired subsystems through the kernel."""

    def __init__(
        self,
        kernel,
        *,
        scheduler=None,
        machine=None,
        gmetad=None,
        mirrors=(),
        pxe=None,
        origins=(),
        proxies=(),
        crash_armed: bool = True,
    ) -> None:
        self.kernel = kernel
        self.scheduler = scheduler
        self.machine = machine
        self.gmetad = gmetad
        self.mirrors = {m.local.repo_id: m for m in mirrors}
        self.pxe = pxe
        #: repro.repod handles: RepoServer origins and SiteProxy caches,
        #: addressed by their ``.name`` (the update-storm vocabulary).
        self.origins = {o.name: o for o in origins}
        self.proxies = {p.name: p for p in proxies}
        #: Whether a scheduled HEADNODE_CRASH actually kills the run.  The
        #: spec stays in the plan either way (so armed and disarmed runs
        #: schedule identical event sequences and stay byte-diffable); a
        #: resumed run restores with the crash disarmed so it fires as a
        #: silent no-op the second time through.
        self.crash_armed = crash_armed
        self.history: list[ActiveFault] = []
        self._handlers = {
            FaultKind.NODE_CRASH: (self._crash_node, self._recover_node),
            FaultKind.PSU_FAIL: (self._crash_node, self._recover_node),
            FaultKind.LINK_FLAP: (self._start_flap, self._stop_flap),
            FaultKind.DISK_FULL: (self._fill_disk, self._free_disk),
            FaultKind.BOOT_TIMEOUT: (self._boot_timeouts, None),
            FaultKind.MIRROR_CORRUPT: (self._corrupt_mirror, None),
            FaultKind.HEARTBEAT_LOSS: (self._lose_heartbeat, self._restore_heartbeat),
            FaultKind.HEADNODE_CRASH: (self._crash_headnode, None),
            FaultKind.ORIGIN_CRASH: (self._crash_origin, self._recover_origin),
            FaultKind.CONN_RESET: (self._start_reset, self._stop_reset),
        }

    # -- wiring helpers ---------------------------------------------------------

    def _need(self, attr: str, spec: FaultSpec):
        value = getattr(self, attr)
        if value is None:
            raise FaultError(
                f"fault {spec.kind.value}@{spec.target} needs a wired "
                f"{attr!r} but none was given to the injector"
            )
        return value

    def _mirror(self, spec: FaultSpec):
        try:
            return self.mirrors[spec.target]
        except KeyError:
            known = ", ".join(sorted(self.mirrors)) or "none"
            raise FaultError(
                f"fault {spec.kind.value}: unknown mirror {spec.target!r} "
                f"(wired: {known})"
            ) from None

    def _hw_node(self, name: str):
        if self.machine is None:
            return None
        for node in self.machine.nodes:
            if node.name == name:
                return node
        return None

    # -- fault handlers (apply, recover) ---------------------------------------

    def _crash_node(self, spec: FaultSpec) -> None:
        scheduler = self._need("scheduler", spec)
        scheduler.crash_node(spec.target, reason=spec.kind.value)
        hw = self._hw_node(spec.target)
        if hw is not None:
            hw.powered_on = False
        if self.gmetad is not None:
            try:
                self.gmetad.gmond_for(spec.target).fail_heartbeat()
            except Exception:
                pass  # node not in the monitoring mesh; nothing to silence

    def _recover_node(self, spec: FaultSpec) -> None:
        scheduler = self._need("scheduler", spec)
        hw = self._hw_node(spec.target)
        if hw is not None:
            hw.powered_on = True
        if self.gmetad is not None:
            try:
                self.gmetad.gmond_for(spec.target).restore_heartbeat()
            except Exception:
                pass
        scheduler.recover_node(spec.target)

    def _start_flap(self, spec: FaultSpec) -> None:
        loss = float(spec.params.get("loss_prob", 0.5))
        if spec.target in self.mirrors:
            self.mirrors[spec.target].set_loss_probability(loss)
        elif spec.target == "pxe":
            pxe = self._need("pxe", spec)
            pxe.inject_boot_timeouts("*", int(spec.params.get("count", 1)))
        else:
            self._mirror(spec)  # raises with the known-mirror list

    def _stop_flap(self, spec: FaultSpec) -> None:
        if spec.target in self.mirrors:
            self.mirrors[spec.target].set_loss_probability(0.0)
        elif spec.target == "pxe" and self.pxe is not None:
            self.pxe.inject_boot_timeouts("*", 0)

    def _fill_disk(self, spec: FaultSpec) -> None:
        self._mirror(spec).set_disk_full(True)

    def _free_disk(self, spec: FaultSpec) -> None:
        self._mirror(spec).set_disk_full(False)

    def _boot_timeouts(self, spec: FaultSpec) -> None:
        pxe = self._need("pxe", spec)
        pxe.inject_boot_timeouts(spec.target, int(spec.params.get("count", 1)))

    def _corrupt_mirror(self, spec: FaultSpec) -> None:
        mirror = self._mirror(spec)
        nevras = spec.params.get("nevras")
        mirror.corrupt_next(set(nevras) if nevras else None)

    def _lose_heartbeat(self, spec: FaultSpec) -> None:
        gmetad = self._need("gmetad", spec)
        gmetad.gmond_for(spec.target).fail_heartbeat()

    def _restore_heartbeat(self, spec: FaultSpec) -> None:
        gmetad = self._need("gmetad", spec)
        gmetad.gmond_for(spec.target).restore_heartbeat()

    def _crash_headnode(self, spec: FaultSpec) -> None:
        # Disarmed: silent no-op.  The armed path never reaches here — it
        # raises from the inject closure *before* fault.inject is emitted
        # (a dying frontend writes no log line).
        pass

    def _origin(self, spec: FaultSpec):
        try:
            return self.origins[spec.target]
        except KeyError:
            known = ", ".join(sorted(self.origins)) or "none"
            raise FaultError(
                f"fault {spec.kind.value}: unknown origin {spec.target!r} "
                f"(wired: {known})"
            ) from None

    def _proxy(self, spec: FaultSpec):
        try:
            return self.proxies[spec.target]
        except KeyError:
            known = ", ".join(sorted(self.proxies)) or "none"
            raise FaultError(
                f"fault {spec.kind.value}: unknown proxy {spec.target!r} "
                f"(wired: {known})"
            ) from None

    def _crash_origin(self, spec: FaultSpec) -> None:
        self._origin(spec).crash()

    def _recover_origin(self, spec: FaultSpec) -> None:
        self._origin(spec).recover()

    def _start_reset(self, spec: FaultSpec) -> None:
        loss = float(spec.params.get("loss_prob", 1.0))
        self._proxy(spec).set_uplink_loss(loss)

    def _stop_reset(self, spec: FaultSpec) -> None:
        self._proxy(spec).set_uplink_loss(0.0)

    # -- application -------------------------------------------------------------

    def apply(self, plan: FaultPlan) -> list[ActiveFault]:
        """Validate the plan and schedule every fault as kernel events.

        Returns the per-fault records (updated in place as injections and
        recoveries fire during the run).
        """
        plan.validate()
        records = []
        for spec in plan.faults:
            records.append(self._schedule(spec))
        return records

    def _schedule(self, spec: FaultSpec) -> ActiveFault:
        record = ActiveFault(spec=spec, injected_at_s=spec.at_s)
        self.history.append(record)

        def inject() -> None:
            if spec.kind is FaultKind.HEADNODE_CRASH and self.crash_armed:
                # The frontend dies NOW: no trace event, no recovery event,
                # no cleanup.  This exception must propagate out of the
                # whole run loop untouched — recovery happens out-of-band
                # from the last checkpoint plus the write-ahead journal.
                raise HeadnodeCrashError(
                    f"head node crashed at t={self.kernel.now_s:.0f}s "
                    f"(fault {spec.kind.value}@{spec.target})"
                )
            self.kernel.trace.emit(
                "fault.inject", t_s=self.kernel.now_s, subsystem="faults",
                fault=spec.kind.value, target=spec.target,
            )
            apply_fn, recover_fn = self._handlers[spec.kind]
            apply_fn(spec)
            if spec.duration_s > 0 and recover_fn is not None:

                def recover() -> None:
                    recover_fn(spec)
                    record.recovered_at_s = self.kernel.now_s
                    self.kernel.trace.emit(
                        "fault.recover", t_s=self.kernel.now_s,
                        subsystem="faults", fault=spec.kind.value,
                        target=spec.target,
                        downtime_s=self.kernel.now_s - record.injected_at_s,
                    )

                self.kernel.at(
                    self.kernel.now_s + spec.duration_s, recover,
                    label=f"fault.recover:{spec.kind.value}:{spec.target}",
                )

        self.kernel.at(
            spec.at_s, inject, label=f"fault.inject:{spec.kind.value}:{spec.target}"
        )
        return record

    def active_faults(self) -> list[ActiveFault]:
        return [r for r in self.history if r.active]

"""Near-miss fixture: configuration threaded explicitly (SL103)."""

import os
import uuid


def configured_root(config):
    # an explicit mapping parameter, not the process environment
    return config["REPRO_ROOT"]


def configured_level(config):
    env = dict(config)
    return env.get("REPRO_LEVEL", "info")


def stable_id(name):
    # uuid5 is a pure hash of its inputs — deterministic
    return uuid.uuid5(uuid.NAMESPACE_DNS, name)


def join_paths(a, b):
    # os.path is pure path algebra, not an environment read
    return os.path.join(a, b)

"""Near-miss fixture: every mutation path publishes correctly (SL201)."""


class PackageIndex:
    def __init__(self):
        self._by_name = {}
        self._epoch = 0
        self._index_epoch = -1

    def install(self, name, pkg):
        self._by_name[name] = pkg
        self._epoch += 1

    def remove(self, name):
        if name not in self._by_name:
            # exceptional exit: nothing was published, nothing to bump
            raise KeyError(name)
        del self._by_name[name]
        self._epoch += 1

    def upsert(self, name, pkg):
        # private helper owned by a bumping caller — the bump is here
        self._index_add(name, pkg)
        self._epoch += 1

    def _index_add(self, name, pkg):
        self._by_name[name] = pkg

    def _rebuild(self):
        # cache-refresh shape: mutation closed out by a validity sync
        self._by_name.clear()
        self._index_epoch = self._epoch

    def guarded_remove(self, name):
        try:
            del self._by_name[name]
        except KeyError:
            return False
        self._epoch += 1
        return True

"""Scale: the University of Kansas deployment, end to end.

Table 3's largest row — 220 nodes / 1760 cores / 26 TF — built completely:
hardware from the calibrated parts, leaf/spine private network (220 nodes
do not fit one switch), PXE discovery of 219 compute nodes, and the full
XCBC software install on every host.  One timed round (this is a
multi-second operation by design).
"""

import pytest

from repro.core import build_xcbc_cluster
from repro.core.deployments import TABLE3_SITES, rebuild_site_hardware


def build_kansas():
    kansas = next(s for s in TABLE3_SITES if "Kansas" in s.site)
    machine = rebuild_site_hardware(kansas)
    report = build_xcbc_cluster(machine, include_optional_rolls=False)
    return kansas, machine, report


def test_scale_kansas(benchmark, save_artifact):
    kansas, machine, report = benchmark.pedantic(
        build_kansas, rounds=1, iterations=1
    )
    cluster = report.cluster

    hosts = cluster.hosts()
    switch_count = len(cluster.network.fabric.switch_names())
    node_names = [n.name for n in machine.nodes]
    # Probe a deterministic spread of node pairs (evenly strided, plus the
    # last node) so the worst case reflects cross-leaf paths at any node
    # count, not whichever leaf two hardcoded indices happened to share.
    stride = max(1, len(node_names) // 8)
    probes = node_names[1::stride]
    if node_names[-1] not in probes:
        probes.append(node_names[-1])
    worst = max(
        cluster.network.fabric.path_cost(a, b).hops
        for i, a in enumerate(probes)
        for b in probes[i + 1 :]
    )
    lines = [
        "Scale: University of Kansas (Table 3's largest row), fully built",
        "",
        f"nodes installed:      {len(hosts)}",
        f"total cores:          {machine.total_cores}",
        f"Rpeak:                {machine.rpeak_gflops / 1000:.2f} TF",
        f"switches (leaf/spine): {switch_count}",
        f"worst-case hops:      {worst}",
        f"uniform packages:     {report.uniform_package_count}",
        f"DHCP leases:          {len(cluster.network.dhcp.leases())}",
        f"build wall time:      {benchmark.stats['mean']:.2f} s"
        f" ({len(hosts) / benchmark.stats['mean']:.1f} nodes/s)",
    ]
    save_artifact("scale_kansas", "\n".join(lines))

    assert len(hosts) == 220
    assert machine.total_cores == 1760
    assert machine.rpeak_gflops == pytest.approx(26_000.0)
    assert switch_count > 3  # the leaf/spine actually engaged
    assert worst == 3        # leaf -> spine -> leaf
    assert report.uniform_package_count > 120
    assert len(cluster.network.dhcp.leases()) == 219
    # every node state is installed and the DB agrees with the host list
    from repro.rocks import InstallState

    assert all(
        r.state is InstallState.INSTALLED for r in cluster.rocksdb.hosts()
    )

"""The RPM engine: EVR version comparison, package model, installed-package
database, and atomic transactions.

Everything XNIT does rides on this layer — "XNIT is based on the Yum
repository for installation or updates of RPMs" (Section 1).
"""

from .database import RpmDatabase
from .package import Capability, Flag, Package, Requirement, nevra
from .specfile import build_spec, parse_spec
from .transaction import Transaction, TransactionResult
from .version import EVR, compare_evr, parse_evr, rpmvercmp

__all__ = [
    "rpmvercmp",
    "EVR",
    "parse_evr",
    "compare_evr",
    "Package",
    "Capability",
    "Requirement",
    "Flag",
    "nevra",
    "RpmDatabase",
    "Transaction",
    "TransactionResult",
    "parse_spec",
    "build_spec",
]

"""Near-miss fixture: epoch-keyed memoization (SL202)."""

from functools import lru_cache


class Catalog:
    def __init__(self, repos):
        self.repos = repos
        self._providers_cache = {}
        self._cache_epoch = -1  # marker ties the memo to repo content

    def providers(self, name):
        if self._cache_epoch != self.repos.epoch:
            self._providers_cache.clear()
            self._cache_epoch = self.repos.epoch
        if name not in self._providers_cache:
            self._providers_cache[name] = self.repos.providers_of(name)
        return self._providers_cache[name]


@lru_cache(maxsize=256)
def resolve(name, epoch):  # epoch in the key: stale hits impossible
    return (name.lower(), epoch)

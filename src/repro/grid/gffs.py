"""GFFS: the Genesis II Global Federated File System (Table 2, XSEDE Tools).

GFFS presents one virtual namespace (``/resources/...``) whose subtrees are
backed by directories on member clusters.  A researcher's campus data and
their XSEDE allocation appear side by side; reads and writes route to the
owning host.

The model: a :class:`GffsNamespace` maps virtual prefixes to
``(host, local path)`` exports.  Longest-prefix routing, like the real grid
namespace.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..distro.host import Host
from .gridftp import GridError

__all__ = ["GffsExport", "GffsNamespace"]


@dataclass(frozen=True)
class GffsExport:
    """One grid-visible subtree."""

    virtual_prefix: str   # e.g. /resources/xsede.org/campus-lf/home
    host: Host
    local_path: str

    def __post_init__(self) -> None:
        if not self.virtual_prefix.startswith("/"):
            raise GridError(f"virtual prefix must be absolute: {self.virtual_prefix}")


class GffsNamespace:
    """The federated namespace."""

    def __init__(self) -> None:
        self._exports: dict[str, GffsExport] = {}

    def link(self, virtual_prefix: str, host: Host, local_path: str) -> GffsExport:
        """Export ``host:local_path`` at ``virtual_prefix``.

        The host must run the GFFS tooling (``gffs-ls`` from the gffs
        package) and the local path must exist.
        """
        prefix = virtual_prefix.rstrip("/")
        if not host.has_command("gffs-ls"):
            raise GridError(
                f"{host.name}: gffs is not installed (XSEDE Tools category)"
            )
        if not host.fs.is_dir(local_path):
            raise GridError(f"{host.name}: no such directory {local_path}")
        if prefix in self._exports:
            raise GridError(f"namespace already links {prefix}")
        export = GffsExport(prefix, host, local_path.rstrip("/") or "/")
        self._exports[prefix] = export
        return export

    def unlink(self, virtual_prefix: str) -> None:
        prefix = virtual_prefix.rstrip("/")
        if prefix not in self._exports:
            raise GridError(f"namespace does not link {prefix}")
        del self._exports[prefix]

    def exports(self) -> list[GffsExport]:
        return [self._exports[p] for p in sorted(self._exports)]

    def _route(self, virtual_path: str) -> tuple[GffsExport, str]:
        """Longest-prefix match to an export and its local path."""
        if not virtual_path.startswith("/"):
            raise GridError(f"grid paths are absolute: {virtual_path!r}")
        candidates = [
            prefix
            for prefix in self._exports
            if virtual_path == prefix or virtual_path.startswith(prefix + "/")
        ]
        if not candidates:
            raise GridError(f"no grid resource backs {virtual_path}")
        prefix = max(candidates, key=len)
        export = self._exports[prefix]
        suffix = virtual_path[len(prefix):]
        return export, (export.local_path + suffix) or "/"

    # -- the grid client verbs ---------------------------------------------------

    def ls(self, virtual_path: str) -> list[str]:
        """List a grid directory."""
        if virtual_path.rstrip("/") == "" or any(
            p.startswith(virtual_path.rstrip("/") + "/") for p in self._exports
        ):
            # listing above/at the export level shows linked names
            base = virtual_path.rstrip("/")
            names = set()
            for prefix in self._exports:
                if prefix.startswith(base + "/") or base == "":
                    rest = prefix[len(base) + 1 :] if base else prefix[1:]
                    names.add(rest.split("/", 1)[0])
            if names:
                return sorted(names)
        export, local = self._route(virtual_path)
        return export.host.fs.listdir(local)

    def read(self, virtual_path: str) -> str:
        export, local = self._route(virtual_path)
        return export.host.fs.read(local)

    def write(self, virtual_path: str, content: str) -> None:
        export, local = self._route(virtual_path)
        export.host.fs.write(local, content)

    def exists(self, virtual_path: str) -> bool:
        try:
            export, local = self._route(virtual_path)
        except GridError:
            return False
        return export.host.fs.exists(local)

    def copy(self, src_virtual: str, dst_virtual: str) -> int:
        """Grid-side copy between (possibly different) backing hosts;
        returns bytes copied."""
        content = self.read(src_virtual)
        self.write(dst_virtual, content)
        return len(content.encode())

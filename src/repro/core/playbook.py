"""Playbooks: "easily document the approach to make it reproducible" (§8).

"Using the Limulus HPC200, one can take the running cluster, and with XNIT
add software, change the schedulers, and easily document the approach to
make it reproducible."  A :class:`Playbook` is that documentation as data:
an ordered list of administrative actions recorded while they are performed
on one cluster, replayable verbatim on another.

:class:`RecordingSession` wraps a yum client and writes each action both
into the playbook and onto the host; :func:`replay` applies a playbook to a
fresh client and returns the per-step results — the reproducibility test is
that two machines driven by the same playbook converge
(:func:`repro.core.compatibility.diff_environments`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..errors import ReproError, RpmError
from ..yum.client import YumClient
from ..yum.repository import Repository
from .xnit import setup_via_manual_repo_file, setup_via_repo_rpm

__all__ = ["PlaybookStep", "Playbook", "RecordingSession", "replay"]

_KNOWN_ACTIONS = (
    "setup-repo-rpm",
    "setup-repo-manual",
    "install",
    "update",
    "erase",
)


@dataclass(frozen=True)
class PlaybookStep:
    """One recorded administrative action."""

    action: str
    arguments: tuple[str, ...] = ()
    comment: str = ""

    def __post_init__(self) -> None:
        if self.action not in _KNOWN_ACTIONS:
            raise ReproError(f"unknown playbook action {self.action!r}")

    def render(self) -> str:
        args = " ".join(self.arguments)
        note = f"   # {self.comment}" if self.comment else ""
        return f"{self.action} {args}".rstrip() + note


@dataclass
class Playbook:
    """The recorded approach."""

    title: str
    steps: list[PlaybookStep] = field(default_factory=list)

    def render(self) -> str:
        lines = [f"# Playbook: {self.title}", ""]
        lines += [f"{i + 1:>3}. {s.render()}" for i, s in enumerate(self.steps)]
        return "\n".join(lines)

    # -- persistence (the "document" part) -----------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "title": self.title,
                "steps": [
                    {
                        "action": s.action,
                        "arguments": list(s.arguments),
                        "comment": s.comment,
                    }
                    for s in self.steps
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "Playbook":
        try:
            data = json.loads(text)
            steps = [
                PlaybookStep(
                    action=s["action"],
                    arguments=tuple(s["arguments"]),
                    comment=s.get("comment", ""),
                )
                for s in data["steps"]
            ]
            return cls(title=data["title"], steps=steps)
        except (KeyError, TypeError, json.JSONDecodeError) as exc:
            raise ReproError(f"malformed playbook JSON: {exc}") from exc


class RecordingSession:
    """Perform-and-record against one client."""

    def __init__(self, client: YumClient, repo: Repository, *, title: str) -> None:
        self.client = client
        self.repo = repo
        self.playbook = Playbook(title=title)

    def _record(self, action: str, *arguments: str, comment: str = "") -> None:
        self.playbook.steps.append(
            PlaybookStep(action=action, arguments=tuple(arguments), comment=comment)
        )

    def setup_repo_rpm(self) -> None:
        setup_via_repo_rpm(self.client, self.repo)
        self._record("setup-repo-rpm", comment="xsede-release drops xsede.repo")

    def setup_repo_manual(self) -> None:
        setup_via_manual_repo_file(self.client, self.repo)
        self._record(
            "setup-repo-manual",
            comment="yum-plugin-priorities + hand-written xsede.repo",
        )

    def install(self, *names: str, comment: str = "") -> None:
        self.client.install(*names)
        self._record("install", *names, comment=comment)

    def update(self, *names: str, comment: str = "") -> None:
        self.client.update(*names)
        self._record("update", *names, comment=comment)

    def erase(self, *names: str, comment: str = "") -> None:
        self.client.erase(*names)
        self._record("erase", *names, comment=comment)


def replay(
    playbook: Playbook, client: YumClient, repo: Repository
) -> list[tuple[PlaybookStep, str]]:
    """Apply a playbook to another cluster's client.

    Returns ``(step, outcome)`` pairs; any failing step aborts with the
    step identified (a reproducible document must not half-apply silently).
    """
    outcomes: list[tuple[PlaybookStep, str]] = []
    for index, step in enumerate(playbook.steps, 1):
        try:
            if step.action == "setup-repo-rpm":
                setup_via_repo_rpm(client, repo)
                outcome = "repository configured (rpm path)"
            elif step.action == "setup-repo-manual":
                setup_via_manual_repo_file(client, repo)
                outcome = "repository configured (manual path)"
            elif step.action == "install":
                result = client.install(*step.arguments)
                outcome = result.summary()
            elif step.action == "update":
                result = client.update(*step.arguments)
                outcome = result.summary() if result else "already current"
            elif step.action == "erase":
                result = client.erase(*step.arguments)
                outcome = result.summary()
            else:  # pragma: no cover - constructor guards this
                raise ReproError(f"unknown action {step.action!r}")
        except RpmError as exc:
            raise ReproError(
                f"playbook {playbook.title!r} failed at step {index} "
                f"({step.render()}): {exc}"
            ) from exc
        outcomes.append((step, outcome))
    return outcomes

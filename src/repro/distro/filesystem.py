"""A simulated POSIX-ish filesystem tree.

The RPM engine tracks the files each package owns; XSEDE "run-alike"
compatibility (Table 2) is partly about *where* libraries and binaries land
("libraries are in the same place as on XSEDE clusters").  The tree is a
plain dict of normalised absolute paths to :class:`FsNode` records — no real
I/O is ever performed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator

from ..errors import FilesystemError

__all__ = ["FileKind", "FsNode", "Filesystem", "normpath", "parent_dirs"]


class FileKind(str, Enum):
    """Node type in the simulated tree."""

    FILE = "file"
    DIRECTORY = "dir"
    SYMLINK = "symlink"


def normpath(path: str) -> str:
    """Normalise an absolute path: collapse ``//``, ``.`` and trailing ``/``.

    Rejects relative paths and any ``..`` component — the simulation has no
    working directory, so a relative path is always a caller bug, and ``..``
    would complicate ownership tracking for no modelling benefit.
    """
    if not path.startswith("/"):
        raise FilesystemError(f"path must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p not in ("", ".")]
    if ".." in parts:
        raise FilesystemError(f"'..' components are not supported: {path!r}")
    return "/" + "/".join(parts)


def parent_dirs(path: str) -> Iterator[str]:
    """Yield every ancestor directory of ``path``, root first (excluding /)."""
    parts = [p for p in path.split("/") if p]
    acc = ""
    for part in parts[:-1]:
        acc += "/" + part
        yield acc


@dataclass
class FsNode:
    """One entry in the tree."""

    path: str
    kind: FileKind
    owner_package: str | None = None  # RPM that owns this node, if any
    content: str = ""
    mode: int = 0o644
    target: str = ""  # symlink target

    @property
    def executable(self) -> bool:
        return bool(self.mode & 0o111)


class Filesystem:
    """The simulated filesystem of one host.

    Invariants (enforced, and property-tested):

    * every stored key is a normalised absolute path;
    * every file's ancestors exist and are directories;
    * removing a package's files never leaves orphan children.
    """

    def __init__(self) -> None:
        self._nodes: dict[str, FsNode] = {}
        #: network mounts: mount point -> (remote filesystem, remote path).
        #: Paths at/under a mount point are served by the remote tree —
        #: this is how the cluster's NFS /home works (see repro.distro.nfs).
        self._mounts: dict[str, tuple["Filesystem", str]] = {}
        self.mkdir("/", exist_ok=True)

    # -- mounts ---------------------------------------------------------------

    def mount(self, mount_point: str, source_fs: "Filesystem", source_path: str) -> None:
        """Attach a remote subtree at ``mount_point`` (NFS-style).

        The mount point must be an existing, empty local directory; the
        source path must be a directory on the remote filesystem.  Nested
        mounts are rejected for simplicity.
        """
        key = normpath(mount_point)
        src = normpath(source_path)
        if source_fs is self:
            raise FilesystemError("cannot mount a filesystem on itself")
        for existing in self._mounts:
            if key == existing or key.startswith(existing + "/") or existing.startswith(key + "/"):
                raise FilesystemError(
                    f"mount at {key} overlaps existing mount at {existing}"
                )
        if not self.is_dir(key):
            raise FilesystemError(f"mount point is not a directory: {key}")
        if self.listdir(key):
            raise FilesystemError(f"mount point is not empty: {key}")
        if not source_fs.is_dir(src):
            raise FilesystemError(f"remote export is not a directory: {src}")
        self._mounts[key] = (source_fs, src)

    def unmount(self, mount_point: str) -> None:
        """Detach a mount."""
        key = normpath(mount_point)
        if key not in self._mounts:
            raise FilesystemError(f"not a mount point: {key}")
        del self._mounts[key]

    def mounts(self) -> dict[str, str]:
        """The mount table: mount point -> remote path (for /etc/mtab views)."""
        return {mp: src for mp, (_fs, src) in sorted(self._mounts.items())}

    def _route(self, path: str) -> tuple["Filesystem", str]:
        """Translate a path through the mount table."""
        key = normpath(path)
        for mount_point, (remote, remote_root) in self._mounts.items():
            if key == mount_point:
                return remote, remote_root
            if key.startswith(mount_point + "/"):
                return remote, remote_root + key[len(mount_point):]
        return self, key

    # -- queries -----------------------------------------------------------

    def exists(self, path: str) -> bool:
        """True if ``path`` exists (any kind)."""
        fs, key = self._route(path)
        return key in fs._nodes

    def get(self, path: str) -> FsNode:
        """Fetch a node, raising :class:`FilesystemError` if absent."""
        fs, key = self._route(path)
        try:
            return fs._nodes[key]
        except KeyError:
            raise FilesystemError(f"no such file or directory: {key}") from None

    def is_dir(self, path: str) -> bool:
        """True if ``path`` exists and is a directory."""
        fs, key = self._route(path)
        node = fs._nodes.get(key)
        return node is not None and node.kind is FileKind.DIRECTORY

    def listdir(self, path: str) -> list[str]:
        """Immediate children names of a directory, sorted."""
        fs, key = self._route(path)
        if not fs.is_dir(key):
            raise FilesystemError(f"not a directory: {key}")
        prefix = key.rstrip("/") + "/"
        names = set()
        for other in fs._nodes:
            if other != key and other.startswith(prefix):
                rest = other[len(prefix):]
                names.add(rest.split("/", 1)[0])
        return sorted(names)

    def walk(self) -> Iterator[FsNode]:
        """All nodes in path order."""
        for key in sorted(self._nodes):
            yield self._nodes[key]

    def owned_by(self, package: str) -> list[str]:
        """Paths owned by an RPM, sorted."""
        return sorted(
            p for p, n in self._nodes.items() if n.owner_package == package
        )

    def read(self, path: str) -> str:
        """Content of a regular file (symlinks are followed one hop)."""
        node = self.get(path)
        if node.kind is FileKind.SYMLINK:
            node = self.get(node.target)
        if node.kind is not FileKind.FILE:
            raise FilesystemError(f"not a regular file: {node.path}")
        return node.content

    # -- mutations ----------------------------------------------------------

    def mkdir(self, path: str, *, exist_ok: bool = False, owner: str | None = None) -> FsNode:
        """Create a directory (and its ancestors, like ``mkdir -p``)."""
        fs, key = self._route(path)
        if fs is not self:
            return fs.mkdir(key, exist_ok=exist_ok, owner=owner)
        existing = self._nodes.get(key)
        if existing is not None:
            if existing.kind is not FileKind.DIRECTORY:
                raise FilesystemError(f"exists and is not a directory: {key}")
            if not exist_ok:
                raise FilesystemError(f"directory exists: {key}")
            return existing
        for ancestor in parent_dirs(key):
            anode = self._nodes.get(ancestor)
            if anode is None:
                self._nodes[ancestor] = FsNode(ancestor, FileKind.DIRECTORY)
            elif anode.kind is not FileKind.DIRECTORY:
                raise FilesystemError(f"ancestor is not a directory: {ancestor}")
        node = FsNode(key, FileKind.DIRECTORY, owner_package=owner)
        self._nodes[key] = node
        return node

    def write(
        self,
        path: str,
        content: str = "",
        *,
        owner: str | None = None,
        mode: int = 0o644,
        overwrite: bool = True,
    ) -> FsNode:
        """Create or replace a regular file, creating ancestors as needed."""
        fs, key = self._route(path)
        if fs is not self:
            return fs.write(key, content, owner=owner, mode=mode, overwrite=overwrite)
        if key == "/":
            raise FilesystemError("cannot write to /")
        existing = self._nodes.get(key)
        if existing is not None:
            if existing.kind is FileKind.DIRECTORY:
                raise FilesystemError(f"is a directory: {key}")
            if not overwrite:
                raise FilesystemError(f"file exists: {key}")
        for ancestor in parent_dirs(key):
            if ancestor not in self._nodes:
                self._nodes[ancestor] = FsNode(ancestor, FileKind.DIRECTORY)
            elif self._nodes[ancestor].kind is not FileKind.DIRECTORY:
                raise FilesystemError(f"ancestor is not a directory: {ancestor}")
        node = FsNode(key, FileKind.FILE, owner_package=owner, content=content, mode=mode)
        self._nodes[key] = node
        return node

    def symlink(self, path: str, target: str, *, owner: str | None = None) -> FsNode:
        """Create a symlink at ``path`` pointing at ``target``."""
        fs, key = self._route(path)
        if fs is not self:
            return fs.symlink(key, target, owner=owner)
        tgt = normpath(target)
        if key in self._nodes:
            raise FilesystemError(f"file exists: {key}")
        for ancestor in parent_dirs(key):
            if ancestor not in self._nodes:
                self._nodes[ancestor] = FsNode(ancestor, FileKind.DIRECTORY)
        node = FsNode(key, FileKind.SYMLINK, owner_package=owner, target=tgt)
        self._nodes[key] = node
        return node

    def remove(self, path: str) -> None:
        """Remove a file/symlink, or an *empty* directory."""
        fs, key = self._route(path)
        if fs is not self:
            fs.remove(key)
            return
        node = self.get(key)
        if node.kind is FileKind.DIRECTORY and self.listdir(key):
            raise FilesystemError(f"directory not empty: {key}")
        if key == "/":
            raise FilesystemError("cannot remove /")
        del self._nodes[key]

    def remove_owned(self, package: str) -> int:
        """Remove every LOCAL node owned by ``package``; returns the count.

        Package payloads are always local (RPMs never install onto NFS), so
        mounts are intentionally not traversed here, nor by :meth:`walk` /
        :meth:`owned_by`.

        Directories owned by the package are removed only if they end up
        empty (other packages may still have files there) — mirroring RPM's
        shared-directory semantics.
        """
        owned = self.owned_by(package)
        removed = 0
        # Files and symlinks first, then directories deepest-first.
        files = [p for p in owned if self._nodes[p].kind is not FileKind.DIRECTORY]
        dirs = sorted(
            (p for p in owned if self._nodes[p].kind is FileKind.DIRECTORY),
            key=lambda p: -p.count("/"),
        )
        for p in files:
            del self._nodes[p]
            removed += 1
        for p in dirs:
            if not self.listdir(p):
                del self._nodes[p]
                removed += 1
        return removed

    def __len__(self) -> int:
        return len(self._nodes)

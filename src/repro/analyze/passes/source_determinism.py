"""simlint determinism sanitizer (``SL1xx``): the source must not read
ambient nondeterminism.

The whole reproduction rests on three runtime guarantees — byte-identical
same-seed traces (docs/SIM.md), state-verified checkpoint replay
(docs/RECOVERY.md), and epoch-keyed memo caches (docs/PERF.md).  All three
silently break the moment simulation code reads wall-clock time, consults
unseeded process-global randomness, or iterates a hash-ordered container
into the trace stream.  The runtime can only catch that *after* two runs
diverge; these rules catch it at review time.

Rules:

* ``SL101`` — wall-clock read (``time.time``/``monotonic``/``perf_counter``
  family, ``datetime.now``/``utcnow``/``today``).  Simulated code must take
  time from ``kernel.now_s`` / a :class:`~repro.sim.clock.Timeline`.
* ``SL102`` — process-global or unseeded randomness (module-level
  ``random.*``, ``numpy.random.*`` legacy API, ``random.Random()`` /
  ``numpy.random.default_rng()`` with no seed).  Use the kernel's seeded
  ``random.Random(seed)``.
* ``SL103`` — ambient environment read (``os.environ``/``getenv``,
  ``os.urandom``, ``uuid.uuid1/uuid4``, ``secrets``, hostname/pid probes).
* ``SL104`` — iteration over an unordered (set-typed) value that flows into
  ``TraceBus.emit`` or kernel event scheduling, decided by the conservative
  intraprocedural dataflow in :mod:`._pysource` — not a call-site grep:
  locals assigned from set expressions, set-typed ``self`` attributes, and
  same-file set-returning helpers all count, and ``sorted(...)`` launders
  any of them back to deterministic.
"""

from __future__ import annotations

import ast

from ..diagnostic import Severity
from ..registry import rule
from ._pysource import ImportMap, UnorderedAnalysis, iter_functions

__all__ = ["run"]

SL000 = rule(
    "SL000",
    "source",
    Severity.ERROR,
    "source file cannot be read or parsed",
    "fix the syntax error / path so the file parses",
)
SL101 = rule(
    "SL101",
    "source",
    Severity.ERROR,
    "wall-clock read in simulation source",
    "take time from kernel.now_s / a Timeline (docs/SIM.md); wall-clock "
    "reads make same-seed runs diverge",
)
SL102 = rule(
    "SL102",
    "source",
    Severity.ERROR,
    "unseeded or process-global randomness",
    "construct random.Random(seed) (the kernel owns one) instead of the "
    "module-level random API; seed every default_rng()",
)
SL103 = rule(
    "SL103",
    "source",
    Severity.ERROR,
    "ambient environment read in simulation source",
    "thread configuration through explicit parameters; os.environ/urandom/"
    "uuid4 reads differ across hosts and runs",
)
SL104 = rule(
    "SL104",
    "source",
    Severity.ERROR,
    "unordered iteration flows into the trace bus or event scheduling",
    "iterate sorted(...) over the set (or keep a list); hash order changes "
    "emit/schedule order and breaks byte-identical traces",
)

#: Wall-clock entry points (SL101).
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Module-level random API (SL102) — everything that touches the hidden
#: process-global Mersenne state.
_GLOBAL_RANDOM = frozenset(
    {
        "random." + name
        for name in (
            "seed", "random", "randint", "randrange", "choice", "choices",
            "shuffle", "sample", "uniform", "gauss", "normalvariate",
            "getrandbits", "betavariate", "triangular", "expovariate",
            "vonmisesvariate", "paretovariate", "weibullvariate",
        )
    }
    | {
        "numpy.random." + name
        for name in (
            "rand", "randn", "randint", "random", "random_sample", "choice",
            "shuffle", "permutation", "seed", "normal", "uniform",
        )
    }
    | {"random.SystemRandom"}
)

#: RNG constructors that are fine *with* a seed argument (SL102).
_SEEDABLE_CTORS = frozenset({"random.Random", "numpy.random.default_rng"})

#: Ambient environment probes (SL103).  ``os.environ`` is matched as an
#: attribute access, not just a call.
_ENV_CALLS = frozenset(
    {
        "os.getenv",
        "os.urandom",
        "os.getpid",
        "os.getlogin",
        "uuid.uuid1",
        "uuid.uuid4",
        "socket.gethostname",
        "platform.node",
        "secrets.token_bytes",
        "secrets.token_hex",
        "secrets.token_urlsafe",
        "secrets.randbelow",
        "secrets.choice",
    }
)
_ENV_ATTRS = frozenset({"os.environ"})

#: Call-attribute names that publish ordering to the shared timeline:
#: trace emission and kernel event scheduling.
_ORDER_SINKS = frozenset({"emit", "at", "after", "every", "schedule"})


def _call_dotted(imports: ImportMap, node: ast.Call) -> str | None:
    return imports.resolve(node.func)


def run(tree: ast.Module, path: str, emit) -> None:
    """Run the SL1xx rules over one parsed source file."""
    imports = ImportMap(tree)

    for node in ast.walk(tree):
        where = f"{path}:{getattr(node, 'lineno', 0)}"
        if isinstance(node, ast.Call):
            name = _call_dotted(imports, node)
            if name is None:
                continue
            if name in _WALL_CLOCK:
                emit("SL101", f"call to {name}()", location=where)
            elif name in _GLOBAL_RANDOM:
                emit("SL102", f"call to module-level {name}()", location=where)
            elif name in _SEEDABLE_CTORS and not node.args and not node.keywords:
                emit(
                    "SL102",
                    f"{name}() constructed without a seed",
                    location=where,
                )
            elif name in _ENV_CALLS:
                emit("SL103", f"call to {name}()", location=where)
        elif isinstance(node, ast.Attribute):
            name = imports.resolve(node)
            if name in _ENV_ATTRS:
                emit("SL103", f"read of {name}", location=where)

    # SL104: unordered iteration feeding an order sink.
    flow = UnorderedAnalysis(tree)
    seen: set[int] = set()
    for fn in iter_functions(tree):
        for loop in flow.unordered_loops(fn):
            if id(loop) in seen:
                continue
            seen.add(id(loop))
            sink = _order_sink_in(loop)
            if sink is not None:
                emit(
                    "SL104",
                    f"loop over unordered value calls .{sink}() "
                    f"(in {fn.name})",
                    location=f"{path}:{loop.lineno}",
                )


def _order_sink_in(loop: ast.For) -> str | None:
    """Name of the first trace/scheduling call inside the loop body."""
    for stmt in loop.body + loop.orelse:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _ORDER_SINKS
            ):
                return node.func.attr
    return None

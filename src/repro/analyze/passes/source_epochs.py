"""simlint cache-coherence checker (``SL2xx``): learn and enforce the epoch
protocol.

PR 5's hot paths (``Repository``/``RepoSet``/``RpmDatabase`` capability
indexes, the depsolver memo) are sound only because of a convention stated
in docs/PERF.md: *every* method that changes indexed content bumps the
owner's monotonic epoch (``self._epoch += 1`` / ``self.revision += 1``)
before returning, and every memo keys its validity on an epoch or content
fingerprint.  A mutator that skips the bump serves stale index hits — no
test fails until a workload happens to interleave exactly wrong.

The pass *learns* the protocol per class instead of hard-coding field
names: a class that bumps an epoch counter somewhere is an epoch-protocol
class; the container attributes those bumping methods mutate are its
*indexed fields*.  Then:

* ``SL201`` — a method of an epoch-protocol class mutates an indexed field
  on some path to a normal exit that never bumps the epoch.  The check is
  path-sensitive over ``if``/``for``/``while``/``try`` (a bump that only
  happens in one branch does not cover the other) and inlines same-class
  helper calls one summary deep, so ``_index_add``-style private helpers
  called from bumping mutators do not false-positive.  Paths that end in
  ``raise`` are exempt — transactional code unwinds before publishing.
* ``SL202`` — memoisation not tied to an epoch: a ``functools.lru_cache`` /
  ``functools.cache`` on a function whose signature carries no epoch/
  fingerprint-like key, or a ``*_cache``/``*_memo`` dict attribute in a
  class that has no ``*_epoch`` validity marker to compare against.
"""

from __future__ import annotations

import ast

from ..diagnostic import Severity
from ..registry import rule
from ._pysource import ImportMap, self_attr

__all__ = ["run", "epoch_verdicts"]

SL201 = rule(
    "SL201",
    "source",
    Severity.ERROR,
    "indexed field mutated on a path that skips the epoch bump",
    "bump the class's epoch counter (self._epoch += 1 / self.revision += 1) "
    "on every path that mutates indexed content — stale-index reads are "
    "silent (docs/PERF.md)",
)
SL202 = rule(
    "SL202",
    "source",
    Severity.ERROR,
    "memo cache is not tied to an epoch or content fingerprint",
    "key the cache on an epoch/fingerprint (or use RepoSet.cache(), which "
    "auto-clears on epoch change); an unkeyed memo survives mutation",
)

#: Attribute names that hold a class's mutation epoch.
_EPOCH_NAMES = frozenset({"_epoch", "epoch", "revision", "_revision"})
#: Container methods that mutate the receiver in place.
_MUTATORS = frozenset(
    {
        "append", "add", "remove", "pop", "popitem", "clear", "setdefault",
        "update", "insert", "extend", "discard", "sort", "reverse",
    }
)
#: Parameter names that make an ``lru_cache`` epoch-sound: the epoch (or a
#: content digest) is part of the memo key, so stale entries can't be hit.
_EPOCH_PARAMS = frozenset(
    {"epoch", "revision", "fingerprint", "checksum", "key", "etag"}
)


# ---------------------------------------------------------------------------
# per-statement classification


def _is_bump(stmt: ast.stmt) -> bool:
    """``self.<epoch> += n`` or ``self.<epoch> = self.<epoch> + n``."""
    if isinstance(stmt, ast.AugAssign) and isinstance(stmt.op, ast.Add):
        attr = self_attr(stmt.target)
        return attr in _EPOCH_NAMES
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        attr = self_attr(stmt.targets[0])
        if attr in _EPOCH_NAMES and isinstance(stmt.value, ast.BinOp):
            left = self_attr(stmt.value.left)
            return left == attr and isinstance(stmt.value.op, ast.Add)
    return False


def _is_validity_sync(stmt: ast.stmt) -> bool:
    """``self.<marker>_epoch = <expr>`` — a cache refresher recording the
    epoch it rebuilt against (``self._index_epoch = self.revision``).
    Rebuild methods are coherent by construction, not mutations."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        attr = self_attr(stmt.targets[0])
        return attr is not None and attr.endswith("_epoch") and attr not in _EPOCH_NAMES
    return False


def _mutated_field(stmt: ast.stmt) -> str | None:
    """Indexed-field name a statement mutates in place, if any.

    Covers subscript writes/deletes/augments (``self._packages[k] = v``),
    in-place container method calls (``self._packages.setdefault(...)``),
    and whole-field reassignment outside ``__init__`` (callers decide
    whether the field is *indexed*; this just reports the write).
    """
    # self.F[k] = v / self.F[k] += v
    targets: list[ast.expr] = []
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, ast.AugAssign):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = stmt.targets
    for target in targets:
        if isinstance(target, ast.Subscript):
            attr = self_attr(target.value)
            if attr is not None:
                return attr
    # self.F.append(...) — any in-place mutator call, also nested in an
    # expression statement's value.
    for node in ast.walk(stmt):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATORS
        ):
            attr = self_attr(node.func.value)
            if attr is not None:
                return attr
    return None


def _reassigned_field(stmt: ast.stmt) -> str | None:
    """Whole-field reassignment (``self.F = <expr>``), epoch fields aside."""
    if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
        attr = self_attr(stmt.targets[0])
        if (
            attr is not None
            and not attr.endswith("_epoch")
            and attr not in _EPOCH_NAMES
        ):
            return attr
    return None


def _helper_called(stmt: ast.stmt) -> list[str]:
    """Names of same-class methods a statement calls (``self.helper()``)."""
    out = []
    for node in ast.walk(stmt):
        if isinstance(node, ast.Call):
            attr = self_attr(node.func)
            if attr is not None:
                out.append(attr)
    return out


# ---------------------------------------------------------------------------
# path-sensitive walk

#: A method's transfer function on the "pending unpublished mutation" bit:
#: entry state (False/True) → set of possible states at normal exit
#: (fall-through or ``return``).  Paths ending in ``raise`` contribute
#: nothing — an exceptional exit never publishes the mutated state.
_Summary = dict


class _ClassModel:
    """Everything SL201 learns about one class."""

    def __init__(self, node: ast.ClassDef) -> None:
        self.node = node
        self.methods: dict[str, ast.FunctionDef] = {
            f.name: f for f in node.body if isinstance(f, ast.FunctionDef)
        }
        self.bump_methods = {
            name
            for name, fn in self.methods.items()
            if any(_is_bump(s) for s in ast.walk(fn))
        }
        self.is_epoch_class = bool(self.bump_methods)
        self.indexed_fields = self._learn_indexed_fields()
        self._summaries: dict[str, _Summary] = {}

    def _learn_indexed_fields(self) -> frozenset[str]:
        """Container attrs that bump-carrying methods mutate in place."""
        fields: set[str] = set()
        for name in self.bump_methods:
            for stmt in ast.walk(self.methods[name]):
                field = _mutated_field(stmt)
                if field is not None:
                    fields.add(field)
        return frozenset(fields)

    # -- the walk -----------------------------------------------------------

    def summary(self, name: str, _stack: tuple = ()) -> _Summary:
        """Pending-bit transfer function of a method (memoised)."""
        cached = self._summaries.get(name)
        if cached is not None:
            return cached
        if name in _stack or name not in self.methods:
            # recursion or unknown: identity
            return {False: {False}, True: {True}}
        fn = self.methods[name]
        out: _Summary = {}
        for entry in (False, True):
            fall, returns, _observed = self._walk(
                fn.body, {entry}, _stack + (name,)
            )
            out[entry] = fall | returns
        self._summaries[name] = out
        return out

    def _apply(self, stmt: ast.stmt, states: set[bool], stack) -> set[bool]:
        """One statement's effect on the set of possible pending states."""
        if _is_bump(stmt) or _is_validity_sync(stmt):
            return {False}
        field = _mutated_field(stmt)
        if field is not None and field in self.indexed_fields:
            return {True}
        field = _reassigned_field(stmt)
        if field is not None and field in self.indexed_fields:
            return {True}
        new_states = states
        for helper in _helper_called(stmt):
            if helper in self.methods:
                summary = self.summary(helper, stack)
                new_states = {
                    s for entry in new_states for s in summary[entry]
                }
        return new_states

    def _walk(
        self, body: list[ast.stmt], states: set[bool], stack
    ) -> tuple[set[bool], set[bool], set[bool]]:
        """Returns (fall-through states, return states, observed states).

        ``observed`` is the union of every state the walk saw at a
        statement *entry* — the states an exception raised by that
        statement would propagate from.  A raising statement's own effect
        is treated as not-yet-applied (``del d[k]`` that raises mutated
        nothing), so the post-state of the final statement is deliberately
        not observed.
        """
        returns: set[bool] = set()
        observed: set[bool] = set(states)
        for stmt in body:
            if not states:
                break
            observed |= states
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # a nested def only defines; it does not execute here
            if isinstance(stmt, ast.Return):
                returns |= states
                return set(), returns, observed
            if isinstance(stmt, ast.Raise):
                # exceptional exit: the mutation never gets published as a
                # committed state; transaction layers roll back.
                return set(), returns, observed
            if isinstance(stmt, ast.If):
                then_states, r1, o1 = self._walk(stmt.body, set(states), stack)
                else_states, r2, o2 = self._walk(stmt.orelse, set(states), stack)
                states = then_states | else_states
                returns |= r1 | r2
                observed |= o1 | o2
            elif isinstance(stmt, (ast.For, ast.While)):
                once, r1, o1 = self._walk(stmt.body, set(states), stack)
                skip, r2, o2 = self._walk(stmt.orelse, set(states) | once, stack)
                states = states | once | skip
                returns |= r1 | r2
                observed |= o1 | o2
            elif isinstance(stmt, ast.Try):
                body_states, r1, body_observed = self._walk(
                    stmt.body, set(states), stack
                )
                after = set(body_states)
                returns |= r1
                observed |= body_observed
                for handler in stmt.handlers:
                    # the handler may fire from any statement boundary the
                    # body reached — start it from every observed state
                    h_states, rh, oh = self._walk(
                        handler.body, set(body_observed), stack
                    )
                    after |= h_states
                    returns |= rh
                    observed |= oh
                if stmt.finalbody:
                    after, rf, of = self._walk(stmt.finalbody, after, stack)
                    returns |= rf
                    observed |= of
                states = after
            elif isinstance(stmt, ast.With):
                states, r1, o1 = self._walk(stmt.body, states, stack)
                returns |= r1
                observed |= o1
            else:
                states = self._apply(stmt, states, stack)
        return states, returns, observed

    def unbumped_mutators(self) -> list[tuple[str, int]]:
        """(method name, lineno) for every method SL201 should flag."""
        out = []
        called_by_bumpers: set[str] = set()
        for name in self.bump_methods:
            for stmt in ast.walk(self.methods[name]):
                called_by_bumpers.update(_helper_called(stmt))
        for name, fn in self.methods.items():
            if name in ("__init__", "__new__", "__post_init__"):
                continue
            if True not in self.summary(name)[False]:
                continue
            if name.startswith("_") and name in called_by_bumpers:
                # private helper whose publishing callers own the bump
                # (``_index_add`` called from ``_install_unchecked``)
                continue
            out.append((name, fn.lineno))
        return out


def epoch_verdicts(tree: ast.Module) -> dict[str, list[str]]:
    """Class name → methods SL201 flags.  Exposed for the hypothesis
    agreement test (tests/test_simlint_property.py), which checks the
    static verdict against actually executing generated mutators."""
    out: dict[str, list[str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            model = _ClassModel(node)
            if model.is_epoch_class and model.indexed_fields:
                out[node.name] = [name for name, _ in model.unbumped_mutators()]
    return out


# ---------------------------------------------------------------------------
# SL202: epoch-free memoisation


def _lru_cache_findings(tree: ast.Module, imports: ImportMap):
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            name = imports.resolve(target)
            if name not in (
                "functools.lru_cache",
                "functools.cache",
                "lru_cache",
                "cache",
            ):
                continue
            params = {a.arg for a in node.args.args + node.args.kwonlyargs}
            if not params & _EPOCH_PARAMS:
                yield node, name


def _unkeyed_memo_attrs(cls: ast.ClassDef):
    """``*_cache``/``*_memo`` dict attrs in classes with no epoch marker."""
    init = next(
        (f for f in cls.body if isinstance(f, ast.FunctionDef) and f.name == "__init__"),
        None,
    )
    if init is None:
        return
    memo_attrs: list[tuple[str, int]] = []
    has_marker = False
    for stmt in ast.walk(init):
        targets: list[ast.expr] = []
        value = None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        for target in targets:
            attr = self_attr(target)
            if attr is None:
                continue
            if attr.endswith("_epoch") or attr in _EPOCH_NAMES:
                has_marker = True
            elif attr.endswith(("_cache", "_memo")) and _is_dict_expr(value):
                memo_attrs.append((attr, stmt.lineno))
    if not has_marker:
        yield from memo_attrs


def _is_dict_expr(node: ast.expr | None) -> bool:
    if isinstance(node, (ast.Dict, ast.DictComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "dict"
    )


def run(tree: ast.Module, path: str, emit) -> None:
    """Run the SL2xx rules over one parsed source file."""
    imports = ImportMap(tree)

    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        model = _ClassModel(node)
        if model.is_epoch_class and model.indexed_fields:
            for name, lineno in model.unbumped_mutators():
                emit(
                    "SL201",
                    f"{node.name}.{name} mutates indexed state "
                    f"({', '.join(sorted(model.indexed_fields))}) on a path "
                    f"without an epoch bump",
                    location=f"{path}:{lineno}",
                )
        for attr, lineno in _unkeyed_memo_attrs(node):
            emit(
                "SL202",
                f"{node.name}.{attr} is a memo dict with no *_epoch validity "
                f"marker in the class",
                location=f"{path}:{lineno}",
            )

    for fn, deco_name in _lru_cache_findings(tree, imports):
        emit(
            "SL202",
            f"@{deco_name} on {fn.name}() has no epoch/fingerprint in its "
            f"key ({', '.join(sorted(_EPOCH_PARAMS))})",
            location=f"{path}:{fn.lineno}",
        )

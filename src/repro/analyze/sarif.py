"""SARIF 2.1.0 rendering for analysis results.

SARIF (Static Analysis Results Interchange Format) is what code-scanning
UIs — GitHub code scanning first among them — ingest natively, so the CI
``source-lint`` gate can upload its findings instead of burying them in a
job log.  One :class:`~repro.analyze.engine.AnalysisResult` becomes one
``run``; baseline-suppressed diagnostics are carried along with an
``external`` suppression record rather than dropped, which is how SARIF
viewers distinguish "accepted debt" from "clean".

Only the fields consumers actually read are emitted: the tool driver with
the referenced rule metadata, and per-result rule id, level, message, and
physical location (parsed from the ``path:line`` convention used by source
diagnostics; definition diagnostics with logical locations like
``node/c01`` are emitted as a logical location instead).
"""

from __future__ import annotations

import json
import re

from .diagnostic import Diagnostic, Severity
from .engine import AnalysisResult
from .registry import RULES

__all__ = ["render_sarif", "SARIF_VERSION", "SARIF_SCHEMA_URI"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"

#: severity -> SARIF result level
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

#: ``path:line`` — the location convention source passes emit.
_PHYSICAL = re.compile(r"^(?P<uri>[^:]+\.py):(?P<line>\d+)$")


def _location(diag: Diagnostic) -> list[dict]:
    if not diag.location:
        return []
    match = _PHYSICAL.match(diag.location)
    if match:
        return [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": match.group("uri")},
                    "region": {"startLine": int(match.group("line"))},
                }
            }
        ]
    return [
        {
            "logicalLocations": [
                {"fullyQualifiedName": diag.location}
            ]
        }
    ]


def _result(diag: Diagnostic, *, suppressed: bool, reason: str = "") -> dict:
    result: dict = {
        "ruleId": diag.code,
        "level": _LEVELS[diag.severity],
        "message": {"text": diag.message},
        "locations": _location(diag),
        "partialFingerprints": {"reproAnalyze/v1": diag.fingerprint},
    }
    if suppressed:
        suppression: dict = {"kind": "external"}
        if reason:
            suppression["justification"] = reason
        result["suppressions"] = [suppression]
    return result


def _rule_metadata(codes: set[str]) -> list[dict]:
    out = []
    for code in sorted(codes):
        declared = RULES.get(code)
        entry: dict = {
            "id": declared.code,
            "shortDescription": {"text": declared.summary},
            "defaultConfiguration": {"level": _LEVELS[declared.severity]},
            "properties": {"subsystem": declared.subsystem},
        }
        if declared.hint:
            entry["help"] = {"text": declared.hint}
        out.append(entry)
    return out


def render_sarif(
    results: list[AnalysisResult],
    *,
    tool_name: str = "simlint",
    suppression_reasons: dict[str, str] | None = None,
) -> str:
    """Render analysis results as a SARIF 2.1.0 document (one run each).

    ``suppression_reasons`` maps diagnostic fingerprints to the baseline
    reason, surfaced as the SARIF suppression justification.
    """
    reasons = suppression_reasons or {}
    runs = []
    for result in results:
        referenced = {d.code for d in result.diagnostics} | {
            d.code for d in result.suppressed
        }
        runs.append(
            {
                "tool": {
                    "driver": {
                        "name": tool_name,
                        "informationUri": "docs/ANALYZE.md",
                        "rules": _rule_metadata(referenced),
                    }
                },
                "automationDetails": {"id": result.definition_name},
                "results": [
                    _result(d, suppressed=False) for d in result.diagnostics
                ]
                + [
                    _result(
                        d,
                        suppressed=True,
                        reason=reasons.get(d.fingerprint, ""),
                    )
                    for d in result.suppressed
                ],
            }
        )
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": runs,
    }
    return json.dumps(document, indent=2)

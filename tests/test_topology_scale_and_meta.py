"""Leaf/spine topology, rocks-run-host fan-out, determinism, and API-hygiene
meta tests."""

import importlib
import pkgutil

import pytest

from repro.cli import ClusterShell
from repro.core import manifest_of_cluster
from repro.core.deployments import TABLE3_SITES, rebuild_site_hardware
from repro.errors import NetworkError
from repro.network import build_cluster_network


class TestLeafSpineTopology:
    @pytest.fixture(scope="class")
    def montana_network(self):
        montana = next(s for s in TABLE3_SITES if "Montana" in s.site)
        machine = rebuild_site_hardware(montana)  # 36 nodes > 24 ports
        return machine, build_cluster_network(machine)

    def test_leaf_spine_engages_beyond_one_switch(self, montana_network):
        machine, net = montana_network
        names = net.fabric.switch_names()
        assert any(n.startswith("private-leaf") for n in names)
        assert "private" in names  # the spine keeps the canonical name

    def test_all_nodes_reachable(self, montana_network):
        machine, net = montana_network
        head = machine.head.name
        for node in machine.compute_nodes:
            assert net.fabric.reachable(head, node.name)

    def test_cross_leaf_costs_more_than_same_leaf(self, montana_network):
        machine, net = montana_network
        names = [n.name for n in machine.compute_nodes]
        # first two computes share the head's leaf; the last sits leaves away
        same_leaf = net.fabric.path_cost(names[0], names[1])
        cross_leaf = net.fabric.path_cost(names[0], names[-1])
        assert cross_leaf.hops > same_leaf.hops
        assert cross_leaf.latency_s > same_leaf.latency_s

    def test_private_hosts_complete(self, montana_network):
        machine, net = montana_network
        assert len(net.private_hosts()) == machine.node_count

    def test_small_cluster_keeps_flat_topology(self, littlefe_network):
        names = littlefe_network.fabric.switch_names()
        assert names == ["private", "public"]

    def test_tiny_switches_rejected(self, littlefe_machine):
        with pytest.raises(NetworkError, match="4 ports"):
            build_cluster_network(littlefe_machine, switch_ports=2)


class TestRocksRunHost:
    def test_fan_out_across_computes(self, xcbc_littlefe):
        shell = ClusterShell(xcbc_littlefe.cluster)
        result = shell.run("rocks run host compute hostname")
        assert result.ok
        lines = result.output.splitlines()
        assert len(lines) == 5
        assert all(line.startswith("compute-0-") for line in lines)
        # the shell returns to where it was
        assert shell.current is xcbc_littlefe.cluster.frontend

    def test_single_host_selector(self, xcbc_littlefe):
        shell = ClusterShell(xcbc_littlefe.cluster)
        result = shell.run('rocks run host compute-0-2 "which mdrun"')
        assert result.output == "compute-0-2: /usr/bin/mdrun"

    def test_unknown_selector(self, xcbc_littlefe):
        shell = ClusterShell(xcbc_littlefe.cluster)
        assert not shell.run("rocks run host gpu hostname").ok


class TestDeterminism:
    def test_two_xcbc_builds_produce_identical_manifests(self):
        """The simulation is deterministic: same inputs, same cluster —
        modulo the MAC serial numbers that differ per hardware build."""
        from repro.core import build_xcbc_cluster
        from repro.hardware import build_littlefe_modified

        a = build_xcbc_cluster(
            build_littlefe_modified().machine, include_optional_rolls=False
        ).cluster
        b = build_xcbc_cluster(
            build_littlefe_modified().machine, include_optional_rolls=False
        ).cluster
        assert manifest_of_cluster(a).diff(manifest_of_cluster(b)) == {}


class TestApiHygiene:
    def _walk_modules(self):
        import repro

        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            yield importlib.import_module(info.name)

    def test_every_module_has_a_docstring(self):
        undocumented = [
            m.__name__ for m in self._walk_modules() if not (m.__doc__ or "").strip()
        ]
        assert undocumented == []

    def test_every_all_entry_resolves(self):
        broken = []
        for module in self._walk_modules():
            for name in getattr(module, "__all__", []):
                if not hasattr(module, name):
                    broken.append(f"{module.__name__}.{name}")
        assert broken == []

    def test_top_level_namespace_is_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

"""Near-miss fixture: seeded, instance-owned randomness (SL102)."""

import random

import numpy as np


def make_rng(seed):
    return random.Random(seed)  # seeded constructor is the blessed form


def make_np_rng(seed):
    return np.random.default_rng(seed)


def jitter(rng):
    # drawing from an injected instance is fine; only the module-level
    # API touches hidden process state
    return rng.random()


def pick(rng, options):
    rng.shuffle(options)
    return options[0]

"""Repository mirroring with a bandwidth/latency cost model.

Campus clusters often mirror the XSEDE repository locally so compute nodes
update from the frontend instead of the WAN (this is also how Rocks serves
its distribution).  The mirror tracks the upstream ``repomd`` checksum and
only transfers changed NEVRAs on resync.

Transfer time is *spent on the simulation kernel*: each sync advances the
kernel clock by the modelled duration (firing any co-simulated events due
inside the window) and publishes a ``mirror.sync`` trace event.  Pass a
shared :class:`~repro.sim.SimKernel` to interleave mirror traffic with the
rest of the cluster; without one the mirror keeps its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import YumError
from ..rpm.package import Package
from ..sim import SimKernel
from .repository import Repository

__all__ = ["MirrorLink", "RepoMirror", "SyncStats"]


@dataclass(frozen=True)
class MirrorLink:
    """The network path between upstream and mirror."""

    bandwidth_bytes_s: float
    latency_s: float = 0.05

    def transfer_time_s(self, nbytes: int, *, requests: int = 1) -> float:
        """Time to move ``nbytes`` over this link in ``requests`` requests."""
        if nbytes < 0 or requests < 1:
            raise YumError("invalid transfer parameters")
        return self.latency_s * requests + nbytes / self.bandwidth_bytes_s


@dataclass
class SyncStats:
    """Accounting for one sync operation."""

    fetched_nevras: list[str] = field(default_factory=list)
    removed_nevras: list[str] = field(default_factory=list)
    bytes_transferred: int = 0
    elapsed_s: float = 0.0
    skipped: bool = False  # metadata matched; nothing to do


class RepoMirror:
    """A local mirror of one upstream repository."""

    def __init__(
        self,
        upstream: Repository,
        link: MirrorLink,
        *,
        repo_id: str = "",
        kernel: SimKernel | None = None,
    ):
        self.upstream = upstream
        self.link = link
        self.kernel = kernel if kernel is not None else SimKernel()
        self.local = Repository(
            repo_id or f"{upstream.repo_id}-mirror",
            name=f"{upstream.name} (local mirror)",
            priority=upstream.priority,
        )
        self._synced_checksum: str | None = None
        self.sync_history: list[SyncStats] = []

    def _spend(self, seconds: float) -> None:
        """Advance shared simulated time by a modelled transfer duration."""
        self.kernel.run_until(self.kernel.now_s + seconds)

    @property
    def is_current(self) -> bool:
        """True if the mirror matches upstream metadata."""
        return self._synced_checksum == self.upstream.repomd_checksum()

    def sync(self) -> SyncStats:
        """Bring the mirror up to date, transferring only the delta."""
        stats = SyncStats()
        started_s = self.kernel.now_s
        upstream_sum = self.upstream.repomd_checksum()
        # Metadata probe always costs one round trip.
        self._spend(self.link.transfer_time_s(16 * 1024))
        if self._synced_checksum == upstream_sum:
            stats.skipped = True
            stats.elapsed_s = self.kernel.now_s - started_s
            self.sync_history.append(stats)
            self.kernel.trace.emit(
                "mirror.sync", t_s=self.kernel.now_s, subsystem="yum",
                repo=self.local.repo_id, nbytes=0, files=0, skipped=True,
            )
            return stats

        upstream_by_nevra: dict[str, Package] = {
            p.nevra: p for p in self.upstream.all_packages()
        }
        local_by_nevra: dict[str, Package] = {
            p.nevra: p for p in self.local.all_packages()
        }
        to_fetch = [
            upstream_by_nevra[n]
            for n in sorted(set(upstream_by_nevra) - set(local_by_nevra))
        ]
        to_remove = sorted(set(local_by_nevra) - set(upstream_by_nevra))

        for nevra in to_remove:
            self.local.remove(nevra)
            stats.removed_nevras.append(nevra)
        for pkg in to_fetch:
            self.local.add(pkg)
            stats.fetched_nevras.append(pkg.nevra)
            stats.bytes_transferred += pkg.size_bytes
        if to_fetch:
            self._spend(
                self.link.transfer_time_s(
                    stats.bytes_transferred, requests=len(to_fetch)
                )
            )
        stats.elapsed_s = self.kernel.now_s - started_s
        self._synced_checksum = upstream_sum
        self.sync_history.append(stats)
        self.kernel.trace.emit(
            "mirror.sync", t_s=self.kernel.now_s, subsystem="yum",
            repo=self.local.repo_id, nbytes=stats.bytes_transferred,
            files=len(stats.fetched_nevras), skipped=False,
        )
        return stats

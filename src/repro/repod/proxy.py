"""The campus cache tier: hits, coalescing, and serve-stale degradation.

:class:`SiteProxy` sits between one campus's clients and the origin.
Three behaviours keep the origin alive through an update storm:

* **Hit accounting** — a fresh cached copy is served over the LAN without
  touching the origin at all.
* **Request coalescing** — when N clients miss on the same artifact at
  once, the proxy makes *one* origin fetch and fans the result out to all
  N waiters (``repod.coalesce`` traces each join).  This is the single
  biggest load reducer in a synchronized storm.
* **Serve-stale** — when the origin is dead, shedding, or the uplink is
  resetting connections, a proxy holding *any* prior copy serves it
  (``repod.stale``, outcome ``stale`` at the client) instead of failing.
  Campuses stay installable on the old release while the origin heals —
  graceful degradation, not an outage.

The cache dict is paired with ``_content_epoch`` — the highest origin
serial this proxy has *heard about* (via :meth:`notice_release`).  An
entry is fresh iff it was fetched at that serial; anything older is a
miss (and a serve-stale candidate).  The epoch marker is also what the
simlint SL202 pass looks for: a cache with no epoch is a cache that can
never be invalidated.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RepodError
from .server import FetchResult

__all__ = ["SiteProxy"]


@dataclass
class _CacheEntry:
    payload: str
    serial: int
    fetched_at_s: float
    package: object | None


class SiteProxy:
    """A caching repository proxy for one campus."""

    def __init__(
        self,
        name: str,
        origin,
        *,
        kernel,
        lan_latency_s: float = 0.02,
        serve_stale: bool = True,
    ) -> None:
        if lan_latency_s < 0:
            raise RepodError(f"LAN latency must be >= 0, got {lan_latency_s}")
        self.name = name
        self.origin = origin
        self.kernel = kernel
        self.lan_latency_s = lan_latency_s
        self.serve_stale = serve_stale
        #: artifact -> _CacheEntry; invalidated by bumping _content_epoch,
        #: never by mutation — entries older than the epoch are stale.
        self._content: dict[str, _CacheEntry] = {}
        self._content_epoch = 0
        #: artifact -> list of waiter callbacks for the in-flight fetch
        self._inflight: dict[str, list] = {}
        #: uplink connection-reset probability (conn.reset fault)
        self._uplink_loss = 0.0
        #: scheduled LAN deliveries not yet fired (leak audit)
        self._pending_deliveries = 0
        #: optional :class:`~repro.cas.SiteChunkCache` layered under this
        #: proxy (see :meth:`attach_chunk_cache`)
        self.chunk_cache = None
        # accounting
        self.hits = 0
        self.misses = 0
        self.coalesced = 0
        self.stale_served = 0
        self.uplink_resets = 0

    # -- release + fault wiring --------------------------------------------------

    def notice_release(self, serial: int) -> None:
        """A new origin serial exists: everything cached is now stale."""
        if serial < self._content_epoch:
            raise RepodError(
                f"proxy {self.name}: release serial went backwards "
                f"({self._content_epoch} -> {serial})"
            )
        self._content_epoch = serial
        if self.chunk_cache is not None:
            self.chunk_cache.notice_release(serial)

    def attach_chunk_cache(self, cache) -> None:
        """Layer a content-addressed chunk cache under this proxy.

        Release notices are forwarded (so the chunk tier's epoch tracks the
        proxy's), and every package that resolves through the proxy seeds
        the chunk cache for free — the bytes already crossed the WAN once;
        nodes installing that package afterwards fetch zero upstream chunks.
        """
        self.chunk_cache = cache

    def set_uplink_loss(self, probability: float) -> None:
        """Flapping uplink: each origin fetch dies with this probability
        (drawn from the kernel RNG, so runs stay deterministic)."""
        if not 0 <= probability <= 1:
            raise RepodError(
                f"uplink loss probability must be in [0, 1], got {probability}"
            )
        self._uplink_loss = probability

    # -- the request path --------------------------------------------------------

    def request(
        self,
        artifact: str,
        *,
        requester: str,
        deadline_s: float | None = None,
        on_result,
    ) -> None:
        """Serve from cache, join the in-flight fetch, or go to origin."""
        entry = self._content.get(artifact)
        if entry is not None and entry.serial >= self._content_epoch:
            self.hits += 1
            self._deliver(
                on_result,
                FetchResult(
                    artifact, True, payload=entry.payload, serial=entry.serial,
                    source=f"{self.name}-hit", package=entry.package,
                ),
            )
            return
        self.misses += 1
        waiters = self._inflight.get(artifact)
        if waiters is not None:
            self.coalesced += 1
            self.kernel.trace.emit(
                "repod.coalesce", t_s=self.kernel.now_s, subsystem="repod",
                proxy=self.name, artifact=artifact, waiters=len(waiters) + 1,
            )
            waiters.append(on_result)
            return
        self._inflight[artifact] = [on_result]
        self._fetch_from_origin(artifact, requester, deadline_s)

    def _fetch_from_origin(
        self, artifact: str, requester: str, deadline_s: float | None
    ) -> None:
        if self._uplink_loss > 0 and self.kernel.rng.random() < self._uplink_loss:
            # connection reset partway up the WAN: fail after one RTT,
            # without the origin ever seeing the request complete.
            self.uplink_resets += 1
            self.kernel.after(
                self.lan_latency_s,
                lambda: self._resolve(
                    artifact,
                    FetchResult(
                        artifact, False, source=self.name,
                        error=f"connection reset on {self.name} uplink",
                        error_kind="reset",
                    ),
                ),
                label=f"repod.reset:{self.name}:{artifact}",
            )
            return
        self.origin.request(
            artifact,
            requester=f"{self.name}<{requester}",
            deadline_s=deadline_s,
            on_result=lambda result: self._resolve(artifact, result),
        )

    def _resolve(self, artifact: str, result: FetchResult) -> None:
        """Fan the origin's answer out to every coalesced waiter."""
        waiters = self._inflight.pop(artifact, [])
        if result.ok:
            self._content[artifact] = _CacheEntry(
                payload=result.payload, serial=result.serial,
                fetched_at_s=self.kernel.now_s, package=result.package,
            )
            if self.chunk_cache is not None and result.package is not None:
                self.chunk_cache.ingest_package(result.package)
            for on_result in waiters:
                self._deliver(
                    on_result,
                    FetchResult(
                        artifact, True, payload=result.payload,
                        serial=result.serial, source=f"{self.name}-miss",
                        package=result.package,
                    ),
                )
            return
        stale = self._content.get(artifact)
        if self.serve_stale and stale is not None:
            self.stale_served += len(waiters)
            self.kernel.trace.emit(
                "repod.stale", t_s=self.kernel.now_s, subsystem="repod",
                proxy=self.name, artifact=artifact,
                age_s=self.kernel.now_s - stale.fetched_at_s,
            )
            for on_result in waiters:
                self._deliver(
                    on_result,
                    FetchResult(
                        artifact, True, payload=stale.payload,
                        serial=stale.serial, source=f"{self.name}-stale",
                        package=stale.package,
                    ),
                )
            return
        for on_result in waiters:
            self._deliver(on_result, result)

    def _deliver(self, on_result, result: FetchResult) -> None:
        """Hand a result to a client after one LAN hop."""
        self._pending_deliveries += 1

        def arrive() -> None:
            self._pending_deliveries -= 1
            on_result(result)

        self.kernel.after(
            self.lan_latency_s, arrive,
            label=f"repod.deliver:{self.name}:{result.artifact}",
        )

    # -- synchronous convenience -------------------------------------------------

    def fetch_blocking(self, artifact: str, *, requester: str = "sync") -> FetchResult:
        """Drive the kernel until one request resolves (prewarm / tests)."""
        box: list[FetchResult] = []
        self.request(artifact, requester=requester, on_result=box.append)
        while not box:
            if not self.kernel.step():
                raise RepodError(
                    f"proxy {self.name}: kernel drained before "
                    f"{artifact!r} resolved"
                )
        return box[0]

    # -- audit ---------------------------------------------------------------------

    def problems(self) -> list[str]:
        """Leak audit: a drained run may hold no in-flight state."""
        out = []
        if self._inflight:
            held = ", ".join(sorted(self._inflight))
            out.append(f"proxy {self.name}: leaked in-flight fetches ({held})")
        if self._pending_deliveries:
            out.append(
                f"proxy {self.name}: {self._pending_deliveries} undelivered "
                f"LAN responses"
            )
        return out

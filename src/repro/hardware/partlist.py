"""Parts lists: the shopping list the LittleFe site publishes.

Section 5.1: "Instructions for XCBC on LittleFe clusters and the parts list
and building instructions are included in the LittleFe web site and class
materials."  :func:`render_parts_list` derives that document from a built
machine — quantities aggregated across nodes, per-line and grand totals —
so the published list can never drift from what the builder actually
assembles.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .builder import BuildQuote, NETWORK_KIT_USD
from .chassis import Machine

__all__ = ["PartsLine", "parts_list", "render_parts_list"]


@dataclass(frozen=True)
class PartsLine:
    """One shopping-list row."""

    part: str
    family: str
    quantity: int
    unit_usd: float

    @property
    def extended_usd(self) -> float:
        return self.quantity * self.unit_usd


def parts_list(machine: Machine) -> list[PartsLine]:
    """Aggregate a machine into shopping-list lines (stable order)."""
    counts: Counter[tuple[str, str, float]] = Counter()
    for node in machine.nodes:
        counts[(node.board.model, "board", node.board.price_usd)] += 1
        if node.board.socket is not None:
            counts[(node.cpu.model, "cpu", node.cpu.price_usd)] += 1
        else:
            counts[(node.board.model + " (CPU on board)", "cpu", 0.0)] += 1
        for dimm in node.dimms:
            counts[(dimm.model, "memory", dimm.price_usd)] += 1
        for drive in node.storage:
            counts[(drive.model, "storage", drive.price_usd)] += 1
        if node.cooler is not None:
            counts[(node.cooler.model, "cooling", node.cooler.price_usd)] += 1
        if node.psu is not None:
            counts[(node.psu.model, "power", node.psu.price_usd)] += 1
        for gpu in node.gpus:
            counts[(gpu.model, "gpu", gpu.price_usd)] += 1
    counts[(machine.chassis.model, "chassis", machine.chassis.price_usd)] += 1
    if machine.shared_psu is not None:
        counts[(machine.shared_psu.model, "power", machine.shared_psu.price_usd)] += 1
    lines = [
        PartsLine(part=part, family=family, quantity=qty, unit_usd=price)
        for (part, family, price), qty in counts.items()
    ]
    return sorted(lines, key=lambda l: (l.family, l.part))


def render_parts_list(quote: BuildQuote, *, include_network_kit: bool = True) -> str:
    """The published document: rows, totals, and the quoted comparison."""
    machine = quote.machine
    lines = [
        f"Parts list — {machine.name} "
        f"({machine.node_count} nodes, {machine.total_cores} cores)",
        "",
        f"{'qty':>4}  {'part':<42}{'family':<10}{'unit':>9}{'ext':>10}",
    ]
    total = 0.0
    for row in parts_list(machine):
        lines.append(
            f"{row.quantity:>4}  {row.part:<42}{row.family:<10}"
            f"${row.unit_usd:>8.2f}${row.extended_usd:>9.2f}"
        )
        total += row.extended_usd
    if include_network_kit:
        lines.append(
            f"{1:>4}  {'switch, cabling, AC bricks, hardware':<42}"
            f"{'network':<10}${NETWORK_KIT_USD:>8.2f}${NETWORK_KIT_USD:>9.2f}"
        )
        total += NETWORK_KIT_USD
    lines.append("")
    lines.append(f"{'parts total':<58}${total:>9.2f}")
    lines.append(f"{'published price':<58}${quote.quoted_usd:>9.2f}")
    return "\n".join(lines)

"""Figure 3 — the internals of the Limulus HPC200 deskside cluster.

Substitute rendering from the hardware model: one head node with local
storage, three diskless compute blades, the single 850 W case supply.
"""

from repro.hardware import build_limulus_hpc200, render_limulus


def render_internals():
    return render_limulus(build_limulus_hpc200().machine)


def test_fig3_regeneration(benchmark, save_artifact):
    art = benchmark(render_internals)
    save_artifact(
        "fig3_limulus_internals",
        "Figure 3 substitute — Limulus HPC200 deskside internals\n\n" + art,
    )

    assert art.count("[slot") == 4
    assert "HEAD" in art
    assert art.count("(diskless)") == 3        # the three blades
    assert art.count("WD Red") >= 1            # head-node storage
    assert "850W" in art                        # the case supply
    assert "16 cores" in art and "793.6 GFLOPS" in art
    assert "50 lb" in art

"""Deterministic content chunking of RPM payloads.

The content-addressed layer never moves whole NEVRAs — it moves *chunks*,
fixed-size slices of a package payload named by the sha256 of their
content.  The simulation has no real payload bytes, so chunk content is
*modelled*: each slice of a package is assigned a deterministic content
key, and its digest is the sha256 of that key.  Two packages whose slices
map to the same content key therefore share the chunk — which is exactly
the property the chunk store deduplicates on.

The sharing model mirrors how adjacent RPM versions really behave: most
of a package's payload survives a version bump (docs, data files, stable
code), while a fraction is version-specific (recompiled objects, changed
headers).  :func:`chunk_package` marks each slice *version-specific* with
probability ``delta_fraction`` — decided by hashing ``name:evr:index``,
so the decision is a pure function of the package identity, never of RNG
state — and keys the rest by ``name:index`` alone.  Adjacent versions
then share a slice iff neither version marks it, ≈ ``(1-f)²`` of the
payload, so a v1→v2 update moves only the delta chunks.

Everything here is a pure function of the package identity; two processes
(or two same-seed runs) always produce byte-identical manifests.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..errors import CasError
from ..rpm.package import Package

__all__ = ["CHUNK_SIZE", "Chunk", "PackageManifest", "ChunkingPolicy", "chunk_package"]

#: Default chunk size: 256 KiB, the CVMFS default chunk target.
CHUNK_SIZE = 256 * 1024


@dataclass(frozen=True)
class Chunk:
    """One content-addressed slice: sha256 digest + size in bytes."""

    digest: str
    size: int

    @property
    def short(self) -> str:
        """The abbreviated digest used in labels and messages."""
        return self.digest[:12]


@dataclass(frozen=True)
class PackageManifest:
    """A package's payload as an ordered run of chunks.

    The manifest is what a catalog maps each NEVRA to; the chunk list is
    what a lazy client actually fetches.  ``sum(c.size for c in chunks)``
    always equals ``size_bytes``.
    """

    nevra: str
    size_bytes: int
    chunks: tuple[Chunk, ...]

    @property
    def digests(self) -> tuple[str, ...]:
        return tuple(c.digest for c in self.chunks)


@dataclass(frozen=True)
class ChunkingPolicy:
    """The chunking parameters one hierarchy agrees on.

    Every tier of a stratum hierarchy must chunk identically or digests
    stop matching; the policy object travels from the stratum-0 down so
    there is exactly one source of truth.
    """

    chunk_size: int = CHUNK_SIZE
    #: fraction of a package's slices that are version-specific
    delta_fraction: float = 0.125

    def __post_init__(self) -> None:
        if self.chunk_size <= 0:
            raise CasError(f"chunk size must be positive, got {self.chunk_size}")
        if not 0.0 <= self.delta_fraction <= 1.0:
            raise CasError(
                f"delta fraction must be in [0, 1], got {self.delta_fraction}"
            )

    def manifest(self, pkg: Package) -> PackageManifest:
        return chunk_package(
            pkg, chunk_size=self.chunk_size, delta_fraction=self.delta_fraction
        )


def _digest(content_key: str, size: int) -> str:
    # Size is part of the content identity: a truncated tail slice must
    # never collide with the full-size slice of a bigger build.
    return hashlib.sha256(f"{content_key}|{size}".encode()).hexdigest()


def _is_version_specific(name: str, evr: str, index: int, fraction: float) -> bool:
    """Deterministically mark ``fraction`` of slices as version-specific."""
    if fraction >= 1.0:
        return True
    if fraction <= 0.0:
        return False
    draw = int(
        hashlib.sha256(f"{name}:{evr}:{index}".encode()).hexdigest()[:8], 16
    )
    return draw / 0xFFFFFFFF < fraction


def chunk_package(
    pkg: Package,
    *,
    chunk_size: int = CHUNK_SIZE,
    delta_fraction: float = 0.125,
) -> PackageManifest:
    """Split a package's payload into deterministic content chunks.

    Slices keyed ``name:index`` are shared across every version of the
    package; slices keyed ``name:evr:index`` (the ``delta_fraction``) are
    unique to this build.  The final slice carries the payload remainder,
    so its size — and therefore its digest — differs whenever two builds
    differ in total size.
    """
    if chunk_size <= 0:
        raise CasError(f"chunk size must be positive, got {chunk_size}")
    size = pkg.size_bytes
    if size < 0:
        raise CasError(f"{pkg.nevra}: negative payload size {size}")
    count = max(1, -(-size // chunk_size))  # ceil division; >=1 even for empty
    evr = pkg.evr_string
    chunks = []
    for index in range(count):
        slice_size = (
            size - chunk_size * (count - 1) if index == count - 1 else chunk_size
        )
        if _is_version_specific(pkg.name, evr, index, delta_fraction):
            key = f"{pkg.name}:{evr}:{index}"
        else:
            key = f"{pkg.name}:{index}"
        chunks.append(Chunk(digest=_digest(key, slice_size), size=slice_size))
    return PackageManifest(nevra=pkg.nevra, size_bytes=size, chunks=tuple(chunks))

"""GridFTP-style data movement (the Globus Connect Server of Table 2).

Campus bridging is half software-compatibility, half *data* mobility: the
researcher's dataset has to follow them from the campus cluster to the
XSEDE resource.  The model captures GridFTP's operationally relevant
behaviour:

* endpoints expose a host's filesystem behind an endpoint name;
* transfers move files between endpoints over a WAN link with an alpha-beta
  cost model, in ``parallelism`` striped streams (bandwidth aggregates up to
  the link rate — why GridFTP beats scp on fat links);
* every file is checksummed at both ends; corrupted stripes (injectable) are
  retried up to a bound, then fail loudly;
* directory transfers recurse and preserve layout.

Transfer durations are spent on a :class:`~repro.sim.SimKernel` — pass the
cluster's kernel to interleave grid traffic with scheduler, monitoring and
MPI events; each file completion publishes a ``grid.xfer`` trace event.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..distro.filesystem import FileKind
from ..distro.host import Host
from ..errors import ReproError
from ..faults.retry import RetryPolicy, call_with_retry
from ..sim import SimKernel

__all__ = ["GridError", "WanLink", "GridEndpoint", "TransferResult", "transfer"]


class GridError(ReproError):
    """Grid-layer failure."""


@dataclass(frozen=True)
class WanLink:
    """The wide-area path between two endpoints."""

    bandwidth_bytes_s: float = 1.25e8     # a healthy campus 1 Gb/s WAN
    latency_s: float = 0.030              # cross-country RTT/2
    per_stream_cap_bytes_s: float = 3.0e7  # TCP single-stream ceiling

    def transfer_time_s(self, nbytes: int, *, parallelism: int) -> float:
        """Striped transfer time: streams aggregate up to the link rate."""
        if nbytes < 0 or parallelism < 1:
            raise GridError("invalid transfer parameters")
        effective = min(
            self.bandwidth_bytes_s, self.per_stream_cap_bytes_s * parallelism
        )
        return self.latency_s + nbytes / effective


class GridEndpoint:
    """A Globus endpoint fronting one host's filesystem."""

    def __init__(self, name: str, host: Host, *, root: str = "/") -> None:
        if not host.has_command("globus-connect-server-setup") and not host.has_command(
            "globus-url-copy"
        ):
            raise GridError(
                f"{host.name}: globus-connect-server is not installed "
                f"(add it via the XSEDE roll or XNIT)"
            )
        self.name = name
        self.host = host
        self.root = root.rstrip("/") or "/"

    def _abs(self, path: str) -> str:
        if not path.startswith("/"):
            raise GridError(f"endpoint paths are absolute: {path!r}")
        return self.root + path if self.root != "/" else path

    def exists(self, path: str) -> bool:
        return self.host.fs.exists(self._abs(path))

    def checksum(self, path: str) -> str:
        """MD5-of-content, as globus-url-copy verifies."""
        content = self.host.fs.read(self._abs(path))
        return hashlib.md5(content.encode()).hexdigest()

    def read(self, path: str) -> str:
        return self.host.fs.read(self._abs(path))

    def write(self, path: str, content: str) -> None:
        self.host.fs.write(self._abs(path), content)

    def size(self, path: str) -> int:
        return len(self.read(path).encode())

    def list_files(self, path: str) -> list[str]:
        """Recursive relative file list under a directory."""
        base = self._abs(path)
        if not self.host.fs.is_dir(base):
            raise GridError(f"{self.name}: not a directory: {path}")
        out = []
        prefix = base.rstrip("/") + "/"
        for node in self.host.fs.walk():
            if node.path.startswith(prefix) and node.kind is FileKind.FILE:
                out.append(node.path[len(prefix):])
        return sorted(out)


@dataclass
class TransferResult:
    """Accounting for one transfer request."""

    files: int = 0
    bytes_moved: int = 0
    elapsed_s: float = 0.0
    retried_files: list[str] = field(default_factory=list)

    @property
    def effective_bandwidth_bytes_s(self) -> float:
        return self.bytes_moved / self.elapsed_s if self.elapsed_s > 0 else 0.0


def transfer(
    src: GridEndpoint,
    dst: GridEndpoint,
    src_path: str,
    dst_path: str,
    *,
    link: WanLink | None = None,
    parallelism: int = 4,
    corrupt_first_attempt: set[str] | None = None,
    max_retries: int = 2,
    kernel: SimKernel | None = None,
    retry: RetryPolicy | None = None,
) -> TransferResult:
    """Move a file or directory tree between endpoints with verification.

    ``corrupt_first_attempt`` is failure injection: relative paths named
    there arrive corrupted once and must be caught by the checksum and
    retried.  Exceeding ``max_retries`` raises :class:`GridError`.

    With ``retry`` (a :class:`~repro.faults.RetryPolicy`), per-file
    retries back off with seeded jittered delays spent on the kernel,
    publish ``fault.retry`` events, and exhaustion raises
    :class:`~repro.errors.RetryExhaustedError` instead — ``max_retries``
    is ignored in that mode.
    """
    link = link or WanLink()
    kernel = kernel if kernel is not None else SimKernel()
    corrupt = set(corrupt_first_attempt or ())
    result = TransferResult()
    started_s = kernel.now_s

    if src.host.fs.is_dir(src._abs(src_path)):
        pairs = [
            (f"{src_path.rstrip('/')}/{rel}", f"{dst_path.rstrip('/')}/{rel}", rel)
            for rel in src.list_files(src_path)
        ]
        if not pairs:
            raise GridError(f"{src.name}: directory {src_path} has no files")
    else:
        pairs = [(src_path, dst_path, src_path.rsplit("/", 1)[-1])]

    for from_path, to_path, rel in pairs:
        content = src.read(from_path)
        want = src.checksum(from_path)
        nbytes = len(content.encode())
        attempts = 0

        def fetch_once(
            from_path=from_path, to_path=to_path, rel=rel,
            content=content, want=want, nbytes=nbytes,
        ) -> None:
            nonlocal attempts
            attempts += 1
            # Spend the modelled duration on the shared timeline: events
            # due inside the window (polls, job completions) fire first.
            kernel.run_until(
                kernel.now_s + link.transfer_time_s(nbytes, parallelism=parallelism)
            )
            if rel in corrupt and attempts == 1:
                dst.write(to_path, content + "\x00CORRUPT")
            else:
                dst.write(to_path, content)
            if dst.checksum(to_path) != want:
                result.retried_files.append(rel)
                raise GridError(f"transfer of {rel} failed checksum verification")

        if retry is not None:
            call_with_retry(
                kernel, fetch_once, policy=retry, op=f"grid.xfer:{rel}",
                subsystem="grid", retry_on=(GridError,),
            )
        else:
            while True:
                try:
                    fetch_once()
                    break
                except GridError:
                    if attempts > max_retries:
                        raise GridError(
                            f"transfer of {rel} failed checksum after "
                            f"{max_retries + 1} attempts"
                        ) from None
        result.files += 1
        result.bytes_moved += nbytes
        kernel.trace.emit(
            "grid.xfer", t_s=kernel.now_s, subsystem="grid",
            file=rel, nbytes=nbytes, retries=attempts - 1,
        )
    result.elapsed_s = kernel.now_s - started_s
    return result

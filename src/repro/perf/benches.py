"""The canonical hot-path benches.

Each bench is a plain function ``fn(quick: bool) -> BenchResult`` that
builds its own world, times the hot region with ``time.perf_counter``
(best of :data:`REPEATS` rounds), and reports ``(ops_per_s, wall_s, n)``.
Caches that the bench deliberately exercises *within* a round (the
depsolver resolution cache across the 220 Kansas nodes) are cleared
*between* rounds, so every round pays the first miss honestly.

``--quick`` shrinks the workload for CI smoke runs; quick results are
recorded under ``<name>@quick`` so full and quick baselines never mix.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["BenchResult", "BENCHES", "run_benches", "REPEATS"]

#: Rounds per bench; the best (minimum) wall time wins, the standard
#: noise-rejection for microbenches on shared machines.
REPEATS = 3


@dataclass(frozen=True)
class BenchResult:
    """One bench outcome (the JSON row)."""

    name: str
    ops_per_s: float
    wall_s: float
    n: int

    def to_dict(self) -> dict[str, float | int]:
        return {
            "ops_per_s": round(self.ops_per_s, 1),
            "wall_s": round(self.wall_s, 6),
            "n": self.n,
        }


def _best_of(setup: Callable[[], object], run: Callable[[object], int]) -> tuple[float, int]:
    """Time ``run(setup())`` REPEATS times; returns (best wall_s, n_ops)."""
    best = float("inf")
    n = 0
    for _ in range(REPEATS):
        world = setup()
        t0 = time.perf_counter()
        n = run(world)
        best = min(best, time.perf_counter() - t0)
    return best, n


def _xsede_repo_set():
    from ..core import xsede_packages
    from ..rocks import base_os_packages
    from ..distro import CENTOS_6_5
    from ..yum import RepoSet, Repository

    repo = Repository("xsede", priority=50)
    repo.add_all(base_os_packages(CENTOS_6_5) + xsede_packages())
    return RepoSet([repo])


def _fresh_db():
    from ..distro import CENTOS_6_5, Host
    from ..hardware import build_littlefe_modified
    from ..rpm import RpmDatabase

    head = build_littlefe_modified().machine.head
    return lambda: RpmDatabase(Host(head, CENTOS_6_5))


def bench_depsolver_closure(quick: bool = False) -> BenchResult:
    """Repeated single-package closure (``yum install gromacs``) — the
    memoised best-provider / resolution-cache fast path."""
    from ..yum import resolve_install
    from ..yum.depsolver import clear_resolution_cache

    rounds = 20 if quick else 100
    repos = _xsede_repo_set()
    make_db = _fresh_db()

    def setup():
        clear_resolution_cache()
        return None

    def run(_):
        for _i in range(rounds):
            resolve_install(["gromacs"], repos, make_db())
        return rounds

    wall, n = _best_of(setup, run)
    return BenchResult("depsolver_closure", n / wall, wall, n)


def bench_depsolver_kansas(quick: bool = False) -> BenchResult:
    """Depsolver closure at Kansas scale: the full uniform package stack
    resolved once per node (220 nodes, Table 3's largest row) against a
    fresh RepoSet per node — exactly how the Rocks installer kickstarts
    hosts.  The XCBC "same stack on every node" cache path."""
    from ..core import xsede_packages
    from ..rocks import base_os_packages
    from ..distro import CENTOS_6_5
    from ..yum import RepoSet, Repository, resolve_install
    from ..yum.depsolver import clear_resolution_cache

    nodes = 20 if quick else 220
    repo = Repository("xsede", priority=50)
    repo.add_all(base_os_packages(CENTOS_6_5) + xsede_packages())
    names = sorted({p.name for p in repo.all_packages()})
    make_db = _fresh_db()

    def setup():
        clear_resolution_cache()
        return None

    def run(_):
        for _i in range(nodes):
            # Fresh RepoSet per node, as in RocksInstaller._kickstart_host;
            # the content-addressed epoch makes the cache hit anyway.
            resolve_install(names, RepoSet([repo]), make_db())
        return nodes

    wall, n = _best_of(setup, run)
    return BenchResult("depsolver_kansas", n / wall, wall, n)


def bench_event_kernel(quick: bool = False) -> BenchResult:
    """Raw kernel throughput: schedule 20k events with a 1-in-8
    cancel/reschedule churn, then drain (the power manager's pattern)."""
    from ..sim import SimKernel

    n_events = 5_000 if quick else 20_000

    def setup():
        return None

    def run(_):
        kernel = SimKernel(seed=1)
        sink = []
        handles = []
        for i in range(n_events):
            handle = kernel.at(
                float(kernel.rng.randrange(1000)), lambda i=i: sink.append(i)
            )
            if i % 8 == 0:
                handles.append(handle)
            elif i % 8 == 4 and handles:
                victim = handles.pop()
                if victim.active:
                    kernel.reschedule(victim, victim.time_s + 10.0)
        kernel.run()
        return n_events

    wall, n = _best_of(setup, run)
    return BenchResult("event_kernel", n / wall, wall, n)


def bench_trace_bus(quick: bool = False) -> BenchResult:
    """Raw emit throughput on one bus (shape-cache fast path)."""
    from ..sim import TraceBus

    n_emits = 10_000 if quick else 50_000

    def setup():
        return TraceBus()

    def run(bus):
        emit = bus.emit
        for i in range(n_emits):
            emit(
                "metric.sample", t_s=float(i), subsystem="bench",
                host="h0", metric="load_one", value=1.0,
            )
        return n_emits

    wall, n = _best_of(setup, run)
    return BenchResult("trace_bus", n / wall, wall, n)


def bench_trace_heavy_run_until(quick: bool = False) -> BenchResult:
    """Trace-heavy ``run_until``: 20k pre-scheduled events, 10 per
    timestamp, each emitting one trace event — times the drain only
    (batched same-time pops + deferred event materialisation)."""
    from ..sim import SimKernel

    n_events = 5_000 if quick else 20_000

    def setup():
        kernel = SimKernel(seed=2)
        bus = kernel.trace
        for i in range(n_events):
            t = float(i // 10)
            kernel.at(
                t,
                lambda i=i, t=t: bus.emit(
                    "metric.sample", t_s=t, subsystem="bench",
                    host=f"h{i % 7}", metric="load_one", value=0.5,
                ),
            )
        return kernel

    def run(kernel):
        kernel.run_until(float(n_events))
        return n_events

    wall, n = _best_of(setup, run)
    return BenchResult("trace_heavy_run_until", n / wall, wall, n)


def bench_scheduler_churn(quick: bool = False) -> BenchResult:
    """Scheduler placement churn: bursts of jobs through the power-managed
    Limulus scheduler (placement, completion events, power transitions)."""
    from ..hardware import build_limulus_hpc200
    from ..scheduler import Job, PowerManagedScheduler
    from ..sim import SimKernel

    bursts = 3 if quick else 10
    jobs_per_burst = 4

    def setup():
        machine = build_limulus_hpc200().machine
        kernel = SimKernel(seed=3)
        return PowerManagedScheduler(machine, manage_power=True, kernel=kernel)

    def run(scheduler):
        for burst in range(bursts):
            scheduler.now_s = burst * 7200.0
            for i in range(jobs_per_burst):
                scheduler.submit(
                    Job(
                        f"b{burst}-j{i}", "bench", cores=4,
                        walltime_limit_s=7200, runtime_s=1800,
                    )
                )
            scheduler.run_to_completion()
        return bursts * jobs_per_burst

    wall, n = _best_of(setup, run)
    return BenchResult("scheduler_churn", n / wall, wall, n)


def bench_kansas_install(quick: bool = False) -> BenchResult:
    """End-to-end XCBC build: hardware, leaf/spine network, PXE discovery,
    and the full software install on every node.  Quick mode builds Table
    3's Marshall row (22 nodes) instead of Kansas (one timed round).

    Quick mode forces ``wave_size=11`` so Marshall installs through the
    same wave-shared-plan path Kansas auto-selects.  The auto-select
    threshold (>32 nodes) would put Marshall on the node-at-a-time path,
    whose per-node O(n²) validation is a *different* hot region — the
    quick floor was measuring setup cost, ~15x off the full bench's
    per-node rate, and a regression in the wave path could sail through
    the smoke gate."""
    from ..core import build_xcbc_cluster
    from ..core.deployments import TABLE3_SITES, rebuild_site_hardware
    from ..yum.depsolver import clear_resolution_cache

    site_name = "Marshall" if quick else "Kansas"
    site = next(s for s in TABLE3_SITES if site_name in s.site)

    # One timed round: this is a whole-cluster build, multi-second before
    # the overhaul, and round-to-round noise is small relative to that.
    clear_resolution_cache()
    machine = rebuild_site_hardware(site)
    t0 = time.perf_counter()
    report = build_xcbc_cluster(
        machine, include_optional_rolls=False,
        wave_size=11 if quick else None,
    )
    wall = time.perf_counter() - t0
    nodes = report.node_count
    return BenchResult("kansas_install", nodes / wall, wall, nodes)


def bench_scale_10k(quick: bool = False) -> BenchResult:
    """Fleet-scale cycle: a synthetic 10,000-node site through hardware
    build, golden-image wave install (waves of 256, one shared transaction
    plan per wave), and one hierarchical monitoring cycle over the
    FleetTable-backed rack tree.  The cycle runs **twice with the same
    seed** and the two traces must be byte-identical — the determinism
    contract is part of the bench, not a separate test.  Quick mode runs
    1,000 nodes.  ``n`` counts nodes through the full cycle."""
    from ..core.deployments import build_synthetic_fleet
    from ..monitoring import monitor_fleet
    from ..rocks.installer import RocksInstaller
    from ..sim import SimKernel
    from ..yum.depsolver import clear_resolution_cache

    node_count = 1_000 if quick else 10_000

    def cycle() -> tuple[float, str]:
        clear_resolution_cache()
        t0 = time.perf_counter()
        machine = build_synthetic_fleet(node_count)
        kernel = SimKernel(seed=10_000)
        cluster = RocksInstaller(machine).run(
            wave_size=256, kernel=kernel, materialize=False
        )
        monitor_fleet(cluster, kernel=kernel).poll_cycle()
        wall = time.perf_counter() - t0
        return wall, kernel.trace.to_jsonl()

    wall_a, trace_a = cycle()
    wall_b, trace_b = cycle()
    if trace_a != trace_b:
        raise AssertionError(
            "bench_scale_10k: same-seed traces differ between runs — the "
            "fleet install/monitoring path has become non-deterministic"
        )
    wall = min(wall_a, wall_b)
    return BenchResult("bench_scale_10k", node_count / wall, wall, node_count)


def bench_shell_fanout(quick: bool = False) -> BenchResult:
    """Parallel admin plane: one ``clush``-style sweep across a bare
    10,000-node FleetTable (fanout 64, jittered durations, a sprinkling of
    flaky nodes burning retries).  The sweep runs **twice with the same
    seed** and the traces must be byte-identical — determinism under
    retries is the contract.  Quick mode sweeps 1,000 nodes.  ``n`` counts
    nodes swept."""
    from ..errors import ShellError
    from ..fleet import FleetTable
    from ..shell import ShellCommand, ShellEngine
    from ..sim import SimKernel

    node_count = 1_000 if quick else 10_000
    per_rack = 400

    def build() -> FleetTable:
        fleet = FleetTable()
        for i in range(node_count):
            fleet.add_row(
                name=f"compute-{i // per_rack}-{i % per_rack}",
                appliance="compute", rack=i // per_rack, rank=i % per_rack,
                cores=8, state="os-installed",
            )
        return fleet

    def handler(node: str) -> tuple[int, str]:
        # every 97th node refuses its first conversation's worth of time
        if int(node.rsplit("-", 1)[1]) % 97 == 96:
            raise ShellError("connection refused")
        return 0, "ok"

    def sweep() -> tuple[float, str]:
        fleet = build()
        kernel = SimKernel(seed=64)
        engine = ShellEngine(fleet, kernel=kernel)
        t0 = time.perf_counter()
        report = engine.run(
            fleet.nodeset(),
            ShellCommand("uptime", duration_s=5.0, jitter=0.2,
                         handler=handler),
            fanout=64,
        )
        wall = time.perf_counter() - t0
        if not report.complete:
            raise AssertionError("bench_shell_fanout: sweep did not complete")
        return wall, kernel.trace.to_jsonl()

    wall_a, trace_a = sweep()
    wall_b, trace_b = sweep()
    if trace_a != trace_b:
        raise AssertionError(
            "bench_shell_fanout: same-seed traces differ between sweeps — "
            "the fan-out/retry path has become non-deterministic"
        )
    wall = min(wall_a, wall_b)
    return BenchResult("bench_shell_fanout", node_count / wall, wall, node_count)


def bench_repod_storm(quick: bool = False) -> BenchResult:
    """The repository service under an update storm: the full Table 3
    campus fleet syncing a security release through coalescing proxies
    while the origin crashes and uplinks flap mid-storm.  The governed
    run executes **twice with the same seed** and the traces must be
    byte-identical; a third, naive-style run (no retry budget, impatient
    clients) must show the retry-storm collapse — materially more origin
    arrivals and retries than the governed run — or the budget has
    stopped doing its job.  Quick mode shrinks the per-campus client
    fleet.  ``n`` counts terminal client requests in one governed run."""
    from ..repod import UpdateStormScenario

    clients = 3 if quick else 8

    def storm(governed: bool) -> tuple[float, object, str]:
        scenario = UpdateStormScenario(
            seed=2015, governed=governed, clients_per_campus=clients
        )
        t0 = time.perf_counter()
        report = scenario.run()
        wall = time.perf_counter() - t0
        if report.problems:
            raise AssertionError(
                "bench_repod_storm: invariant audit failed: "
                + "; ".join(report.problems)
            )
        return wall, report, scenario.kernel.trace.to_jsonl()

    wall_a, report, trace_a = storm(governed=True)
    wall_b, _, trace_b = storm(governed=True)
    if trace_a != trace_b:
        raise AssertionError(
            "bench_repod_storm: same-seed traces differ between runs — "
            "the admission/coalescing/retry path has become "
            "non-deterministic"
        )
    if report.goodput_ratio < 0.9:
        raise AssertionError(
            f"bench_repod_storm: governed goodput "
            f"{report.goodput_ratio:.1%} fell below the 90% floor"
        )
    _, naive, _ = storm(governed=False)
    if naive.origin_arrivals < 2 * report.origin_arrivals:
        raise AssertionError(
            f"bench_repod_storm: naive ablation saw only "
            f"{naive.origin_arrivals} origin arrivals vs "
            f"{report.origin_arrivals} governed — the retry budget no "
            f"longer changes the load profile"
        )
    wall = min(wall_a, wall_b)
    return BenchResult("bench_repod_storm", report.offered / wall, wall,
                       report.offered)


def bench_cas_delivery(quick: bool = False) -> BenchResult:
    """Content-addressed lazy delivery vs full mirroring, across a WAN.

    A release (v1) and a security update (v2) reach a fleet of campuses
    two ways.  **Full-mirror baseline**: every campus runs a
    :class:`~repro.yum.RepoMirror` and syncs both releases in full — the
    update storm re-ships every changed NEVRA to every campus.
    **CAS path**: one :class:`~repro.cas.Stratum0` publishes both
    releases, one :class:`~repro.cas.Stratum1` replicates the chunk
    delta, and each campus's :class:`~repro.cas.SiteChunkCache` pulls
    chunks lazily as its nodes install (cold) and upgrade (storm) through
    :class:`~repro.cas.LazyDelivery`.

    Three contracts are enforced *inside* the bench:

    * the CAS run executes twice with the same seed and the traces must
      be byte-identical;
    * update-storm WAN bytes must drop **>= 3x** vs the mirror baseline
      (dedup means only the ~12.5% version-specific chunks move);
    * under :func:`~repro.perf.naive.naive_mode` (dedup lookup disabled,
      every chunk re-fetched) the advantage must collapse — or the chunk
      store's ``missing_of`` is no longer what delivers the win.

    ``n`` counts package deliveries (cold + storm) in one CAS run.
    """
    from ..cas import LazyDelivery, SiteChunkCache, Stratum0, Stratum1
    from ..rpm.package import Package
    from ..sim import SimKernel
    from ..yum import RepoMirror, Repository
    from ..yum.mirror import MirrorLink
    from .naive import naive_mode

    campuses = 3 if quick else 6
    nodes_per_campus = 4 if quick else 10
    n_pkgs = 12 if quick else 40
    pkg_bytes = 512 * 1024

    def release(version: str) -> list[Package]:
        return [
            Package(f"pkg{i}", version, size_bytes=pkg_bytes)
            for i in range(n_pkgs)
        ]

    def mirror_baseline() -> int:
        """WAN bytes for the v2 update storm, full-mirror style."""
        update_wan = 0
        for c in range(campuses):
            kernel = SimKernel(seed=100 + c)
            repo_v1 = Repository("xsede")
            repo_v1.add_all(release("1.0"))
            mirror = RepoMirror(
                repo_v1,
                MirrorLink(bandwidth_bytes_s=50 * 1024 * 1024, latency_s=0.04),
                kernel=kernel,
            )
            mirror.sync()
            repo_v2 = Repository("xsede")
            repo_v2.add_all(release("2.0"))
            mirror.upstream = repo_v2
            update_wan += mirror.sync().bytes_transferred
        return update_wan

    def cas_run() -> tuple[float, int, int, str]:
        """(wall_s, update-storm WAN bytes, deliveries, trace jsonl)."""
        t0 = time.perf_counter()
        kernel = SimKernel(seed=77)
        s0 = Stratum0("xsede", kernel=kernel)
        s1 = Stratum1(
            "us-east", s0,
            MirrorLink(bandwidth_bytes_s=50 * 1024 * 1024, latency_s=0.04),
            kernel=kernel,
        )
        sites = [
            SiteChunkCache(
                f"campus{c}", s1,
                MirrorLink(bandwidth_bytes_s=50 * 1024 * 1024, latency_s=0.04),
                kernel=kernel,
            )
            for c in range(campuses)
        ]
        deliveries = [LazyDelivery(site) for site in sites]
        n = 0

        def storm(packages: list[Package]) -> None:
            nonlocal n
            for delivery in deliveries:
                for node in range(nodes_per_campus):
                    for pkg in packages:
                        delivery.fetch_package(f"node{node}", pkg)
                        n += 1

        s0.publish(release("1.0"))
        s1.replicate()
        for site in sites:
            site.notice_release(s0.serial)
        storm(release("1.0"))                       # cold install
        wan_before = sum(site.wan_bytes for site in sites)
        s0.publish(release("2.0"))
        rep_stats = s1.replicate()
        for site in sites:
            site.notice_release(s0.serial)
        storm(release("2.0"))                       # the update storm
        update_wan = (
            sum(site.wan_bytes for site in sites) - wan_before
            + rep_stats.nbytes
        )
        wall = time.perf_counter() - t0
        return wall, update_wan, n, kernel.trace.to_jsonl()

    mirror_update_wan = mirror_baseline()
    wall_a, cas_update_wan, n, trace_a = cas_run()
    wall_b, _, _, trace_b = cas_run()
    if trace_a != trace_b:
        raise AssertionError(
            "bench_cas_delivery: same-seed traces differ between runs — "
            "the chunk publish/replicate/fetch path has become "
            "non-deterministic"
        )
    if cas_update_wan * 3 > mirror_update_wan:
        raise AssertionError(
            f"bench_cas_delivery: update-storm WAN bytes only dropped "
            f"{mirror_update_wan / cas_update_wan:.1f}x "
            f"({mirror_update_wan} -> {cas_update_wan}); the 3x floor is "
            f"the point of content-addressed delivery"
        )
    with naive_mode():
        _, naive_update_wan, _, _ = cas_run()
    if naive_update_wan < 2 * cas_update_wan:
        raise AssertionError(
            f"bench_cas_delivery: naive ablation moved only "
            f"{naive_update_wan} update bytes vs {cas_update_wan} deduped "
            f"— disabling missing_of no longer changes the traffic, so "
            f"the dedup lookup is not what is being measured"
        )
    wall = min(wall_a, wall_b)
    return BenchResult("bench_cas_delivery", n / wall, wall, n)


#: name -> bench function (full and quick variants share one function).
BENCHES: dict[str, Callable[[bool], BenchResult]] = {
    "depsolver_closure": bench_depsolver_closure,
    "depsolver_kansas": bench_depsolver_kansas,
    "event_kernel": bench_event_kernel,
    "trace_bus": bench_trace_bus,
    "trace_heavy_run_until": bench_trace_heavy_run_until,
    "scheduler_churn": bench_scheduler_churn,
    "kansas_install": bench_kansas_install,
    "bench_scale_10k": bench_scale_10k,
    "bench_shell_fanout": bench_shell_fanout,
    "bench_repod_storm": bench_repod_storm,
    "bench_cas_delivery": bench_cas_delivery,
}


def run_benches(
    names: list[str] | None = None,
    *,
    quick: bool = False,
    progress: Callable[[str], None] | None = None,
) -> dict[str, BenchResult]:
    """Run the named benches (default: all); returns name -> result.

    Quick results are keyed ``<name>@quick`` so a quick smoke run is only
    ever compared against a quick baseline.
    """
    selected = names if names is not None else list(BENCHES)
    unknown = [n for n in selected if n not in BENCHES]
    if unknown:
        raise KeyError(f"unknown bench(es): {', '.join(sorted(unknown))}")
    out: dict[str, BenchResult] = {}
    for name in selected:
        if progress is not None:
            progress(name)
        result = BENCHES[name](quick)
        key = f"{name}@quick" if quick else name
        out[key] = BenchResult(key, result.ops_per_s, result.wall_s, result.n)
    return out

"""insert-ethers: Rocks' node-discovery tool.

The administrator runs ``insert-ethers`` on the frontend, powers compute
nodes on one at a time, and each unknown MAC seen by dhcpd gets registered
as the next ``compute-<rack>-<rank>`` appliance and handed the install
image.  This module reproduces that loop against the simulated DHCP/PXE
services.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RocksError
from ..network.dhcp import DhcpServer
from ..network.pxe import BootImage, PxeServer
from .database import HostRecord, InstallState, RocksDatabase

__all__ = ["InsertEthers"]


@dataclass
class InsertEthers:
    """The discovery session.

    Parameters mirror the real tool: the appliance type being inserted
    (compute by default) and the rack the nodes are in.
    """

    db: RocksDatabase
    dhcp: DhcpServer
    pxe: PxeServer
    rack: int = 0
    appliance: str = "compute"
    #: live :class:`~repro.fleet.FleetRow` proxies, in discovery order
    discovered: list = field(default_factory=list)

    def _register(self, mac: str, ip: str):
        """Write one discovered MAC's database row; returns the live row."""
        name = self.db.next_compute_name(self.rack)
        rank = int(name.rsplit("-", 1)[1])
        row = self.db.add_host(
            HostRecord(
                name=name,
                mac=mac,
                ip=ip,
                appliance=self.appliance,
                rack=self.rack,
                rank=rank,
                state=InstallState.DISCOVERED,
            )
        )
        self.discovered.append(row)
        return row

    def poll(self) -> list:
        """One pass over the DHCP log: register every unknown MAC.

        Returns the newly registered records (possibly empty).  Mirrors the
        tool's behaviour of assigning names in the order MACs first appear.
        """
        new_records = []
        for mac in self.dhcp.unknown_macs(self.db.known_macs()):
            name = self.db.next_compute_name(self.rack)
            lease = self.dhcp.offer(mac, hostname=name)
            new_records.append(self._register(mac, lease.ip))
        return new_records

    def discover_boot(self, mac: str):
        """Drive one node's full discovery: PXE boot then register.

        Raises :class:`RocksError` if the MAC is already known (re-running
        insert-ethers against an installed node is an operator error the
        real tool also refuses).
        """
        if self.db.has_mac(mac):
            raise RocksError(f"MAC {mac} is already registered")
        self.pxe.boot(mac)
        records = self.poll()
        for record in records:
            if record.mac == mac:
                return record
        raise RocksError(f"discovery failed for MAC {mac}")  # pragma: no cover

    def discover_wave(self, macs: list[str]) -> list:
        """Drive one install wave's discovery: boot and register a batch.

        The scalable replacement for per-node :meth:`discover_boot`, which
        rescans the whole DHCP request log (O(log x nodes) across an
        install) per discovery.  A wave PXE-boots its MACs in order, then
        registers each directly from its lease — no log scan — preserving
        the exact name assignment order the sequential path produces.
        """
        for mac in macs:
            if self.db.has_mac(mac):
                raise RocksError(f"MAC {mac} is already registered")
        self.pxe.boot_batch(macs)
        rows = []
        for mac in macs:
            # The PXE handshake already allocated this MAC's lease.
            lease = self.dhcp.lease_for(mac)
            rows.append(self._register(mac, lease.ip))
        return rows

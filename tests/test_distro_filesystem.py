"""Filesystem-tree tests, including property-based invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distro import FileKind, Filesystem, normpath, parent_dirs
from repro.errors import FilesystemError


class TestNormpath:
    def test_collapses_doubles_and_dots(self):
        assert normpath("//usr///bin/./gcc") == "/usr/bin/gcc"

    def test_strips_trailing_slash(self):
        assert normpath("/usr/bin/") == "/usr/bin"

    def test_root(self):
        assert normpath("/") == "/"

    def test_relative_rejected(self):
        with pytest.raises(FilesystemError):
            normpath("usr/bin")

    def test_dotdot_rejected(self):
        with pytest.raises(FilesystemError):
            normpath("/usr/../etc")

    def test_parent_dirs(self):
        assert list(parent_dirs("/usr/lib64/libm.so")) == ["/usr", "/usr/lib64"]


class TestFilesystemBasics:
    def test_write_creates_ancestors(self):
        fs = Filesystem()
        fs.write("/opt/gromacs/bin/mdrun", "x", mode=0o755)
        assert fs.is_dir("/opt/gromacs/bin")
        assert fs.get("/opt/gromacs/bin/mdrun").executable

    def test_read_back(self):
        fs = Filesystem()
        fs.write("/etc/motd", "welcome")
        assert fs.read("/etc/motd") == "welcome"

    def test_read_missing_raises(self):
        fs = Filesystem()
        with pytest.raises(FilesystemError, match="no such file"):
            fs.read("/etc/motd")

    def test_write_over_directory_rejected(self):
        fs = Filesystem()
        fs.mkdir("/etc", exist_ok=True)
        with pytest.raises(FilesystemError, match="directory"):
            fs.write("/etc", "nope")

    def test_no_overwrite_flag(self):
        fs = Filesystem()
        fs.write("/a", "1")
        with pytest.raises(FilesystemError, match="exists"):
            fs.write("/a", "2", overwrite=False)

    def test_mkdir_exist_ok_semantics(self):
        fs = Filesystem()
        fs.mkdir("/var/log")
        with pytest.raises(FilesystemError):
            fs.mkdir("/var/log")
        fs.mkdir("/var/log", exist_ok=True)

    def test_listdir_immediate_children_only(self):
        fs = Filesystem()
        fs.write("/usr/bin/gcc", "")
        fs.write("/usr/lib64/libc.so", "")
        fs.write("/usr/bin/tools/extra", "")
        assert fs.listdir("/usr") == ["bin", "lib64"]
        assert fs.listdir("/usr/bin") == ["gcc", "tools"]

    def test_listdir_on_file_rejected(self):
        fs = Filesystem()
        fs.write("/a", "")
        with pytest.raises(FilesystemError, match="not a directory"):
            fs.listdir("/a")

    def test_symlink_resolution_on_read(self):
        fs = Filesystem()
        fs.write("/usr/bin/python2.7", "interp", mode=0o755)
        fs.symlink("/usr/bin/python", "/usr/bin/python2.7")
        assert fs.read("/usr/bin/python") == "interp"

    def test_symlink_over_existing_rejected(self):
        fs = Filesystem()
        fs.write("/a", "")
        with pytest.raises(FilesystemError):
            fs.symlink("/a", "/b")

    def test_remove_nonempty_dir_rejected(self):
        fs = Filesystem()
        fs.write("/opt/app/file", "")
        with pytest.raises(FilesystemError, match="not empty"):
            fs.remove("/opt/app")

    def test_remove_root_rejected(self):
        fs = Filesystem()
        with pytest.raises(FilesystemError):
            fs.remove("/")


class TestOwnership:
    def test_owned_by_lists_package_paths(self):
        fs = Filesystem()
        fs.write("/usr/bin/gcc", "", owner="gcc")
        fs.write("/usr/bin/g++", "", owner="gcc")
        fs.write("/usr/bin/ls", "", owner="coreutils")
        assert fs.owned_by("gcc") == ["/usr/bin/g++", "/usr/bin/gcc"]

    def test_remove_owned_spares_shared_directories(self):
        fs = Filesystem()
        fs.mkdir("/opt/shared", owner="a")
        fs.write("/opt/shared/a-file", "", owner="a")
        fs.write("/opt/shared/b-file", "", owner="b")
        fs.remove_owned("a")
        assert not fs.exists("/opt/shared/a-file")
        assert fs.exists("/opt/shared/b-file")
        assert fs.is_dir("/opt/shared")  # still needed by b

    def test_remove_owned_removes_empty_owned_dirs(self):
        fs = Filesystem()
        fs.mkdir("/opt/solo", owner="a")
        fs.write("/opt/solo/f", "", owner="a")
        removed = fs.remove_owned("a")
        assert removed == 2
        assert not fs.exists("/opt/solo")


# --- property-based invariants --------------------------------------------------

path_segments = st.lists(
    st.text(alphabet="abcdefgh123", min_size=1, max_size=6), min_size=1, max_size=4
)


@given(path_segments)
@settings(max_examples=60)
def test_normpath_idempotent(segments):
    path = "/" + "/".join(segments)
    assert normpath(normpath(path)) == normpath(path)


@given(path_segments)
@settings(max_examples=60)
def test_write_then_ancestors_are_dirs(segments):
    fs = Filesystem()
    path = "/" + "/".join(segments)
    fs.write(path, "content")
    for ancestor in parent_dirs(path):
        assert fs.is_dir(ancestor)
    assert fs.read(path) == "content"


@given(st.lists(path_segments, min_size=1, max_size=6))
@settings(max_examples=40)
def test_remove_owned_leaves_no_orphans(path_lists):
    """After erasing a package's files, no node owned by it remains and the
    tree still satisfies every-ancestor-is-a-directory."""
    fs = Filesystem()
    for i, segments in enumerate(path_lists):
        owner = "pkg-a" if i % 2 == 0 else "pkg-b"
        path = "/files/" + "/".join(segments)
        try:
            fs.write(path, "", owner=owner)
        except FilesystemError:
            continue  # generated path collides with an existing file/dir
    fs.remove_owned("pkg-a")
    assert fs.owned_by("pkg-a") == []
    for node in fs.walk():
        for ancestor in parent_dirs(node.path):
            assert fs.is_dir(ancestor)

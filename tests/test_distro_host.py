"""Host, services, users, and environment-modules tests."""

import pytest

from repro.distro import (
    CENTOS_6_3,
    CENTOS_6_5,
    SCIENTIFIC_LINUX_6_5,
    Host,
    ModuleFile,
    ModuleSession,
    ModuleSystem,
    ServiceState,
    UserDatabase,
    get_release,
)
from repro.errors import (
    CommandError,
    DistroError,
    ModuleEnvError,
    ServiceError,
    UserError,
)


class TestDistroReleases:
    def test_release_strings(self):
        assert CENTOS_6_5.release_string == "CentOS 6.5"
        assert SCIENTIFIC_LINUX_6_5.release_string == "Scientific Linux 6.5"

    def test_get_release(self):
        assert get_release("CentOS 6.3") is CENTOS_6_3

    def test_get_release_unknown(self):
        with pytest.raises(DistroError, match="known"):
            get_release("Ubuntu 14.04")

    def test_upgrade_compatibility(self):
        # the 0.0.8 OS bump: 6.3 -> 6.5 is supported in place
        assert CENTOS_6_5.is_compatible_upgrade_of(CENTOS_6_3)
        assert not CENTOS_6_3.is_compatible_upgrade_of(CENTOS_6_5)


class TestHost:
    def test_fresh_host_has_base_tree(self, frontend_host):
        assert frontend_host.fs.is_dir("/etc/yum.repos.d")
        assert frontend_host.release_string() == "CentOS 6.5"

    def test_diskless_node_needs_image(self, limulus_machine):
        blade = limulus_machine.compute_nodes[0]
        with pytest.raises(DistroError, match="diskless"):
            Host(blade, SCIENTIFIC_LINUX_6_5)
        host = Host(blade, SCIENTIFIC_LINUX_6_5, diskless_image=True)
        assert host.diskless_image

    def test_which_finds_executables_only(self, frontend_host):
        frontend_host.fs.write("/usr/bin/mdrun", "x", mode=0o755)
        frontend_host.fs.write("/usr/bin/readme.txt", "docs", mode=0o644)
        assert frontend_host.which("mdrun") == "/usr/bin/mdrun"
        with pytest.raises(CommandError):
            frontend_host.which("readme.txt")

    def test_which_path_order(self, frontend_host):
        frontend_host.fs.write("/usr/bin/python", "usr", mode=0o755)
        frontend_host.fs.write("/usr/local/bin/python", "local", mode=0o755)
        assert frontend_host.which("python") == "/usr/local/bin/python"

    def test_commands_enumerates_surface(self, frontend_host):
        frontend_host.fs.write("/usr/bin/qsub", "x", mode=0o755)
        assert "qsub" in frontend_host.commands()
        assert "bash" in frontend_host.commands()


class TestServices:
    def test_lifecycle(self, frontend_host):
        svc = frontend_host.services
        svc.register("pbs_server", package="torque")
        assert not svc.is_running("pbs_server")
        svc.start("pbs_server")
        assert svc.is_running("pbs_server")
        svc.stop("pbs_server")
        assert svc.get("pbs_server").state is ServiceState.STOPPED

    def test_boot_starts_enabled_only(self, frontend_host):
        svc = frontend_host.services
        svc.register("sshd", package="openssh-server")
        svc.register("httpd", package="rocks")
        svc.enable("sshd")
        started = svc.boot()
        assert started == ["sshd"]
        assert not svc.is_running("httpd")

    def test_reregistration_by_other_package_rejected(self, frontend_host):
        svc = frontend_host.services
        svc.register("qmaster", package="sge")
        with pytest.raises(ServiceError, match="already registered"):
            svc.register("qmaster", package="slurm")

    def test_unregister_package_stops_tracking(self, frontend_host):
        svc = frontend_host.services
        svc.register("gmond", package="ganglia-gmond")
        dropped = svc.unregister_package("ganglia-gmond")
        assert dropped == ["gmond"]
        with pytest.raises(ServiceError):
            svc.get("gmond")

    def test_fail_marks_failed(self, frontend_host):
        svc = frontend_host.services
        svc.register("pbs_mom", package="torque")
        svc.start("pbs_mom")
        svc.fail("pbs_mom")
        assert svc.get("pbs_mom").state is ServiceState.FAILED


class TestUsers:
    def test_root_exists(self):
        db = UserDatabase()
        assert db.get_user("root").uid == 0

    def test_useradd_allocates_from_500(self):
        db = UserDatabase()
        alice = db.add_user("alice")
        bob = db.add_user("bob")
        assert alice.uid == 500 and bob.uid == 501
        assert alice.home == "/home/alice"

    def test_system_users_below_500(self):
        db = UserDatabase()
        daemon = db.add_user("pbs", system=True)
        assert daemon.uid < 500

    def test_duplicate_rejected(self):
        db = UserDatabase()
        db.add_user("alice")
        with pytest.raises(UserError):
            db.add_user("alice")

    def test_remove_root_protected(self):
        db = UserDatabase()
        with pytest.raises(UserError):
            db.remove_user("root")

    def test_regular_users_excludes_system(self):
        db = UserDatabase()
        db.add_user("alice")
        db.add_user("pbs", system=True)
        assert [u.name for u in db.regular_users()] == ["alice"]


class TestModules:
    def make_system(self):
        system = ModuleSystem()
        system.install(
            ModuleFile(
                "openmpi", "1.6.4", prepend_path=(("PATH", "/opt/openmpi/bin"),)
            )
        )
        system.install(
            ModuleFile(
                "gromacs",
                "4.6.5",
                prepend_path=(("PATH", "/opt/gromacs/bin"),),
                prerequisites=("openmpi",),
            )
        )
        system.install(ModuleFile("mpich2", "1.9", conflicts=("openmpi",)))
        return system

    def test_avail_marks_default(self):
        system = self.make_system()
        assert "openmpi/1.6.4(default)" in system.avail()

    def test_load_prepends_path(self):
        system = self.make_system()
        session = ModuleSession(system)
        session.load("openmpi")
        assert session.env["PATH"].startswith("/opt/openmpi/bin:")

    def test_prerequisite_enforced(self):
        session = ModuleSession(self.make_system())
        with pytest.raises(ModuleEnvError, match="requires module"):
            session.load("gromacs")
        session.load("openmpi")
        session.load("gromacs")
        assert session.loaded() == ["openmpi/1.6.4", "gromacs/4.6.5"]

    def test_conflict_enforced_both_directions(self):
        session = ModuleSession(self.make_system())
        session.load("openmpi")
        with pytest.raises(ModuleEnvError, match="conflicts"):
            session.load("mpich2")
        session2 = ModuleSession(self.make_system())
        session2.load("mpich2")
        with pytest.raises(ModuleEnvError, match="conflicts"):
            session2.load("openmpi")

    def test_unload_restores_path(self):
        session = ModuleSession(self.make_system())
        before = session.env["PATH"]
        session.load("openmpi")
        session.unload("openmpi")
        assert session.env["PATH"] == before

    def test_unload_blocked_by_dependant(self):
        session = ModuleSession(self.make_system())
        session.load("openmpi")
        session.load("gromacs")
        with pytest.raises(ModuleEnvError, match="required by"):
            session.unload("openmpi")

    def test_purge_unloads_in_safe_order(self):
        session = ModuleSession(self.make_system())
        session.load("openmpi")
        session.load("gromacs")
        session.purge()
        assert session.loaded() == []

    def test_two_versions_cannot_coload(self):
        system = self.make_system()
        system.install(ModuleFile("openmpi", "1.8.1"))
        session = ModuleSession(system)
        session.load("openmpi/1.6.4")
        with pytest.raises(ModuleEnvError, match="already loaded"):
            session.load("openmpi/1.8.1")

    def test_remove_version_promotes_new_default(self):
        system = self.make_system()
        system.install(ModuleFile("openmpi", "1.8.1"))
        system.remove("openmpi", "1.6.4")
        assert system.resolve("openmpi").version == "1.8.1"

    def test_resolve_unknown_raises(self):
        with pytest.raises(ModuleEnvError):
            self.make_system().resolve("lammps")

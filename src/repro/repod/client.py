"""The campus sync client: polite retries under a token-bucket budget.

:class:`RepoClient` walks a list of artifacts (the security release) and
fetches each through its campus :class:`~repro.repod.proxy.SiteProxy`.
Failures are retried with the same seeded exponential backoff as
:class:`~repro.faults.RetryPolicy` — but every retry after the first
attempt must be *paid for* from a shared :class:`~repro.faults.RetryBudget`.
When the origin is down and every campus is failing at once, the budget
is what turns a retry storm (load multiplies exactly when capacity
vanishes) into load *decay*: clients that can't afford a retry record a
terminal failure and stand down until the next sync.

Every artifact reaches **exactly one** terminal state, emitted as a
``repod.request`` trace event with outcome ``ok`` (fresh bytes),
``stale`` (the proxy degraded gracefully), or ``failed`` — the
exactly-once property is chaos invariant 8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RepodError

__all__ = ["RepoClient", "RequestRecord"]


@dataclass
class RequestRecord:
    """One artifact's journey: attempts made and the terminal outcome."""

    artifact: str
    started_s: float
    attempts: int = 0
    outcome: str = ""  # ok | stale | failed
    source: str = ""
    finished_s: float = 0.0
    failure_kinds: list[str] = field(default_factory=list)


class RepoClient:
    """One campus workstation syncing a release through the proxy tier."""

    def __init__(
        self,
        name: str,
        proxy,
        *,
        kernel,
        policy,
        budget=None,
        patience_s: float = 900.0,
        local=None,
    ) -> None:
        if patience_s <= 0:
            raise RepodError(f"patience must be positive, got {patience_s}")
        self.name = name
        self.proxy = proxy
        self.kernel = kernel
        self.policy = policy
        self.budget = budget
        self.patience_s = patience_s
        #: optional local Repository that delivered packages land in
        self.local = local
        self.records: dict[str, RequestRecord] = {}
        self.done = False

    # -- public API ---------------------------------------------------------------

    def sync(self, artifacts, *, at_s: float = 0.0) -> None:
        """Schedule a sequential sync of ``artifacts`` starting at ``at_s``."""
        queue = list(artifacts)
        if not queue:
            self.done = True
            return
        self.kernel.at(
            at_s, lambda: self._next_artifact(queue),
            label=f"repod.sync:{self.name}",
        )

    def _next_artifact(self, queue) -> None:
        if not queue:
            self.done = True
            return
        artifact = queue.pop(0)
        record = RequestRecord(artifact=artifact, started_s=self.kernel.now_s)
        self.records[artifact] = record
        self._attempt(record, queue)

    # -- one attempt + the retry ladder ---------------------------------------------

    def _attempt(self, record: RequestRecord, queue) -> None:
        record.attempts += 1
        attempt = record.attempts
        deadline_s = record.started_s + self.patience_s

        def on_result(result) -> None:
            if result.ok:
                self._finish(record, result, queue)
                return
            record.failure_kinds.append(result.error_kind or "failed")
            self._maybe_retry(record, result, queue)

        self.proxy.request(
            record.artifact,
            requester=f"{self.name}#{attempt}",
            deadline_s=deadline_s,
            on_result=on_result,
        )

    def _maybe_retry(self, record: RequestRecord, result, queue) -> None:
        now_s = self.kernel.now_s
        out_of_attempts = record.attempts >= self.policy.max_attempts
        out_of_patience = now_s - record.started_s >= self.patience_s
        if out_of_attempts or out_of_patience:
            self._finish(record, result, queue)
            return
        if self.budget is not None and not self.budget.try_spend(
            now_s, op=f"{self.name}:{record.artifact}"
        ):
            # The bucket is dry: this is the storm-brake doing its job.
            # Record a terminal failure instead of piling on.
            self._finish(record, result, queue)
            return
        delay_s = self.policy.delay_for(record.attempts, self.kernel.rng)
        remaining_s = self.patience_s - (now_s - record.started_s)
        delay_s = min(delay_s, max(0.0, remaining_s))
        self.kernel.trace.emit(
            "fault.retry", t_s=now_s, subsystem="repod",
            op=f"{self.name}:{record.artifact}", attempt=record.attempts,
            delay_s=round(delay_s, 6),
        )
        self.kernel.at(
            now_s + delay_s, lambda: self._attempt(record, queue),
            label=f"repod.retry:{self.name}:{record.artifact}",
        )

    def _finish(self, record: RequestRecord, result, queue) -> None:
        if record.outcome:
            raise RepodError(
                f"client {self.name}: duplicate terminal state for "
                f"{record.artifact!r} ({record.outcome} then again)"
            )
        if result.ok:
            record.outcome = "stale" if result.source.endswith("-stale") else "ok"
            if self.local is not None and result.package is not None:
                self.local.add(result.package)
        else:
            record.outcome = "failed"
        record.source = result.source
        record.finished_s = self.kernel.now_s
        self.kernel.trace.emit(
            "repod.request", t_s=self.kernel.now_s, subsystem="repod",
            req=f"{self.name}:{record.artifact}", client=self.name,
            artifact=record.artifact, outcome=record.outcome,
            source=record.source,
            elapsed_s=round(record.finished_s - record.started_s, 6),
        )
        self._next_artifact(queue)

    # -- reporting -------------------------------------------------------------------

    def outcomes(self) -> dict[str, str]:
        return {name: rec.outcome for name, rec in sorted(self.records.items())}

    def problems(self) -> list[str]:
        out = []
        if not self.done:
            out.append(f"client {self.name}: sync never completed")
        for name, rec in sorted(self.records.items()):
            if not rec.outcome:
                out.append(
                    f"client {self.name}: {name!r} has no terminal outcome"
                )
        return out

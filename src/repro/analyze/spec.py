"""What the analyzer analyzes: a declarative bundle of cluster artefacts.

A :class:`ClusterDefinition` collects the layers a cluster recipe is made of
— kickstart graph, rolls, repo configuration, package universe, hardware
plan, DHCP plan, scheduler queues — *without* requiring any of them to have
been deployed.  Every field is optional; passes simply skip layers the
definition does not carry, so a definition can be as small as "these .repo
stanzas" or as large as a fully provisioned cluster
(:meth:`ClusterDefinition.from_cluster`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..hardware.chassis import ChassisModel, Machine
from ..hardware.node import Node
from ..hardware.power import PsuModel
from ..network.dhcp import DhcpPlan
from ..rocks.kickstart import KickstartGraph, Profile
from ..rocks.roll import Roll
from ..rpm.package import Package
from ..scheduler.queues import QueueConfig
from ..yum.repoconfig import RepoStanza
from ..yum.repository import Repository

__all__ = ["HardwarePlan", "ClusterDefinition"]


@dataclass(frozen=True)
class HardwarePlan:
    """A chassis plus the nodes intended for it, *before* population.

    :func:`repro.hardware.chassis.populate` raises on the first violation;
    the plan form lets the analyzer report every violation at once, as lint.
    ``shared_psu`` overrides the chassis supply (the historical-LittleFe
    arrangement).
    """

    chassis: ChassisModel
    nodes: tuple[Node, ...]
    shared_psu: PsuModel | None = None

    @property
    def effective_shared_psu(self) -> PsuModel | None:
        return self.shared_psu or self.chassis.shared_psu

    @classmethod
    def from_machine(cls, machine: Machine) -> "HardwarePlan":
        return cls(
            chassis=machine.chassis,
            nodes=tuple(machine.nodes),
            shared_psu=machine.shared_psu,
        )


@dataclass
class ClusterDefinition:
    """Everything the pre-flight analyzer can inspect about one cluster.

    Fields default to "absent"; each analyzer pass checks only the layers
    that are present.  ``packages`` carries universe members that no roll
    owns (the OS base set); ``repositories`` carry content (NEVRAs) while
    ``repo_stanzas`` carry configuration (``.repo`` files) — both are
    checked, against different rules.
    """

    name: str
    #: kickstart layer
    graph: KickstartGraph | None = None
    profiles: tuple[str, ...] = (Profile.FRONTEND, Profile.COMPUTE)
    rolls: tuple[Roll, ...] = ()
    #: package universe beyond the rolls (OS base set, extra RPMs)
    packages: tuple[Package, ...] = ()
    #: yum layer
    repo_stanzas: tuple[RepoStanza, ...] = ()
    repositories: tuple[Repository, ...] = ()
    #: repo ids the recipe depends on (install sources); must exist + be enabled
    required_repo_ids: tuple[str, ...] = ()
    #: hardware layer (either a validated machine or a raw plan)
    machine: Machine | None = None
    hardware_plan: HardwarePlan | None = None
    #: network layer
    dhcp_plan: DhcpPlan | None = None
    #: MACs that will be fed to insert-ethers (compute nodes, in power-on order)
    macs: tuple[str, ...] = ()
    #: scheduler layer
    queues: tuple[QueueConfig, ...] = ()

    # -- derived views ------------------------------------------------------

    def package_universe(self) -> list[Package]:
        """Every package the definition knows about, deduped by NEVRA."""
        seen: set[str] = set()
        universe: list[Package] = []

        def take(pkg: Package) -> None:
            if pkg.nevra not in seen:
                seen.add(pkg.nevra)
                universe.append(pkg)

        for pkg in self.packages:
            take(pkg)
        for roll in self.rolls:
            for pkg in roll.packages:
                take(pkg)
        for repo in self.repositories:
            for pkg in repo.all_packages():
                take(pkg)
        return universe

    def effective_hardware_plan(self) -> HardwarePlan | None:
        """The hardware to lint: the explicit plan, else the machine's."""
        if self.hardware_plan is not None:
            return self.hardware_plan
        if self.machine is not None:
            return HardwarePlan.from_machine(self.machine)
        return None

    def node_inventory(self) -> set[str] | None:
        """Known node names (for scheduler checks); None when unknown."""
        plan = self.effective_hardware_plan()
        if plan is None:
            return None
        return {n.name for n in plan.nodes}

    def effective_macs(self) -> tuple[str, ...]:
        """MACs insert-ethers will see: explicit list, else compute nodes'."""
        if self.macs:
            return self.macs
        plan = self.effective_hardware_plan()
        if plan is None:
            return ()
        from ..hardware.node import NodeRole

        return tuple(
            n.mac_address for n in plan.nodes if n.role == NodeRole.COMPUTE
        )

    # -- construction helpers ----------------------------------------------

    @classmethod
    def from_cluster(cls, cluster, *, name: str | None = None) -> "ClusterDefinition":
        """Lint a provisioned cluster's recipe (post-hoc pre-flight).

        Accepts a :class:`~repro.rocks.installer.ProvisionedCluster`; pulls
        the graph, rolls, distribution repository, machine, and the private
        segment's DHCP pool out of it, and derives a default queue config
        from the hardware.
        """
        from ..scheduler.queues import default_queue_for

        machine = cluster.machine
        dhcp = cluster.network.dhcp
        return cls(
            name=name or machine.name,
            graph=cluster.graph,
            rolls=tuple(cluster.rolls.values()),
            repositories=(cluster.distribution,),
            required_repo_ids=(cluster.distribution.repo_id,),
            machine=machine,
            dhcp_plan=DhcpPlan(
                network_prefix=dhcp.network_prefix,
                pool_start=dhcp.pool_start,
                pool_end=dhcp.pool_end,
            ),
            macs=tuple(n.mac_address for n in machine.compute_nodes),
            queues=(default_queue_for(machine),),
        )

"""Update-storm CLI: drive the repository service through an overload run.

::

    python -m repro.repod                        # governed storm, default fleet
    python -m repro.repod --naive-style          # the ablation: no retry budget,
                                                 # hammering clients
    python -m repro.repod --seed 7 --clients 10 --trace storm.jsonl
    python -m repro.repod --check-determinism    # run twice, diff traces

Exit codes: 0 the invariant audit is clean (and, in governed mode, the
goodput floor holds); 1 audit findings or determinism divergence; 2 bad
flags or setup errors.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from ..errors import ReproError
from .storm import UpdateStormScenario

_ABLATION_NOTE = (
    "naive-style clients: fixed short backoff, no retry budget "
    "(the pre-SRE baseline — expect a retry storm)"
)


def _run(args) -> tuple[UpdateStormScenario, object]:
    scenario = UpdateStormScenario(
        seed=args.seed,
        campuses=args.campuses,
        clients_per_campus=args.clients,
        governed=not args.naive_style,
        slots=args.slots,
        queue_limit=args.queue_limit,
        goodput_floor=args.goodput_floor,
    )
    report = scenario.run()
    return scenario, report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.repod",
        description="Run the XNIT repository service through an update "
        "storm (origin crash + uplink flaps) and audit its invariants.",
    )
    parser.add_argument("--seed", type=int, default=2015, help="kernel RNG seed")
    parser.add_argument(
        "--campuses", type=int, default=None,
        help="how many Table 3 campuses sync (default: all)",
    )
    parser.add_argument(
        "--clients", type=int, default=6, metavar="N",
        help="workshop clients per campus (default: 6)",
    )
    parser.add_argument(
        "--slots", type=int, default=2,
        help="origin connection slots (default: 2)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=2,
        help="origin admission-queue depth (default: 2)",
    )
    parser.add_argument(
        "--goodput-floor", type=float, default=0.9, metavar="F",
        help="governed runs must deliver this fraction of offered "
        "requests (default: 0.9)",
    )
    parser.add_argument(
        "--naive-style", action="store_true", help=_ABLATION_NOTE
    )
    parser.add_argument(
        "--trace", type=pathlib.Path, default=None,
        help="write the JSONL trace here",
    )
    parser.add_argument(
        "--check-determinism", action="store_true",
        help="run the scenario twice and require byte-identical traces",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument("--quiet", action="store_true", help="suppress the report")
    args = parser.parse_args(argv)

    try:
        scenario, report = _run(args)
    except (ReproError, OSError) as exc:
        print(f"storm run failed: {exc}", file=sys.stderr)
        return 2

    jsonl = scenario.kernel.trace.to_jsonl()
    if args.trace is not None:
        args.trace.write_text(jsonl)

    if args.json:
        # Machine output: --quiet silences the human report, not this.
        print(json.dumps(report.state_dict(), indent=1, sort_keys=True))
    elif not args.quiet:
        style = "naive" if args.naive_style else "governed"
        print(
            f"storm: {style} seed={args.seed} "
            f"campuses={report.campuses} clients={report.clients} "
            f"t_end={report.elapsed_s:.0f}s"
        )
        print(
            f"  offered={report.offered} ok={report.ok} "
            f"stale={report.stale} failed={report.failed} "
            f"goodput={report.goodput_ratio:.1%}"
        )
        print(
            f"  origin: arrivals={report.origin_arrivals} "
            f"served={report.origin_served} "
            f"shed={report.origin_shed_full + report.origin_shed_deadline} "
            f"refused={report.origin_refused}"
        )
        print(
            f"  proxies: hits={report.proxy_hits} "
            f"misses={report.proxy_misses} "
            f"coalesced={report.proxy_coalesced} "
            f"stale_served={report.proxy_stale_served} "
            f"resets={report.uplink_resets}"
        )
        print(
            f"  retries={report.retries} "
            f"budget granted={report.budget_granted} "
            f"denied={report.budget_denied}"
        )
        if report.problems:
            print("INVARIANT VIOLATIONS:")
            for problem in report.problems:
                print(f"  - {problem}")
        else:
            print("invariants: all hold")

    status = 0 if not report.problems else 1

    if args.check_determinism:
        rerun, _ = _run(args)
        if rerun.kernel.trace.to_jsonl() != jsonl:
            print(
                "determinism check FAILED: same seed produced different "
                "traces", file=sys.stderr,
            )
            status = 1
        elif not args.quiet:
            print(
                f"determinism check: OK "
                f"({len(jsonl.encode())} bytes, both runs identical)"
            )

    return status


if __name__ == "__main__":
    sys.exit(main())

"""Round-robin archives: Ganglia's fixed-size metric history.

An :class:`Rrd` stores the last N samples of one metric at a fixed step,
consolidating (averaging) finer samples into each slot — constant storage
regardless of how long the cluster runs, which is the whole point of RRD.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .metrics import MonitoringError

__all__ = ["Rrd", "RrdPoint"]


@dataclass(frozen=True)
class RrdPoint:
    """One consolidated slot."""

    slot_start_s: float
    value: float
    samples: int


class Rrd:
    """One metric's ring buffer.

    ``step_s`` is the slot width; ``slots`` the ring size.  Samples may
    arrive slightly late as long as they land in the current slot (rrdtool
    tolerates sub-step jitter the same way): a late same-slot sample
    *overwrites* the slot — last write wins.  A sample from an already
    closed slot is out of order and rejected.  Querying returns
    consolidated points, oldest first.
    """

    def __init__(self, *, step_s: float = 15.0, slots: int = 240) -> None:
        if step_s <= 0 or slots <= 0:
            raise MonitoringError("step and slots must be positive")
        self.step_s = step_s
        self.slots = slots
        self._ring: list[tuple[int, float, int] | None] = [None] * slots
        self._last_time: float = -math.inf

    def _slot_index(self, timestamp_s: float) -> int:
        return int(timestamp_s // self.step_s)

    def update(self, timestamp_s: float, value: float) -> None:
        """Record one sample, consolidating into its slot by averaging.

        A sample timestamped earlier than the last one is accepted if it
        still falls in the current slot (it overwrites the slot — last
        write wins, matching rrdtool's tolerance for sub-step jitter);
        one from an earlier slot is rejected as out of order.
        """
        absolute = self._slot_index(timestamp_s)
        late = timestamp_s < self._last_time
        if late and absolute < self._slot_index(self._last_time):
            raise MonitoringError(
                f"out-of-order sample: {timestamp_s} after {self._last_time}"
            )
        self._last_time = max(self._last_time, timestamp_s)
        position = absolute % self.slots
        held = self._ring[position]
        if not late and held is not None and held[0] == absolute:
            _abs, total, count = held
            self._ring[position] = (absolute, total + value, count + 1)
        else:
            self._ring[position] = (absolute, value, 1)

    def series(self) -> list[RrdPoint]:
        """Consolidated points currently held, oldest first."""
        points = [
            RrdPoint(
                slot_start_s=absolute * self.step_s,
                value=total / count,
                samples=count,
            )
            for entry in self._ring
            if entry is not None
            for absolute, total, count in [entry]
        ]
        return sorted(points, key=lambda p: p.slot_start_s)

    def latest(self) -> RrdPoint | None:
        """The most recent consolidated point, or None when empty."""
        series = self.series()
        return series[-1] if series else None

    def mean(self) -> float:
        """Sample-weighted mean over the whole retained window."""
        series = self.series()
        if not series:
            raise MonitoringError("empty RRD")
        total = sum(p.value * p.samples for p in series)
        count = sum(p.samples for p in series)
        return total / count

    def maximum(self) -> float:
        """Max consolidated value retained."""
        series = self.series()
        if not series:
            raise MonitoringError("empty RRD")
        return max(p.value for p in series)

    def __len__(self) -> int:
        return sum(1 for entry in self._ring if entry is not None)

    def state_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot of the ring (checkpoint participation).

        ``last_time`` uses None for the never-updated sentinel (-inf is
        not representable in strict JSON).
        """
        return {
            "step_s": self.step_s,
            "slots": self.slots,
            "ring": [list(e) if e is not None else None for e in self._ring],
            "last_time": None if math.isinf(self._last_time) else self._last_time,
        }

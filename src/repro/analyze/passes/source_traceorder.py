"""simlint trace-order race detector (``SL3xx``): same-timestamp hazards.

PR 5's batched kernel drain executes every event scheduled at one
timestamp in a single sweep, ordered by the ``(time, seq)`` heap key —
registration order is the tiebreak (docs/SIM.md).  Two callbacks scheduled
at the *same* time that write the *same* state therefore produce a result
that depends on the order the scheduling lines run, which is exactly the
kind of incidental ordering a refactor silently changes.

* ``SL301`` (static) — within one function, two-plus ``kernel.at(...)``
  registrations at a syntactically identical time whose callbacks (lambdas
  or same-scope ``def``\\ s) assign overlapping attributes.  The outcome
  rides on registration order with no declared ``seq`` contract; schedule
  at distinct times, merge the callbacks, or document the FIFO dependence.
* ``SL302`` (dynamic) — :func:`check_trace` replays a trace JSONL with
  same-timestamp events permuted and byte-compares the canonical
  re-serialisation against the original: if re-sorting the permuted events
  by ``seq`` does not reproduce the file byte-for-byte, the trace is not
  canonically serialised and same-time batches have no authoritative
  order.  This is the sanitizer wiring for the batched drain.
* ``SL303`` (dynamic) — a same-timestamp batch with duplicate or
  non-monotonic ``seq`` values: the tiebreak the replay relies on does not
  exist.

The dynamic checks run from the CLI as
``python -m repro.analyze --source --check-trace trace.jsonl``.
"""

from __future__ import annotations

import ast
import json
from collections import defaultdict

from ..diagnostic import Diagnostic, Severity
from ..registry import rule
from ._pysource import iter_functions

__all__ = ["run", "check_trace"]

SL301 = rule(
    "SL301",
    "source",
    Severity.WARNING,
    "same-time callbacks write overlapping state with no seq contract",
    "schedule at distinct times, merge the callbacks into one handler, or "
    "make the registration-order (seq FIFO) dependence explicit",
)
SL302 = rule(
    "SL302",
    "source",
    Severity.ERROR,
    "trace is not invariant under same-timestamp permutation",
    "serialise with sort_keys and compact separators and stamp each event "
    "with the kernel's seq so same-time batches have one canonical order",
)
SL303 = rule(
    "SL303",
    "source",
    Severity.ERROR,
    "same-timestamp events lack a usable seq tiebreak",
    "every event needs a unique, monotonically assigned integer seq — it "
    "is the only ordering authority inside a batched drain",
)

#: Attribute names that register a timed callback on the kernel.
_SCHEDULE_ATTRS = frozenset({"at", "schedule"})


# ---------------------------------------------------------------------------
# SL301: static same-time conflict detection


def _callback_writes(node: ast.AST, scope: dict[str, ast.FunctionDef]) -> set[str]:
    """Dotted attribute targets a callback assigns (``self.count``, ...)."""
    body: list[ast.stmt] | None = None
    if isinstance(node, ast.Lambda):
        # a lambda body is an expression; the only writes it can perform are
        # through calls, which we cannot see — treat calls to same-scope
        # functions as those functions' writes.
        target = node.body
        if isinstance(target, ast.Call) and isinstance(target.func, ast.Name):
            resolved = scope.get(target.func.id)
            if resolved is not None:
                body = resolved.body
    elif isinstance(node, ast.Name):
        resolved = scope.get(node.id)
        if resolved is not None:
            body = resolved.body
    if body is None:
        return set()
    writes: set[str] = set()
    for stmt in body:
        for sub in ast.walk(stmt):
            targets: list[ast.expr] = []
            if isinstance(sub, ast.Assign):
                targets = sub.targets
            elif isinstance(sub, ast.AugAssign):
                targets = [sub.target]
            for target in targets:
                if isinstance(target, ast.Attribute):
                    parts = []
                    value: ast.AST = target
                    while isinstance(value, ast.Attribute):
                        parts.append(value.attr)
                        value = value.value
                    if isinstance(value, ast.Name):
                        parts.append(value.id)
                        writes.add(".".join(reversed(parts)))
    return writes


def run(tree: ast.Module, path: str, emit) -> None:
    """Run SL301 over one parsed source file."""
    module_defs = {
        f.name: f for f in tree.body if isinstance(f, ast.FunctionDef)
    }
    for fn in iter_functions(tree):
        scope = dict(module_defs)
        scope.update(
            {f.name: f for f in fn.body if isinstance(f, ast.FunctionDef)}
        )
        by_time: dict[str, list[tuple[ast.Call, set[str]]]] = defaultdict(list)
        for node in ast.walk(fn):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SCHEDULE_ATTRS
                and len(node.args) >= 2
            ):
                continue
            time_key = ast.dump(node.args[0])
            writes = _callback_writes(node.args[1], scope)
            by_time[time_key].append((node, writes))
        for group in by_time.values():
            if len(group) < 2:
                continue
            for i, (call_a, writes_a) in enumerate(group):
                for call_b, writes_b in group[i + 1:]:
                    overlap = writes_a & writes_b
                    if overlap:
                        emit(
                            "SL301",
                            f"callbacks scheduled at the same time both "
                            f"write {', '.join(sorted(overlap))} "
                            f"(lines {call_a.lineno} and {call_b.lineno}, "
                            f"in {fn.name})",
                            location=f"{path}:{call_a.lineno}",
                        )


# ---------------------------------------------------------------------------
# SL302/SL303: dynamic trace permutation check


def _canonical_line(obj: dict) -> str:
    """The TraceBus JSONL envelope, byte-for-byte (sim/trace.py)."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":")) + "\n"


def check_trace(text: str, *, location: str = "trace") -> list[Diagnostic]:
    """Replay a trace JSONL with same-timestamp events permuted.

    The permutation reverses each same-``t`` batch (the worst case a
    batched drain could reorder into), then restores order by ``seq`` alone
    and re-serialises canonically.  A deterministic trace comes back
    byte-identical; anything else is a finding:

    * a line that is not valid JSON, or lacks ``t``/``seq`` → ``SL303``;
    * duplicate ``seq`` inside a same-``t`` batch → ``SL303`` (no tiebreak);
    * the seq-restored canonical serialisation differs from the original
      bytes → ``SL302`` (the file embeds an order seq cannot reproduce).
    """
    out: list[Diagnostic] = []

    def diag(code: str, message: str, lineno: int | None = None) -> None:
        where = f"{location}:{lineno}" if lineno else location
        out.append(
            Diagnostic(
                code=code,
                severity=Severity.ERROR,
                message=message,
                subsystem="source",
                location=where,
                hint=(SL303 if code == "SL303" else SL302).hint,
            )
        )

    lines = text.splitlines(keepends=True)
    events: list[tuple[int, dict, str]] = []  # (lineno, obj, raw line)
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            obj = json.loads(line)
        except json.JSONDecodeError as exc:
            diag("SL303", f"not valid JSON: {exc}", lineno)
            return out
        if not isinstance(obj, dict) or "t" not in obj or "seq" not in obj:
            diag("SL303", "event lacks the t/seq envelope fields", lineno)
            return out
        events.append((lineno, obj, line))

    # seq must be a usable tiebreak: unique within (and across) batches.
    seen_seq: dict[int, int] = {}
    for lineno, obj, _line in events:
        seq = obj["seq"]
        if not isinstance(seq, int):
            diag("SL303", f"seq {seq!r} is not an integer", lineno)
            continue
        if seq in seen_seq:
            diag(
                "SL303",
                f"seq {seq} already used on line {seen_seq[seq]} — "
                f"same-timestamp batches cannot be ordered",
                lineno,
            )
        else:
            seen_seq[seq] = lineno
    if out:
        return out

    # Permute every same-t batch (reverse it), then let seq restore order.
    batches: dict[float, list[tuple[int, dict, str]]] = defaultdict(list)
    order: list[float] = []
    for item in events:
        t = item[1]["t"]
        if t not in batches:
            order.append(t)
        batches[t].append(item)
    permuted: list[tuple[int, dict, str]] = []
    for t in order:
        permuted.extend(reversed(batches[t]))
    restored = sorted(permuted, key=lambda item: item[1]["seq"])

    rebuilt = "".join(_canonical_line(obj) for _lineno, obj, _raw in restored)
    original = "".join(raw for _lineno, _obj, raw in events)
    if rebuilt != original:
        first_bad = next(
            (
                lineno
                for (lineno, _obj, raw), (_l2, obj2, _r2) in zip(
                    events, restored
                )
                if _canonical_line(obj2) != raw
            ),
            events[0][0] if events else None,
        )
        diag(
            "SL302",
            "permuting same-timestamp events and restoring by seq does not "
            "reproduce the file byte-for-byte",
            first_bad,
        )
    return out

"""The Rocks cluster installer: frontend first, then PXE'd compute nodes.

This is the "all at once, from scratch" path (Abstract): pick rolls at
install time, build the frontend, then power compute nodes on under
insert-ethers.  Two paper-critical behaviours live here:

* **Rocks does not support diskless installation** (Section 5.1) — the
  installer refuses any node without a local drive, which is exactly why
  the modified LittleFe adds an mSATA drive per node and why the diskless
  Limulus compute nodes cannot take the XCBC-from-scratch path (they use
  XNIT instead, Section 5.2);
* the kickstart graph decides what lands on each appliance, so adding the
  XSEDE roll changes every node built afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..distro.distribution import CENTOS_6_5, DistroRelease
from ..distro.host import Host
from ..errors import ProvisionError, RocksError
from ..fleet import fold_names
from ..hardware.chassis import Machine
from ..network.pxe import BootImage, PxeServer
from ..network.topology import ClusterNetwork, build_cluster_network
from ..rpm.database import RpmDatabase
from ..rpm.transaction import Transaction
from ..yum.depsolver import resolve_install
from ..yum.repository import Repository, RepoSet
from .database import HostRecord, InstallState, RocksDatabase
from .insert_ethers import InsertEthers
from .kickstart import GraphNode, KickstartGraph, Profile
from .roll import Roll
from .rolls_catalog import all_standard_rolls, base_os_packages, base_roll

__all__ = [
    "ProvisionedCluster",
    "RocksInstaller",
    "install_cluster",
    "recover_install",
]


@dataclass
class ProvisionedCluster:
    """A fully installed Rocks cluster."""

    machine: Machine
    network: ClusterNetwork
    release: DistroRelease
    graph: KickstartGraph
    distribution: Repository
    rocksdb: RocksDatabase
    frontend: Host
    frontend_db: RpmDatabase
    compute: dict[str, tuple[Host, RpmDatabase]] = field(default_factory=dict)
    rolls: dict[str, Roll] = field(default_factory=dict)
    scheduler_choice: str = "torque"
    #: the template compute (host, db) when installed golden-image style
    #: (``materialize=False``); per-node state lives in the fleet table.
    golden_image: tuple[Host, RpmDatabase] | None = None
    #: lazy per-node builder wired up by golden-image installs
    _materializer: Callable[[str], tuple[Host, RpmDatabase]] | None = None

    def host_for(self, name: str) -> Host:
        """The live :class:`Host` of any installed cluster member.

        Materialized installs find it in :attr:`compute`; golden-image
        installs build the node's host lazily on first access (and cache
        it), so a 10k-node cluster only pays per-node object cost for the
        nodes something actually touches.
        """
        if name in self.compute:
            return self.compute[name][0]
        record = self.rocksdb.get(name)
        if record.appliance == "frontend":
            return self.frontend
        if (
            self._materializer is None
            or record.state is not InstallState.INSTALLED
        ):
            raise RocksError(f"host {name} is not part of this cluster")
        host, db = self._materializer(name)
        self.compute[name] = (host, db)
        return host

    def hosts(self) -> list[Host]:
        """Frontend first, then compute nodes in database order."""
        out = [self.frontend]
        for record in self.rocksdb.compute_hosts():
            if record.name in self.compute:
                out.append(self.compute[record.name][0])
        return out

    def db_for(self, host: Host) -> RpmDatabase:
        """The RPM database of any cluster host."""
        if host is self.frontend:
            return self.frontend_db
        for cand, db in self.compute.values():
            if cand is host:
                return db
        raise RocksError(f"host {host.name} is not part of this cluster")

    def installed_everywhere(self) -> set[str]:
        """Package names present on every node (the cluster's uniform
        software environment — the consistency XCBC is about)."""
        common = set(self.frontend_db.names())
        for _host, db in self.compute.values():
            common &= db.names()
        return common

    def roll_names(self) -> list[str]:
        return sorted(self.rolls)

    def failed_hosts(self) -> list[str]:
        """Compute nodes whose kickstart crashed (state FAILED).

        Feed these to ``ClusterResources(machine, exclude=...)`` so a
        half-provisioned node never becomes schedulable capacity."""
        return [
            r.name
            for r in self.rocksdb.compute_hosts()
            if r.state is InstallState.FAILED
        ]


class RocksInstaller:
    """Drives one from-scratch installation."""

    def __init__(
        self,
        machine: Machine,
        *,
        rolls: list[Roll] | None = None,
        scheduler: str = "torque",
        release: DistroRelease = CENTOS_6_5,
        journal=None,
        delivery=None,
    ) -> None:
        standard = all_standard_rolls()
        if scheduler not in ("torque", "slurm", "sge"):
            raise RocksError(f"unknown job-management roll {scheduler!r}")
        self.machine = machine
        self.release = release
        self.scheduler = scheduler
        selected: dict[str, Roll] = {"base": standard["base"], scheduler: standard[scheduler]}
        for roll in rolls or []:
            if roll.name in selected:
                raise RocksError(f"roll {roll.name} selected twice")
            selected[roll.name] = roll
        self.rolls = selected
        #: optional write-ahead :class:`~repro.recovery.Journal`: each
        #: compute node's discovery + kickstart becomes a ``rocks.install``
        #: transaction, so a frontend crash mid-provision leaves an open
        #: entry instead of a silently half-registered host —
        #: :func:`recover_install` rolls the phantom record back.
        self.journal = journal
        #: optional :class:`~repro.cas.LazyDelivery`: every kickstart
        #: transaction pulls package chunks through the site cache on
        #: first reference instead of assuming a pre-populated mirror.
        self.delivery = delivery
        self._crash_macs: set[str] = set()

    def inject_kickstart_crash(self, mac: str) -> None:
        """The next kickstart of this MAC dies mid-install (lost power,
        dead disk).  The install transaction aborts — nothing half-lands
        on the node — and :meth:`run` either raises or, with
        ``continue_on_error``, records the node as FAILED and moves on."""
        self._crash_macs.add(mac)

    # -- validation ---------------------------------------------------------------

    def _check_disks(self) -> None:
        """Rocks refuses diskless nodes (Section 5.1)."""
        diskless = [n.name for n in self.machine.nodes if n.diskless]
        if diskless:
            raise ProvisionError(
                f"Rocks does not support diskless installation; nodes "
                f"without drives: {diskless} (add a disk per node, as the "
                f"modified LittleFe does, or integrate via XNIT instead)"
            )

    # -- build steps -----------------------------------------------------------------

    def build_graph(self) -> KickstartGraph:
        """The kickstart graph this installation would use.

        Side-effect free — nothing is installed — which makes it the
        pre-flight entry point: the analyzer lints this graph before
        :meth:`run` ever touches a node.
        """
        return self._build_graph()

    def build_distribution(self) -> Repository:
        """The local distribution :meth:`run` would populate (side-effect
        free, for pre-flight analysis)."""
        return self._build_distribution()

    def _build_graph(self) -> KickstartGraph:
        graph = KickstartGraph()
        graph.add_node(GraphNode(name=Profile.FRONTEND, roll="base"))
        graph.add_node(GraphNode(name=Profile.COMPUTE, roll="base"))
        os_node = GraphNode(
            name="os-base",
            packages=[p.name for p in base_os_packages(self.release)],
            enable_services=["sshd", "crond"],
            roll="os",
        )
        graph.add_node(os_node)
        graph.add_edge(Profile.FRONTEND, "os-base")
        graph.add_edge(Profile.COMPUTE, "os-base")
        for roll in self.rolls.values():
            roll.apply_to_graph(graph)
        return graph

    def _build_distribution(self) -> Repository:
        """The frontend's local distribution: OS packages + roll packages."""
        dist = Repository(
            "rocks-dist",
            name=f"Rocks {self.release.release_string} distribution",
            priority=10,
        )
        dist.add_all(base_os_packages(self.release))
        for roll in self.rolls.values():
            for pkg in roll.packages:
                if not any(
                    existing.nevra == pkg.nevra
                    for existing in dist.versions_of(pkg.name)
                ):
                    dist.add(pkg)
        return dist

    def _consume_crash(self, hostname: str, mac: str) -> None:
        """Raise the injected mid-kickstart crash for ``mac``, if armed."""
        if mac in self._crash_macs:
            # Injected mid-kickstart crash: the transaction never commits,
            # so the node holds no packages — there is no half-installed
            # state to reconcile, only a FAILED record.
            self._crash_macs.discard(mac)
            raise ProvisionError(
                f"{hostname}: node lost power mid-kickstart; "
                f"install transaction aborted"
            )

    def _kickstart_host(
        self,
        host: Host,
        graph: KickstartGraph,
        distribution: Repository,
        profile: str,
        *,
        plan_cache: dict | None = None,
        inject: bool = True,
    ) -> RpmDatabase:
        """Install a profile's package closure onto a host and enable its
        services — one node's kickstart.

        ``plan_cache`` enables wave-shared transaction plans: identical
        kickstarts (same profile, same empty-DB fingerprint, same package
        set) validate and order once, then every other host in the wave
        commits through the cached :class:`TransactionPlan`.
        """
        db = RpmDatabase(host)
        repos = RepoSet([distribution])
        wanted = graph.resolve_packages(profile)
        resolution = resolve_install(wanted, repos, db)
        txn = Transaction(db, delivery=self.delivery)
        for pkg in resolution.to_install:
            txn.install(pkg)
        if inject:
            self._consume_crash(host.hostname, host.node.mac_address)
        if plan_cache is None:
            txn.commit()
        else:
            key = (
                profile,
                db.fingerprint(),
                tuple(sorted(p.nevra for p in resolution.to_install)),
            )
            plan = plan_cache.get(key)
            if plan is None:
                plan = txn.plan()
                plan_cache[key] = plan
            txn.commit_planned(plan)
        for service in graph.resolve_services(profile):
            host.services.enable(service)
        host.services.boot()
        for action in graph.resolve_actions(profile):
            host.fs.write(
                f"/var/log/rocks-post/{action.replace(' ', '-')}",
                f"executed: {action}\n",
            )
        return db

    # -- the install ------------------------------------------------------------------

    def _build_golden_image(
        self, graph, distribution, plan_cache: dict
    ) -> tuple[Host, RpmDatabase]:
        """Kickstart one template compute host off-fleet (golden image)."""
        template_node = self.machine.compute_nodes[0]
        host = Host(template_node, self.release)
        host.hostname = "compute-image"
        db = self._kickstart_host(
            host,
            graph,
            distribution,
            Profile.COMPUTE,
            plan_cache=plan_cache,
            inject=False,
        )
        return host, db

    def run(
        self,
        *,
        continue_on_error: bool = False,
        wave_size: int = 1,
        kernel=None,
        materialize: bool = True,
    ) -> ProvisionedCluster:
        """Perform the full installation and return the live cluster.

        With ``continue_on_error``, a compute node whose kickstart crashes
        is recorded as :attr:`InstallState.FAILED`, powered off, and left
        out of the cluster's compute map (and hence out of any scheduler
        resources built from it); the install proceeds to the next node.
        Without it, the first crash raises :class:`ProvisionError`.

        ``wave_size`` batches compute nodes into bounded-concurrency
        install waves: each wave discovers its MACs in one insert-ethers
        pass and its (identical) kickstart transactions share one
        validated :class:`~repro.rpm.transaction.TransactionPlan` instead
        of re-validating per node.  ``wave_size=1`` is the classic
        node-at-a-time path.  Pass a ``kernel`` to emit one
        ``install.wave`` trace event per wave (nodes as a folded NodeSet
        string — MAC-free, so same-seed traces stay byte-identical).

        ``materialize=False`` installs golden-image style: one template
        compute host is kickstarted, per-node state (install state, cores,
        memory) lands in the fleet table columns only, and
        :meth:`ProvisionedCluster.host_for` materializes individual hosts
        lazily.  This is what makes a 10k-node install tractable.
        """
        if wave_size < 1:
            raise RocksError(f"wave size must be positive, got {wave_size}")
        self._check_disks()
        graph = self._build_graph()
        distribution = self._build_distribution()
        network = build_cluster_network(self.machine)

        # 1. Frontend install (from the install media, no PXE involved).
        head = self.machine.head
        frontend = Host(head, self.release)
        frontend_db = self._kickstart_host(
            frontend, graph, distribution, Profile.FRONTEND
        )
        rocksdb = RocksDatabase()
        head_row = rocksdb.add_host(
            HostRecord(
                name=head.name,
                mac=head.mac_address,
                ip="10.1.1.1",
                appliance="frontend",
                rack=0,
                rank=0,
                state=InstallState.INSTALLED,
            )
        )
        head_row.cores = head.cores
        head_row.mem_kb = head.memory_bytes / 1024

        # 2. PXE infrastructure served by the frontend.
        pxe = PxeServer(network.dhcp)
        pxe.set_default_image(
            BootImage(name="rocks-kickstart", kickstart_profile=Profile.COMPUTE)
        )
        inserter = InsertEthers(db=rocksdb, dhcp=network.dhcp, pxe=pxe)

        cluster = ProvisionedCluster(
            machine=self.machine,
            network=network,
            release=self.release,
            graph=graph,
            distribution=distribution,
            rocksdb=rocksdb,
            frontend=frontend,
            frontend_db=frontend_db,
            rolls=dict(self.rolls),
            scheduler_choice=self.scheduler,
        )

        # 3. Power compute nodes on under insert-ethers — one at a time
        # (the classic path) or in bounded-concurrency waves.  Each node is
        # one journaled transaction: register (the database row
        # insert-ethers writes) then install.  A frontend crash leaves the
        # transaction open and recover_install() removes the
        # half-registered row; a *node*-side kickstart crash is a clean
        # abort (the FAILED record is deliberate state, not a phantom).
        compute_nodes = self.machine.compute_nodes
        plan_cache: dict = {}

        golden_db: RpmDatabase | None = None
        if not materialize and compute_nodes:
            golden = self._build_golden_image(graph, distribution, plan_cache)
            golden_db = golden[1]
            cluster.golden_image = golden

            def _materialize_host(name: str) -> tuple[Host, RpmDatabase]:
                rec = rocksdb.get(name)
                node = next(
                    n for n in compute_nodes if n.mac_address == rec.mac
                )
                host = Host(node, self.release)
                host.hostname = name
                db = self._kickstart_host(
                    host,
                    graph,
                    distribution,
                    Profile.COMPUTE,
                    plan_cache=plan_cache,
                    inject=False,
                )
                return host, db

            cluster._materializer = _materialize_host

        for wave_index, start in enumerate(
            range(0, len(compute_nodes), wave_size)
        ):
            wave = compute_nodes[start : start + wave_size]
            if wave_size == 1:
                rows = None
            else:
                rows = inserter.discover_wave([n.mac_address for n in wave])
            wave_names: list[str] = []
            wave_pkgs = len(golden_db.names()) if golden_db is not None else 0
            for pos, node in enumerate(wave):
                txn = (
                    self.journal.begin("rocks.install", mac=node.mac_address)
                    if self.journal is not None
                    else None
                )
                record = (
                    rows[pos]
                    if rows is not None
                    else inserter.discover_boot(node.mac_address)
                )
                if txn is not None:
                    reg_op = self.journal.intent(
                        txn, "register", name=record.name, mac=node.mac_address
                    )
                    self.journal.applied(txn, reg_op)
                rocksdb.set_state(record.name, InstallState.INSTALLING)
                compute_host: Host | None = None
                if materialize:
                    compute_host = Host(node, self.release)
                    compute_host.hostname = record.name
                install_op = (
                    self.journal.intent(txn, "install", name=record.name)
                    if txn is not None
                    else None
                )
                try:
                    if materialize:
                        assert compute_host is not None
                        # wave_size=1 calls with the exact legacy signature
                        # (tests wrap _kickstart_host positionally).
                        if wave_size > 1:
                            compute_db = self._kickstart_host(
                                compute_host,
                                graph,
                                distribution,
                                Profile.COMPUTE,
                                plan_cache=plan_cache,
                            )
                        else:
                            compute_db = self._kickstart_host(
                                compute_host, graph, distribution,
                                Profile.COMPUTE,
                            )
                    else:
                        # Golden-image install: the image already holds the
                        # packages; only the injected-crash check runs per
                        # node.
                        self._consume_crash(record.name, node.mac_address)
                except ProvisionError:
                    if not continue_on_error:
                        if txn is not None:
                            self.journal.abort(txn, note="kickstart failed")
                        raise
                    rocksdb.set_state(record.name, InstallState.FAILED)
                    node.powered_on = False
                    pxe.clear_assignment(node.mac_address)
                    if txn is not None:
                        self.journal.abort(
                            txn, note="kickstart failed; node recorded FAILED"
                        )
                    continue
                # Fill the node-facing fleet columns monitoring and the
                # scheduler read straight off the table.
                record.cores = node.cores
                record.mem_kb = node.memory_bytes / 1024
                rocksdb.set_state(record.name, InstallState.INSTALLED)
                pxe.clear_assignment(node.mac_address)
                if materialize:
                    assert compute_host is not None
                    cluster.compute[record.name] = (compute_host, compute_db)
                    wave_pkgs = len(compute_db.names())
                if txn is not None:
                    assert install_op is not None
                    self.journal.applied(txn, install_op)
                    self.journal.commit(txn)
                wave_names.append(record.name)
            if kernel is not None and wave_names:
                kernel.trace.emit(
                    "install.wave",
                    t_s=kernel.now_s,
                    subsystem="rocks",
                    wave=wave_index,
                    nodes=fold_names(wave_names),
                    count=len(wave_names),
                    pkgs=wave_pkgs,
                )
        return cluster

    def replace_node(
        self, cluster: ProvisionedCluster, name: str, *, new_mac: str
    ) -> Host:
        """Swap a dead node's board: new MAC, rediscovery, fresh install.

        The Rocks workflow for failed hardware: ``rocks remove host``, run
        insert-ethers, power the replacement on.  The record keeps the same
        compute-<rack>-<rank> name only if it is re-discovered first, so we
        remove and re-register explicitly at the same rack/rank.
        """
        record = cluster.rocksdb.get(name)
        if record.appliance != "compute":
            raise RocksError("only compute nodes can be replaced")
        node = next(
            n for n in self.machine.compute_nodes if n.mac_address == record.mac
        )
        cluster.rocksdb.remove_host(name)
        node.mac_address = new_mac  # the replacement board's NIC
        node.powered_on = True
        cluster.rocksdb.add_host(
            HostRecord(
                name=name,
                mac=new_mac,
                ip=record.ip,
                appliance="compute",
                rack=record.rack,
                rank=record.rank,
                state=InstallState.INSTALLING,
            )
        )
        host = Host(node, self.release)
        host.hostname = name
        db = self._kickstart_host(
            host, cluster.graph, cluster.distribution, Profile.COMPUTE
        )
        cluster.compute[name] = (host, db)
        record = cluster.rocksdb.get(name)
        record.cores = node.cores
        record.mem_kb = node.memory_bytes / 1024
        cluster.rocksdb.set_state(name, InstallState.INSTALLED)
        return host

    def reinstall_node(self, cluster: ProvisionedCluster, name: str) -> Host:
        """Re-kickstart one compute node (Rocks' usual fix for drift)."""
        record = cluster.rocksdb.get(name)
        if record.appliance != "compute":
            raise RocksError("only compute nodes can be reinstalled in place")
        node = next(
            n for n in self.machine.compute_nodes if n.mac_address == record.mac
        )
        cluster.rocksdb.set_state(name, InstallState.INSTALLING)
        host = Host(node, self.release)
        host.hostname = name
        db = self._kickstart_host(
            host, cluster.graph, cluster.distribution, Profile.COMPUTE
        )
        cluster.compute[name] = (host, db)
        record.cores = node.cores
        record.mem_kb = node.memory_bytes / 1024
        cluster.rocksdb.set_state(name, InstallState.INSTALLED)
        return host


def recover_install(journal, rocksdb: RocksDatabase) -> list:
    """Resolve open ``rocks.install`` journal transactions after a crash.

    A frontend that died between registering a node (insert-ethers wrote
    the database row) and finishing its kickstart leaves the row pointing
    at a node with no OS — a half-registered host that would poison every
    tool reading the hosts table.  Recovery removes those rows in strict
    reverse order; the node re-registers cleanly on the next insert-ethers
    run.  Returns the transactions rolled back.
    """
    from ..recovery.journal import OpState

    resolved = []
    for txn in journal.open_txns("rocks.install"):
        for op in reversed(txn.ops):
            if op.state is OpState.UNDONE:
                continue
            if op.op == "register":
                name = op.payload["name"]
                try:
                    rocksdb.get(name)
                except RocksError:
                    pass  # row never landed; nothing to remove
                else:
                    rocksdb.remove_host(name)
            journal.undone(txn, op)
        journal.rolled_back(txn)
        resolved.append(txn)
    return resolved


def install_cluster(
    machine: Machine,
    *,
    rolls: list[Roll] | None = None,
    scheduler: str = "torque",
    release: DistroRelease = CENTOS_6_5,
    wave_size: int | None = None,
) -> ProvisionedCluster:
    """Convenience wrapper: build and run a :class:`RocksInstaller`.

    ``wave_size=None`` auto-selects: small sites install node-at-a-time
    (the classic insert-ethers cadence), campus-scale sites in waves of 32
    with a shared transaction plan per wave — same resulting cluster,
    linear instead of quadratic validation cost.
    """
    if wave_size is None:
        wave_size = 32 if len(machine.compute_nodes) > 32 else 1
    return RocksInstaller(
        machine, rolls=rolls, scheduler=scheduler, release=release
    ).run(wave_size=wave_size)

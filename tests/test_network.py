"""Fabric, DHCP, PXE, and topology tests."""

import pytest

from repro.errors import DhcpError, NetworkError, PxeError
from repro.hardware import GIGE_ONBOARD, FASTE_ONBOARD
from repro.network import (
    BootImage,
    DhcpServer,
    Endpoint,
    Fabric,
    PxeServer,
    Switch,
    build_cluster_network,
)


def tiny_fabric():
    fabric = Fabric()
    fabric.add_switch(Switch("sw0", ports=8))
    fabric.attach("sw0", Endpoint("a", GIGE_ONBOARD))
    fabric.attach("sw0", Endpoint("b", GIGE_ONBOARD))
    return fabric


class TestFabric:
    def test_same_switch_path(self):
        cost = tiny_fabric().path_cost("a", "b")
        assert cost.hops == 1
        # 2 NIC latencies + 1 switch latency
        assert cost.latency_s == pytest.approx((50 + 50 + 5) * 1e-6)

    def test_loopback_is_cheap(self):
        cost = tiny_fabric().path_cost("a", "a")
        assert cost.hops == 0
        assert cost.latency_s < 1e-5

    def test_multi_switch_path_adds_latency(self):
        fabric = Fabric()
        fabric.add_switch(Switch("sw0", ports=4))
        fabric.add_switch(Switch("sw1", ports=4))
        fabric.connect_switches("sw0", "sw1")
        fabric.attach("sw0", Endpoint("a", GIGE_ONBOARD))
        fabric.attach("sw1", Endpoint("b", GIGE_ONBOARD))
        two_hop = fabric.path_cost("a", "b")
        one_hop = tiny_fabric().path_cost("a", "b")
        assert two_hop.hops == 2
        assert two_hop.latency_s > one_hop.latency_s

    def test_disconnected_hosts_unreachable(self):
        fabric = Fabric()
        fabric.add_switch(Switch("sw0", ports=4))
        fabric.add_switch(Switch("sw1", ports=4))
        fabric.attach("sw0", Endpoint("a", GIGE_ONBOARD))
        fabric.attach("sw1", Endpoint("b", GIGE_ONBOARD))
        assert not fabric.reachable("a", "b")
        with pytest.raises(NetworkError, match="no path"):
            fabric.path_cost("a", "b")

    def test_bandwidth_is_slowest_nic(self):
        fabric = Fabric()
        fabric.add_switch(Switch("sw0", ports=4))
        fabric.attach("sw0", Endpoint("fast", GIGE_ONBOARD))
        fabric.attach("sw0", Endpoint("slow", FASTE_ONBOARD))
        cost = fabric.path_cost("fast", "slow")
        assert cost.bandwidth_bytes_s == pytest.approx(
            FASTE_ONBOARD.bandwidth_bytes_s * 0.94
        )

    def test_port_exhaustion(self):
        fabric = Fabric()
        fabric.add_switch(Switch("sw0", ports=1))
        fabric.attach("sw0", Endpoint("a", GIGE_ONBOARD))
        with pytest.raises(NetworkError, match="ports"):
            fabric.attach("sw0", Endpoint("b", GIGE_ONBOARD))

    def test_negative_message_size_rejected(self):
        cost = tiny_fabric().path_cost("a", "b")
        with pytest.raises(NetworkError):
            cost.transfer_time_s(-1)

    def test_transfer_time_alpha_beta(self):
        cost = tiny_fabric().path_cost("a", "b")
        t_small = cost.transfer_time_s(0)
        t_big = cost.transfer_time_s(10**6)
        assert t_small == pytest.approx(cost.latency_s)
        assert t_big == pytest.approx(cost.latency_s + 1e6 / cost.bandwidth_bytes_s)


class TestDhcp:
    def test_leases_are_deterministic_and_stable(self):
        server = DhcpServer()
        l1 = server.offer("02:aa", hostname="compute-0-0")
        l2 = server.offer("02:bb")
        again = server.offer("02:aa")
        assert l1.ip == "10.1.1.10"
        assert l2.ip == "10.1.1.11"
        assert again.ip == l1.ip

    def test_pool_exhaustion(self):
        server = DhcpServer(pool_start=10, pool_end=11)
        server.offer("02:aa")
        server.offer("02:bb")
        with pytest.raises(DhcpError, match="exhausted"):
            server.offer("02:cc")

    def test_release_does_not_recycle(self):
        server = DhcpServer()
        server.offer("02:aa")
        server.release("02:aa")
        fresh = server.offer("02:aa")
        assert fresh.ip == "10.1.1.11"  # next address, not the old one

    def test_unknown_macs_feed(self):
        server = DhcpServer()
        server.offer("02:aa")
        server.offer("02:bb")
        assert server.unknown_macs({"02:aa"}) == ["02:bb"]

    def test_empty_mac_rejected(self):
        with pytest.raises(DhcpError):
            DhcpServer().offer("")

    def test_bad_pool_rejected(self):
        with pytest.raises(DhcpError):
            DhcpServer(pool_start=0)


class TestPxe:
    def test_boot_with_default_image(self):
        dhcp = DhcpServer()
        pxe = PxeServer(dhcp)
        pxe.set_default_image(BootImage("ks", kickstart_profile="compute"))
        result = pxe.boot("02:aa")
        assert result.image.name == "ks"
        assert result.tftp_server_ip == dhcp.server_ip

    def test_boot_without_image_fails(self):
        pxe = PxeServer(DhcpServer())
        with pytest.raises(PxeError, match="no boot image"):
            pxe.boot("02:aa")

    def test_per_mac_assignment_overrides_default(self):
        pxe = PxeServer(DhcpServer())
        pxe.set_default_image(BootImage("default", kickstart_profile="compute"))
        pxe.assign_image("02:aa", BootImage("reinstall", kickstart_profile="compute"))
        assert pxe.boot("02:aa").image.name == "reinstall"
        pxe.clear_assignment("02:aa")
        assert pxe.boot("02:aa").image.name == "default"


class TestTopology:
    def test_dual_homed_wiring(self, littlefe_machine):
        net = build_cluster_network(littlefe_machine)
        head = littlefe_machine.head.name
        assert head in net.private_hosts()
        assert head in net.public_switch.attached_hosts()
        assert len(net.private_hosts()) == 6  # head + 5 compute

    def test_compute_macs_in_slot_order(self, littlefe_machine):
        net = build_cluster_network(littlefe_machine)
        expected = [n.mac_address for n in littlefe_machine.compute_nodes]
        assert net.compute_macs() == expected

    def test_single_nic_head_rejected(self, original_littlefe_quote):
        with pytest.raises(NetworkError, match="2 NICs"):
            build_cluster_network(original_littlefe_quote.machine)

    def test_compute_to_compute_reachable(self, littlefe_network):
        hosts = littlefe_network.private_hosts()
        assert littlefe_network.fabric.reachable(hosts[1], hosts[2])

#!/usr/bin/env python3
"""The Sections 3 + 5.2 walkthrough: retrofitting a Limulus HPC200 with XNIT.

The Limulus arrives as a commercial product — Scientific Linux, vendor
management stack, diskless compute blades (so the Rocks/XCBC path is out).
XNIT turns it into an XSEDE-compatible machine without disturbing anything:

1. enable the repository (both Section 3 setup paths shown);
2. check the compatibility score before;
3. integrate the full toolkit on every node, non-destructively;
4. score again; render the internals (the Figure 3 substitute);
5. run one update cycle when upstream publishes a new release, the prudent
   way (notify -> stage on a test node -> promote).
"""

from repro.core import (
    audit_host,
    build_limulus_cluster,
    build_xnit_repository,
    integrate_host,
    publish_release,
    setup_via_manual_repo_file,
    setup_via_repo_rpm,
)
from repro.hardware import render_limulus
from repro.yum import StagedRollout


def main() -> None:
    print("=== The machine as delivered ===")
    cluster = build_limulus_cluster()
    print(render_limulus(cluster.machine))
    fe_client = cluster.client_for(cluster.frontend)
    before = audit_host(cluster.frontend, fe_client.db)
    print(f"\nXSEDE compatibility as shipped: {before.overall:.1%}")
    print(f"Vendor stack: {', '.join(cluster.vendor_stack)}\n")

    print("=== Enabling the XSEDE Yum repository (0.0.8 snapshot) ===")
    repo = build_xnit_repository("0.0.8")
    # Path one on the frontend: the xsede-release RPM drops the .repo file.
    setup_via_repo_rpm(fe_client, repo)
    print("frontend: installed xsede-release RPM -> /etc/yum.repos.d/xsede.repo")
    # Path two on the blades: priorities plugin + hand-written stanza.
    for host in cluster.hosts()[1:]:
        setup_via_manual_repo_file(cluster.client_for(host), repo)
    print("blades: yum-plugin-priorities + manual xsede.repo\n")

    print("=== Integrating the full toolkit ===")
    for host in cluster.hosts():
        client = cluster.client_for(host)
        report = integrate_host(client, full_toolkit=True)
        print(f"  {host.name}: +{len(report.installed)} packages, "
              f"non-destructive={report.preexisting_untouched}")
    after = audit_host(cluster.frontend, fe_client.db)
    print(f"\nCompatibility after integration: {after.overall:.1%} "
          f"(was {before.overall:.1%})")
    print(f"Vendor power management still running: "
          f"{cluster.frontend.services.is_running('limulus-powerd')}\n")

    print("=== Upstream publishes 0.0.9 (TrinityRNASeq, R, Java updates) ===")
    added = publish_release(repo, "0.0.9")
    print(f"{len(added)} new NEVRAs in the repository")
    blades = cluster.hosts()[1:]
    rollout = StagedRollout(
        test_client=cluster.client_for(blades[0]),
        production_clients=[cluster.client_for(h) for h in blades[1:]]
        + [fe_client],
    )
    outcome = rollout.run_cycle()
    staged = outcome["staged"]
    print(f"Staged on {blades[0].name}: {staged.summary()}")
    print(f"Promoted to production: {outcome['promoted']}")

    # `yum update` only upgrades what is installed; the 41 *new* 0.0.9
    # packages (TrinityRNASeq, the R stack, ...) arrive by re-running the
    # toolkit integration — still non-destructive.
    for host in cluster.hosts():
        integrate_host(cluster.client_for(host), full_toolkit=True)
    final = audit_host(cluster.frontend, fe_client.db)
    print(f"\nFinal compatibility (0.0.9 catalogue): {final.overall:.1%}")
    print(f"R available on the frontend: {cluster.frontend.has_command('R')}")


def cluster_definition():
    """Pre-flight view of the retrofit, for ``cluster-lint``.

    Carries the Section 3 .repo stanza verbatim — its ``gpgcheck=0`` is an
    RC204 info finding, accepted in examples/lint_baseline.json because the
    XSEDE repository README specifies exactly that line.
    """
    from repro.analyze import ClusterDefinition
    from repro.hardware import build_limulus_hpc200
    from repro.scheduler import default_queue_for
    from repro.yum.repoconfig import XSEDE_REPO_STANZA

    machine = build_limulus_hpc200().machine
    return ClusterDefinition(
        name="limulus-xnit",
        machine=machine,
        repo_stanzas=(XSEDE_REPO_STANZA,),
        required_repo_ids=(XSEDE_REPO_STANZA.repo_id,),
        queues=(default_queue_for(machine),),
    )


if __name__ == "__main__":
    main()

"""The update storm: every Table 3 campus syncs a security release at once.

This is the workload the whole package exists for.  A security advisory
lands, the XNIT origin publishes the fixed packages, and every campus —
the :data:`~repro.core.deployments.TABLE3_SITES` fleet, workshop-scale
clients per campus — starts syncing within minutes of each other.  Then
the interesting part: :class:`~repro.faults.FaultInjector` kills the
origin mid-storm (``origin.crash``) and resets proxy uplinks
(``conn.reset``) while clients are retrying.

Two client styles, selected by ``governed``:

* **governed** (the repro.repod design): exponential backoff with jitter
  *plus* a per-campus token-bucket :class:`~repro.faults.RetryBudget` —
  when the bucket runs dry, clients stop retrying instead of piling on.
* **naive** (the ablation): the classic pre-SRE client — short, barely
  growing retry intervals, many attempts, no budget.  Every failure
  multiplies load exactly when the origin has none to give; the bench
  measures the resulting retry-storm collapse as origin arrivals and
  retry counts.

:func:`repod_confluence_problems` is chaos invariant 8: every request
reaches a terminal state exactly once, no server slot or queue entry
leaks, no proxy holds an in-flight fetch after the drain, and — when the
offered load is known — goodput stays above the floor even while the
origin sheds.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..core.deployments import TABLE3_SITES
from ..errors import RepodError
from ..faults.inject import FaultInjector
from ..faults.plan import FaultKind, FaultPlan, FaultSpec
from ..faults.retry import RetryBudget, RetryPolicy
from ..rpm.package import Package
from ..sim import SimKernel
from ..yum.mirror import MirrorLink, RepoMirror
from ..yum.repository import Repository
from .client import RepoClient
from .proxy import SiteProxy

__all__ = [
    "StormReport",
    "UpdateStormScenario",
    "repod_confluence_problems",
    "run_storm",
]

#: Safety bound on kernel events for one storm run; a storm that needs
#: more than this has diverged (e.g. an unbounded retry loop).
_MAX_EVENTS = 2_000_000

#: The release being synced: name -> size in bytes.  Small enough that a
#: healthy origin clears the storm quickly; the drama comes from faults.
_V1_ARTIFACTS: dict[str, int] = {
    "ganglia-core": 3 * 1024 * 1024,
    "openmpi": 9 * 1024 * 1024,
    "openssl": 2 * 1024 * 1024,
    "torque-maui": 5 * 1024 * 1024,
}

#: Packages that exist only in the security release — no v1 copy anywhere,
#: so a proxy cannot serve them stale while the origin is down.  These are
#: what make the crash window hurt (and what the retry ladder is for): the
#: size makes each fetch occupy an origin slot long enough that the
#: post-recovery rush genuinely contends for admission.
_NEW_ARTIFACTS: dict[str, int] = {
    "openssl-fips-hotfix": 12 * 1024 * 1024,
}


def _slug(site: str) -> str:
    """'Montana State University' -> 'montana-state-university'."""
    return re.sub(r"[^a-z0-9]+", "-", site.lower()).strip("-")


@dataclass
class StormReport:
    """What one storm run did, in numbers the bench and tests assert on."""

    seed: int
    governed: bool
    campuses: int
    clients: int
    offered: int
    ok: int = 0
    stale: int = 0
    failed: int = 0
    elapsed_s: float = 0.0
    origin_arrivals: int = 0
    origin_served: int = 0
    origin_shed_full: int = 0
    origin_shed_deadline: int = 0
    origin_refused: int = 0
    proxy_hits: int = 0
    proxy_misses: int = 0
    proxy_coalesced: int = 0
    proxy_stale_served: int = 0
    uplink_resets: int = 0
    retries: int = 0
    budget_granted: int = 0
    budget_denied: int = 0
    problems: list[str] = field(default_factory=list)

    @property
    def goodput(self) -> int:
        """Requests that ended with usable bytes (fresh or stale)."""
        return self.ok + self.stale

    @property
    def goodput_ratio(self) -> float:
        return self.goodput / self.offered if self.offered else 1.0

    def state_dict(self) -> dict[str, object]:
        return {
            "seed": self.seed,
            "governed": self.governed,
            "campuses": self.campuses,
            "clients": self.clients,
            "offered": self.offered,
            "ok": self.ok,
            "stale": self.stale,
            "failed": self.failed,
            "goodput_ratio": round(self.goodput_ratio, 4),
            "elapsed_s": round(self.elapsed_s, 3),
            "origin_arrivals": self.origin_arrivals,
            "origin_served": self.origin_served,
            "origin_shed_full": self.origin_shed_full,
            "origin_shed_deadline": self.origin_shed_deadline,
            "origin_refused": self.origin_refused,
            "proxy_hits": self.proxy_hits,
            "proxy_misses": self.proxy_misses,
            "proxy_coalesced": self.proxy_coalesced,
            "proxy_stale_served": self.proxy_stale_served,
            "uplink_resets": self.uplink_resets,
            "retries": self.retries,
            "budget_granted": self.budget_granted,
            "budget_denied": self.budget_denied,
            "problems": list(self.problems),
        }


#: Governed clients: exponential backoff, jittered, deadline left to the
#: per-artifact patience window.
GOVERNED_POLICY = RetryPolicy(
    max_attempts=7, base_delay_s=15.0, multiplier=2.0, max_delay_s=120.0,
    jitter=0.2,
)

#: Naive clients: hammer every ~5 s, many attempts, no budget.  This is
#: the ablation baseline — what update clients looked like before anyone
#: thought about the server.
NAIVE_POLICY = RetryPolicy(
    max_attempts=40, base_delay_s=5.0, multiplier=1.0, max_delay_s=5.0,
    jitter=0.2,
)


class UpdateStormScenario:
    """Build, run, and audit one synchronized-update storm."""

    def __init__(
        self,
        *,
        seed: int = 2015,
        campuses: int | None = None,
        clients_per_campus: int = 6,
        governed: bool = True,
        slots: int = 2,
        queue_limit: int = 2,
        storm_start_s: float = 100.0,
        stagger_s: float = 240.0,
        patience_s: float = 1200.0,
        crash_at_s: float = 105.0,
        crash_duration_s: float = 180.0,
        flap_at_s: float = 220.0,
        flap_duration_s: float = 90.0,
        flap_loss_prob: float = 0.6,
        budget_capacity: float = 14.0,
        budget_refill_per_s: float = 0.04,
        goodput_floor: float = 0.9,
    ) -> None:
        names = [_slug(site.site) for site in TABLE3_SITES]
        if campuses is not None:
            if not 1 <= campuses <= len(names):
                raise RepodError(
                    f"campuses must be in 1..{len(names)}, got {campuses}"
                )
            names = names[:campuses]
        if clients_per_campus < 1:
            raise RepodError(
                f"need at least one client per campus, got {clients_per_campus}"
            )
        self.seed = seed
        self.campus_names = names
        self.clients_per_campus = clients_per_campus
        self.governed = governed
        self.slots = slots
        self.queue_limit = queue_limit
        self.storm_start_s = storm_start_s
        self.stagger_s = stagger_s
        self.patience_s = patience_s
        self.crash_at_s = crash_at_s
        self.crash_duration_s = crash_duration_s
        self.flap_at_s = flap_at_s
        self.flap_duration_s = flap_duration_s
        self.flap_loss_prob = flap_loss_prob
        self.budget_capacity = budget_capacity
        self.budget_refill_per_s = budget_refill_per_s
        self.goodput_floor = goodput_floor
        # populated by build()/run()
        self.kernel: SimKernel | None = None
        self.origin = None
        self.mirror = None
        self.proxies: list[SiteProxy] = []
        self.clients: list[RepoClient] = []
        self.budgets: list[RetryBudget] = []
        self.injector: FaultInjector | None = None

    # -- construction ------------------------------------------------------------

    def build(self) -> None:
        """Assemble origin, proxy tier, clients, and the fault plan."""
        kernel = self.kernel = SimKernel(seed=self.seed)

        upstream = Repository("xnit", name="XNIT upstream")
        for name in sorted(_V1_ARTIFACTS):
            upstream.add(
                Package(name, "1.0", release="1", size_bytes=_V1_ARTIFACTS[name])
            )
        self.mirror = RepoMirror(
            upstream,
            MirrorLink(bandwidth_bytes_s=2 * 1024 * 1024, latency_s=0.08),
            repo_id="xnit-origin",
            kernel=kernel,
        )
        self.mirror.sync()
        self.origin = self.mirror.as_origin(
            slots=self.slots, queue_limit=self.queue_limit
        )

        self.proxies = [
            SiteProxy(f"proxy-{name}", self.origin, kernel=kernel)
            for name in self.campus_names
        ]
        # Prewarm: every campus already carries the previous release (the
        # steady state before the advisory lands).
        for proxy in self.proxies:
            for artifact in self.origin.catalog():
                result = proxy.fetch_blocking(artifact, requester="prewarm")
                if not result.ok:
                    raise RepodError(
                        f"prewarm failed for {proxy.name}/{artifact}: "
                        f"{result.error}"
                    )

        # The security release: bump every artifact, add the hotfix that
        # has no prior version (so it cannot be served stale).
        for name in sorted(_V1_ARTIFACTS):
            upstream.add(
                Package(name, "1.1", release="1", size_bytes=_V1_ARTIFACTS[name])
            )
        for name in sorted(_NEW_ARTIFACTS):
            upstream.add(
                Package(name, "1.0", release="1", size_bytes=_NEW_ARTIFACTS[name])
            )
        self.mirror.sync()
        serial = self.origin.publish(self.mirror.local.all_packages())
        for proxy in self.proxies:
            proxy.notice_release(serial)

        # Clients: per-campus retry budget shared by that campus's fleet
        # (governed mode only), start times staggered across the campus
        # with seeded jitter.
        release = self.origin.catalog()
        policy = GOVERNED_POLICY if self.governed else NAIVE_POLICY
        self.clients = []
        self.budgets = []
        for proxy, campus in zip(self.proxies, self.campus_names):
            budget = None
            if self.governed:
                budget = RetryBudget(
                    capacity=self.budget_capacity,
                    refill_per_s=self.budget_refill_per_s,
                    owner=f"budget-{campus}", kernel=kernel,
                )
                self.budgets.append(budget)
            for i in range(self.clients_per_campus):
                client = RepoClient(
                    f"{campus}-c{i:02d}", proxy, kernel=kernel,
                    policy=policy, budget=budget, patience_s=self.patience_s,
                )
                offset = (
                    self.stagger_s * i / self.clients_per_campus
                    + kernel.rng.random() * self.stagger_s / self.clients_per_campus
                )
                client.sync(release, at_s=self.storm_start_s + offset)
                self.clients.append(client)

        # Mid-storm faults: the origin dies, and the two largest campuses'
        # uplinks start resetting connections while it is down.
        flapped = [p.name for p in self.proxies[:2]]
        plan = FaultPlan(
            "update-storm",
            tuple(
                [
                    FaultSpec(
                        kind=FaultKind.ORIGIN_CRASH, target=self.origin.name,
                        at_s=self.crash_at_s, duration_s=self.crash_duration_s,
                    ),
                ]
                + [
                    FaultSpec(
                        kind=FaultKind.CONN_RESET, target=name,
                        at_s=self.flap_at_s, duration_s=self.flap_duration_s,
                        params={"loss_prob": self.flap_loss_prob},
                    )
                    for name in flapped
                ]
            ),
        )
        self.injector = FaultInjector(
            kernel, origins=[self.origin], proxies=self.proxies
        )
        self.injector.apply(plan)

    # -- execution ---------------------------------------------------------------

    def run(self) -> StormReport:
        """Build (if needed), drive to quiescence, and audit."""
        if self.kernel is None:
            self.build()
        kernel = self.kernel
        fired = 0
        while kernel.step():
            fired += 1
            if fired > _MAX_EVENTS:
                raise RepodError(
                    f"storm diverged: {fired} events without quiescing"
                )
        report = self._report()
        report.problems = repod_confluence_problems(
            kernel.trace.events,
            servers=[self.origin],
            proxies=self.proxies,
            clients=self.clients,
            offered=report.offered,
            goodput_floor=self.goodput_floor if self.governed else None,
        )
        return report

    def _report(self) -> StormReport:
        origin = self.origin
        report = StormReport(
            seed=self.seed,
            governed=self.governed,
            campuses=len(self.campus_names),
            clients=len(self.clients),
            offered=sum(len(c.records) for c in self.clients),
            elapsed_s=self.kernel.now_s,
            origin_arrivals=origin.arrivals,
            origin_served=origin.served,
            origin_shed_full=origin.shed_full,
            origin_shed_deadline=origin.shed_deadline,
            origin_refused=origin.refused,
            retries=self.kernel.trace.count("fault.retry"),
        )
        for client in self.clients:
            for outcome in client.outcomes().values():
                if outcome == "ok":
                    report.ok += 1
                elif outcome == "stale":
                    report.stale += 1
                else:
                    report.failed += 1
        for proxy in self.proxies:
            report.proxy_hits += proxy.hits
            report.proxy_misses += proxy.misses
            report.proxy_coalesced += proxy.coalesced
            report.proxy_stale_served += proxy.stale_served
            report.uplink_resets += proxy.uplink_resets
        for budget in self.budgets:
            report.budget_granted += budget.granted
            report.budget_denied += budget.denied
        return report


def run_storm(*, seed: int = 2015, governed: bool = True, **kwargs) -> StormReport:
    """One-call convenience: build, run, audit."""
    return UpdateStormScenario(seed=seed, governed=governed, **kwargs).run()


def repod_confluence_problems(
    events,
    *,
    servers=(),
    proxies=(),
    clients=(),
    offered: int | None = None,
    goodput_floor: float | None = None,
) -> list[str]:
    """Audit a trace (plus optional live components) for repod confluence.

    Invariants (the chaos harness's invariant 8):

    * every ``repod.request`` id is terminal **exactly once** — no request
      vanishes, none double-finishes;
    * no server leaks connection slots or queue entries, no proxy leaks
      in-flight fetches or undelivered responses, no client stops short
      (checked through the components' own ``problems()`` audits);
    * when the offered load is known, goodput (``ok`` + ``stale``) stays
      at or above ``goodput_floor`` of it — load shedding is allowed to
      refuse work, not to destroy the service's output.

    ``events`` may be :class:`~repro.sim.TraceEvent` objects or decoded
    JSONL dicts.  With no ``repod.*`` events and no components wired the
    audit is vacuous (the chaos harness calls it on every run).
    """
    problems: list[str] = []
    terminals: dict[str, int] = {}
    outcomes: dict[str, int] = {"ok": 0, "stale": 0, "failed": 0}
    for event in events:
        if hasattr(event, "kind"):
            kind, data = event.kind, event.data
        else:
            kind, data = event.get("kind"), event.get("data", {})
        if kind != "repod.request":
            continue
        req = data["req"]
        terminals[req] = terminals.get(req, 0) + 1
        outcomes[data["outcome"]] = outcomes.get(data["outcome"], 0) + 1
    for req in sorted(terminals):
        if terminals[req] > 1:
            problems.append(
                f"request {req} reached a terminal state {terminals[req]} times"
            )
    for server in servers:
        problems.extend(server.problems())
    for proxy in proxies:
        problems.extend(proxy.problems())
    for client in clients:
        problems.extend(client.problems())
    if offered is not None:
        total = sum(terminals.values())
        if total != offered:
            problems.append(
                f"offered {offered} request(s) but {total} reached a "
                f"terminal state"
            )
        if goodput_floor is not None and offered:
            goodput = outcomes["ok"] + outcomes["stale"]
            if goodput < goodput_floor * offered:
                problems.append(
                    f"goodput {goodput}/{offered} "
                    f"({goodput / offered:.1%}) below the "
                    f"{goodput_floor:.0%} floor"
                )
    return problems

"""Update notification vs automatic updates (Section 3's tradeoff).

"Updating packages automatically may cause unexpected behavior in a
production environment ... Creating a notification script so that packages
may be reviewed and tested on non-production nodes or systems might be the
more prudent action.  There are several tools that do this such as Yum
updates developed by Duke."

Two policies are modelled:

* :class:`NotifyPolicy` — the prudent one: a periodic check produces a
  report (an "email to the administrator"); nothing changes until an
  administrator applies the updates, optionally after staging them on a
  test host first.
* :class:`AutoApplyPolicy` — updates apply as soon as they are seen.  If a
  published update is marked broken (failure injection via
  ``broken_nevras``), auto-apply takes production hosts down; notify+stage
  catches it on the test host.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import YumError
from ..rpm.transaction import TransactionResult
from .client import UpdateInfo, YumClient

__all__ = [
    "UpdateReport",
    "NotifyPolicy",
    "AutoApplyPolicy",
    "StagedRollout",
]


@dataclass
class UpdateReport:
    """One periodic check's findings (the notification email body)."""

    host: str
    cycle: int
    pending: list[UpdateInfo]

    @property
    def has_updates(self) -> bool:
        return bool(self.pending)

    def render(self) -> str:
        if not self.pending:
            return f"[{self.host} cycle {self.cycle}] no updates pending\n"
        lines = [f"[{self.host} cycle {self.cycle}] {len(self.pending)} update(s) pending:"]
        lines += [f"  {u}" for u in self.pending]
        return "\n".join(lines) + "\n"


class NotifyPolicy:
    """Check-and-report: never mutates the host.

    ``watch`` implements Section 1's per-package subscription ("subscribe if
    they wish to automatically be notified of updates to particular
    packages"): when set, reports cover only those names.  An unwatched
    update still pends on the host; it simply does not page anyone.
    """

    def __init__(self, client: YumClient, *, watch: list[str] | None = None) -> None:
        self.client = client
        self.watch: set[str] = set(watch or ())
        self.cycle = 0
        self.reports: list[UpdateReport] = []

    def subscribe(self, *names: str) -> None:
        """Add packages to the watch list (empty watch = watch everything)."""
        if not names:
            raise YumError("subscribe requires at least one package name")
        self.watch.update(names)

    def unsubscribe(self, *names: str) -> None:
        for name in names:
            self.watch.discard(name)

    def run_cycle(self) -> UpdateReport:
        """One cron firing: check for updates and file a report."""
        self.cycle += 1
        pending = self.client.check_update()
        if self.watch:
            pending = [u for u in pending if u.name in self.watch]
        report = UpdateReport(
            host=self.client.host.name,
            cycle=self.cycle,
            pending=pending,
        )
        self.reports.append(report)
        return report


class AutoApplyPolicy:
    """Check-and-apply: every cycle runs ``yum update`` unattended.

    ``broken_nevras`` marks published updates that malfunction after
    installing (they install fine — the breakage is behavioural, which is
    why validation cannot catch it).  After applying one, the affected
    service is marked failed on the host.
    """

    def __init__(self, client: YumClient, *, broken_nevras: set[str] | None = None):
        self.client = client
        self.broken_nevras = broken_nevras or set()
        self.cycle = 0
        self.applied: list[TransactionResult] = []
        self.incidents: list[str] = []

    def run_cycle(self) -> TransactionResult | None:
        """One cron firing: apply whatever is pending."""
        self.cycle += 1
        result = self.client.update()
        if result is None:
            return None
        self.applied.append(result)
        for _old, new in result.upgraded:
            if new.nevra in self.broken_nevras:
                for service in new.services:
                    self.client.host.services.fail(service)
                    self.incidents.append(
                        f"cycle {self.cycle}: {new.nevra} broke service "
                        f"{service} on {self.client.host.name}"
                    )
        return result


class StagedRollout:
    """Notify + stage: test host first, production only after it survives.

    This is the workflow the paper recommends: review the notification,
    apply on a non-production node, check its services, then roll forward.
    """

    def __init__(
        self,
        test_client: YumClient,
        production_clients: list[YumClient],
        *,
        broken_nevras: set[str] | None = None,
    ) -> None:
        if not production_clients:
            raise YumError("staged rollout needs at least one production host")
        self.test = AutoApplyPolicy(test_client, broken_nevras=broken_nevras)
        self.production = production_clients
        self.broken_nevras = broken_nevras or set()
        self.rolled_out: list[str] = []
        self.held_back: list[str] = []

    def run_cycle(self) -> dict[str, object]:
        """Stage on test; promote to production only if test stays healthy."""
        result = self.test.run_cycle()
        if result is None:
            return {"staged": None, "promoted": False}
        test_host = self.test.client.host
        healthy = all(
            test_host.services.get(s).state.value != "failed"
            for _old, new in result.upgraded
            for s in new.services
        )
        if not healthy:
            self.held_back.extend(new.nevra for _o, new in result.upgraded)
            return {"staged": result, "promoted": False}
        for client in self.production:
            client.update()
        self.rolled_out.extend(new.nevra for _o, new in result.upgraded)
        return {"staged": result, "promoted": True}

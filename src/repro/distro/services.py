"""A chkconfig/init-style service manager.

Rocks-era clusters manage daemons with SysV init: the frontend runs dhcpd,
httpd (the kickstart server), the scheduler server (pbs_server/slurmctld),
ganglia's gmetad; compute nodes run the scheduler's node daemon (pbs_mom,
slurmd) and gmond.  Packages register services at install time; the
provisioner enables and starts them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from ..errors import ServiceError

__all__ = ["ServiceState", "Service", "ServiceManager"]


class ServiceState(str, Enum):
    """Runtime state of a service."""

    STOPPED = "stopped"
    RUNNING = "running"
    FAILED = "failed"


@dataclass
class Service:
    """One registered service."""

    name: str
    package: str  # owning RPM
    state: ServiceState = ServiceState.STOPPED
    enabled: bool = False  # start at boot


class ServiceManager:
    """Service registry and lifecycle for one host."""

    def __init__(self) -> None:
        self._services: dict[str, Service] = {}

    def register(self, name: str, *, package: str) -> Service:
        """Register a service (idempotent for the same owning package)."""
        existing = self._services.get(name)
        if existing is not None:
            if existing.package != package:
                raise ServiceError(
                    f"service {name!r} already registered by "
                    f"{existing.package!r}, cannot re-register from {package!r}"
                )
            return existing
        svc = Service(name=name, package=package)
        self._services[name] = svc
        return svc

    def unregister_package(self, package: str) -> list[str]:
        """Drop (stopping first) every service owned by ``package``."""
        dropped = []
        for name in [n for n, s in self._services.items() if s.package == package]:
            del self._services[name]
            dropped.append(name)
        return sorted(dropped)

    def get(self, name: str) -> Service:
        """Fetch a service record."""
        try:
            return self._services[name]
        except KeyError:
            raise ServiceError(f"unknown service: {name}") from None

    def start(self, name: str) -> None:
        """Start a service (no-op if already running)."""
        self.get(name).state = ServiceState.RUNNING

    def stop(self, name: str) -> None:
        """Stop a service (no-op if already stopped)."""
        self.get(name).state = ServiceState.STOPPED

    def fail(self, name: str) -> None:
        """Mark a service failed (used by failure-injection tests)."""
        self.get(name).state = ServiceState.FAILED

    def enable(self, name: str) -> None:
        """chkconfig on: start the service at boot."""
        self.get(name).enabled = True

    def disable(self, name: str) -> None:
        """chkconfig off."""
        self.get(name).enabled = False

    def is_running(self, name: str) -> bool:
        """True if the service exists and is running."""
        svc = self._services.get(name)
        return svc is not None and svc.state is ServiceState.RUNNING

    def boot(self) -> list[str]:
        """Simulate host boot: start every enabled service; return names."""
        started = []
        for name in sorted(self._services):
            svc = self._services[name]
            if svc.enabled and svc.state is not ServiceState.RUNNING:
                svc.state = ServiceState.RUNNING
                started.append(name)
        return started

    def running(self) -> list[str]:
        """Names of all running services, sorted."""
        return sorted(
            n for n, s in self._services.items() if s.state is ServiceState.RUNNING
        )

    def all_services(self) -> list[Service]:
        """All service records, sorted by name."""
        return [self._services[n] for n in sorted(self._services)]

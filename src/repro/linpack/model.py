"""The analytic HPL performance model: cluster specs -> Rmax.

We cannot run HPL on 2015 Haswell hardware, so cluster-scale Rmax comes from
a calibrated time model (the standard decomposition used in HPL tuning
guides):

* ``T_flop`` — the O(2/3 N^3) factorisation work at the node kernel
  efficiency (DGEMM fraction of peak; microarchitecture-dependent);
* ``T_bw``  — bulk panel/update traffic, O(N^2) bytes through the
  interconnect, spread over sqrt(P) process columns and inflated by the
  log2(P) depth of the panel broadcast tree (this is what makes weak-scaled
  HPL efficiency decay slowly with node count on a fixed fabric);
* ``T_lat`` — per-panel latency, (N/NB) * log2(P) * alpha.

``Rmax = (2/3 N^3 + 3/2 N^2) / T_total``.

Calibration: the single free constant ``comm_volume_factor`` is set so the
modelled Limulus HPC200 (the one machine with a *measured* Rmax in Table 5,
498.3 of 793.6 GFLOPS = 62.8 %) comes out right; the LittleFe prediction is
then a genuine model output, compared against the paper's 75 %-of-peak
*estimate* in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import LinpackError
from ..hardware.chassis import Machine
from ..hardware.cpu import CpuModel

__all__ = ["HplModelInput", "HplPrediction", "predict_hpl", "predict_machine", "kernel_efficiency"]

#: Calibrated bulk-communication constant (see module docstring).  With the
#: broadcast-tree factor (1 + log2(P)/4) this puts the 4-node Limulus at the
#: measured 62.8 % efficiency.
COMM_VOLUME_FACTOR = 0.60

#: Default HPL block size.
DEFAULT_NB = 192

#: Fraction of RAM HPL problems are sized to use.
MEMORY_FILL = 0.80

#: DGEMM fraction-of-peak by microarchitecture.  In-order Atoms are far from
#: peak; Haswell with a tuned BLAS lands near 0.88 on the paper's accounting
#: basis.
_KERNEL_EFFICIENCY = {
    "Bonnell": 0.55,
    "Westmere": 0.85,
    "Sandy Bridge": 0.87,
    "Haswell": 0.88,
}
_DEFAULT_KERNEL_EFFICIENCY = 0.85


def kernel_efficiency(cpu: CpuModel) -> float:
    """Single-node DGEMM efficiency for a CPU's microarchitecture."""
    return _KERNEL_EFFICIENCY.get(cpu.arch.name, _DEFAULT_KERNEL_EFFICIENCY)


@dataclass(frozen=True)
class HplModelInput:
    """Everything the model needs about a cluster."""

    total_cores: int
    per_core_gflops: float
    node_count: int
    memory_bytes: int
    interconnect_bandwidth_bytes_s: float
    interconnect_latency_s: float
    kernel_eff: float
    nb: int = DEFAULT_NB

    def __post_init__(self) -> None:
        if self.total_cores <= 0 or self.node_count <= 0:
            raise LinpackError("cores and nodes must be positive")
        if not 0 < self.kernel_eff <= 1:
            raise LinpackError(f"kernel efficiency out of (0,1]: {self.kernel_eff}")
        if self.memory_bytes <= 0:
            raise LinpackError("memory must be positive")

    @property
    def rpeak_gflops(self) -> float:
        return self.total_cores * self.per_core_gflops


@dataclass(frozen=True)
class HplPrediction:
    """Model output for one cluster configuration."""

    n: int
    rpeak_gflops: float
    rmax_gflops: float
    t_flop_s: float
    t_bw_s: float
    t_lat_s: float

    @property
    def efficiency(self) -> float:
        """Rmax / Rpeak."""
        return self.rmax_gflops / self.rpeak_gflops

    @property
    def total_time_s(self) -> float:
        return self.t_flop_s + self.t_bw_s + self.t_lat_s


def problem_size(memory_bytes: int, *, fill: float = MEMORY_FILL, nb: int = DEFAULT_NB) -> int:
    """The HPL N that fills ``fill`` of memory, rounded down to a multiple
    of the block size (the usual tuning recipe)."""
    if not 0 < fill <= 1:
        raise LinpackError(f"memory fill must be in (0,1]: {fill}")
    n = int(math.sqrt(fill * memory_bytes / 8.0))
    return max(nb, (n // nb) * nb)


def predict_hpl(spec: HplModelInput, *, n: int | None = None) -> HplPrediction:
    """Run the time model for one configuration."""
    n = n if n is not None else problem_size(spec.memory_bytes, nb=spec.nb)
    flops = (2.0 / 3.0) * n**3 + 1.5 * n**2
    t_flop = flops / (spec.rpeak_gflops * 1e9 * spec.kernel_eff)
    if spec.node_count > 1:
        broadcast_depth = 1.0 + math.log2(spec.node_count) / 4.0
        bytes_moved = COMM_VOLUME_FACTOR * broadcast_depth * n * n * 8.0
        t_bw = bytes_moved / (
            spec.interconnect_bandwidth_bytes_s * math.sqrt(spec.node_count)
        )
        t_lat = (n / spec.nb) * math.log2(spec.node_count) * spec.interconnect_latency_s
    else:
        t_bw = 0.0
        t_lat = 0.0
    total = t_flop + t_bw + t_lat
    return HplPrediction(
        n=n,
        rpeak_gflops=spec.rpeak_gflops,
        rmax_gflops=flops / total / 1e9,
        t_flop_s=t_flop,
        t_bw_s=t_bw,
        t_lat_s=t_lat,
    )


def predict_machine(
    machine: Machine,
    *,
    interconnect_bandwidth_bytes_s: float = 117.5e6,  # GigE after protocol
    interconnect_latency_s: float = 60e-6,
    n: int | None = None,
) -> HplPrediction:
    """Model a built :class:`Machine` (all paper machines are homogeneous)."""
    cpu = machine.nodes[0].cpu
    spec = HplModelInput(
        total_cores=machine.total_cores,
        per_core_gflops=cpu.rpeak_gflops / cpu.cores,
        node_count=machine.node_count,
        memory_bytes=machine.memory_bytes,
        interconnect_bandwidth_bytes_s=interconnect_bandwidth_bytes_s,
        interconnect_latency_s=interconnect_latency_s,
        kernel_eff=kernel_efficiency(cpu),
    )
    return predict_hpl(spec, n=n)

#!/usr/bin/env python3
"""A sysadmin-training shell session on a freshly built XCBC cluster.

Everything a Section 6 class types in its first lab, executed against the
simulation through :class:`repro.cli.ClusterShell`: inspect the cluster,
query packages, load modules, submit work, watch the queue and the
monitoring dashboard, hop to a compute node, pull one extra tool from
XNIT, and finish with the parallel admin plane — ``nodeset`` arithmetic,
a ``clush`` fan-out across every compute node, and ``clubak`` folding the
identical answers under one NodeSet label.
"""

from repro.cli import ClusterShell
from repro.core import build_xcbc_cluster, build_xnit_repository, xnit_group_catalog
from repro.hardware import build_littlefe_modified
from repro.htc import pool_from_cluster
from repro.monitoring import monitor_cluster
from repro.scheduler import ClusterResources, MauiScheduler

SESSION = [
    "hostname",
    "cat /etc/redhat-release",
    "rocks list host",
    "rocks list roll",
    "rpm -q gromacs",
    "which mdrun",
    "module avail",
    "module load openmpi/1.6.4",
    "module load gromacs/4.6.5",
    "module list",
    "qsub -N md-equilibrate -u student -c 4 -t 300 -w 3600",
    "qstat",
    "showq",
    "pbsnodes",
    "ganglia",
    "yum repolist",
    "yum groupinfo xnit-molecular-dynamics",
    "yum install tau",
    "which tau_exec",
    "ssh compute-0-0",
    "hostname",
    "which mdrun",
    "ssh littlefe-iu-n0",
    "useradd student2",
    "nodeset --fold compute-0-0,compute-0-1,compute-0-2",
    "nodeset --count @compute",
    "clush -w @compute -f 2 hostname",
    "clush -b -w @compute cat /etc/redhat-release",
    "clubak",
]


def main() -> None:
    cluster = build_xcbc_cluster(build_littlefe_modified().machine).cluster
    scheduler = MauiScheduler(ClusterResources(cluster.machine))
    gmetad = monitor_cluster(cluster, scheduler=scheduler)
    gmetad.poll_cycle()
    shell = ClusterShell(
        cluster,
        scheduler=scheduler,
        repositories={"xsede": build_xnit_repository()},
        group_catalog=xnit_group_catalog(),
        condor_pool=pool_from_cluster(cluster),
        gmetad=gmetad,
    )
    for command in SESSION:
        result = shell.run(command)
        print(f"[{shell.current.name}]$ {command}")
        for line in result.output.splitlines() or ["(no output)"]:
            print(f"    {line}")
        print()
    failures = [r for r in shell.history if not r.ok]
    print(f"--- session complete: {len(shell.history)} commands, "
          f"{len(failures)} failures ---")


def cluster_definition():
    """The recipe of the provisioned cluster the session drives, linted
    post-hoc via ``ClusterDefinition.from_cluster`` (``cluster-lint``)."""
    from repro.analyze import ClusterDefinition

    report = build_xcbc_cluster(build_littlefe_modified().machine)
    return ClusterDefinition.from_cluster(report.cluster, name="shell-session")


if __name__ == "__main__":
    main()

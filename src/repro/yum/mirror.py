"""Repository mirroring with a bandwidth/latency cost model.

Campus clusters often mirror the XSEDE repository locally so compute nodes
update from the frontend instead of the WAN (this is also how Rocks serves
its distribution).  The mirror tracks the upstream ``repomd`` checksum and
only transfers changed NEVRAs on resync.

Transfer time is *spent on the simulation kernel*: each sync advances the
kernel clock by the modelled duration (firing any co-simulated events due
inside the window) and publishes a ``mirror.sync`` trace event.  Pass a
shared :class:`~repro.sim.SimKernel` to interleave mirror traffic with the
rest of the cluster; without one the mirror keeps its own.

Faults are first-class: an interrupted sync (flaky WAN, full disk) leaves
the packages fetched so far in place, so the retried sync *resumes* —
only the remaining delta is transferred.  Corrupted payloads are caught by
per-package checksum verification and re-fetched within the same sync.
Give the mirror a :class:`~repro.faults.RetryPolicy` and :meth:`sync`
retries interruptions with seeded backoff instead of surfacing them.

Pass a :class:`~repro.cas.ChunkStore` and the mirror goes
**content-addressed**: the transfer delta becomes *missing chunks*
instead of missing NEVRAs, so a version bump re-fetches only the chunks
the new build actually changed, and an interruption resumes at chunk
granularity — chunks that landed before the cut (including a partial
package) are never moved twice.  The local repository contents are
byte-for-byte identical either way; only the traffic shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import FaultError, YumError
from ..faults.retry import RetryPolicy, call_with_retry
from ..rpm.package import Package
from ..sim import SimKernel
from .repository import Repository

__all__ = ["MirrorLink", "RepoMirror", "SyncStats"]


@dataclass(frozen=True)
class MirrorLink:
    """The network path between upstream and mirror."""

    bandwidth_bytes_s: float
    latency_s: float = 0.05

    def transfer_time_s(self, nbytes: int, *, requests: int = 1) -> float:
        """Time to move ``nbytes`` over this link in ``requests`` requests."""
        if nbytes < 0 or requests < 1:
            raise YumError("invalid transfer parameters")
        return self.latency_s * requests + nbytes / self.bandwidth_bytes_s


@dataclass
class SyncStats:
    """Accounting for one sync operation."""

    fetched_nevras: list[str] = field(default_factory=list)
    removed_nevras: list[str] = field(default_factory=list)
    refetched_nevras: list[str] = field(default_factory=list)
    bytes_transferred: int = 0
    elapsed_s: float = 0.0
    skipped: bool = False  # metadata matched; nothing to do


class RepoMirror:
    """A local mirror of one upstream repository."""

    def __init__(
        self,
        upstream: Repository,
        link: MirrorLink,
        *,
        repo_id: str = "",
        kernel: SimKernel | None = None,
        retry: RetryPolicy | None = None,
        journal=None,
        chunk_store=None,
        chunking=None,
    ):
        self.upstream = upstream
        self.link = link
        self.kernel = kernel if kernel is not None else SimKernel()
        self.retry = retry
        #: optional write-ahead :class:`~repro.recovery.Journal`: every sync
        #: attempt becomes a ``mirror.sync`` transaction, so a crash mid-sync
        #: is distinguishable from a clean interruption afterwards (open vs
        #: aborted).  Mirror syncs recover by *replay* — the delta recomputes
        #: against whatever landed, so a resync is idempotent.
        self.journal = journal
        #: optional :class:`~repro.cas.ChunkStore`: syncs become
        #: content-addressed (delta = missing chunks, dedup across RPM
        #: versions).  ``chunking`` pins the hierarchy-wide
        #: :class:`~repro.cas.ChunkingPolicy`; every tier must agree on it.
        self.chunk_store = chunk_store
        if chunk_store is not None and chunking is None:
            from ..cas.chunks import ChunkingPolicy  # lazy: cas sits above yum

            chunking = ChunkingPolicy()
        self.chunking = chunking
        #: nevra -> manifest the store currently pins for this mirror
        self._retained_manifests: dict = {}
        self.local = Repository(
            repo_id or f"{upstream.repo_id}-mirror",
            name=f"{upstream.name} (local mirror)",
            priority=upstream.priority,
        )
        self._synced_checksum: str | None = None
        self.sync_history: list[SyncStats] = []
        # -- fault-injection state (set by FaultInjector or tests) ---------
        self._interruptions_pending = 0
        self._loss_probability = 0.0
        self._disk_full = False
        self._corrupt_once: set[str] = set()

    # -- fault injection hooks -------------------------------------------------

    def inject_interruptions(self, count: int) -> None:
        """Fail the next ``count`` sync attempts mid-transfer (resumable)."""
        if count < 0:
            raise YumError(f"interruption count must be non-negative, got {count}")
        self._interruptions_pending = count

    def set_loss_probability(self, probability: float) -> None:
        """Flapping WAN: each sync attempt dies with this probability
        (drawn from the kernel RNG, so runs stay deterministic)."""
        if not 0 <= probability <= 1:
            raise YumError(f"loss probability must be in [0, 1], got {probability}")
        self._loss_probability = probability

    def set_disk_full(self, full: bool) -> None:
        """A full mirror volume fails every sync until space is freed."""
        self._disk_full = full

    def corrupt_next(self, nevras: set[str] | None = None) -> None:
        """The named NEVRAs (default: everything still to fetch) arrive
        corrupted once and must be caught by checksum and re-fetched."""
        if nevras is None:
            local = {p.nevra for p in self.local.all_packages()}
            nevras = {
                p.nevra for p in self.upstream.all_packages() if p.nevra not in local
            }
        self._corrupt_once |= set(nevras)

    # -- sync ----------------------------------------------------------------

    def _spend(self, seconds: float) -> None:
        """Advance shared simulated time by a modelled transfer duration."""
        self.kernel.run_until(self.kernel.now_s + seconds)

    @property
    def is_current(self) -> bool:
        """True if the mirror matches upstream metadata."""
        return self._synced_checksum == self.upstream.repomd_checksum()

    def state_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot of mirror contents and fault knobs."""
        return {
            "repo": self.local.repo_id,
            "synced_checksum": self._synced_checksum,
            "local_nevras": sorted(p.nevra for p in self.local.all_packages()),
            "syncs": len(self.sync_history),
            "interruptions_pending": self._interruptions_pending,
            "loss_probability": self._loss_probability,
            "disk_full": self._disk_full,
            "corrupt_once": sorted(self._corrupt_once),
        }

    def as_origin(self, *, slots: int = 4, queue_limit: int = 16):
        """Expose this mirror as a :class:`~repro.repod.RepoServer` origin.

        The paper's XNIT mirror is also the repository *service* every
        campus pulls from; this wraps the mirror's local contents in the
        admission-controlled daemon from :mod:`repro.repod` (same kernel,
        same link model).  Re-publish after each :meth:`sync` by calling
        ``origin.publish(mirror.local.all_packages())`` — publishing is a
        release decision, not a side effect of syncing.
        """
        from ..repod.server import RepoServer  # lazy: repod imports errors only

        origin = RepoServer(
            self.local.repo_id, kernel=self.kernel, link=self.link,
            slots=slots, queue_limit=queue_limit,
        )
        origin.publish(self.local.all_packages())
        return origin

    def sync(self) -> SyncStats:
        """Bring the mirror up to date, transferring only the delta.

        With a :class:`RetryPolicy` configured, interrupted transfers are
        retried with backoff; each retry resumes from what already landed
        (the delta recomputes against the partially filled mirror).
        """
        if self.retry is None:
            return self._sync_once()
        return call_with_retry(
            self.kernel,
            self._sync_once,
            policy=self.retry,
            op=f"mirror.sync:{self.local.repo_id}",
            subsystem="yum",
            retry_on=(YumError, FaultError),
        )

    def _sync_once(self) -> SyncStats:
        stats = SyncStats()
        started_s = self.kernel.now_s
        upstream_sum = self.upstream.repomd_checksum()
        txn = (
            self.journal.begin(
                "mirror.sync", repo=self.local.repo_id, upstream=upstream_sum
            )
            if self.journal is not None
            else None
        )
        # Metadata probe always costs one round trip.
        self._spend(self.link.transfer_time_s(16 * 1024))
        if self._disk_full:
            if txn is not None:
                self.journal.abort(txn, note="disk full before staging")
            raise YumError(
                f"mirror {self.local.repo_id}: disk full, cannot stage packages"
            )
        if self._synced_checksum == upstream_sum:
            stats.skipped = True
            stats.elapsed_s = self.kernel.now_s - started_s
            self.sync_history.append(stats)
            if txn is not None:
                self.journal.commit(txn)
            self.kernel.trace.emit(
                "mirror.sync", t_s=self.kernel.now_s, subsystem="yum",
                repo=self.local.repo_id, nbytes=0, files=0, skipped=True,
            )
            return stats

        upstream_by_nevra: dict[str, Package] = {
            p.nevra: p for p in self.upstream.all_packages()
        }
        local_by_nevra: dict[str, Package] = {
            p.nevra: p for p in self.local.all_packages()
        }
        to_fetch = [
            upstream_by_nevra[n]
            for n in sorted(set(upstream_by_nevra) - set(local_by_nevra))
        ]
        to_remove = sorted(set(local_by_nevra) - set(upstream_by_nevra))
        transfer_op = (
            self.journal.intent(
                txn, "transfer",
                fetch=[p.nevra for p in to_fetch], remove=to_remove,
            )
            if txn is not None
            else None
        )

        for nevra in to_remove:
            self.local.remove(nevra)
            stats.removed_nevras.append(nevra)
            manifest = self._retained_manifests.pop(nevra, None)
            if manifest is not None:
                self.chunk_store.release(manifest)

        interrupted = self._interruptions_pending > 0 or (
            self._loss_probability > 0
            and self.kernel.rng.random() < self._loss_probability
        )
        if self._interruptions_pending > 0:
            self._interruptions_pending -= 1
        cutoff = len(to_fetch) // 2 if interrupted else len(to_fetch)

        for index, pkg in enumerate(to_fetch):
            if interrupted and index >= cutoff:
                # The connection died mid-transfer.  Everything fetched so
                # far stays on disk — the retry resumes from here.  In
                # chunked mode the cut lands mid-*package*: the chunks of
                # the in-flight package that already arrived are staged in
                # the store (content is content), so the retry re-fetches
                # only the remainder — resume at chunk granularity.
                if self.chunk_store is not None:
                    pending = self.chunk_store.missing_of(
                        self.chunking.manifest(pkg).chunks
                    )
                    for chunk in pending[: len(pending) // 2]:
                        self.chunk_store.put(chunk)
                        stats.bytes_transferred += chunk.size
                if stats.bytes_transferred:
                    # Round trips follow what actually moved: one per
                    # package that landed (plus corruption re-fetches),
                    # never a charge for packages the cut prevented.
                    requests = len(stats.fetched_nevras) + len(
                        stats.refetched_nevras
                    )
                    self._spend(
                        self.link.transfer_time_s(
                            stats.bytes_transferred, requests=max(1, requests)
                        )
                    )
                stats.elapsed_s = self.kernel.now_s - started_s
                self.sync_history.append(stats)
                if txn is not None:
                    # A clean interruption is NOT a crash: the partial state
                    # is deliberate (the retry resumes from it), so the
                    # transaction closes as aborted instead of lingering open.
                    self.journal.abort(
                        txn,
                        note=f"interrupted; {len(stats.fetched_nevras)} "
                        f"package(s) kept for resume",
                    )
                raise YumError(
                    f"mirror {self.local.repo_id}: sync interrupted after "
                    f"{len(stats.fetched_nevras)}/{len(to_fetch)} package(s); "
                    f"partial state kept for resume"
                )
            delta_bytes = pkg.size_bytes
            if self.chunk_store is not None:
                manifest = self.chunking.manifest(pkg)
                delta_bytes = 0
                for chunk in self.chunk_store.missing_of(manifest.chunks):
                    self.chunk_store.put(chunk)
                    delta_bytes += chunk.size
                self.chunk_store.retain(manifest)
                self._retained_manifests[pkg.nevra] = manifest
            self.local.add(pkg)
            stats.fetched_nevras.append(pkg.nevra)
            stats.bytes_transferred += delta_bytes
            if pkg.nevra in self._corrupt_once:
                # Payload checksum mismatch: drop and fetch again (costing
                # the extra bytes) — yum's "[Errno -1] Package does not
                # match intended download" path.
                self._corrupt_once.discard(pkg.nevra)
                stats.refetched_nevras.append(pkg.nevra)
                stats.bytes_transferred += delta_bytes
        if stats.fetched_nevras:
            self._spend(
                self.link.transfer_time_s(
                    stats.bytes_transferred,
                    requests=len(stats.fetched_nevras)
                    + len(stats.refetched_nevras),
                )
            )
        stats.elapsed_s = self.kernel.now_s - started_s
        self._synced_checksum = upstream_sum
        self.sync_history.append(stats)
        if txn is not None:
            assert transfer_op is not None
            self.journal.applied(txn, transfer_op)
            self.journal.commit(txn)
        self.kernel.trace.emit(
            "mirror.sync", t_s=self.kernel.now_s, subsystem="yum",
            repo=self.local.repo_id, nbytes=stats.bytes_transferred,
            files=len(stats.fetched_nevras), skipped=False,
        )
        return stats

"""Ablation 1 — yum-plugin-priorities on vs off.

Section 3 requires installing the priorities plugin before enabling the
XSEDE repository.  The ablation shows why: with a base-OS repository
carrying a same-named, higher-versioned package (distributions rebase
packages all the time), disabling the plugin lets the base build shadow the
XSEDE run-alike build, and the compatibility audit's version-currency
dimension degrades.
"""

import pytest

from repro.core import audit_host, xsede_packages
from repro.distro import CENTOS_6_5, Host
from repro.hardware import build_littlefe_modified
from repro.rpm import Package, RpmDatabase
from repro.yum import RepoSet, Repository, YumClient


def build_repos():
    """XSEDE repo + a base repo whose 'python' is newer but non-run-alike."""
    xsede = Repository("xsede", priority=50)
    xsede.add_all(xsede_packages())
    base = Repository("centos-base", priority=90)
    # the distro rebased python: numerically newer, not the XSEDE build
    base.add(Package(name="python", version="2.7.99", release="0.el6",
                     commands=("python",)))
    return xsede, base


def install_python(use_priorities: bool):
    xsede, base = build_repos()
    host = Host(build_littlefe_modified().machine.head, CENTOS_6_5)
    client = YumClient(host, repos=RepoSet([xsede, base], use_priorities=use_priorities))
    client.install("python")
    return client


def test_ablation_priorities(benchmark, save_artifact):
    with_plugin = benchmark(lambda: install_python(True))
    without_plugin = install_python(False)

    v_with = with_plugin.db.get("python").evr_string
    v_without = without_plugin.db.get("python").evr_string
    catalogue = [p for p in xsede_packages() if p.name == "python"]
    audit_with = audit_host(with_plugin.host, with_plugin.db, catalogue=catalogue)
    audit_without = audit_host(
        without_plugin.host, without_plugin.db, catalogue=catalogue
    )

    lines = [
        "Ablation: yum-plugin-priorities",
        "",
        f"{'':<30}{'plugin on':>16}{'plugin off':>16}",
        f"{'python resolved to':<30}{v_with:>16}{v_without:>16}",
        f"{'run-alike audit':<30}{audit_with.overall:>15.0%}"
        f"{audit_without.overall:>15.0%}",
        "",
        "without the plugin the base OS shadows the XSEDE build; the cluster",
        "drifts from Stampede even though every version is 'newer'",
    ]
    save_artifact("ablation_priorities", "\n".join(lines))

    assert v_with == "2.7.9-1"          # the XSEDE build
    assert v_without == "2.7.99-0.el6"  # the shadowing base build
    assert audit_with.overall > audit_without.overall


def test_ablation_priorities_update_churn(benchmark, save_artifact):
    """Even a correctly installed host churns on the next update without
    the plugin: the base repo's candidate looks like an upgrade."""

    def scenario():
        xsede, base = build_repos()
        host = Host(build_littlefe_modified().machine.head, CENTOS_6_5)
        client = YumClient(
            host, repos=RepoSet([xsede, base], use_priorities=True)
        )
        client.install("python")
        return client

    client = benchmark(scenario)
    assert client.check_update() == []  # protected
    client.repos.use_priorities = False
    churn = client.check_update()
    assert [u.name for u in churn] == ["python"]
    save_artifact(
        "ablation_priorities_churn",
        "with plugin: 0 pending; without: "
        + ", ".join(str(u) for u in churn),
    )

"""Failure-injection tests across the stack.

Clusters fail in pieces; the substrate must fail the way the real pieces
do: loudly, locally, and recoverably.  Each scenario injects one fault and
asserts both the failure shape and the recovery path.
"""

import pytest

from repro.errors import (
    DhcpError,
    PxeError,
    TransactionError,
)
from repro.hardware import build_littlefe_modified
from repro.network import BootImage, DhcpServer, PxeServer
from repro.rocks import InsertEthers, Profile, RocksDatabase, install_cluster
from repro.rocks.installer import RocksInstaller
from repro.rpm import Package, Transaction


class TestPxeDhcpFailures:
    def test_pxe_without_image_fails_then_recovers(self):
        dhcp = DhcpServer()
        pxe = PxeServer(dhcp)
        inserter = InsertEthers(db=RocksDatabase(), dhcp=dhcp, pxe=pxe)
        with pytest.raises(PxeError, match="no boot image"):
            inserter.discover_boot("02:aa")
        # the admin fixes the tftp config and retries the same node
        pxe.set_default_image(BootImage("ks", kickstart_profile=Profile.COMPUTE))
        record = inserter.discover_boot("02:aa")
        assert record.name == "compute-0-0"

    def test_dhcp_pool_exhaustion_mid_discovery(self):
        dhcp = DhcpServer(pool_start=10, pool_end=11)
        pxe = PxeServer(dhcp)
        pxe.set_default_image(BootImage("ks", kickstart_profile=Profile.COMPUTE))
        inserter = InsertEthers(db=RocksDatabase(), dhcp=dhcp, pxe=pxe)
        inserter.discover_boot("02:aa")
        inserter.discover_boot("02:bb")
        with pytest.raises(DhcpError, match="exhausted"):
            inserter.discover_boot("02:cc")
        # nodes discovered before the exhaustion are intact
        assert len(inserter.db.compute_hosts()) == 2


class TestKickstartTransactionFailure:
    def test_failed_node_install_leaves_host_out_of_cluster(self, monkeypatch):
        """If a compute node's kickstart transaction dies, the cluster
        build aborts with the node unprovisioned — no half-installed hosts
        in the cluster map."""
        machine = build_littlefe_modified().machine
        installer = RocksInstaller(machine)
        original = installer._kickstart_host
        calls = {"n": 0}

        def flaky(host, graph, distribution, profile):
            calls["n"] += 1
            if calls["n"] == 4:  # the third compute node's kickstart
                raise TransactionError("disk died mid-install")
            return original(host, graph, distribution, profile)

        monkeypatch.setattr(installer, "_kickstart_host", flaky)
        with pytest.raises(TransactionError, match="disk died"):
            installer.run()

    def test_node_reinstall_recovers_from_drift_and_breakage(self):
        machine = build_littlefe_modified().machine
        installer = RocksInstaller(machine)
        cluster = installer.run()
        host, db = cluster.compute["compute-0-0"]
        # breakage: a critical service fails and packages get erased
        host.services.fail("pbs_mom")
        Transaction(db).erase("modules").commit()
        assert "modules" not in cluster.installed_everywhere()
        fresh = installer.reinstall_node(cluster, "compute-0-0")
        assert fresh.services.is_running("pbs_mom")
        assert "modules" in cluster.installed_everywhere()


class TestRollbackUnderInjectedFaults:
    def test_transaction_rollback_keeps_command_surface_consistent(
        self, frontend_host, monkeypatch
    ):
        """A mid-commit crash must not leave half a package's commands."""
        from repro.rpm import RpmDatabase

        db = RpmDatabase(frontend_host)
        good = Package(name="good", version="1", commands=("goodcmd",))
        bad = Package(name="zbad", version="1", commands=("badcmd",))
        txn = Transaction(db)
        txn.install(good)
        txn.install(bad)
        real = db._install_unchecked

        def explode(pkg):
            if pkg.name == "zbad":
                raise OSError("payload write failed")
            real(pkg)

        monkeypatch.setattr(db, "_install_unchecked", explode)
        with pytest.raises(TransactionError, match="rolled back"):
            txn.commit()
        monkeypatch.undo()
        assert not frontend_host.has_command("goodcmd")
        assert not frontend_host.has_command("badcmd")
        assert len(db) == 0

    def test_cluster_survives_one_bad_update_with_staging(self):
        """End-to-end: a broken upstream package reaches the test node only."""
        from repro.core import (
            build_limulus_cluster,
            build_xnit_repository,
            integrate_host,
            setup_via_manual_repo_file,
        )
        from repro.yum import StagedRollout

        cluster = build_limulus_cluster()
        repo = build_xnit_repository()
        for client in cluster.all_clients():
            setup_via_manual_repo_file(client, repo)
            integrate_host(client, packages=["torque", "maui"])
            client.host.services.enable("pbs_mom")
            client.host.services.boot()
        bad = Package(
            name="torque", version="4.2.11", services=("pbs_mom",),
            commands=("qsub", "qstat", "qdel", "pbsnodes"),
        )
        repo.add(bad)
        blades = cluster.hosts()[1:]
        rollout = StagedRollout(
            test_client=cluster.client_for(blades[0]),
            production_clients=[cluster.client_for(h) for h in blades[1:]],
            broken_nevras={bad.nevra},
        )
        outcome = rollout.run_cycle()
        assert not outcome["promoted"]
        # production blades still run the good version and a live mom
        for host in blades[1:]:
            assert cluster.client_for(host).db.get("torque").version == "4.2.10"
            assert host.services.is_running("pbs_mom")


class TestMonitoringSeesFailures:
    def test_dashboard_surfaces_failed_service_and_down_node(self):
        from repro.monitoring import monitor_cluster
        from repro.rocks import optional_rolls

        machine = build_littlefe_modified().machine
        cluster = install_cluster(machine, rolls=[optional_rolls()["ganglia"]])
        gmetad = monitor_cluster(cluster)
        gmetad.poll_cycle()
        host = cluster.compute["compute-0-1"][0]
        host.services.fail("gmond")
        machine.compute_nodes[-1].powered_on = False
        try:
            summary = gmetad.poll_cycle()
            assert summary.failed_services == 1
            assert summary.hosts_down == 1
            dashboard = gmetad.render_dashboard()
            assert " NO" in dashboard  # the down row
        finally:
            machine.compute_nodes[-1].powered_on = True

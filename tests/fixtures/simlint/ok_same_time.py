"""Near-miss fixture: same-time callbacks that cannot race (SL301)."""


def schedule_distinct_times(kernel, stats):
    def from_scheduler():
        stats.utilization = 0.5

    def from_monitor():
        stats.utilization = 0.9

    kernel.at(300.0, from_scheduler)
    kernel.at(600.0, from_monitor)  # different timestamps: ordered by time


def schedule_disjoint_state(kernel, stats):
    def set_load():
        stats.load = 1.0

    def set_memory():
        stats.memory = 2.0

    kernel.at(300.0, set_load)  # same time, disjoint attributes
    kernel.at(300.0, set_memory)

"""Ablation 5 — node-allocation packing and MPI communication cost.

The allocator packs jobs onto the fullest nodes first
(:meth:`~repro.scheduler.base.ClusterResources.try_allocate`); the ablation
quantifies why, by running the same iterate+allreduce MPI workload on a
packed vs a deliberately spread placement of the same rank count.  Spread
placements pay GigE for traffic that packing keeps on-node.
"""

import pytest

from repro.hardware import build_littlefe_modified
from repro.mpi import MpiWorld, run_allreduce_job
from repro.network import build_cluster_network


def run_placements():
    machine = build_littlefe_modified().machine
    net = build_cluster_network(machine)
    names = [n.name for n in machine.compute_nodes]
    results = {}
    for ranks in (2, 4, 8):
        packed_hosts = [
            names[i // 2] for i in range(ranks)
        ]  # fill each 2-core node before the next
        spread_hosts = [names[i % len(names)] for i in range(ranks)]
        packed = run_allreduce_job(
            MpiWorld(net.fabric, packed_hosts), iterations=5, elements=16384
        )
        spread = run_allreduce_job(
            MpiWorld(net.fabric, spread_hosts), iterations=5, elements=16384
        )
        results[ranks] = (packed, spread)
    return results


def test_ablation_placement(benchmark, save_artifact):
    results = benchmark(run_placements)

    lines = [
        "Ablation: rank placement (packed vs spread), iterate+allreduce x5",
        "",
        f"{'ranks':<7}{'packed comm (ms)':>18}{'spread comm (ms)':>18}"
        f"{'penalty':>10}",
    ]
    for ranks, (packed, spread) in sorted(results.items()):
        penalty = spread.communication_s / max(packed.communication_s, 1e-12)
        lines.append(
            f"{ranks:<7}{packed.communication_s * 1e3:>18.2f}"
            f"{spread.communication_s * 1e3:>18.2f}{penalty:>9.1f}x"
        )
    save_artifact("ablation_placement", "\n".join(lines))

    for ranks, (packed, spread) in results.items():
        # both computed the same correct answer with the same compute time
        assert packed.compute_s == pytest.approx(spread.compute_s)
        if ranks <= len(build_littlefe_modified().machine.compute_nodes):
            # spreading ranks that could share nodes costs communication
            assert spread.communication_s > packed.communication_s
    # 2 ranks: packed is pure loopback, spread pays full GigE latency
    packed2, spread2 = results[2]
    assert spread2.communication_s / packed2.communication_s > 5

"""Content-addressed lazy package delivery (CVMFS/Guix-style).

The storage layer under :mod:`repro.yum` mirroring and :mod:`repro.rocks`
installs, rebuilt around content instead of NEVRAs:

* :mod:`repro.cas.chunks` — deterministic chunking of package payloads;
  adjacent RPM versions share most chunks by construction.
* :mod:`repro.cas.store` — the sha256-keyed deduplicated
  :class:`ChunkStore` with catalog refcounts and garbage collection.
* :mod:`repro.cas.stratum` — the delivery hierarchy:
  :class:`Stratum0` origin (journaled transactional publish/rollback) →
  :class:`Stratum1` replica (chunk-delta replication, resumable) →
  :class:`SiteChunkCache` campus tier (lazy fetch-on-reference, seedable
  by a :class:`~repro.repod.SiteProxy`).
* :mod:`repro.cas.delivery` — :class:`LazyDelivery` fetch-on-install for
  installers, plus the chaos-invariant audit.

See docs/DELIVERY.md.
"""

from .chunks import CHUNK_SIZE, Chunk, ChunkingPolicy, PackageManifest, chunk_package
from .delivery import DeliveryStats, LazyDelivery, cas_confluence_problems
from .store import ChunkStore
from .stratum import (
    ChunkFetchStats,
    PublishStats,
    ReplicateStats,
    SiteChunkCache,
    Stratum0,
    Stratum1,
    recover_stratum0,
)

__all__ = [
    "CHUNK_SIZE",
    "Chunk",
    "ChunkingPolicy",
    "PackageManifest",
    "chunk_package",
    "ChunkStore",
    "Stratum0",
    "Stratum1",
    "SiteChunkCache",
    "PublishStats",
    "ReplicateStats",
    "ChunkFetchStats",
    "recover_stratum0",
    "LazyDelivery",
    "DeliveryStats",
    "cas_confluence_problems",
]

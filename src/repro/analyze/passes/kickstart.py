"""Kickstart-graph checks: the layer that decides what lands on each node.

The graph validates hard errors eagerly (unknown edge endpoints, cycles at
resolve time), but a *well-formed* graph can still encode a broken recipe:
nodes no appliance reaches, roll packages no profile pulls in, the same
post-install action queued twice.  Those only surface — silently — on the
installed cluster, which is exactly what pre-flight lint is for.
"""

from __future__ import annotations

from collections import Counter

from ..diagnostic import Severity
from ..registry import rule

KS101 = rule(
    "KS101",
    "kickstart",
    Severity.ERROR,
    "kickstart graph contains an include cycle",
    "break the cycle; Rocks resolves profiles depth-first and will refuse this graph",
)
KS102 = rule(
    "KS102",
    "kickstart",
    Severity.WARNING,
    "graph node is unreachable from every appliance profile",
    "attach the node to a profile with add_edge, or delete it",
)
KS103 = rule(
    "KS103",
    "kickstart",
    Severity.WARNING,
    "roll package is referenced by no appliance profile",
    "reference the package from a graph node reachable from a profile, "
    "or drop it from the roll",
)
KS104 = rule(
    "KS104",
    "kickstart",
    Severity.WARNING,
    "post-install action runs more than once for one profile",
    "post actions execute in closure order; deduplicate the contributing "
    "graph nodes",
)
KS105 = rule(
    "KS105",
    "kickstart",
    Severity.ERROR,
    "appliance profile root is missing from the graph",
    "add a graph node named after the profile (Rocks roots resolution there)",
)


def run(definition, emit) -> None:
    graph = definition.graph
    if graph is None:
        return

    present_profiles = []
    for profile in definition.profiles:
        if not graph.has_node(profile):
            emit(
                "KS105",
                f"appliance profile {profile!r} has no root node in the graph",
                location=f"kickstart:profile/{profile}",
            )
        else:
            present_profiles.append(profile)

    cycle = graph.find_cycle()
    if cycle is not None:
        emit(
            "KS101",
            "include cycle: " + " -> ".join(cycle),
            location=f"kickstart:node/{cycle[0]}",
        )
        # Closure-based checks below would raise on the cycle; stop here.
        return

    reachable = graph.reachable_from(list(present_profiles))
    for name in graph.nodes():
        if name not in reachable:
            emit(
                "KS102",
                f"graph node {name!r} (roll {graph.node(name).roll!r}) is "
                f"not reachable from any appliance profile",
                location=f"kickstart:node/{name}",
            )

    referenced: set[str] = set()
    for profile in present_profiles:
        referenced.update(graph.resolve_packages(profile))
    for roll in definition.rolls:
        for pkg in roll.packages:
            if pkg.name not in referenced:
                emit(
                    "KS103",
                    f"package {pkg.name!r} is carried by roll {roll.name!r} "
                    f"but no appliance profile installs it",
                    location=f"kickstart:package/{pkg.name}",
                )

    for profile in present_profiles:
        counts = Counter(graph.resolve_actions(profile))
        for action, count in sorted(counts.items()):
            if count > 1:
                emit(
                    "KS104",
                    f"post action {action!r} runs {count} times for "
                    f"profile {profile!r}",
                    location=f"kickstart:profile/{profile}",
                )

"""Shared AST machinery for the simlint source passes (``SL*`` rules).

The source passes analyze the *repro source tree itself* rather than a
cluster definition, so they work on :mod:`ast` trees.  This module holds
the pieces every SL pass needs:

* :class:`ImportMap` — resolve a ``Name``/``Attribute`` chain to the dotted
  name it refers to, through ``import x as y`` / ``from x import y as z``
  aliasing, so ``pc()`` after ``from time import perf_counter as pc`` is
  recognised as ``time.perf_counter``;
* unordered-expression inference — a conservative intraprocedural dataflow
  that decides whether an expression's iteration order is deterministic
  (sets are not; ``sorted(...)`` always is), including one level of
  same-file function summaries ("this helper returns a set");
* small helpers shared by the epoch and trace-order passes.

Everything here is pure analysis over stdlib :mod:`ast`; nothing imports
the modules being analyzed.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "ImportMap",
    "dotted_name",
    "UnorderedAnalysis",
    "iter_functions",
    "self_attr",
]


class ImportMap:
    """Alias → dotted-module resolution collected from a whole module.

    Function-local imports count too (``run_hpl_small`` does
    ``import time`` inside the function body), which is why the map is
    built from a full-tree walk rather than just module-level statements.
    """

    def __init__(self, tree: ast.AST) -> None:
        #: local alias -> dotted prefix it stands for
        self.aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    self.aliases[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted name of an expression, through import aliases.

        ``np.random.rand`` (after ``import numpy as np``) resolves to
        ``numpy.random.rand``; chains rooted at anything other than an
        imported name resolve to their literal spelling (``self.kernel.at``)
        so callers can still pattern-match on suffixes.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        root = self.aliases.get(parts[0])
        if root is not None:
            parts[0:1] = root.split(".")
        return ".".join(parts)


def dotted_name(node: ast.AST) -> str | None:
    """Literal dotted spelling of a Name/Attribute chain (no aliasing)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def self_attr(node: ast.AST) -> str | None:
    """``self.X`` → ``"X"``; anything else → None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def iter_functions(tree: ast.AST):
    """Every function/method definition in the tree (including nested)."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


#: ``sorted()`` and friends impose a deterministic order on anything.
_ORDERING_CALLS = frozenset({"sorted", "min", "max"})
#: Constructors/builtins whose result iterates in hash order.
_SET_CALLS = frozenset({"set", "frozenset"})
#: Methods that return a set regardless of receiver type.
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)


@dataclass
class UnorderedAnalysis:
    """Decides whether expressions iterate in nondeterministic order.

    The walk is deliberately conservative: it only reports *unordered* when
    it can see set-ness — a set literal/comprehension, a ``set()`` /
    ``frozenset()`` call, set algebra on such values, a local name assigned
    from one, a ``self.X`` attribute a class ``__init__`` initialises as a
    set, or a call to a same-file function whose return expression is
    set-typed.  Wrapping any of those in ``sorted(...)`` makes the result
    ordered again.
    """

    tree: ast.Module
    #: function/method name -> returns an unordered value
    _returns_unordered: dict[str, bool] = field(default_factory=dict)
    #: class attr names initialised as sets, per enclosing class walk
    _set_attrs: set[str] = field(default_factory=set)

    def __post_init__(self) -> None:
        # Class attributes initialised as sets (``self._dead = set()``).
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for fn in node.body:
                if not isinstance(fn, ast.FunctionDef) or fn.name != "__init__":
                    continue
                for stmt in ast.walk(fn):
                    targets: list[ast.expr] = []
                    value = None
                    if isinstance(stmt, ast.Assign):
                        targets, value = stmt.targets, stmt.value
                    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                        targets, value = [stmt.target], stmt.value
                    for target in targets:
                        attr = self_attr(target)
                        if attr and value is not None and self._is_set_expr(value):
                            self._set_attrs.add(attr)
        # One level of same-file function summaries: "returns a set".
        for fn in iter_functions(self.tree):
            locals_unordered = self._unordered_locals(fn)
            for stmt in ast.walk(fn):
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    if self._is_unordered(stmt.value, locals_unordered):
                        self._returns_unordered[fn.name] = True
                        break

    # -- expression classification -----------------------------------------

    def _is_set_expr(self, node: ast.expr) -> bool:
        """Purely syntactic set-ness (no local dataflow)."""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            fn = node.func
            if isinstance(fn, ast.Name) and fn.id in _SET_CALLS:
                return True
            if isinstance(fn, ast.Attribute) and fn.attr in _SET_METHODS:
                return True
        return False

    def _unordered_locals(self, fn: ast.FunctionDef) -> set[str]:
        """Local names assigned from an unordered expression, fixpointed."""
        names: set[str] = set()
        for _ in range(3):  # aliases of aliases converge fast
            grew = False
            for stmt in ast.walk(fn):
                if not isinstance(stmt, ast.Assign):
                    continue
                if not self._is_unordered(stmt.value, names):
                    continue
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id not in names:
                        names.add(target.id)
                        grew = True
            if not grew:
                break
        return names

    def _is_unordered(self, node: ast.expr, local_names: set[str]) -> bool:
        if self._is_set_expr(node):
            return True
        if isinstance(node, ast.Name):
            return node.id in local_names
        if isinstance(node, ast.Attribute):
            attr = self_attr(node)
            return attr is not None and attr in self._set_attrs
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
        ):
            return self._is_unordered(node.left, local_names) or self._is_unordered(
                node.right, local_names
            )
        if isinstance(node, ast.Call):
            fn = node.func
            # sorted(<anything>) is ordered, full stop.
            if isinstance(fn, ast.Name) and fn.id in _ORDERING_CALLS:
                return False
            # list(xs)/tuple(xs) preserve (dis)order of the argument.
            if isinstance(fn, ast.Name) and fn.id in ("list", "tuple") and node.args:
                return self._is_unordered(node.args[0], local_names)
            # a call to a same-file function summarised as set-returning
            callee = None
            if isinstance(fn, ast.Name):
                callee = fn.id
            elif isinstance(fn, ast.Attribute):
                callee = fn.attr
            if callee is not None and self._returns_unordered.get(callee):
                return True
        return False

    # -- the public query ---------------------------------------------------

    def unordered_loops(self, fn: ast.FunctionDef) -> list[ast.For]:
        """``for`` statements in ``fn`` whose iterable is unordered."""
        local_names = self._unordered_locals(fn)
        out = []
        for stmt in ast.walk(fn):
            if isinstance(stmt, ast.For) and self._is_unordered(
                stmt.iter, local_names
            ):
                out.append(stmt)
        return out

"""Small-cluster capex vs commercial-cloud opex (Section 8).

"With a small cluster, one-time monies can be pooled to purchase a hardware
resource ... Cost is fixed at purchase time ... Use of commercial cloud is
typically an ongoing service expense ... It can be surprisingly
straightforward for an enterprising student to use more resources (and
commit more university funds) than intended, since not all commercial
services support proactive capping of usage."

The model: a cluster costs its purchase price plus electricity; cloud costs
core-hours consumed times the instance rate.  :func:`crossover_utilisation`
finds the duty cycle at which the cluster pays for itself, and
:func:`runaway_student_scenario` prices the uncapped-usage failure mode.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..hardware.chassis import Machine
from ..units import hours_per_year

__all__ = [
    "ClusterCostModel",
    "CloudCostModel",
    "CostComparison",
    "compare",
    "crossover_utilisation",
    "runaway_student_scenario",
]

#: 2015-era on-demand compute: roughly $0.05 per core-hour (c4-class).
DEFAULT_CLOUD_RATE_PER_CORE_HOUR = 0.05
#: US average electricity, $/kWh.
DEFAULT_ELECTRICITY_RATE = 0.12


@dataclass(frozen=True)
class ClusterCostModel:
    """Owning a small cluster."""

    purchase_usd: float
    draw_watts: float
    lifetime_years: float = 4.0
    electricity_usd_per_kwh: float = DEFAULT_ELECTRICITY_RATE
    maintenance_usd_per_year: float = 0.0

    def total_cost_usd(self, *, utilisation: float) -> float:
        """Lifetime cost at a duty cycle (power scales with utilisation;
        idle draw is folded into the 35 % floor)."""
        if not 0.0 <= utilisation <= 1.0:
            raise ReproError(f"utilisation out of [0,1]: {utilisation}")
        duty = 0.35 + 0.65 * utilisation  # idle floor + load-proportional
        kwh = self.draw_watts / 1000.0 * hours_per_year * self.lifetime_years * duty
        return (
            self.purchase_usd
            + kwh * self.electricity_usd_per_kwh
            + self.maintenance_usd_per_year * self.lifetime_years
        )

    def core_hours(self, cores: int, *, utilisation: float) -> float:
        """Useful core-hours delivered over the lifetime."""
        return cores * hours_per_year * self.lifetime_years * utilisation


@dataclass(frozen=True)
class CloudCostModel:
    """Renting the same computation."""

    usd_per_core_hour: float = DEFAULT_CLOUD_RATE_PER_CORE_HOUR
    #: monthly spending cap; None models providers without proactive capping
    monthly_cap_usd: float | None = None

    def cost_for(self, core_hours: float) -> float:
        if core_hours < 0:
            raise ReproError("negative core-hours")
        return core_hours * self.usd_per_core_hour


@dataclass(frozen=True)
class CostComparison:
    """Both options priced for the same delivered computation."""

    utilisation: float
    cluster_usd: float
    cloud_usd: float
    core_hours: float

    @property
    def cluster_wins(self) -> bool:
        return self.cluster_usd < self.cloud_usd

    @property
    def usd_per_core_hour_cluster(self) -> float:
        return self.cluster_usd / self.core_hours if self.core_hours else float("inf")


def compare(
    machine: Machine,
    purchase_usd: float,
    *,
    utilisation: float,
    cloud: CloudCostModel | None = None,
    lifetime_years: float = 4.0,
) -> CostComparison:
    """Price a machine against the cloud at one duty cycle."""
    cloud = cloud or CloudCostModel()
    cluster = ClusterCostModel(
        purchase_usd=purchase_usd,
        draw_watts=machine.draw_watts,
        lifetime_years=lifetime_years,
    )
    core_hours = cluster.core_hours(machine.total_cores, utilisation=utilisation)
    return CostComparison(
        utilisation=utilisation,
        cluster_usd=cluster.total_cost_usd(utilisation=utilisation),
        cloud_usd=cloud.cost_for(core_hours),
        core_hours=core_hours,
    )


def crossover_utilisation(
    machine: Machine,
    purchase_usd: float,
    *,
    cloud: CloudCostModel | None = None,
    lifetime_years: float = 4.0,
    tolerance: float = 1e-4,
) -> float | None:
    """The duty cycle above which owning beats renting (bisection).

    Returns ``None`` if the cluster never wins within [0, 1] (e.g. a very
    expensive machine at very low rates).
    """
    def margin(u: float) -> float:
        c = compare(
            machine, purchase_usd, utilisation=u, cloud=cloud,
            lifetime_years=lifetime_years,
        )
        return c.cloud_usd - c.cluster_usd  # positive = cluster wins

    lo, hi = 0.0, 1.0
    if margin(hi) < 0:
        return None
    if margin(lo) > 0:
        return 0.0
    while hi - lo > tolerance:
        mid = (lo + hi) / 2.0
        if margin(mid) > 0:
            hi = mid
        else:
            lo = mid
    return hi


def runaway_student_scenario(
    *,
    cores: int = 64,
    days: int = 30,
    cloud: CloudCostModel | None = None,
) -> tuple[float, float]:
    """The uncapped-usage failure mode: a student leaves ``cores`` running
    for ``days``.

    Returns ``(uncapped cost, billed cost)`` — they differ only when the
    provider supports a proactive cap.  On a purchased cluster the same
    mistake costs nothing beyond electricity already budgeted.
    """
    cloud = cloud or CloudCostModel()
    core_hours = cores * 24.0 * days
    uncapped = cloud.cost_for(core_hours)
    if cloud.monthly_cap_usd is None:
        return uncapped, uncapped
    months = days / 30.0
    return uncapped, min(uncapped, cloud.monthly_cap_usd * months)

"""RPM database and transaction tests: ordering, atomicity, integrity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    ConflictError,
    DependencyError,
    PackageNotFoundError,
    RpmError,
    TransactionError,
)
from repro.rpm import Flag, Package, Requirement, RpmDatabase, Transaction


@pytest.fixture
def db(frontend_host):
    return RpmDatabase(frontend_host)


def mk(name, version="1.0", **kw):
    return Package(name=name, version=version, **kw)


class TestDatabase:
    def test_install_materialises_payload(self, db):
        txn = Transaction(db)
        txn.install(
            mk("gromacs", commands=("mdrun",), libraries=("libgmx.so.8",),
               modulefile="gromacs/1.0")
        )
        txn.commit()
        host = db.host
        assert host.has_command("mdrun")
        assert host.fs.exists("/usr/lib64/libgmx.so.8")
        assert host.modules.has("gromacs/1.0")

    def test_erase_removes_payload(self, db):
        Transaction(db).install(mk("tool", commands=("tool",))).commit()
        Transaction(db).erase("tool").commit()
        assert not db.has("tool")
        assert not db.host.has_command("tool")

    def test_get_missing_raises(self, db):
        with pytest.raises(PackageNotFoundError):
            db.get("nope")

    def test_double_install_rejected_at_primitive(self, db):
        db._install_unchecked(mk("x"))
        with pytest.raises(RpmError, match="already installed"):
            db._install_unchecked(mk("x", "2.0"))

    def test_whatrequires_finds_sole_dependants(self, db):
        txn = Transaction(db)
        txn.install(mk("openmpi"))
        txn.install(mk("gromacs", requires=(Requirement("openmpi"),)))
        txn.commit()
        assert [p.name for p in db.whatrequires("openmpi")] == ["gromacs"]
        assert db.whatrequires("gromacs") == []

    def test_whatrequires_ignores_multi_provider_reqs(self, db):
        cap = Requirement("mpi-impl")
        from repro.rpm import Capability

        txn = Transaction(db)
        txn.install(mk("openmpi", provides=(Capability("mpi-impl"),)))
        txn.install(mk("mpich", provides=(Capability("mpi-impl"),)))
        txn.install(mk("app", requires=(cap,)))
        txn.commit()
        # either provider alone satisfies app; erasing one breaks nothing
        assert db.whatrequires("openmpi") == []

    def test_unsatisfied_requirements_empty_on_healthy_db(self, db):
        txn = Transaction(db)
        txn.install(mk("a"))
        txn.install(mk("b", requires=(Requirement("a"),)))
        txn.commit()
        assert db.unsatisfied_requirements() == []


class TestTransactionValidation:
    def test_missing_dependency_rejected(self, db):
        txn = Transaction(db).install(
            mk("gromacs", requires=(Requirement("openmpi"),))
        )
        with pytest.raises(DependencyError, match="nothing provides"):
            txn.commit()
        assert len(db) == 0

    def test_erase_breaking_dependant_rejected(self, db):
        Transaction(db).install(mk("openmpi")).install(
            mk("gromacs", requires=(Requirement("openmpi"),))
        ).commit()
        with pytest.raises(DependencyError):
            Transaction(db).erase("openmpi").commit()
        assert db.has("openmpi")

    def test_conflict_rejected(self, db):
        txn = Transaction(db)
        txn.install(mk("torque", conflicts=(Requirement("slurm"),)))
        txn.install(mk("slurm"))
        with pytest.raises(ConflictError):
            txn.commit()

    def test_conflict_with_installed_rejected(self, db):
        Transaction(db).install(mk("slurm")).commit()
        txn = Transaction(db).install(
            mk("torque", conflicts=(Requirement("slurm"),))
        )
        with pytest.raises(ConflictError):
            txn.commit()

    def test_empty_transaction_rejected(self, db):
        with pytest.raises(TransactionError, match="empty"):
            Transaction(db).commit()

    def test_already_installed_rejected(self, db):
        Transaction(db).install(mk("x")).commit()
        with pytest.raises(TransactionError, match="already installed"):
            Transaction(db).install(mk("x")).commit()

    def test_erase_not_installed_rejected(self, db):
        with pytest.raises(TransactionError, match="not installed"):
            Transaction(db).erase("ghost").commit()

    def test_downgrade_refused_without_flag(self, db):
        Transaction(db).install(mk("x", "2.0")).commit()
        with pytest.raises(TransactionError, match="not newer"):
            Transaction(db).upgrade(mk("x", "1.0"))

    def test_downgrade_allowed_with_flag(self, db):
        Transaction(db).install(mk("x", "2.0")).commit()
        Transaction(db, allow_downgrade=True).upgrade(mk("x", "1.0")).commit()
        assert db.get("x").version == "1.0"

    def test_conflicting_double_queue_rejected(self, db):
        txn = Transaction(db)
        txn.install(mk("x", "1.0"))
        with pytest.raises(TransactionError, match="also install"):
            txn.install(mk("x", "2.0"))


class TestCheckDiagnostics:
    """check() is a thin shim over check_diagnostics(): the structured
    records carry stable TX7xx codes; str() of each is the legacy string."""

    def codes(self, txn):
        return [d.code for d in txn.check_diagnostics()]

    def test_check_strings_are_diagnostic_messages(self, db):
        txn = Transaction(db).install(
            mk("gromacs", requires=(Requirement("openmpi"),))
        )
        diags = txn.check_diagnostics()
        assert txn.check() == [str(d) for d in diags]
        assert txn.check() == [d.message for d in diags]

    def test_tx701_wrong_arch(self, db):
        txn = Transaction(db).install(mk("tool", arch="ppc64"))
        assert self.codes(txn) == ["TX701"]
        assert "built for ppc64" in txn.check()[0]

    def test_tx702_erase_missing(self, db):
        txn = Transaction(db).erase("ghost")
        assert self.codes(txn) == ["TX702"]
        assert txn.check() == ["cannot erase ghost: not installed"]

    def test_tx703_reinstall(self, db):
        Transaction(db).install(mk("x")).commit()
        txn = Transaction(db).install(mk("x"))
        assert self.codes(txn) == ["TX703"]

    def test_tx704_implicit_upgrade(self, db):
        Transaction(db).install(mk("x", "1.0")).commit()
        txn = Transaction(db).install(mk("x", "2.0"))
        assert self.codes(txn) == ["TX704"]
        assert "Transaction.upgrade" in txn.check()[0]

    def test_tx705_missing_dependency(self, db):
        txn = Transaction(db).install(
            mk("gromacs", requires=(Requirement("openmpi"),))
        )
        assert self.codes(txn) == ["TX705"]

    def test_tx706_conflict(self, db):
        txn = Transaction(db)
        txn.install(mk("torque", conflicts=(Requirement("slurm"),)))
        txn.install(mk("slurm"))
        assert self.codes(txn) == ["TX706"]

    def test_diagnostics_carry_location_and_severity(self, db):
        txn = Transaction(db).erase("ghost")
        (diag,) = txn.check_diagnostics()
        assert diag.location == "transaction:erase/ghost"
        assert diag.severity.value == "error"
        assert diag.subsystem == "transaction"

    def test_commit_exception_type_follows_codes(self, db):
        # TX705 -> DependencyError even though other problems also queue.
        txn = Transaction(db).erase("ghost").install(
            mk("gromacs", requires=(Requirement("openmpi"),))
        )
        assert set(self.codes(txn)) == {"TX702", "TX705"}
        with pytest.raises(DependencyError):
            txn.commit()

    def test_clean_transaction_has_no_diagnostics(self, db):
        txn = Transaction(db).install(mk("openmpi"))
        assert txn.check_diagnostics() == []
        assert txn.check() == []


class TestTransactionOrderingAndAtomicity:
    def test_install_order_dependencies_first(self, db):
        txn = Transaction(db)
        txn.install(mk("app", requires=(Requirement("lib"),)))
        txn.install(mk("lib", requires=(Requirement("base"),)))
        txn.install(mk("base"))
        order = [p.name for p in txn._install_order()]
        assert order.index("base") < order.index("lib") < order.index("app")

    def test_cycles_co_installed(self, db):
        txn = Transaction(db)
        txn.install(mk("a", requires=(Requirement("b"),)))
        txn.install(mk("b", requires=(Requirement("a"),)))
        result = txn.commit()
        assert len(result.installed) == 2

    def test_upgrade_records_old_and_new(self, db):
        Transaction(db).install(mk("x", "1.0")).commit()
        result = Transaction(db).upgrade(mk("x", "2.0")).commit()
        assert len(result.upgraded) == 1
        old, new = result.upgraded[0]
        assert old.version == "1.0" and new.version == "2.0"

    def test_upgrade_of_missing_package_installs(self, db):
        result = Transaction(db).upgrade(mk("x", "2.0")).commit()
        assert [p.name for p in result.installed] == ["x"]

    def test_mid_commit_failure_rolls_back(self, db, monkeypatch):
        Transaction(db).install(mk("keep", "1.0")).commit()
        txn = Transaction(db)
        txn.install(mk("a"))
        txn.install(mk("boom"))
        real = db._install_unchecked

        def explode(pkg):
            if pkg.name == "boom":
                raise RuntimeError("disk full")
            real(pkg)

        monkeypatch.setattr(db, "_install_unchecked", explode)
        with pytest.raises(TransactionError, match="rolled back"):
            txn.commit()
        monkeypatch.undo()
        assert db.names() == {"keep"}
        assert db.unsatisfied_requirements() == []

    def test_summary_counts(self, db):
        result = Transaction(db).install(mk("a")).install(mk("b")).commit()
        assert "Install 2" in result.summary()
        assert result.change_count == 2


# --- property: closure integrity over random dependency DAGs --------------------


@given(st.integers(min_value=2, max_value=8), st.data())
@settings(max_examples=30, deadline=None)
def test_random_dag_installs_satisfy_all_requirements(n, data):
    """Installing a random dependency DAG in one transaction always yields a
    DB with zero unsatisfied requirements, regardless of queue order."""
    from repro.distro import CENTOS_6_5, Host
    from repro.hardware import build_littlefe_modified

    host = Host(build_littlefe_modified().machine.head, CENTOS_6_5)
    db = RpmDatabase(host)
    packages = []
    for i in range(n):
        # each package may depend on any lower-numbered package (acyclic)
        deps = tuple(
            Requirement(f"p{j}")
            for j in range(i)
            if data.draw(st.booleans(), label=f"dep-{i}-{j}")
        )
        packages.append(mk(f"p{i}", requires=deps))
    order = data.draw(st.permutations(packages), label="queue-order")
    txn = Transaction(db)
    for p in order:
        txn.install(p)
    txn.commit()
    assert db.unsatisfied_requirements() == []
    assert len(db) == n

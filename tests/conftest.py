"""Shared fixtures for the test suite.

The expensive objects (full XCBC builds, XNIT-integrated Limulus) are
module-scoped where tests only read them; tests that mutate state build
their own instances.
"""

from __future__ import annotations

import pytest

from repro.core.machines import ExistingCluster, build_limulus_cluster
from repro.core.xcbc import XcbcBuildReport, build_xcbc_cluster
from repro.core.xnit import build_xnit_repository, integrate_host, setup_via_manual_repo_file
from repro.distro import CENTOS_6_5, Host
from repro.hardware import (
    build_limulus_hpc200,
    build_littlefe_modified,
    build_littlefe_original,
)
from repro.network import build_cluster_network


@pytest.fixture
def littlefe_machine():
    """A fresh modified-LittleFe machine (mutable per test)."""
    return build_littlefe_modified().machine


@pytest.fixture
def limulus_machine():
    """A fresh Limulus HPC200 machine (mutable per test)."""
    return build_limulus_hpc200().machine


@pytest.fixture
def littlefe_quote():
    return build_littlefe_modified()


@pytest.fixture
def limulus_quote():
    return build_limulus_hpc200()


@pytest.fixture
def original_littlefe_quote():
    return build_littlefe_original()


@pytest.fixture
def frontend_host(littlefe_machine):
    """A bare CentOS 6.5 host on the LittleFe head node."""
    return Host(littlefe_machine.head, CENTOS_6_5)


@pytest.fixture
def littlefe_network(littlefe_machine):
    return build_cluster_network(littlefe_machine)


@pytest.fixture(scope="session")
def xcbc_littlefe() -> XcbcBuildReport:
    """One full XCBC build, shared by read-only tests."""
    return build_xcbc_cluster(build_littlefe_modified().machine)


@pytest.fixture(scope="session")
def xnit_limulus() -> ExistingCluster:
    """One Limulus fully integrated via XNIT, shared by read-only tests."""
    cluster = build_limulus_cluster()
    repo = build_xnit_repository()
    for client in cluster.all_clients():
        setup_via_manual_repo_file(client, repo)
        integrate_host(client, full_toolkit=True)
    return cluster

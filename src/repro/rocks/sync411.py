"""The Rocks 411 information service: cluster-wide account sync.

Rocks keeps /etc/passwd (and friends) uniform by pushing them from the
frontend to every compute node through the 411 service (the base roll's
``rocks-411`` package registers it).  Combined with the NFS-exported /home,
this is what makes an account created on the frontend *work* everywhere.

:func:`make_cluster_uniform` is the convenience that wires both: export and
mount /home, then start a :class:`Sync411` session.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..distro.host import Host
from ..distro.nfs import NfsServer, nfs_mount
from ..errors import RocksError
from .installer import ProvisionedCluster

__all__ = ["Sync411", "make_cluster_uniform"]


class Sync411:
    """A 411 master (the frontend) and its listeners (compute nodes)."""

    def __init__(self, master: Host) -> None:
        if not master.services.is_running("411"):
            raise RocksError(
                f"{master.name}: the 411 service is not running "
                f"(is the Rocks base roll installed?)"
            )
        self.master = master
        self._listeners: list[Host] = []
        self.push_count = 0

    def register(self, listener: Host) -> None:
        """Attach a compute node as a 411 listener."""
        if listener is self.master:
            raise RocksError("the master does not listen to itself")
        if listener in self._listeners:
            raise RocksError(f"{listener.name} is already registered")
        self._listeners.append(listener)

    def listeners(self) -> list[str]:
        return [h.name for h in self._listeners]

    def push(self) -> int:
        """Replicate the master's accounts to every listener.

        Returns the number of accounts created across the cluster.  Existing
        same-named accounts are left alone (411 files are replaced wholesale
        in reality; the observable effect — same account set everywhere — is
        identical, and skipping avoids clobbering uids tests rely on).
        """
        created = 0
        for listener in self._listeners:
            for user in self.master.users.users():
                if user.name == "root" or listener.users.has_user(user.name):
                    continue
                clone = listener.users.add_user(
                    user.name,
                    system=user.system,
                    home=user.home,
                    shell=user.shell,
                )
                clone.profile_modules = list(user.profile_modules)
                created += 1
        self.push_count += 1
        return created

    def in_sync(self) -> bool:
        """True when every listener has exactly the master's account names."""
        master_names = {u.name for u in self.master.users.users()}
        return all(
            {u.name for u in listener.users.users()} == master_names
            for listener in self._listeners
        )


def make_cluster_uniform(cluster: ProvisionedCluster) -> tuple[Sync411, NfsServer]:
    """Wire the standard Rocks account/home uniformity onto a cluster.

    * exports the frontend's /home over NFS and mounts it on every compute
      node;
    * starts a 411 session with every compute node registered and performs
      the initial push.
    """
    frontend = cluster.frontend
    nfs = NfsServer(frontend)
    frontend.fs.mkdir("/home", exist_ok=True)
    nfs.export("/home")
    sync = Sync411(frontend)
    for host in cluster.hosts()[1:]:
        nfs_mount(host, nfs, "/home", "/home")
        sync.register(host)
    sync.push()
    return sync, nfs

"""High-level machine builders for the paper's reference systems.

These functions assemble the exact machines Sections 5.1-5.2 describe, using
the parts catalogue, and return a :class:`BuildQuote` pairing the validated
:class:`~repro.hardware.chassis.Machine` with its bill-of-materials cost and
the paper's quoted price (Table 5 uses the quoted figures; EXPERIMENTS.md
records both).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import AssemblyError
from .chassis import (
    LIMULUS_DESKSIDE,
    LITTLEFE_V4_FRAME,
    Machine,
    populate,
)
from .cooling import (
    INTEL_STOCK_LGA1150,
    PASSIVE_SINK_PLUS_FAN,
    ROSEWILL_RCX_Z775_LP,
    CoolerModel,
)
from .cpu import ATOM_D510, CELERON_G1840, I7_4770S
from .memory import DDR3_4G_SODIMM, DDR3_8G_UDIMM
from .motherboard import GA_Q87TN, LIMULUS_NODE_BOARD, LITTLEFE_ATOM_BOARD
from .node import Node, NodeRole, assemble_node
from .power import ATX_450W, PICO_PSU_160
from .storage import CRUCIAL_M550_128_MSATA, WD_RED_2TB

__all__ = [
    "BuildQuote",
    "build_littlefe_original",
    "build_littlefe_modified",
    "build_limulus_hpc200",
    "LITTLEFE_QUOTED_PRICE_USD",
    "LIMULUS_QUOTED_PRICE_USD",
    "NETWORK_KIT_USD",
]

#: Table 5 quoted system costs.
LITTLEFE_QUOTED_PRICE_USD = 3600.0
LIMULUS_QUOTED_PRICE_USD = 5995.0

#: Switch + cabling + AC bricks + assembly hardware for a self-built cluster.
NETWORK_KIT_USD = 220.0

#: Commercial products sell at roughly twice parts cost (integration, power
#: management firmware, support); used to sanity-check the Limulus quote.
COMMERCIAL_INTEGRATION_MARKUP = 2.0


@dataclass(frozen=True)
class BuildQuote:
    """A built machine plus its costs.

    ``bom_usd`` is the bill-of-materials total from the parts catalogue;
    ``quoted_usd`` is the price the paper reports (Table 5).  The two are
    independently useful: the BOM validates that the catalogue is sane, the
    quote keeps Table 5 faithful to the paper.
    """

    machine: Machine
    bom_usd: float
    quoted_usd: float

    @property
    def cost_delta_fraction(self) -> float:
        """|BOM - quoted| / quoted; the Table 5 bench reports this."""
        return abs(self.bom_usd - self.quoted_usd) / self.quoted_usd


def build_littlefe_original(name: str = "littlefe-v4") -> BuildQuote:
    """The historical 6-node Atom D510 LittleFe with one shared supply.

    Diskless by design — which is exactly why it cannot run the Rocks-based
    XCBC install (Section 5.1); :mod:`repro.rocks.installer` will refuse it.
    """
    nodes: list[Node] = []
    for i in range(6):
        role = NodeRole.FRONTEND if i == 0 else NodeRole.COMPUTE
        # The Atom board has a single NIC, so the historical frontend hangs a
        # USB NIC off it in the real design; we model the original LittleFe
        # head as compute-class and relax the dual-homed rule by assembling
        # it as compute then retagging, mirroring the "just good enough"
        # clusters the introduction laments.
        node = assemble_node(
            f"{name}-n{i}",
            role=NodeRole.COMPUTE,
            board=LITTLEFE_ATOM_BOARD,
            cpu=ATOM_D510,
            dimms=(DDR3_4G_SODIMM,),
            storage=(),
            cooler=None,  # soldered CPU: sink + add-on fan is part of the kit
        )
        if role == NodeRole.FRONTEND:
            node.role = NodeRole.FRONTEND
        nodes.append(node)
    machine = populate(name, LITTLEFE_V4_FRAME, nodes, shared_psu_override=ATX_450W)
    bom = machine.price_usd + NETWORK_KIT_USD
    return BuildQuote(machine=machine, bom_usd=bom, quoted_usd=2500.0)


def build_littlefe_modified(
    name: str = "littlefe-iu",
    *,
    cooler: CoolerModel = ROSEWILL_RCX_Z775_LP,
) -> BuildQuote:
    """The Section 5.1 modified LittleFe: the machine of Tables 4-5.

    Six GA-Q87TN boards with Celeron G1840 (2 cores @ 2.8 GHz -> 12 cores),
    a Crucial 128 GB mSATA drive per node (Rocks needs disks), a low-profile
    cooler per node (the stock cooler does not clear the frame), and an
    individual picoPSU per node (the shared supply cannot carry Haswell).

    Passing ``cooler=INTEL_STOCK_LGA1150`` reproduces the paper's fit
    failure: :class:`~repro.errors.ClearanceError`.
    """
    nodes: list[Node] = []
    for i in range(6):
        role = NodeRole.FRONTEND if i == 0 else NodeRole.COMPUTE
        nodes.append(
            assemble_node(
                f"{name}-n{i}",
                role=role,
                board=GA_Q87TN,
                cpu=CELERON_G1840,
                dimms=(DDR3_4G_SODIMM, DDR3_4G_SODIMM),
                storage=(CRUCIAL_M550_128_MSATA,),
                cooler=cooler,
                psu=PICO_PSU_160,
            )
        )
    machine = populate(name, LITTLEFE_V4_FRAME, nodes)
    bom = machine.price_usd + NETWORK_KIT_USD
    return BuildQuote(
        machine=machine, bom_usd=bom, quoted_usd=LITTLEFE_QUOTED_PRICE_USD
    )


def build_limulus_hpc200(name: str = "limulus-hpc200") -> BuildQuote:
    """The Limulus HPC200 of Section 5.2: the other machine of Tables 4-5.

    One head node plus three diskless compute blades, all i7-4770S (4 cores
    @ 3.1 GHz -> 16 cores), behind the case's single 850 W supply.  The head
    carries the machine's local storage ("considerable local storage
    capabilities", Section 7).
    """
    nodes: list[Node] = []
    for i in range(4):
        head = i == 0
        nodes.append(
            assemble_node(
                f"{name}-n{i}",
                role=NodeRole.FRONTEND if head else NodeRole.COMPUTE,
                board=LIMULUS_NODE_BOARD,
                cpu=I7_4770S,
                dimms=(DDR3_8G_UDIMM, DDR3_8G_UDIMM),
                storage=(WD_RED_2TB, WD_RED_2TB) if head else (),
                cooler=INTEL_STOCK_LGA1150,
                psu=None,  # case PSU powers everything
            )
        )
    machine = populate(name, LIMULUS_DESKSIDE, nodes)
    # Commercial product: street price is parts times the integration markup.
    bom = machine.price_usd * COMMERCIAL_INTEGRATION_MARKUP
    return BuildQuote(machine=machine, bom_usd=bom, quoted_usd=LIMULUS_QUOTED_PRICE_USD)

"""Grid-layer tests: GridFTP transfers, GFFS namespace, Stampede reference."""

import pytest

from repro.core import audit_host, xsede_packages
from repro.core.packages_xsede import CATEGORY_SCHEDULER
from repro.grid import (
    GffsNamespace,
    GridEndpoint,
    GridError,
    WanLink,
    build_stampede_mini,
    transfer,
)


@pytest.fixture(scope="module")
def stampede():
    return build_stampede_mini(nodes=4)


@pytest.fixture(scope="module")
def campus():
    from repro.core import build_xcbc_cluster
    from repro.hardware import build_littlefe_modified

    return build_xcbc_cluster(build_littlefe_modified("campus").machine).cluster


class TestWanLink:
    def test_striping_aggregates_bandwidth(self):
        link = WanLink(bandwidth_bytes_s=1.25e8, per_stream_cap_bytes_s=3e7)
        one = link.transfer_time_s(10**9, parallelism=1)
        four = link.transfer_time_s(10**9, parallelism=4)
        assert four < one  # the reason GridFTP stripes
        # but never beyond the link rate
        eight = link.transfer_time_s(10**9, parallelism=8)
        floor = link.latency_s + 10**9 / link.bandwidth_bytes_s
        assert eight == pytest.approx(floor)

    def test_invalid_parameters(self):
        with pytest.raises(GridError):
            WanLink().transfer_time_s(-1, parallelism=1)
        with pytest.raises(GridError):
            WanLink().transfer_time_s(1, parallelism=0)


class TestEndpoints:
    def test_requires_globus_installed(self, littlefe_machine):
        from repro.distro import CENTOS_6_5, Host

        bare = Host(littlefe_machine.head, CENTOS_6_5)
        with pytest.raises(GridError, match="globus"):
            GridEndpoint("campus#bare", bare)

    def test_checksum_stability(self, campus):
        ep = GridEndpoint("campus#lf", campus.frontend)
        campus.frontend.fs.write("/home/x.dat", "abc")
        assert ep.checksum("/home/x.dat") == ep.checksum("/home/x.dat")

    def test_list_files_recursive(self, campus):
        ep = GridEndpoint("campus#lf", campus.frontend)
        campus.frontend.fs.write("/home/d/a.txt", "1")
        campus.frontend.fs.write("/home/d/sub/b.txt", "2")
        assert ep.list_files("/home/d") == ["a.txt", "sub/b.txt"]


class TestTransfers:
    def test_single_file_with_verification(self, campus, stampede):
        src = GridEndpoint("campus#lf", campus.frontend)
        dst = GridEndpoint("xsede#stampede", stampede.frontend)
        campus.frontend.fs.write("/home/alice/results.csv", "a,b\n1,2\n" * 100)
        result = transfer(
            src, dst, "/home/alice/results.csv", "/scratch/alice/results.csv"
        )
        assert result.files == 1
        assert dst.read("/scratch/alice/results.csv") == src.read(
            "/home/alice/results.csv"
        )
        assert result.retried_files == []

    def test_directory_tree_preserved(self, campus, stampede):
        src = GridEndpoint("campus#lf", campus.frontend)
        dst = GridEndpoint("xsede#stampede", stampede.frontend)
        for rel in ("run1/in.gro", "run1/topol.top", "run2/in.gro"):
            campus.frontend.fs.write(f"/home/bob/md/{rel}", f"content:{rel}")
        result = transfer(src, dst, "/home/bob/md", "/scratch/bob/md")
        assert result.files == 3
        assert dst.read("/scratch/bob/md/run2/in.gro") == "content:run2/in.gro"

    def test_corruption_caught_and_retried(self, campus, stampede):
        src = GridEndpoint("campus#lf", campus.frontend)
        dst = GridEndpoint("xsede#stampede", stampede.frontend)
        campus.frontend.fs.write("/home/c/big.dat", "z" * 1000)
        result = transfer(
            src, dst, "/home/c/big.dat", "/scratch/c/big.dat",
            corrupt_first_attempt={"big.dat"},
        )
        assert result.retried_files == ["big.dat"]
        assert dst.read("/scratch/c/big.dat") == "z" * 1000

    def test_persistent_corruption_fails_loudly(self, campus, stampede):
        src = GridEndpoint("campus#lf", campus.frontend)
        dst = GridEndpoint("xsede#stampede", stampede.frontend)
        campus.frontend.fs.write("/home/c/cursed.dat", "q" * 10)
        with pytest.raises(GridError, match="checksum"):
            transfer(
                src, dst, "/home/c/cursed.dat", "/scratch/c/cursed.dat",
                corrupt_first_attempt={"cursed.dat"},
                max_retries=0,
            )

    def test_empty_directory_rejected(self, campus, stampede):
        src = GridEndpoint("campus#lf", campus.frontend)
        dst = GridEndpoint("xsede#stampede", stampede.frontend)
        campus.frontend.fs.mkdir("/home/empty-dir", exist_ok=True)
        with pytest.raises(GridError, match="no files"):
            transfer(src, dst, "/home/empty-dir", "/scratch/nowhere")


class TestGffs:
    def test_longest_prefix_routing(self, campus, stampede):
        ns = GffsNamespace()
        ns.link("/resources/campus", campus.frontend, "/home")
        ns.link("/resources/campus/apps", campus.frontend, "/opt")
        campus.frontend.fs.write("/home/f.txt", "home file")
        assert ns.read("/resources/campus/f.txt") == "home file"
        # the deeper link wins for its subtree
        assert ns.exists("/resources/campus/apps/gromacs/.keep")

    def test_cross_site_copy(self, campus, stampede):
        ns = GffsNamespace()
        ns.link("/resources/campus", campus.frontend, "/home")
        ns.link("/resources/stampede", stampede.frontend, "/scratch")
        campus.frontend.fs.write("/home/dataset.bin", "D" * 64)
        moved = ns.copy(
            "/resources/campus/dataset.bin", "/resources/stampede/dataset.bin"
        )
        assert moved == 64
        assert stampede.frontend.fs.read("/scratch/dataset.bin") == "D" * 64

    def test_unbacked_path_rejected(self):
        ns = GffsNamespace()
        with pytest.raises(GridError, match="no grid resource"):
            ns.read("/resources/ghost/file")

    def test_link_requires_gffs_tooling(self, littlefe_machine):
        from repro.distro import CENTOS_6_5, Host

        bare = Host(littlefe_machine.head, CENTOS_6_5)
        ns = GffsNamespace()
        with pytest.raises(GridError, match="gffs"):
            ns.link("/resources/bare", bare, "/home")

    def test_ls_at_namespace_level(self, campus, stampede):
        ns = GffsNamespace()
        ns.link("/resources/campus", campus.frontend, "/home")
        ns.link("/resources/stampede", stampede.frontend, "/scratch")
        assert ns.ls("/resources") == ["campus", "stampede"]

    def test_duplicate_link_rejected(self, campus):
        ns = GffsNamespace()
        ns.link("/resources/campus", campus.frontend, "/home")
        with pytest.raises(GridError, match="already links"):
            ns.link("/resources/campus", campus.frontend, "/opt")


class TestStampedeReference:
    def test_shape(self, stampede):
        assert stampede.machine.node_count == 4
        assert stampede.machine.total_cores == 32  # 4 x E5-2670 8-core
        assert stampede.frontend.has_command("sbatch")
        assert not stampede.frontend.has_command("qsub")

    def test_audits_perfectly_against_slurm_catalogue(self, stampede):
        catalogue = [
            p for p in xsede_packages() if p.category != CATEGORY_SCHEDULER
        ]
        report = audit_host(
            stampede.frontend,
            stampede.client_for(stampede.frontend).db,
            catalogue=catalogue,
        )
        assert report.overall == pytest.approx(1.0)

    def test_campus_cluster_runs_alike_the_reference(self, campus, stampede):
        """The Section 2 claim with a live reference: same libraries in the
        same places, same modules, same application commands."""
        from repro.core import portability_check

        apps = ["mdrun", "R", "python", "blastn", "octave", "mpirun"]
        frac, broken = portability_check(
            campus.frontend, stampede.frontend, apps
        )
        assert frac == 1.0, broken
        for lib in ("libfftw3.so.3", "libmpi.so.1", "libR.so"):
            assert campus.frontend.fs.exists(f"/usr/lib64/{lib}")
            assert stampede.frontend.fs.exists(f"/usr/lib64/{lib}")

    def test_minimum_size_enforced(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            build_stampede_mini(nodes=1)

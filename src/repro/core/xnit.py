"""XNIT: the XSEDE National Integration Toolkit.

The paper's second distribution channel: a Yum repository "so that specific
tools can be downloaded and installed in portions as appropriate on existing
clusters" (Abstract).  This module builds the repository (the full XCBC
catalogue **plus** the community extras) and implements both Section 3
setup paths:

* install the ``xsede-release`` RPM, whose payload drops
  ``/etc/yum.repos.d/xsede.repo``; or
* install ``yum-plugin-priorities`` by hand and write the ``.repo`` file
  from the README.

Integration is non-destructive by design — the existing cluster's packages
are never removed, only supplemented or updated — and that property is
asserted, not assumed (see :func:`integrate_host`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import YumError
from ..rpm.package import Package
from ..yum.client import YumClient
from ..yum.repoconfig import XSEDE_REPO_STANZA, RepoStanza
from ..yum.repository import Repository
from .packages_xsede import xnit_extra_packages, xsede_package_names
from .release import CURRENT_RELEASE, packages_for_release

__all__ = [
    "build_xnit_repository",
    "publish_release",
    "setup_via_repo_rpm",
    "setup_via_manual_repo_file",
    "integrate_host",
    "IntegrationReport",
    "XSEDE_RELEASE_RPM",
    "YUM_PLUGIN_PRIORITIES",
]

#: The RPM that configures the repository for you (Section 3, method one).
XSEDE_RELEASE_RPM = Package(
    name="xsede-release",
    version="1.0",
    category="XNIT",
    summary="XSEDE Yum repository configuration",
    files=("/etc/yum.repos.d/xsede.repo",),
)

#: Method two's prerequisite.
YUM_PLUGIN_PRIORITIES = Package(
    name="yum-plugin-priorities",
    version="1.1.30",
    category="XNIT",
    summary="Yum priorities plugin",
    files=("/usr/lib/yum-plugins/priorities.py",),
)


def build_xnit_repository(
    version: str = CURRENT_RELEASE.version, *, include_extras: bool = True
) -> Repository:
    """The XSEDE Yum repository at a catalogue release.

    Contains everything in the XCBC build (including torque/maui — XNIT
    lets an existing cluster "change the schedulers", Section 8) plus the
    community extras, plus the two setup RPMs.
    """
    repo = Repository(
        "xsede",
        name="XSEDE National Integration Toolkit",
        baseurl=XSEDE_REPO_STANZA.baseurl,
        priority=XSEDE_REPO_STANZA.priority,
    )
    repo.add_all(packages_for_release(version))
    # "XNIT includes all of the software included in the standard XCBC
    # build" — that includes the Table 1 basics (modules, build tools),
    # minus the Rocks cluster manager itself (XNIT's whole point is not
    # requiring Rocks).
    from ..rocks.rolls_catalog import base_roll

    existing = {p.nevra for p in repo.all_packages()}
    for pkg in base_roll().packages:
        if pkg.name.startswith("rocks"):
            continue
        if pkg.nevra not in existing and not repo.has(pkg.name):
            repo.add(pkg)
    if include_extras:
        repo.add_all(xnit_extra_packages())
    repo.add(XSEDE_RELEASE_RPM)
    repo.add(YUM_PLUGIN_PRIORITIES)
    return repo


def publish_release(repo: Repository, version: str) -> list[str]:
    """Publish a newer catalogue release into an existing repository.

    Returns the NEVRAs added.  Existing NEVRAs stay (yum repositories keep
    history); clients see the new versions on their next ``check-update``.
    """
    added = []
    for pkg in packages_for_release(version):
        if not any(v.nevra == pkg.nevra for v in repo.versions_of(pkg.name)):
            repo.add(pkg)
            added.append(pkg.nevra)
    return added


def setup_via_repo_rpm(client: YumClient, repo: Repository) -> None:
    """Section 3, method one: install the xsede-release RPM.

    The RPM's payload is the ``.repo`` file; installing it attaches the
    repository to the client.
    """
    from ..rpm.transaction import Transaction

    Transaction(client.db).install(XSEDE_RELEASE_RPM).commit()
    # The dropped file's content is the canonical stanza.
    client.host.fs.write(
        "/etc/yum.repos.d/xsede.repo", XSEDE_REPO_STANZA.render(), overwrite=True
    )
    client.repos.add_repo(repo)


def setup_via_manual_repo_file(client: YumClient, repo: Repository) -> None:
    """Section 3, method two: yum-plugin-priorities + hand-written stanza."""
    from ..rpm.transaction import Transaction

    Transaction(client.db).install(YUM_PLUGIN_PRIORITIES).commit()
    client.repos.use_priorities = True
    client.configure_repo_file(
        "xsede.repo", XSEDE_REPO_STANZA.render(), available={repo.repo_id: repo}
    )


@dataclass
class IntegrationReport:
    """Outcome of integrating XNIT onto one host."""

    host: str
    installed: list[str] = field(default_factory=list)
    upgraded: list[str] = field(default_factory=list)
    preexisting_untouched: bool = True

    @property
    def change_count(self) -> int:
        return len(self.installed) + len(self.upgraded)


def integrate_host(
    client: YumClient,
    *,
    packages: list[str] | None = None,
    full_toolkit: bool = False,
) -> IntegrationReport:
    """Add XNIT software to an existing host.

    ``packages`` selects specific tools ("one-time installations of any
    particular software capability they want", Section 1); ``full_toolkit``
    installs the entire XCBC run-alike set.  The function verifies the
    non-destructive property: every package installed before integration is
    still installed (possibly upgraded) afterwards.
    """
    if packages and full_toolkit:
        raise YumError("pass packages or full_toolkit, not both")
    if not packages and not full_toolkit:
        raise YumError("nothing selected: pass packages or full_toolkit")
    before = {p.name: p.evr for p in client.db.installed()}
    if packages:
        targets = list(packages)
    else:
        # The full toolkit is whatever slice of the catalogue the attached
        # repository actually publishes (an older repo snapshot carries an
        # older catalogue).
        available = client.repos.all_names()
        targets = [n for n in xsede_package_names() if n in available]
    missing = [t for t in targets if not client.db.has(t)]
    upgradable = [t for t in targets if client.db.has(t)]
    report = IntegrationReport(host=client.host.name)
    if missing:
        result = client.groupinstall("xnit", missing)
        report.installed = sorted(p.name for p in result.installed)
        report.upgraded = sorted(old.name for old, _new in result.upgraded)
    if upgradable:
        result = client.update(*upgradable)
        if result is not None:
            report.upgraded = sorted(
                set(report.upgraded) | {old.name for old, _new in result.upgraded}
            )
    after = {p.name: p.evr for p in client.db.installed()}
    for name, evr in before.items():
        if name not in after or after[name] < evr:
            report.preexisting_untouched = False
            raise YumError(
                f"integration violated the non-destructive property: "
                f"{name} was removed or downgraded on {client.host.name}"
            )
    return report

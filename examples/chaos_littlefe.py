#!/usr/bin/env python3
"""Chaos run on the modified LittleFe: crash nodes mid-workload, survive.

The XCBC paper's clusters live in classrooms and closets — nodes lose
power, NICs flap, mirrors fill their disks.  This example replays a
declarative :class:`~repro.faults.FaultPlan` against the full simulated
stack (Maui scheduler, Ganglia mesh, XSEDE repo mirror) on one seeded
kernel and shows the graceful-degradation machinery at work:

1. a disk-full window collides with the mirror sync — the retry policy
   backs off (seeded jitter) until space frees and the sync resumes from
   its partial state;
2. two compute nodes crash under running jobs — the scheduler requeues
   the affected work and finishes it on the survivors; one node recovers,
   the other (a dead PSU) stays failed;
3. gmetad counts missed heartbeats and declares the dead node DEAD while
   continuing to report a degraded-but-honest cluster summary;
4. the run ends with an invariant audit: all jobs terminal, no event or
   allocation leaks, trace schema-valid — and two same-seed runs produce
   byte-identical JSONL (the CI chaos job diffs them).

Equivalent CLI: ``python -m repro.faults --cluster littlefe
--check-determinism`` (add ``--plan my.json`` for custom scenarios).
"""

import argparse
import sys

from repro.faults.chaos import demo_plan, run_chaos
from repro.hardware import build_littlefe_modified


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--trace", default=None,
                        help="write the JSONL trace here")
    args = parser.parse_args(argv)

    machine = build_littlefe_modified().machine
    plan = demo_plan(machine)
    print(f"fault plan {plan.name!r} ({len(plan)} faults):")
    for spec in plan.sorted_by_time().faults:
        recover = (f", heals after {spec.duration_s:.0f}s"
                   if spec.duration_s else ", permanent")
        print(f"  t={spec.at_s:>6.0f}s  {spec.kind.value:<16} "
              f"-> {spec.target}{recover}")

    run = run_chaos(plan, seed=args.seed, cluster="littlefe")
    print(f"\nran {run.kernel.events_processed} kernel events "
          f"to t={run.kernel.now_s:.0f}s")
    print(run.report.render())

    print("\nfinal Ganglia view:")
    print(run.gmetad.render_dashboard())

    again = run_chaos(demo_plan(machine), seed=args.seed, cluster="littlefe")
    print(f"\nsame seed re-run, traces byte-identical: "
          f"{again.jsonl == run.jsonl}")

    if args.trace:
        with open(args.trace, "w") as fh:
            fh.write(run.jsonl)
        print(f"trace written to {args.trace} "
              f"(validate: python -m repro.sim {args.trace})")
    return 0 if run.report.ok else 1


def cluster_definition():
    """The chaos-tested machine, for ``cluster-lint``."""
    from repro.analyze import ClusterDefinition
    from repro.scheduler import default_queue_for

    machine = build_littlefe_modified().machine
    return ClusterDefinition(
        name="chaos-littlefe",
        machine=machine,
        queues=(default_queue_for(machine),),
    )


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

"""repro.recovery — crash-consistent checkpoints, WAL journaling, self-healing.

The robustness layer the paper's clusters imply but PR 3 stopped short
of: a small research cluster run by one part-time admin *will* lose its
head node mid-yum-transaction, and the XCBC answer is that this must be
boring — reboot, recover the journal, resume.  Three pieces:

* :mod:`.journal` — a write-ahead journal: multi-step mutations (RPM
  transactions, Rocks installs, mirror syncs) record intent before
  touching state, so a crash leaves a replayable/rollbackable record
  instead of phantom packages and half-registered nodes;
* :mod:`.snapshot` / :mod:`.checkpoint` — crash-consistent snapshots of
  the whole simulated stack at driver-step boundaries, restored by
  state-verified deterministic replay (byte-identical remaining trace);
* :mod:`.supervisor` — a periodic kernel service that turns detection
  into bounded, declarative repair (reboot failed nodes, restart dead
  gmonds, undrain healed nodes, resubmit starved jobs, re-kickstart
  failed installs), emitting ``recover.*`` trace events.
"""

from .checkpoint import CheckpointManager, register_world_factory, world_factories
from .journal import (
    Journal,
    JournalOp,
    JournalTxn,
    OpState,
    RecoveryHandler,
    TxnState,
    recover_incomplete,
)
from .snapshot import (
    FORMAT_VERSION,
    Snapshot,
    canonical_json,
    diff_states,
    state_digest,
)
from .supervisor import RecoveryPolicy, Supervisor, default_policies

__all__ = [
    "CheckpointManager",
    "register_world_factory",
    "world_factories",
    "Journal",
    "JournalOp",
    "JournalTxn",
    "OpState",
    "RecoveryHandler",
    "TxnState",
    "recover_incomplete",
    "FORMAT_VERSION",
    "Snapshot",
    "canonical_json",
    "diff_states",
    "state_digest",
    "RecoveryPolicy",
    "Supervisor",
    "default_policies",
]

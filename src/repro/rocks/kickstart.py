"""The Rocks kickstart graph.

Rocks composes a node's install from a graph: appliance profiles (frontend,
compute) are roots; edges pull in shared configuration nodes; each node
contributes packages and post-install actions.  Rolls extend the graph by
adding nodes and edges — that is what makes "adding the XSEDE roll during
install" (Section 3) sufficient to change what every appliance gets.

:class:`KickstartGraph` keeps the structure explicit and validates it:
unknown endpoints and cycles raise :class:`KickstartError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import KickstartError

__all__ = ["GraphNode", "KickstartGraph", "Profile"]


@dataclass
class GraphNode:
    """One node of the kickstart graph."""

    name: str
    packages: list[str] = field(default_factory=list)
    #: services enabled on hosts built from profiles that include this node
    enable_services: list[str] = field(default_factory=list)
    #: free-form post-install actions (recorded on the host for auditing)
    post_actions: list[str] = field(default_factory=list)
    roll: str = "base"


class Profile:
    """Appliance profile names Rocks uses."""

    FRONTEND = "frontend"
    COMPUTE = "compute"


class KickstartGraph:
    """Nodes + directed include edges, resolved per appliance profile."""

    def __init__(self) -> None:
        self._nodes: dict[str, GraphNode] = {}
        self._edges: dict[str, list[str]] = {}

    def add_node(self, node: GraphNode) -> GraphNode:
        """Add a graph node; re-adding merges package/service lists (rolls
        may extend an existing node)."""
        existing = self._nodes.get(node.name)
        if existing is not None:
            for pkg in node.packages:
                if pkg not in existing.packages:
                    existing.packages.append(pkg)
            for svc in node.enable_services:
                if svc not in existing.enable_services:
                    existing.enable_services.append(svc)
            # Post actions must merge exactly like packages/services do: a
            # roll re-extending a node (re-applied roll, shared node name)
            # must not queue its post-install actions a second time.
            for action in node.post_actions:
                if action not in existing.post_actions:
                    existing.post_actions.append(action)
            return existing
        self._nodes[node.name] = node
        self._edges.setdefault(node.name, [])
        return node

    def add_edge(self, parent: str, child: str) -> None:
        """``parent`` includes ``child``."""
        for name in (parent, child):
            if name not in self._nodes:
                raise KickstartError(f"edge references unknown graph node {name!r}")
        if parent == child:
            raise KickstartError(f"self-edge on {parent!r}")
        if child not in self._edges[parent]:
            self._edges[parent].append(child)

    def nodes(self) -> list[str]:
        return sorted(self._nodes)

    def has_node(self, name: str) -> bool:
        return name in self._nodes

    def edges(self) -> list[tuple[str, str]]:
        """Every (parent, child) include edge, sorted."""
        return sorted(
            (parent, child)
            for parent, children in self._edges.items()
            for child in children
        )

    def node(self, name: str) -> GraphNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise KickstartError(f"unknown graph node {name!r}") from None

    def find_cycle(self) -> list[str] | None:
        """Return one include cycle as a node-name path, or None.

        The non-raising twin of the resolve-time cycle check: pre-flight
        analysis wants to *report* a cycle (and keep checking other things),
        not die on it the way :meth:`_closure` must.
        """
        black: set[str] = set()

        def walk(name: str, path: list[str]) -> list[str] | None:
            if name in path:
                return path[path.index(name):] + [name]
            if name in black:
                return None
            path.append(name)
            for child in self._edges[name]:
                found = walk(child, path)
                if found is not None:
                    return found
            path.pop()
            black.add(name)
            return None

        for root in sorted(self._nodes):
            found = walk(root, [])
            if found is not None:
                return found
        return None

    def reachable_from(self, roots: list[str]) -> set[str]:
        """Node names reachable from any of ``roots`` (unknown roots are
        skipped — pre-flight reports those separately)."""
        seen: set[str] = set()
        stack = [r for r in roots if r in self._nodes]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self._edges[name])
        return seen

    def _closure(self, root: str) -> list[GraphNode]:
        """DFS closure from ``root``; cycle detection via the grey set."""
        if root not in self._nodes:
            raise KickstartError(f"unknown profile {root!r}")
        order: list[GraphNode] = []
        black: set[str] = set()
        grey: set[str] = set()

        def visit(name: str) -> None:
            if name in black:
                return
            if name in grey:
                raise KickstartError(
                    f"kickstart graph cycle through {name!r}"
                )
            grey.add(name)
            for child in self._edges[name]:
                visit(child)
            grey.discard(name)
            black.add(name)
            order.append(self._nodes[name])

        visit(root)
        return order

    def resolve_packages(self, profile: str) -> list[str]:
        """All package names a profile pulls in (deduped, include order)."""
        seen: set[str] = set()
        out: list[str] = []
        for node in self._closure(profile):
            for pkg in node.packages:
                if pkg not in seen:
                    seen.add(pkg)
                    out.append(pkg)
        return out

    def resolve_services(self, profile: str) -> list[str]:
        """Services a profile enables."""
        seen: set[str] = set()
        out: list[str] = []
        for node in self._closure(profile):
            for svc in node.enable_services:
                if svc not in seen:
                    seen.add(svc)
                    out.append(svc)
        return out

    def resolve_actions(self, profile: str) -> list[str]:
        """Post-install actions in execution order."""
        out: list[str] = []
        for node in self._closure(profile):
            out.extend(node.post_actions)
        return out

    def rolls_in(self, profile: str) -> set[str]:
        """Names of the rolls contributing to a profile."""
        return {n.roll for n in self._closure(profile)}

    def render_kickstart(self, profile: str, *, release_string: str = "CentOS 6.5") -> str:
        """Render the profile as an anaconda kickstart file.

        This is what the frontend's kickstart server actually serves a
        PXE-booted node (Rocks generates it from the graph with kpp/kgen);
        the %packages section is the resolved package closure and %post
        enables services and runs the graph's post actions.
        """
        packages = self.resolve_packages(profile)
        services = self.resolve_services(profile)
        actions = self.resolve_actions(profile)
        lines = [
            f"# Kickstart for appliance profile {profile!r} ({release_string})",
            "# generated from the Rocks kickstart graph",
            "install",
            "url --url http://10.1.1.1/install/rocks-dist",
            "lang en_US.UTF-8",
            "keyboard us",
            "rootpw --iscrypted $simulated$",
            "clearpart --all --initlabel",
            "autopart",
            "reboot",
            "",
            "%packages",
        ]
        lines += packages
        lines.append("%end")
        lines.append("")
        lines.append("%post")
        for service in services:
            lines.append(f"chkconfig {service} on")
        for action in actions:
            lines.append(f"# post action: {action}")
            lines.append(f"/opt/rocks/post/{action.replace(' ', '-')}.sh")
        lines.append("%end")
        return "\n".join(lines)

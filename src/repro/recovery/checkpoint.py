"""The checkpoint manager: capture at step boundaries, restore by replay.

A *world* is any object exposing the small checkpointable protocol:

* ``world_name`` — registry key of a factory that can rebuild it;
* ``config`` — JSON-friendly constructor arguments for that factory;
* ``steps`` — top-level driver steps taken so far;
* ``step()`` — advance one driver step, returning False at quiescence;
* ``state_dict()`` — full declarative state tree;
* ``kernel`` — its :class:`~repro.sim.SimKernel`.

:meth:`CheckpointManager.capture` snapshots between steps (never inside
one — nested ``run_until`` calls make intra-step positions ambiguous);
:meth:`CheckpointManager.restore` rebuilds the world from config via the
registered factory, replays exactly ``snapshot.steps`` steps, and
verifies both the state digest and the trace-prefix hash before handing
the world back.  Checkpointing is trace-silent on purpose: emitting a
``checkpoint`` event would make a checkpointed run's bytes diverge from
an uncheckpointed one, destroying the byte-diff this machinery exists to
pass.
"""

from __future__ import annotations

import hashlib
from typing import Any, Callable

from ..errors import CheckpointError
from .snapshot import Snapshot, diff_states, state_digest

__all__ = [
    "register_world_factory",
    "world_factories",
    "CheckpointManager",
]

_FACTORIES: dict[str, Callable[[dict[str, Any]], Any]] = {}


def register_world_factory(
    name: str, factory: Callable[[dict[str, Any]], Any]
) -> None:
    """Register a rebuild-from-config callable under a world name.

    Re-registering a name overwrites (worlds live in modules that may be
    reimported); the factory receives the snapshot's ``config`` dict.
    """
    _FACTORIES[name] = factory


def world_factories() -> list[str]:
    """Registered world names (for error messages and tooling)."""
    return sorted(_FACTORIES)


def _trace_sha(kernel) -> str:
    return hashlib.sha256(kernel.trace.to_jsonl().encode()).hexdigest()


class CheckpointManager:
    """Capture/restore driver for one world."""

    def __init__(self, world, *, every: int | None = None) -> None:
        if every is not None and every < 1:
            raise CheckpointError(f"checkpoint interval must be >= 1, got {every}")
        self.world = world
        self.every = every
        self.snapshots: list[Snapshot] = []

    @property
    def latest(self) -> Snapshot | None:
        return self.snapshots[-1] if self.snapshots else None

    def capture(self, *, label: str = "") -> Snapshot:
        """Snapshot the world as it stands (call between driver steps)."""
        world = self.world
        state = world.state_dict()
        jsonl = world.kernel.trace.to_jsonl()
        snapshot = Snapshot(
            world=world.world_name,
            steps=world.steps,
            now_s=world.kernel.now_s,
            events_processed=world.kernel.events_processed,
            config=dict(world.config),
            state=state,
            trace_len=len(world.kernel.trace),
            trace_sha256=hashlib.sha256(jsonl.encode()).hexdigest(),
            digest=state_digest(state),
            label=label or f"step-{world.steps}",
        )
        self.snapshots.append(snapshot)
        return snapshot

    def maybe_capture(self) -> Snapshot | None:
        """Capture if the world just crossed the ``every`` interval."""
        if self.every is None or self.world.steps % self.every != 0:
            return None
        return self.capture()

    @staticmethod
    def restore(snapshot: Snapshot, **config_overrides: Any):
        """Rebuild a world and replay it to the snapshot, verified.

        ``config_overrides`` patch the rebuild configuration — the resume
        path uses ``crash_armed=False`` so the fault that killed the
        original run fires as a silent no-op the second time through.
        Overrides must not change pre-checkpoint behaviour; the digest
        check catches it if they do.

        Raises :class:`~repro.errors.CheckpointError` if the replayed
        world's state digest or trace-prefix hash differs from the
        snapshot — a failed restore never hands back a silently-wrong
        world.
        """
        snapshot.verify()
        try:
            factory = _FACTORIES[snapshot.world]
        except KeyError:
            known = ", ".join(world_factories()) or "none"
            raise CheckpointError(
                f"no world factory registered for {snapshot.world!r} "
                f"(known: {known})"
            ) from None
        config = {**snapshot.config, **config_overrides}
        world = factory(config)
        for _ in range(snapshot.steps):
            if not world.step():
                raise CheckpointError(
                    f"replay hit quiescence at step {world.steps} before "
                    f"reaching checkpoint step {snapshot.steps} — config "
                    f"mismatch or non-deterministic world"
                )
        state = world.state_dict()
        digest = state_digest(state)
        if digest != snapshot.digest:
            diffs = diff_states(snapshot.state, state)
            detail = "; ".join(diffs) if diffs else "(no structural diff found)"
            raise CheckpointError(
                f"restore verification failed at step {snapshot.steps}: "
                f"replayed state digest {digest[:12]} != snapshot "
                f"{snapshot.digest[:12]}; diverged at: {detail}"
            )
        if _trace_sha(world.kernel) != snapshot.trace_sha256:
            raise CheckpointError(
                f"restore verification failed at step {snapshot.steps}: "
                f"replayed trace prefix differs from the original run's "
                f"({len(world.kernel.trace)} vs {snapshot.trace_len} events)"
            )
        return world

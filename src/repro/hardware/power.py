"""Power supplies and power-budget accounting.

Power is a first-class constraint in Section 5.1: the jump from the Atom D510
(10.56 W) to the Celeron G1840 (43.06 W) — plus a drive and a fan per node —
is exactly why the modified LittleFe "had to diverge from the single power
supply LittleFe calls for" and add an individual supply per node.  The
Limulus HPC200 instead ships a single 850 W supply for all four nodes.

:func:`check_budget` enforces supply >= draw x headroom and is called by the
node/chassis builders; violating it raises :class:`PowerBudgetError` rather
than producing a silently impossible machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import CatalogError, PowerBudgetError

__all__ = [
    "PsuModel",
    "PICO_PSU_80",
    "PICO_PSU_160",
    "ATX_450W",
    "LIMULUS_850W",
    "PSU_CATALOG",
    "get_psu",
    "check_budget",
    "total_draw",
]

#: Default engineering headroom: the supply must exceed the worst-case draw
#: by this factor (PSUs are neither perfectly efficient nor happy at 100 %).
DEFAULT_HEADROOM = 1.2


@dataclass(frozen=True)
class PsuModel:
    """A power-supply SKU."""

    model: str
    rating_watts: float
    efficiency: float  # fraction of wall power delivered (0-1]
    price_usd: float

    def __post_init__(self) -> None:
        if self.rating_watts <= 0:
            raise CatalogError(f"PSU {self.model} has non-positive rating")
        if not 0.0 < self.efficiency <= 1.0:
            raise CatalogError(f"PSU {self.model} efficiency out of (0,1]")

    def wall_watts(self, delivered_watts: float) -> float:
        """Wall draw needed to deliver ``delivered_watts`` to components."""
        return delivered_watts / self.efficiency


#: Historical LittleFe per-frame DC brick: enough for six Atom boards only.
PICO_PSU_80 = PsuModel("picoPSU-80", rating_watts=80.0, efficiency=0.90, price_usd=30.0)
#: Per-node supply used by the modified LittleFe (one per board).
PICO_PSU_160 = PsuModel("picoPSU-160-XT", rating_watts=160.0, efficiency=0.92, price_usd=50.0)
#: Generic ATX supply for rack servers / head nodes.
ATX_450W = PsuModel("ATX 450W 80+ Bronze", rating_watts=450.0, efficiency=0.85, price_usd=55.0)
#: The Limulus HPC200's single case supply (Section 5.2: "an 850W power
#: supply, allowing for more powerful CPUs").
LIMULUS_850W = PsuModel("Limulus 850W case PSU", rating_watts=850.0, efficiency=0.90, price_usd=120.0)

PSU_CATALOG: dict[str, PsuModel] = {
    p.model: p for p in (PICO_PSU_80, PICO_PSU_160, ATX_450W, LIMULUS_850W)
}


def get_psu(model: str) -> PsuModel:
    """Look up a PSU SKU, raising :class:`CatalogError` if unknown."""
    try:
        return PSU_CATALOG[model]
    except KeyError:
        known = ", ".join(sorted(PSU_CATALOG))
        raise CatalogError(f"unknown PSU model {model!r}; known: {known}") from None


def total_draw(watt_values: Iterable[float]) -> float:
    """Sum component draws, rejecting negative entries (a modelling bug)."""
    total = 0.0
    for w in watt_values:
        if w < 0:
            raise PowerBudgetError(f"negative component draw: {w}")
        total += w
    return total


def check_budget(
    psu: PsuModel,
    draw_watts: float,
    *,
    headroom: float = DEFAULT_HEADROOM,
    what: str = "build",
) -> float:
    """Verify ``psu`` can carry ``draw_watts`` with ``headroom`` margin.

    Returns the remaining margin in watts.  Raises
    :class:`~repro.errors.PowerBudgetError` with a diagnostic naming the
    build when the budget is violated — this is the check the historical
    LittleFe single-PSU design fails once Haswell CPUs, drives, and fans are
    added (see ``benchmarks/bench_littlefe_modification.py``).
    """
    if headroom < 1.0:
        raise PowerBudgetError(f"headroom must be >= 1.0, got {headroom}")
    required = draw_watts * headroom
    if required > psu.rating_watts:
        raise PowerBudgetError(
            f"{what}: draw {draw_watts:.2f} W x headroom {headroom:.2f} "
            f"= {required:.2f} W exceeds {psu.model} rating "
            f"{psu.rating_watts:.0f} W"
        )
    return psu.rating_watts - required

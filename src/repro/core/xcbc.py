"""XCBC: the XSEDE-compatible basic cluster, built from scratch.

The paper's first distribution channel: "a Rocks Roll that does an 'all at
once, from scratch' installation of core components" (Abstract).  This
module builds that roll from the Table 2 catalogue and drives the full
installation — Rocks base + job management + Table 1 optional rolls + the
XSEDE roll — producing a cluster whose software surface the compatibility
audit can score.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analyze.spec import ClusterDefinition
from ..errors import RocksError
from ..hardware.chassis import Machine
from ..network.dhcp import DhcpPlan
from ..rocks.installer import ProvisionedCluster, RocksInstaller, install_cluster
from ..rocks.kickstart import Profile
from ..rocks.roll import Roll, RollGraphFragment
from ..rocks.rolls_catalog import optional_rolls
from ..scheduler.queues import default_queue_for
from .packages_xsede import CATEGORY_XSEDE
from .release import CURRENT_RELEASE, get_xcbc_release, packages_for_release

__all__ = [
    "build_xsede_roll",
    "build_xcbc_cluster",
    "xcbc_cluster_definition",
    "XcbcBuildReport",
]


def build_xsede_roll(version: str = CURRENT_RELEASE.version) -> Roll:
    """The XSEDE roll at a given release.

    Everything installs on both appliances except the XSEDE Tools category
    (Globus Connect Server, Genesis II, GFFS) — grid endpoints live on the
    frontend.  Scheduler packages (torque/maui) are omitted here because the
    job-management roll owns them; the roll validates that assumption.
    """
    packages = [
        p
        for p in packages_for_release(version)
        if p.category != "Scheduler and Resource Manager"
    ]
    everywhere = tuple(
        p.name for p in packages if p.category != CATEGORY_XSEDE
    )
    frontend_only = tuple(p.name for p in packages if p.category == CATEGORY_XSEDE)
    fragments = (
        RollGraphFragment(
            node_name="xsede-runalike",
            packages=everywhere,
            attach_to=(Profile.FRONTEND, Profile.COMPUTE),
        ),
        RollGraphFragment(
            node_name="xsede-grid-services",
            packages=frontend_only,
            attach_to=(Profile.FRONTEND,),
            post_actions=("configure globus endpoint", "join GFFS namespace"),
        ),
    )
    return Roll(
        name="xsede",
        version=version,
        summary=f"XSEDE-compatible basic cluster roll {version}",
        packages=tuple(packages),
        fragments=fragments,
        optional=False,
    )


@dataclass
class XcbcBuildReport:
    """What a from-scratch XCBC build produced."""

    cluster: ProvisionedCluster
    roll_version: str
    scheduler: str

    @property
    def node_count(self) -> int:
        return len(self.cluster.hosts())

    @property
    def uniform_package_count(self) -> int:
        return len(self.cluster.installed_everywhere())


def build_xcbc_cluster(
    machine: Machine,
    *,
    scheduler: str = "torque",
    roll_version: str = CURRENT_RELEASE.version,
    include_optional_rolls: bool = True,
    extra_rolls: list[Roll] | None = None,
    wave_size: int | None = None,
) -> XcbcBuildReport:
    """Run the complete XCBC from-scratch installation on a machine.

    This is the path Section 3 describes: Rocks install with the XSEDE roll
    selected, a job-management roll chosen, and (by default) the full Table
    1 optional roll set.  The machine must have a disk in every node —
    Rocks refuses diskless hardware (Section 5.1).

    ``wave_size`` passes through to :func:`~repro.rocks.install_cluster`:
    ``None`` auto-selects (waves of 32 above 32 compute nodes, else
    node-at-a-time), an explicit value forces that wave size regardless of
    site scale.
    """
    release = get_xcbc_release(roll_version)  # validates the version
    rolls: list[Roll] = [build_xsede_roll(roll_version)]
    if include_optional_rolls:
        rolls.extend(optional_rolls().values())
    for roll in extra_rolls or []:
        if any(r.name == roll.name for r in rolls):
            raise RocksError(f"roll {roll.name} selected twice")
        rolls.append(roll)
    cluster = install_cluster(
        machine,
        rolls=rolls,
        scheduler=scheduler,
        release=release.os_release,
        wave_size=wave_size,
    )
    return XcbcBuildReport(
        cluster=cluster, roll_version=roll_version, scheduler=scheduler
    )


def xcbc_cluster_definition(
    machine: Machine,
    *,
    scheduler: str = "torque",
    roll_version: str = CURRENT_RELEASE.version,
    include_optional_rolls: bool = True,
    name: str | None = None,
) -> ClusterDefinition:
    """The pre-flight view of an XCBC build: everything the static analyzer
    needs, with **nothing installed**.

    Mirrors :func:`build_xcbc_cluster`'s roll selection but stops after
    planning — graph and distribution come from the installer's
    side-effect-free build steps, so ``cluster-lint`` can vet the recipe
    before the (simulated) deployment spends any time on it.
    """
    get_xcbc_release(roll_version)  # validates the version
    rolls: list[Roll] = [build_xsede_roll(roll_version)]
    if include_optional_rolls:
        rolls.extend(optional_rolls().values())
    installer = RocksInstaller(machine, rolls=rolls, scheduler=scheduler)
    distribution = installer.build_distribution()
    return ClusterDefinition(
        name=name or machine.name,
        graph=installer.build_graph(),
        rolls=tuple(installer.rolls.values()),
        repositories=(distribution,),
        required_repo_ids=(distribution.repo_id,),
        machine=machine,
        dhcp_plan=DhcpPlan(),
        macs=tuple(n.mac_address for n in machine.compute_nodes),
        queues=(default_queue_for(machine),),
    )

"""The paper's contribution: XCBC (from-scratch builds) and XNIT
(repository-based integration), plus the compatibility audit, the Table 3
deployment registry, the training curriculum, and the cloud cost model.
"""

from .cloud_compare import (
    CloudCostModel,
    ClusterCostModel,
    CostComparison,
    compare,
    crossover_utilisation,
    runaway_student_scenario,
)
from .compatibility import (
    SCHEDULER_COMMANDS,
    audit_cluster,
    CompatibilityReport,
    DimensionScore,
    EnvironmentDiff,
    audit_host,
    diff_environments,
    portability_check,
)
from .deployments import (
    PETAFLOPS_GOAL_2020_GFLOPS,
    SECTION4_REBUILT_SITES,
    capacity_goal_projection,
    teardown_and_rebuild,
    AdoptionPath,
    SiteDeployment,
    TABLE3_SITES,
    rebuild_site_hardware,
    table3_totals,
)
from .machines import (
    LIMULUS_VENDOR_PACKAGES,
    ExistingCluster,
    build_existing_cluster,
    build_limulus_cluster,
)
from .manifest import (
    ClusterManifest,
    HostManifest,
    manifest_for_hosts,
    manifest_of_cluster,
)
from .playbook import Playbook, PlaybookStep, RecordingSession, replay
from .xnit_groups import DOMAIN_GROUPS, xnit_group_catalog
from .packages_xsede import (
    TABLE2_CATEGORIES,
    XNIT_EXTRAS,
    packages_by_category,
    xnit_extra_packages,
    xsede_package_names,
    xsede_packages,
)
from .release import (
    ADDED_IN_0_0_8,
    ADDED_IN_0_0_9,
    CURRENT_RELEASE,
    RELEASES,
    XcbcRelease,
    get_xcbc_release,
    packages_for_release,
    render_release_notes,
)
from .training import (
    CurriculumModule,
    limulus_xnit_module,
    CurriculumStep,
    StepOutcome,
    TrainingSession,
    littlefe_xcbc_module,
)
from .xcbc import (
    XcbcBuildReport,
    build_xcbc_cluster,
    build_xsede_roll,
    xcbc_cluster_definition,
)
from .xnit import (
    IntegrationReport,
    XSEDE_RELEASE_RPM,
    YUM_PLUGIN_PRIORITIES,
    build_xnit_repository,
    integrate_host,
    publish_release,
    setup_via_manual_repo_file,
    setup_via_repo_rpm,
)

__all__ = [
    # xcbc
    "build_xsede_roll",
    "build_xcbc_cluster",
    "xcbc_cluster_definition",
    "XcbcBuildReport",
    # xnit
    "build_xnit_repository",
    "publish_release",
    "setup_via_repo_rpm",
    "setup_via_manual_repo_file",
    "integrate_host",
    "IntegrationReport",
    "XSEDE_RELEASE_RPM",
    "YUM_PLUGIN_PRIORITIES",
    "Playbook",
    "PlaybookStep",
    "RecordingSession",
    "replay",
    "ClusterManifest",
    "HostManifest",
    "manifest_for_hosts",
    "manifest_of_cluster",
    "xnit_group_catalog",
    "DOMAIN_GROUPS",
    # catalogue & releases
    "xsede_packages",
    "xsede_package_names",
    "packages_by_category",
    "TABLE2_CATEGORIES",
    "XNIT_EXTRAS",
    "xnit_extra_packages",
    "XcbcRelease",
    "RELEASES",
    "CURRENT_RELEASE",
    "get_xcbc_release",
    "packages_for_release",
    "render_release_notes",
    "ADDED_IN_0_0_8",
    "ADDED_IN_0_0_9",
    # compatibility
    "audit_host",
    "audit_cluster",
    "CompatibilityReport",
    "DimensionScore",
    "diff_environments",
    "EnvironmentDiff",
    "portability_check",
    "SCHEDULER_COMMANDS",
    # machines
    "ExistingCluster",
    "build_existing_cluster",
    "build_limulus_cluster",
    "LIMULUS_VENDOR_PACKAGES",
    # deployments
    "SiteDeployment",
    "AdoptionPath",
    "TABLE3_SITES",
    "rebuild_site_hardware",
    "table3_totals",
    "PETAFLOPS_GOAL_2020_GFLOPS",
    # training
    "CurriculumModule",
    "CurriculumStep",
    "TrainingSession",
    "StepOutcome",
    "littlefe_xcbc_module",
    "limulus_xnit_module",
    "capacity_goal_projection",
    "SECTION4_REBUILT_SITES",
    "teardown_and_rebuild",
    # cloud
    "ClusterCostModel",
    "CloudCostModel",
    "CostComparison",
    "compare",
    "crossover_utilisation",
    "runaway_student_scenario",
]

"""PXE network boot.

Rocks installs compute nodes by PXE-booting them into a kickstart install
served by the frontend.  The boot sequence modelled here:

1. the node broadcasts DHCP DISCOVER (handled by :class:`DhcpServer`);
2. the offer carries next-server + boot filename;
3. the node TFTPs the boot image and chains into the installer.

A node with no NIC on the boot segment, or a server with no boot image
registered for it, fails with :class:`PxeError` — these are the failure
modes the provisioning tests inject.  Transient boot timeouts (half-dead
NICs, slow switches coming up) are injectable per MAC with
:meth:`PxeServer.inject_boot_timeouts`; give the server a kernel and a
:class:`~repro.faults.RetryPolicy` and :meth:`PxeServer.boot` rides them
out with seeded exponential backoff instead of failing the install.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PxeError
from ..faults.retry import RetryPolicy, call_with_retry
from .dhcp import DhcpLease, DhcpServer

__all__ = ["BootImage", "PxeServer", "PxeBootResult"]


@dataclass(frozen=True)
class BootImage:
    """A bootable installer image (vmlinuz + initrd + kickstart pointer)."""

    name: str
    kickstart_profile: str  # name of the kickstart graph profile to run
    size_bytes: int = 64 * 1024 * 1024


@dataclass(frozen=True)
class PxeBootResult:
    """A successful PXE handshake."""

    lease: DhcpLease
    image: BootImage
    tftp_server_ip: str


class PxeServer:
    """The frontend's PXE service (dhcpd options + tftpd).

    ``kernel`` and ``retry`` are optional: without them :meth:`boot` is a
    single attempt (the original behaviour); with them, injected boot
    timeouts are retried with backoff spent on the shared timeline.
    """

    def __init__(
        self,
        dhcp: DhcpServer,
        *,
        kernel=None,
        retry: RetryPolicy | None = None,
    ) -> None:
        self.dhcp = dhcp
        self.kernel = kernel
        self.retry = retry
        self._default_image: BootImage | None = None
        self._per_mac: dict[str, BootImage] = {}
        #: MAC -> remaining injected DISCOVER timeouts ("*" hits every MAC)
        self._boot_timeouts: dict[str, int] = {}
        self.boot_log: list[str] = []

    def set_default_image(self, image: BootImage) -> None:
        """Image offered to any MAC without a specific assignment."""
        self._default_image = image

    def assign_image(self, mac: str, image: BootImage) -> None:
        """Pin an image to one node (e.g. re-install just this node)."""
        self._per_mac[mac] = image

    def clear_assignment(self, mac: str) -> None:
        """Return a node to the default image (post-install 'boot local')."""
        self._per_mac.pop(mac, None)

    def inject_boot_timeouts(self, mac: str, count: int = 1) -> None:
        """Make the next ``count`` handshakes for ``mac`` time out.

        ``mac="*"`` charges the timeouts to whichever MACs boot next — a
        flapping uplink rather than one bad NIC.
        """
        if count < 0:
            raise PxeError(f"timeout count must be non-negative, got {count}")
        if count == 0:
            self._boot_timeouts.pop(mac, None)
        else:
            self._boot_timeouts[mac] = count

    def _consume_timeout(self, mac: str) -> bool:
        for key in (mac, "*"):
            remaining = self._boot_timeouts.get(key, 0)
            if remaining > 0:
                if remaining == 1:
                    del self._boot_timeouts[key]
                else:
                    self._boot_timeouts[key] = remaining - 1
                return True
        return False

    def _boot_once(self, mac: str, hostname: str) -> PxeBootResult:
        if self._consume_timeout(mac):
            raise PxeError(
                f"PXE boot timeout for MAC {mac}: no DHCP offer received "
                f"({len(self._per_mac)} known host(s) on this server)"
            )
        image = self._per_mac.get(mac, self._default_image)
        if image is None:
            raise PxeError(
                f"no boot image registered for MAC {mac} and no default set "
                f"({len(self._per_mac)} known host(s) on this server)"
            )
        lease = self.dhcp.offer(mac, hostname=hostname)
        self.boot_log.append(f"{mac} -> {lease.ip} image={image.name}")
        return PxeBootResult(
            lease=lease, image=image, tftp_server_ip=self.dhcp.server_ip
        )

    def boot(self, mac: str, *, hostname: str = "") -> PxeBootResult:
        """Run the PXE handshake for one node (retrying if so configured)."""
        if self.retry is None or self.kernel is None:
            return self._boot_once(mac, hostname)
        return call_with_retry(
            self.kernel,
            lambda: self._boot_once(mac, hostname),
            policy=self.retry,
            op=f"pxe.boot:{mac}",
            subsystem="network",
            retry_on=(PxeError,),
        )

    def boot_batch(self, macs: list[str]) -> list[PxeBootResult]:
        """PXE one install wave: handshake every MAC in order.

        Same per-MAC semantics as :meth:`boot` (including injected
        timeouts and retry policy); the batch exists so wave installs make
        one call per wave instead of one per node.
        """
        return [self.boot(mac) for mac in macs]

"""The discrete-event simulation kernel.

One :class:`SimKernel` owns the clock, the event queue, the trace bus, and
a seeded RNG — the four things every time-bearing subsystem used to carry
privately.  Subsystems schedule callbacks (:meth:`at` / :meth:`after` /
:meth:`every`), the kernel fires them in ``(time, submission)`` order, and
everything that happens is published on :attr:`trace`.

Determinism contract: given the same seed and the same sequence of
schedule calls, two kernels fire the same events at the same times in the
same order and produce byte-identical JSONL traces.  The contract's
source-side obligations — no wall-clock reads (SL101), no process-global
randomness (SL102), no unordered iteration into scheduling (SL104), no
same-time callbacks racing on shared state (SL301) — are checked
statically by simlint (docs/ANALYZE.md).
"""

from __future__ import annotations

import random
from typing import Callable

from ..errors import SimulationError
from .clock import SimClock, Timeline
from .events import EventHandle, EventQueue
from .trace import TraceBus

__all__ = ["SimKernel", "PeriodicEvent"]


class PeriodicEvent:
    """A self-rescheduling event (gmond polls, heartbeat timers).

    Each firing schedules the next occurrence *before* running the
    callback, so the callback may cancel the series from inside itself.
    """

    __slots__ = ("kernel", "period_s", "callback", "label", "active", "_handle")

    def __init__(
        self,
        kernel: "SimKernel",
        period_s: float,
        callback: Callable[[], object],
        first_at_s: float,
        label: str,
    ) -> None:
        if period_s <= 0:
            raise SimulationError(f"period must be positive, got {period_s}")
        self.kernel = kernel
        self.period_s = period_s
        self.callback = callback
        self.label = label
        self.active = True
        kernel._periodic_count += 1
        self._handle = kernel.at(first_at_s, self._fire, label=label)

    def _fire(self) -> None:
        if not self.active:
            return
        self._handle = self.kernel.at(
            self.kernel.now_s + self.period_s, self._fire, label=self.label
        )
        self.callback()

    def cancel(self) -> None:
        """Stop the series (idempotent)."""
        if not self.active:
            return
        self.active = False
        self.kernel._periodic_count -= 1
        if self._handle.active:
            self.kernel.queue.cancel(self._handle)


class SimKernel:
    """Clock + event queue + trace bus + seeded RNG, as one object."""

    def __init__(
        self,
        *,
        seed: int = 0,
        start_s: float = 0.0,
        trace: TraceBus | None = None,
    ) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.clock = SimClock(start_s)
        self.queue = EventQueue()
        self.trace = trace if trace is not None else TraceBus()
        self.events_processed = 0
        self._timelines: dict[str, Timeline] = {}
        self._periodic_count = 0

    # -- time --------------------------------------------------------------------

    @property
    def now_s(self) -> float:
        """The current simulated time."""
        return self.clock.now_s

    @property
    def periodic_count(self) -> int:
        """Active periodic series (drivers use this to detect quiescence:
        once only periodic events remain, no one-shot work is pending)."""
        return self._periodic_count

    def timeline(self, name: str, *, start_s: float | None = None) -> Timeline:
        """Create and register a per-entity :class:`Timeline`.

        Names are made unique automatically (``name~2``, ``name~3``, ...)
        so several worlds can register rank timelines on one kernel.
        """
        unique = name
        serial = 1
        while unique in self._timelines:
            serial += 1
            unique = f"{name}~{serial}"
        timeline = Timeline(
            unique, start_s=self.now_s if start_s is None else start_s
        )
        self._timelines[unique] = timeline
        return timeline

    def timelines(self) -> list[Timeline]:
        """All registered timelines (registration order)."""
        return list(self._timelines.values())

    def state_dict(self) -> dict[str, object]:
        """JSON-friendly snapshot of kernel state (checkpoint participation).

        Event callbacks are closures and cannot leave the process; the
        queue is captured as its declarative ``(time, seq, label)`` shadow
        plus the next submission serial.  Together with the RNG state and
        clock this pins the kernel's behaviour exactly: a replayed run
        that reaches the same ``state_dict`` will fire the same events at
        the same times in the same order from here on.
        """
        rng_state = self.rng.getstate()
        return {
            "seed": self.seed,
            "now_s": self.now_s,
            "events_processed": self.events_processed,
            # random.Random.getstate() -> (version, tuple-of-ints, gauss);
            # listify for JSON round-tripping.
            "rng": [rng_state[0], list(rng_state[1]), rng_state[2]],
            "queue": {
                "next_seq": self.queue.next_seq,
                "entries": [list(e) for e in self.queue.snapshot_entries()],
            },
            "periodic_count": self._periodic_count,
            "timelines": {
                name: tl.now_s for name, tl in self._timelines.items()
            },
        }

    # -- scheduling --------------------------------------------------------------

    def at(
        self, time_s: float, callback: Callable[[], object], *, label: str = "event"
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute time (>= now)."""
        if time_s < self.now_s:
            raise SimulationError(
                f"cannot schedule {label!r} at {time_s} (now is {self.now_s})"
            )
        return self.queue.schedule(time_s, callback, label=label)

    def after(
        self, delay_s: float, callback: Callable[[], object], *, label: str = "event"
    ) -> EventHandle:
        """Schedule ``callback`` after a non-negative delay."""
        if delay_s < 0:
            raise SimulationError(f"negative delay {delay_s} for {label!r}")
        return self.queue.schedule(self.now_s + delay_s, callback, label=label)

    def every(
        self,
        period_s: float,
        callback: Callable[[], object],
        *,
        first_at_s: float | None = None,
        label: str = "periodic",
    ) -> PeriodicEvent:
        """Schedule a repeating event (first firing at ``now + period``
        unless ``first_at_s`` says otherwise)."""
        first = self.now_s + period_s if first_at_s is None else first_at_s
        return PeriodicEvent(self, period_s, callback, first, label)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a pending event."""
        self.queue.cancel(handle)

    def reschedule(self, handle: EventHandle, time_s: float) -> EventHandle:
        """Move a pending event to a new time (>= now); returns the new
        handle — the API that replaces subsystem-private heap surgery."""
        if time_s < self.now_s:
            raise SimulationError(
                f"cannot reschedule {handle.label!r} to {time_s} "
                f"(now is {self.now_s})"
            )
        return self.queue.reschedule(handle, time_s)

    # -- execution ---------------------------------------------------------------

    def peek_time_s(self) -> float | None:
        """When the next event fires, or None when idle."""
        return self.queue.peek_time_s()

    def step(self) -> bool:
        """Fire the earliest pending event; returns False when idle."""
        handle = self.queue.pop()
        if handle is None:
            return False
        self.clock.advance_to(handle.time_s)
        self.events_processed += 1
        handle.callback()
        return True

    def run_until(self, time_s: float) -> int:
        """Fire every event due at or before ``time_s``, then land the
        clock exactly there; returns the number of events fired.

        This is how a subsystem "spends" a modelled duration (a mirror
        sync, a file transfer) on the shared timeline: everything else
        scheduled inside the window gets its turn.
        """
        if time_s < self.now_s:
            raise SimulationError(
                f"run_until({time_s}) would move time backwards from {self.now_s}"
            )
        fired = 0
        queue = self.queue
        clock = self.clock
        mark_fired = queue.mark_fired
        while True:
            head = queue.peek_time_s()
            if head is None or head > time_s:
                break
            # Pop every event sharing this timestamp in one heap pass; the
            # firing order ((time, seq)) is identical to one-at-a-time
            # stepping, because same-time events scheduled *by* a batch
            # member carry later serials and land in the next batch.
            clock.advance_to(head)
            batch = queue.pop_batch()
            index = 0
            try:
                for index, handle in enumerate(batch):
                    if not handle.active:
                        continue  # cancelled by an earlier batch member
                    mark_fired(handle)
                    self.events_processed += 1
                    handle.callback()
                    fired += 1
            except BaseException:
                # A callback raised: unfired members go back on the heap so
                # the queue looks exactly as under one-at-a-time stepping.
                queue.requeue(batch[index + 1 :])
                raise
        self.clock.advance_to(time_s)
        return fired

    def run(
        self, *, until_s: float | None = None, max_events: int | None = None
    ) -> int:
        """Drain the queue (bounded by ``until_s`` and/or ``max_events``).

        With a :class:`PeriodicEvent` registered the queue never empties —
        pass a bound, or drive the run from the subsystem side (the way
        :meth:`BaseScheduler.run_to_completion` does).
        """
        if until_s is None and max_events is None and self._periodic_count > 0:
            raise SimulationError(
                "run() needs until_s or max_events while periodic events "
                "are registered"
            )
        fired = 0
        while max_events is None or fired < max_events:
            head = self.queue.peek_time_s()
            if head is None:
                break
            if until_s is not None and head > until_s:
                break
            self.step()
            fired += 1
        if until_s is not None:
            self.clock.advance_to(max(self.now_s, until_s))
        return fired

"""Yum repositories: package collections with metadata and priorities.

The XSEDE Yum repository (XNIT's distribution channel, refs [11, 13, 19])
is modelled as a :class:`Repository` holding multiple versions per package
name.  ``priority`` implements the semantics of ``yum-plugin-priorities``,
which the paper's setup instructions require installing (Section 3): when
several repositories offer a package name, only repositories with the best
(numerically lowest) priority for that name contribute candidates — this is
what stops the base OS from shadowing the XSEDE builds (and is ablated in
``benchmarks/bench_ablation_priorities.py``).

Hot-path queries are served from *capability indexes* (the move yum itself
made when it swapped scan-based depsolving for libsolv): each repository
keeps inverted maps — provides-name → packages, obsoleted-name → packages —
built lazily and invalidated by a monotonic mutation epoch (``revision``),
so :meth:`Repository.providers_of` is a dict lookup instead of a walk over
every published NEVRA.  The pre-index scan implementations are retained as
``_scan_*`` reference oracles; the hypothesis suite in
``tests/test_perf_indexes.py`` checks they agree under random mutation.
See ``docs/PERF.md`` for the invalidation rules; simlint's SL201/SL202
(docs/ANALYZE.md) enforce them statically — every mutation path must
bump ``revision`` and every memo must carry an epoch key.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from ..errors import PackageNotFoundError, RepoPriorityError, YumError
from ..rpm.package import Package, Requirement

__all__ = ["Repository", "RepoSet", "DEFAULT_PRIORITY"]

#: yum-plugin-priorities default when a repo declares none.
DEFAULT_PRIORITY = 99


class Repository:
    """One yum repository."""

    def __init__(
        self,
        repo_id: str,
        *,
        name: str = "",
        baseurl: str = "",
        priority: int = DEFAULT_PRIORITY,
        enabled: bool = True,
    ) -> None:
        if not repo_id:
            raise YumError("repository id must be non-empty")
        if not 1 <= priority <= 99:
            raise RepoPriorityError(
                f"repo {repo_id}: priority must be in 1..99, got {priority}"
            )
        self.repo_id = repo_id
        self.name = name or repo_id
        self.baseurl = baseurl or f"http://repo.example.org/{repo_id}/"
        self.priority = priority
        self.enabled = enabled
        self._packages: dict[str, list[Package]] = {}
        #: monotonic mutation epoch — bumped on every add/remove; all lazy
        #: indexes and downstream caches key their validity on it.
        self.revision = 0
        self._index_epoch = -1
        self._provides_index: dict[str, list[Package]] = {}
        self._obsoletes_index: dict[str, list[Package]] = {}
        self._checksum_epoch = -1
        self._checksum = ""

    @property
    def epoch(self) -> int:
        """The mutation epoch (alias of ``revision``): changes iff content
        changed, so ``epoch`` equality proves every index/cache is fresh."""
        return self.revision

    # -- publishing ----------------------------------------------------------

    def add(self, pkg: Package) -> None:
        """Publish a package (a new NEVRA; re-publishing an identical NEVRA
        is rejected to keep repository history honest)."""
        versions = self._packages.setdefault(pkg.name, [])
        if any(v.nevra == pkg.nevra for v in versions):
            raise YumError(f"repo {self.repo_id}: {pkg.nevra} already published")
        versions.append(pkg)
        versions.sort(key=lambda p: p.evr)
        self.revision += 1

    def add_all(self, pkgs: list[Package]) -> None:
        """Publish many packages."""
        for pkg in pkgs:
            self.add(pkg)

    def remove(self, nevra: str) -> None:
        """Withdraw one published NEVRA."""
        for name, versions in self._packages.items():
            for pkg in versions:
                if pkg.nevra == nevra:
                    versions.remove(pkg)
                    if not versions:
                        del self._packages[name]
                    self.revision += 1
                    return
        raise PackageNotFoundError(f"repo {self.repo_id}: no such NEVRA {nevra}")

    # -- capability indexes ---------------------------------------------------

    def _ensure_index(self) -> None:
        """(Re)build the inverted capability maps iff the epoch moved."""
        if self._index_epoch == self.revision:
            return
        provides: dict[str, list[Package]] = {}
        obsoletes: dict[str, list[Package]] = {}
        for versions in self._packages.values():
            for pkg in versions:
                for cap in pkg.all_provides():
                    provides.setdefault(cap.name, []).append(pkg)
                for obs in pkg.obsoletes:
                    obsoletes.setdefault(obs.name, []).append(pkg)
        self._provides_index = provides
        self._obsoletes_index = obsoletes
        self._index_epoch = self.revision

    # -- queries ---------------------------------------------------------------

    def names(self) -> set[str]:
        """All published package names."""
        return set(self._packages)

    def versions_of(self, name: str) -> list[Package]:
        """All published versions of a name, oldest first."""
        return list(self._packages.get(name, []))

    def _scan_versions_of(self, name: str) -> list[Package]:
        """Reference oracle for :meth:`versions_of`: full walk, no dict."""
        out = [
            p
            for versions in self._packages.values()
            for p in versions
            if p.name == name
        ]
        return sorted(out, key=lambda p: p.evr)

    def latest(self, name: str) -> Package:
        """Newest published version of a name."""
        versions = self._packages.get(name)
        if not versions:
            raise PackageNotFoundError(
                f"repo {self.repo_id}: no package named {name}"
            )
        return versions[-1]

    def has(self, name: str) -> bool:
        return name in self._packages

    def providers_of(self, req: Requirement) -> list[Package]:
        """Every published package satisfying ``req`` (index lookup)."""
        self._ensure_index()
        candidates = self._provides_index.get(req.name)
        if not candidates:
            return []
        out = [p for p in candidates if p.satisfies(req)]
        return sorted(out, key=lambda p: (p.name, p.evr))

    def _scan_providers_of(self, req: Requirement) -> list[Package]:
        """Reference oracle for :meth:`providers_of`: the pre-index scan."""
        out = []
        for versions in self._packages.values():
            out.extend(p for p in versions if p.satisfies(req))
        return sorted(out, key=lambda p: (p.name, p.evr))

    def obsoleters_of(self, target: Package) -> list[Package]:
        """Published packages (other than ``target``'s name) that obsolete
        ``target`` — the update path's obsoletes scan, as an index lookup."""
        self._ensure_index()
        candidates = self._obsoletes_index.get(target.name)
        if not candidates:
            return []
        out = [
            p
            for p in candidates
            if p.name != target.name and p.obsoletes_package(target)
        ]
        return sorted(out, key=lambda p: (p.name, p.evr))

    def _scan_obsoleters_of(self, target: Package) -> list[Package]:
        """Reference oracle for :meth:`obsoleters_of`: full catalogue walk."""
        out = [
            p
            for p in self.all_packages()
            if p.name != target.name and p.obsoletes_package(target)
        ]
        return sorted(out, key=lambda p: (p.name, p.evr))

    def all_packages(self) -> list[Package]:
        """Every published package, sorted by (name, EVR)."""
        out = []
        for name in sorted(self._packages):
            out.extend(self._packages[name])
        return out

    def package_count(self) -> int:
        """Total published NEVRAs."""
        return sum(len(v) for v in self._packages.values())

    def total_size_bytes(self) -> int:
        """Sum of payload sizes (drives the mirror bandwidth model)."""
        return sum(p.size_bytes for p in self.all_packages())

    def repomd_checksum(self) -> str:
        """Stable fingerprint of the current metadata (changes iff content
        changes) — what a mirror compares to decide whether to resync.
        Memoised per epoch, so repeated probes of an unchanged repo are
        O(1) instead of re-hashing every NEVRA."""
        if self._checksum_epoch != self.revision:
            digest = hashlib.sha256()
            for pkg in self.all_packages():
                digest.update(pkg.nevra.encode())
            self._checksum = digest.hexdigest()
            self._checksum_epoch = self.revision
        return self._checksum

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Repository {self.repo_id} pkgs={self.package_count()}>"


class RepoSet:
    """The enabled repository configuration of one host, with priorities.

    Candidate selection applies yum-plugin-priorities: for a given package
    *name*, only repositories with the best (lowest) priority offering that
    name contribute.  With the plugin disabled (``use_priorities=False``),
    all enabled repositories contribute and the newest EVR wins regardless of
    origin — the failure mode the ablation bench demonstrates.

    Query results are memoised per :attr:`epoch` — a composite fingerprint of
    (repo id, content checksum, enabled, priority) across member repos — so
    repeated candidate/provider lookups during a dependency closure are dict
    hits.  Mutating a member repo (or toggling ``enabled``/``priority``)
    changes the fingerprint and drops every derived cache on the next query.
    """

    def __init__(self, repos: list[Repository] | None = None, *, use_priorities: bool = True):
        self._repos: dict[str, Repository] = {}
        self.use_priorities = use_priorities
        self._cache_epoch: tuple | None = None
        self._candidates_cache: dict[str, list[Package]] = {}
        self._derived_caches: dict[str, dict] = {}
        for repo in repos or []:
            self.add_repo(repo)

    def add_repo(self, repo: Repository) -> None:
        if repo.repo_id in self._repos:
            raise YumError(f"duplicate repo id {repo.repo_id}")
        self._repos[repo.repo_id] = repo

    def remove_repo(self, repo_id: str) -> None:
        if repo_id not in self._repos:
            raise YumError(f"no such repo {repo_id}")
        del self._repos[repo_id]

    def get(self, repo_id: str) -> Repository:
        try:
            return self._repos[repo_id]
        except KeyError:
            raise YumError(f"no such repo {repo_id}") from None

    def enabled_repos(self) -> list[Repository]:
        """Enabled repositories sorted by (priority, id)."""
        return sorted(
            (r for r in self._repos.values() if r.enabled),
            key=lambda r: (r.priority, r.repo_id),
        )

    def repolist(self) -> list[tuple[str, int, int]]:
        """``yum repolist``: (id, priority, package count) for enabled repos."""
        return [
            (r.repo_id, r.priority, r.package_count()) for r in self.enabled_repos()
        ]

    # -- cache management ---------------------------------------------------------

    @property
    def epoch(self) -> tuple:
        """Content-addressed fingerprint of the whole configuration.

        Two RepoSets with equal epochs resolve identically: the tuple pins
        each member's id, content checksum (memoised per repo revision),
        enabled flag and priority, plus the plugin switch.  Downstream
        caches (``best_provider`` memo, the depsolver resolution cache) key
        on it — see docs/PERF.md.
        """
        return (
            self.use_priorities,
            tuple(
                (rid, r.repomd_checksum(), r.enabled, r.priority)
                for rid, r in sorted(self._repos.items())
            ),
        )

    def _ensure_cache(self) -> tuple:
        """Drop every derived cache if the configuration moved; returns the
        current epoch."""
        epoch = self.epoch
        if epoch != self._cache_epoch:
            self._cache_epoch = epoch
            self._candidates_cache = {}
            self._derived_caches = {}
        return epoch

    def cache(self, namespace: str) -> dict:
        """A derived-result cache dict that auto-clears on epoch change.

        Helpers that memoise per-RepoSet results (the depsolver's
        ``best_provider``) ask for a namespaced dict here instead of
        maintaining their own invalidation protocol.
        """
        self._ensure_cache()
        cache = self._derived_caches.get(namespace)
        if cache is None:
            cache = self._derived_caches[namespace] = {}
        return cache

    # -- candidate selection -----------------------------------------------------

    def candidates_by_name(self, name: str) -> list[Package]:
        """All candidate versions of ``name`` after priority filtering."""
        self._ensure_cache()
        hit = self._candidates_cache.get(name)
        if hit is not None:
            return list(hit)
        result = self._scan_candidates_by_name(name)
        self._candidates_cache[name] = result
        return list(result)

    def _scan_candidates_by_name(self, name: str) -> list[Package]:
        """Uncached candidate selection (also the memo's fill path)."""
        offering = [r for r in self.enabled_repos() if r.has(name)]
        if not offering:
            return []
        if self.use_priorities:
            best = min(r.priority for r in offering)
            offering = [r for r in offering if r.priority == best]
        out: list[Package] = []
        seen: set[str] = set()
        for repo in offering:
            for pkg in repo.versions_of(name):
                if pkg.nevra not in seen:
                    seen.add(pkg.nevra)
                    out.append(pkg)
        return sorted(out, key=lambda p: p.evr)

    def latest_by_name(self, name: str) -> Package:
        """Newest candidate of ``name`` (after priority filtering)."""
        candidates = self.candidates_by_name(name)
        if not candidates:
            raise PackageNotFoundError(f"no package {name} in any enabled repo")
        return candidates[-1]

    def providers_of(self, req: Requirement) -> list[Package]:
        """All candidates satisfying ``req``, priority-filtered per name."""
        cache = self.cache("providers_of")
        hit = cache.get(req)
        if hit is not None:
            return list(hit)
        names: set[str] = set()
        for repo in self.enabled_repos():
            for pkg in repo.providers_of(req):
                names.add(pkg.name)
        out: list[Package] = []
        for name in sorted(names):
            out.extend(p for p in self.candidates_by_name(name) if p.satisfies(req))
        cache[req] = out
        return list(out)

    def _scan_providers_of(self, req: Requirement) -> list[Package]:
        """Reference oracle for :meth:`providers_of`: uncached, scan-based."""
        names: set[str] = set()
        for repo in self.enabled_repos():
            for pkg in repo._scan_providers_of(req):
                names.add(pkg.name)
        out: list[Package] = []
        for name in sorted(names):
            out.extend(
                p for p in self._scan_candidates_by_name(name) if p.satisfies(req)
            )
        return out

    def all_names(self) -> set[str]:
        """Union of names across enabled repositories."""
        names: set[str] = set()
        for repo in self.enabled_repos():
            names |= repo.names()
        return names

"""Batch schedulers: Torque (FIFO), Torque+Maui (priority + EASY backfill),
SLURM-like (multifactor priority), SGE-like (functional tickets), and the
Limulus power-managed variant.
"""

from .base import BaseScheduler, ClusterResources, SchedulerStats
from .job import Allocation, Job, JobState
from .power_mgmt import EnergyReport, PowerManagedScheduler, PowerWindow
from .queues import QueueConfig, default_queue_for
from .sge import SgeScheduler
from .slurm import MultifactorWeights, SlurmScheduler
from .torque import MauiScheduler, TorqueScheduler

__all__ = [
    "Job",
    "JobState",
    "Allocation",
    "ClusterResources",
    "BaseScheduler",
    "SchedulerStats",
    "QueueConfig",
    "default_queue_for",
    "TorqueScheduler",
    "MauiScheduler",
    "SlurmScheduler",
    "MultifactorWeights",
    "SgeScheduler",
    "PowerManagedScheduler",
    "EnergyReport",
    "PowerWindow",
]

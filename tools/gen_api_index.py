#!/usr/bin/env python3
"""Regenerate docs/API.md from the package's ``__all__`` declarations.

Run from the repository root::

    python tools/gen_api_index.py
"""

from __future__ import annotations

import importlib
import inspect
import pathlib
import pkgutil


def generate() -> str:
    import repro

    lines = [
        "# API index",
        "",
        "The public surface, generated from each module's `__all__`"
        " (regenerate with `python tools/gen_api_index.py`).",
        "",
    ]
    modules = sorted(
        pkgutil.walk_packages(repro.__path__, prefix="repro."),
        key=lambda info: info.name,
    )
    for info in modules:
        module = importlib.import_module(info.name)
        names = getattr(module, "__all__", None)
        if not names:
            continue
        headline = (module.__doc__ or "").strip().splitlines()[0]
        lines += [f"## `{info.name}`", "", headline, ""]
        for name in names:
            obj = getattr(module, name)
            if inspect.isclass(obj):
                kind = "class"
            elif inspect.isfunction(obj):
                kind = "function"
            elif inspect.ismodule(obj):
                continue
            else:
                kind = "constant"
            first = ""
            if kind in ("class", "function"):
                doc = inspect.getdoc(obj)
                first = doc.splitlines()[0] if doc else ""
            lines.append(
                f"- **{name}** ({kind}){': ' + first if first else ''}"
            )
        lines.append("")
    return "\n".join(lines) + "\n"


def main() -> None:
    out = pathlib.Path(__file__).parent.parent / "docs" / "API.md"
    out.parent.mkdir(exist_ok=True)
    out.write_text(generate())
    print(f"wrote {out}")


if __name__ == "__main__":
    main()

"""``python -m repro.analyze`` — the cluster-lint entry point."""

import os
import sys

from .cli import main

if __name__ == "__main__":
    try:
        status = main()
    except BrokenPipeError:
        # Downstream consumer (e.g. ``| head``) closed the pipe; exit the
        # way a killed filter would, without a traceback.  Redirect stdout
        # to devnull first so interpreter shutdown does not retry the flush.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        status = 128 + 13
    sys.exit(status)

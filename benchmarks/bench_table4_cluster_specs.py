"""Table 4 — Basic characteristics of the Limulus HPC200 and LittleFe.

Assembles both machines from the parts catalogue (the timed unit covers
full constraint validation: sockets, coolers, PSUs, chassis) and regenerates
the nodes/clock/CPUs/cores table.
"""

import pytest

from repro.hardware import build_limulus_hpc200, build_littlefe_modified


def build_both():
    return build_littlefe_modified(), build_limulus_hpc200()


def regenerate_table4(littlefe, limulus) -> str:
    lines = [
        "Table 4. Basic characteristics of a Limulus HPC200 cluster and a "
        "LittleFe cluster",
        "",
        f"{'Cluster':<16}{'Nodes':>6}{'CPU clock':>11}{'CPUs':>6}{'Cores':>7}",
    ]
    for name, machine in (("LittleFe", littlefe.machine),
                          ("Limulus HPC200", limulus.machine)):
        lines.append(
            f"{name:<16}{machine.node_count:>6}"
            f"{machine.clock_ghz:>8.1f} GHz{machine.cpu_count:>6}"
            f"{machine.total_cores:>7}"
        )
    return "\n".join(lines)


def test_table4_regeneration(benchmark, save_artifact):
    littlefe, limulus = benchmark(build_both)
    table = regenerate_table4(littlefe, limulus)
    save_artifact("table4_cluster_specs", table)

    # the published rows, exactly
    lf, lm = littlefe.machine, limulus.machine
    assert (lf.node_count, lf.cpu_count, lf.total_cores) == (6, 6, 12)
    assert lf.clock_ghz == pytest.approx(2.8)
    assert (lm.node_count, lm.cpu_count, lm.total_cores) == (4, 4, 16)
    assert lm.clock_ghz == pytest.approx(3.1)

#!/usr/bin/env python3
"""Fleet-scale provisioning: wave installs, NodeSet addressing, rack rollups.

Table 3 tops out at 220 nodes; this example provisions a synthetic
300-node site the way a 10k-node fleet would be run:

1. **wave-scheduled installs** — insert-ethers discovers whole waves of 64
   nodes, each wave sharing one depsolver resolution and one transaction
   plan (validation cost is per *wave*, not per node);
2. **golden-image mode** — one template compute host is kickstarted; every
   other node's state lives in the columnar
   :class:`~repro.fleet.FleetTable`, materialised as a real host only if
   something touches it;
3. **NodeSet addressing** — trace events and operator output name nodes by
   folded pattern (``compute-0-[0-298]``), never by ten-thousand-line list;
4. **hierarchical monitoring** — rack-level aggregators roll up into one
   gmetad-of-gmetads tree; quiet racks are O(1) per poll via the fleet
   epoch, and a node that stops answering is declared dead after three
   missed polls.

Two runs with the same seed produce byte-identical traces (checked below).
"""

import argparse
import sys

from repro.core.deployments import build_synthetic_fleet
from repro.fleet import NodeSet
from repro.monitoring import monitor_fleet
from repro.rocks import RocksInstaller
from repro.sim import SimKernel

NODES = 300
WAVE_SIZE = 64


def run_fleet(seed: int = 42, trace_path=None):
    """Provision and monitor the synthetic fleet; returns the pieces."""
    machine = build_synthetic_fleet(NODES)
    kernel = SimKernel(seed=seed)
    installer = RocksInstaller(machine)
    cluster = installer.run(wave_size=WAVE_SIZE, kernel=kernel, materialize=False)

    tree = monitor_fleet(cluster, hosts_per_rack=48, kernel=kernel)
    tree.poll_cycle()          # first cycle: every rack reports
    tree.poll_cycle()          # quiet fleet: epoch fast path, zero changes

    # One node stops answering; three missed polls later it is dead.
    victim = cluster.rocksdb.compute_hosts()[17]
    victim.responsive = False
    for _ in range(3):
        tree.poll_cycle()
    summary = tree.poll_cycle()

    if trace_path is not None:
        kernel.trace.write_jsonl(trace_path)
    return {
        "cluster": cluster,
        "tree": tree,
        "kernel": kernel,
        "summary": summary,
        "victim": victim.name,
        "jsonl": kernel.trace.to_jsonl(),
    }


def main(argv=None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write the JSONL trace here")
    args = parser.parse_args(argv if argv is not None else [])

    run = run_fleet(args.seed, trace_path=args.trace)
    cluster, tree, kernel = run["cluster"], run["tree"], run["kernel"]
    fleet = cluster.rocksdb.fleet

    print(f"=== Wave-scheduled install: {NODES} nodes, waves of {WAVE_SIZE} ===")
    waves = [e for e in kernel.trace.events if e.kind == "install.wave"]
    for event in waves:
        print(f"wave {event.data['wave']:>2}: {event.data['nodes']:<24}"
              f" ({event.data['count']} nodes, {event.data['pkgs']} pkgs each)")
    print(f"fleet address: {fleet.nodeset()}")
    print(f"materialised host objects: {len(cluster.compute)} "
          f"(golden image carries the package set)")

    print("\n=== NodeSet algebra ===")
    all_computes = NodeSet.parse(waves[0].data["nodes"])
    for event in waves[1:]:
        all_computes = all_computes | NodeSet.parse(event.data["nodes"])
    first_rack = NodeSet.parse("compute-0-[0-47]")
    print(f"all waves union:        {all_computes}")
    print(f"minus the first rack:   {all_computes - first_rack}")

    print("\n=== Hierarchical monitoring ===")
    summary = run["summary"]
    print(f"racks: {len(tree.racks())}, "
          f"hosts up: {summary.hosts_up}/{summary.hosts_total}, "
          f"dead: {tree.dead_hosts()}")
    rollups = [e for e in kernel.trace.events if e.kind == "monitor.rollup"]
    print("rollup changed-rack counts per cycle:",
          [e.data["changed"] for e in rollups])
    dead = [e for e in kernel.trace.events if e.kind == "monitor.host_dead"]
    print(f"declared dead after {dead[0].data['missed']} missed polls: "
          f"{dead[0].data['host']}")

    again = run_fleet(args.seed)
    identical = again["jsonl"] == run["jsonl"]
    print(f"\nsame seed re-run, traces byte-identical: {identical}")
    if args.trace:
        print(f"trace written to {args.trace} "
              f"(validate: python -m repro.sim {args.trace})")


def cluster_definition():
    """The synthetic fleet, for ``cluster-lint``."""
    from repro.analyze import ClusterDefinition
    from repro.scheduler import default_queue_for

    machine = build_synthetic_fleet(NODES)
    return ClusterDefinition(
        name="fleet-wave-install",
        machine=machine,
        queues=(default_queue_for(machine),),
    )


if __name__ == "__main__":
    main(sys.argv[1:])

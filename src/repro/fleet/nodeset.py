"""NodeSet / RangeSet algebra: fleet addressing that is O(ranges), not O(nodes).

The ClusterShell idiom (SNIPPETS.md): a 10,000-node fleet is written
``compute-0-[0-9999]``, not ten thousand strings.  A :class:`RangeSet` is a
sorted list of disjoint inclusive integer intervals with an optional
zero-padding width; a :class:`NodeSet` maps ``(prefix, suffix)`` name
patterns to RangeSets (plus plain unnumbered names) and supports the full
boolean algebra — union ``|``, intersection ``&``, difference ``-``,
symmetric difference ``^`` — by merging interval lists, never by expanding
nodes.  ``split()`` chunks a NodeSet into bounded waves for the installer;
named groups (``@compute``) resolve through an explicit mapping.

Everything is deterministic: folding sorts patterns lexicographically and
ranges numerically, so ``str(nodeset)`` is a stable fleet address usable in
trace events (and, unlike MAC lists, independent of hardware serials).
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator, Mapping

from ..errors import FleetError

__all__ = ["RangeSet", "NodeSet", "fold_names"]

#: a node name's trailing integer (the rank a pattern folds over)
_TRAILING_INT = re.compile(r"^(.*?)(\d+)$")
#: one bracket expression inside a nodeset string: prefix[ranges]suffix
_BRACKET = re.compile(r"^(.*?)\[([-\d,]+)\](.*)$")


class RangeSet:
    """A set of non-negative integers stored as disjoint inclusive intervals.

    ``padding`` is the zero-fill width names were written with (``03`` =>
    padding 3); 0 means no padding.  Mixing two different non-zero paddings
    in one operation is an addressing error and raises :class:`FleetError`.
    """

    __slots__ = ("_ivals", "padding")

    def __init__(
        self,
        intervals: Iterable[tuple[int, int]] = (),
        *,
        padding: int = 0,
    ) -> None:
        self.padding = padding
        self._ivals: list[tuple[int, int]] = _normalize(intervals)

    # -- construction --------------------------------------------------------

    @classmethod
    def parse(cls, text: str) -> "RangeSet":
        """Parse ``"0-99,200,300-310"`` (detects zero-padding like ``001``)."""
        ivals: list[tuple[int, int]] = []
        padding = 0
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            lo_s, dash, hi_s = part.partition("-")
            if not lo_s.isdigit() or (dash and not hi_s.isdigit()):
                raise FleetError(f"bad range {part!r} in {text!r}")
            lo, hi = int(lo_s), int(hi_s) if dash else int(lo_s)
            if hi < lo:
                raise FleetError(f"inverted range {part!r} in {text!r}")
            if len(lo_s) > 1 and lo_s[0] == "0":
                padding = max(padding, len(lo_s))
            ivals.append((lo, hi))
        return cls(ivals, padding=padding)

    @classmethod
    def from_values(cls, values: Iterable[int], *, padding: int = 0) -> "RangeSet":
        """Build from arbitrary integers (folds runs into intervals)."""
        return cls(((v, v) for v in values), padding=padding)

    # -- queries -------------------------------------------------------------

    def intervals(self) -> list[tuple[int, int]]:
        """The disjoint inclusive (start, stop) intervals, ascending."""
        return list(self._ivals)

    def __len__(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self._ivals)

    def __bool__(self) -> bool:
        return bool(self._ivals)

    def __iter__(self) -> Iterator[int]:
        for lo, hi in self._ivals:
            yield from range(lo, hi + 1)

    def __contains__(self, value: int) -> bool:
        for lo, hi in self._ivals:
            if lo <= value <= hi:
                return True
            if value < lo:
                return False
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RangeSet):
            return NotImplemented
        return self._ivals == other._ivals and self.padding == other.padding

    def __hash__(self) -> int:
        return hash((tuple(self._ivals), self.padding))

    def format_value(self, value: int) -> str:
        """One member rendered with this set's zero-padding."""
        return f"{value:0{self.padding}d}" if self.padding else str(value)

    def fold(self) -> str:
        """The canonical compact form, e.g. ``"0-99,200"``."""
        parts = []
        for lo, hi in self._ivals:
            if lo == hi:
                parts.append(self.format_value(lo))
            else:
                parts.append(f"{self.format_value(lo)}-{self.format_value(hi)}")
        return ",".join(parts)

    def __str__(self) -> str:
        return self.fold()

    def __repr__(self) -> str:
        return f"RangeSet({self.fold()!r})"

    # -- algebra (interval merges; never expands members) ---------------------

    def _merged_padding(self, other: "RangeSet") -> int:
        if self.padding and other.padding and self.padding != other.padding:
            raise FleetError(
                f"mixed zero-padding widths {self.padding} and {other.padding}"
            )
        return max(self.padding, other.padding)

    def union(self, other: "RangeSet") -> "RangeSet":
        return RangeSet(
            self._ivals + other._ivals, padding=self._merged_padding(other)
        )

    def intersection(self, other: "RangeSet") -> "RangeSet":
        out: list[tuple[int, int]] = []
        a, b = self._ivals, other._ivals
        i = j = 0
        while i < len(a) and j < len(b):
            lo = max(a[i][0], b[j][0])
            hi = min(a[i][1], b[j][1])
            if lo <= hi:
                out.append((lo, hi))
            if a[i][1] < b[j][1]:
                i += 1
            else:
                j += 1
        return RangeSet(out, padding=self._merged_padding(other))

    def difference(self, other: "RangeSet") -> "RangeSet":
        out: list[tuple[int, int]] = []
        j = 0
        b = other._ivals
        for lo, hi in self._ivals:
            cur = lo
            while j < len(b) and b[j][1] < cur:
                j += 1
            k = j
            while k < len(b) and b[k][0] <= hi:
                blo, bhi = b[k]
                if blo > cur:
                    out.append((cur, blo - 1))
                cur = max(cur, bhi + 1)
                if cur > hi:
                    break
                k += 1
            if cur <= hi:
                out.append((cur, hi))
        return RangeSet(out, padding=self._merged_padding(other))

    def symmetric_difference(self, other: "RangeSet") -> "RangeSet":
        return self.difference(other).union(other.difference(self))

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __xor__ = symmetric_difference


def _normalize(intervals: Iterable[tuple[int, int]]) -> list[tuple[int, int]]:
    """Sort and coalesce overlapping/adjacent intervals."""
    ivals = sorted(intervals)
    out: list[tuple[int, int]] = []
    for lo, hi in ivals:
        if lo < 0 or hi < lo:
            raise FleetError(f"invalid interval ({lo}, {hi})")
        if out and lo <= out[-1][1] + 1:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


class NodeSet:
    """A set of node names addressed by patterns, with boolean algebra.

    Internally ``{(prefix, suffix): RangeSet}`` plus a set of unnumbered
    scalar names.  ``compute-0-15`` lives under pattern
    ``("compute-0-", "")`` with value 15 — so ranks fold per rack and the
    whole Kansas fleet is two patterns, regardless of node count.
    """

    __slots__ = ("_patterns", "_scalars")

    def __init__(self) -> None:
        self._patterns: dict[tuple[str, str], RangeSet] = {}
        self._scalars: set[str] = set()

    # -- construction --------------------------------------------------------

    @classmethod
    def parse(
        cls,
        text: str,
        *,
        groups: Mapping[str, "NodeSet | str"] | None = None,
    ) -> "NodeSet":
        """Parse ``"compute-0-[0-99],head"``; ``@name`` resolves via ``groups``."""
        ns = cls()
        for part in _split_top_level(text):
            if not part:
                continue
            if part.startswith("@"):
                name = part[1:]
                if groups is None or name not in groups:
                    raise FleetError(f"unknown node group @{name}")
                member = groups[name]
                resolved = (
                    member
                    if isinstance(member, NodeSet)
                    else cls.parse(member, groups=groups)
                )
                ns._update(resolved)
                continue
            m = _BRACKET.match(part)
            if m is not None:
                prefix, ranges, suffix = m.groups()
                ns._add_range((prefix, suffix), RangeSet.parse(ranges))
                continue
            ns.add(part)
        return ns

    @classmethod
    def from_names(cls, names: Iterable[str]) -> "NodeSet":
        """Fold a list of node names into patterns."""
        ns = cls()
        for name in names:
            ns.add(name)
        return ns

    def add(self, name: str) -> None:
        """Add a single node name (folds a trailing integer if present)."""
        m = _TRAILING_INT.match(name)
        if m is None:
            self._scalars.add(name)
            return
        prefix, digits = m.groups()
        padding = len(digits) if len(digits) > 1 and digits[0] == "0" else 0
        self._add_range(
            (prefix, ""), RangeSet([(int(digits), int(digits))], padding=padding)
        )

    def _add_range(self, key: tuple[str, str], rset: RangeSet) -> None:
        existing = self._patterns.get(key)
        self._patterns[key] = rset if existing is None else existing | rset

    def _update(self, other: "NodeSet") -> None:
        for key, rset in other._patterns.items():
            self._add_range(key, rset)
        self._scalars |= other._scalars

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(r) for r in self._patterns.values()) + len(self._scalars)

    def __bool__(self) -> bool:
        return bool(self._patterns) or bool(self._scalars)

    def __contains__(self, name: str) -> bool:
        if name in self._scalars:
            return True
        for (prefix, suffix), rset in self._patterns.items():
            if not name.startswith(prefix):
                continue
            middle = name[len(prefix):len(name) - len(suffix) or None]
            if suffix and not name.endswith(suffix):
                continue
            if middle.isdigit() and int(middle) in rset:
                return True
        return False

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NodeSet):
            return NotImplemented
        mine = {k: r for k, r in self._patterns.items() if r}
        theirs = {k: r for k, r in other._patterns.items() if r}
        return mine == theirs and self._scalars == other._scalars

    def __hash__(self) -> int:
        return hash(self.fold())

    def __iter__(self) -> Iterator[str]:
        """Expanded names: patterns in sorted key order, values ascending,
        then scalars sorted — a stable total order."""
        for (prefix, suffix), rset in sorted(self._patterns.items()):
            for value in rset:
                yield f"{prefix}{rset.format_value(value)}{suffix}"
        yield from sorted(self._scalars)

    def expand(self) -> list[str]:
        """All member names, in the deterministic iteration order."""
        return list(self)

    def fold(self) -> str:
        """The canonical compact address, e.g. ``"compute-0-[0-9999],head"``."""
        parts = []
        for (prefix, suffix), rset in sorted(self._patterns.items()):
            if not rset:
                continue
            ivals = rset.intervals()
            if not suffix and len(ivals) == 1 and ivals[0][0] == ivals[0][1]:
                parts.append(f"{prefix}{rset.format_value(ivals[0][0])}{suffix}")
            else:
                parts.append(f"{prefix}[{rset.fold()}]{suffix}")
        parts.extend(sorted(self._scalars))
        return ",".join(parts)

    def __str__(self) -> str:
        return self.fold()

    def __repr__(self) -> str:
        return f"NodeSet({self.fold()!r})"

    # -- algebra -------------------------------------------------------------

    def _combine(self, other: "NodeSet", op: str) -> "NodeSet":
        out = NodeSet()
        keys = set(self._patterns) | set(other._patterns)
        empty = RangeSet()
        for key in sorted(keys):
            a = self._patterns.get(key, empty)
            b = other._patterns.get(key, empty)
            merged = getattr(a, op)(b)
            if merged:
                out._patterns[key] = merged
        if op == "union":
            out._scalars = self._scalars | other._scalars
        elif op == "intersection":
            out._scalars = self._scalars & other._scalars
        elif op == "difference":
            out._scalars = self._scalars - other._scalars
        else:
            out._scalars = self._scalars ^ other._scalars
        return out

    def union(self, other: "NodeSet") -> "NodeSet":
        return self._combine(other, "union")

    def intersection(self, other: "NodeSet") -> "NodeSet":
        return self._combine(other, "intersection")

    def difference(self, other: "NodeSet") -> "NodeSet":
        return self._combine(other, "difference")

    def symmetric_difference(self, other: "NodeSet") -> "NodeSet":
        return self._combine(other, "symmetric_difference")

    __or__ = union
    __and__ = intersection
    __sub__ = difference
    __xor__ = symmetric_difference

    def split(self, size: int) -> Iterator["NodeSet"]:
        """Chunk into NodeSets of at most ``size`` members, in iteration
        order — the installer's bounded-concurrency waves."""
        if size <= 0:
            raise FleetError(f"wave size must be positive, got {size}")
        batch = NodeSet()
        count = 0
        for name in self:
            batch.add(name)
            count += 1
            if count == size:
                yield batch
                batch = NodeSet()
                count = 0
        if count:
            yield batch


def _split_top_level(text: str) -> list[str]:
    """Split a nodeset expression on commas outside brackets."""
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for ch in text:
        if ch == "[":
            depth += 1
        elif ch == "]":
            if depth == 0:
                raise FleetError(f"unbalanced brackets in {text!r}")
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
            continue
        current.append(ch)
    if depth:
        raise FleetError(f"unbalanced brackets in {text!r}")
    parts.append("".join(current).strip())
    return parts


def fold_names(names: Iterable[str]) -> str:
    """Fold a list of node names into the canonical compact address."""
    return NodeSet.from_names(names).fold()

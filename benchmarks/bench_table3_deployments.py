"""Table 3 — Deployed XCBC clusters with Campus Bridging involvement.

Rebuilds every site's hardware in simulation (calibrated CPUs/GPUs per
DESIGN.md's substitution policy), regenerates the table with published vs
rebuilt Rpeak side by side, and checks the totals row (304 / 2708 / 49.61).
The timed unit rebuilds all six sites' hardware.
"""

import pytest

from repro.core import TABLE3_SITES, rebuild_site_hardware, table3_totals


def rebuild_all():
    return {site.site: rebuild_site_hardware(site) for site in TABLE3_SITES}


def regenerate_table3(machines) -> str:
    lines = [
        "Table 3. Deployed XCBC Clusters (published vs rebuilt)",
        "",
        f"{'Site':<44}{'Nodes':>6}{'Cores':>7}{'Rpeak(TF)':>11}"
        f"{'Rebuilt(TF)':>13}  Adoption / other info",
    ]
    for site in TABLE3_SITES:
        machine = machines[site.site]
        lines.append(
            f"{site.site[:42]:<44}{site.nodes:>6}{site.cores:>7}"
            f"{site.rpeak_tflops:>11.2f}{machine.rpeak_gflops / 1000:>13.2f}"
            f"  {site.adoption.value}; {site.other_info}"
        )
    nodes, cores, tf = table3_totals()
    rebuilt_tf = sum(m.rpeak_gflops for m in machines.values()) / 1000
    lines.append(
        f"{'Total':<44}{nodes:>6}{cores:>7}{tf:>11.2f}{rebuilt_tf:>13.2f}"
    )
    return "\n".join(lines)


def test_table3_regeneration(benchmark, save_artifact):
    machines = benchmark(rebuild_all)
    table = regenerate_table3(machines)
    save_artifact("table3_deployments", table)

    assert table3_totals() == (304, 2708, 49.61)
    for site in TABLE3_SITES:
        machine = machines[site.site]
        assert machine.node_count == site.nodes
        assert machine.total_cores == site.cores
        assert machine.rpeak_gflops == pytest.approx(
            site.rpeak_gflops, rel=0.01
        )
    rebuilt_total = sum(m.rpeak_gflops for m in machines.values()) / 1000
    assert rebuilt_total == pytest.approx(49.61, rel=0.01)

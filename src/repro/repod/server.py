"""The origin: bounded slots, a bounded queue, and deadline-aware shedding.

:class:`RepoServer` is the XNIT repository daemon every campus ultimately
pulls from.  It refuses to melt: concurrent transfers are capped by
``slots``, waiting requests by ``queue_limit``, and anything beyond that
is *shed* immediately — an explicit, traced refusal (``repod.shed``) the
client can back off from, instead of an ever-growing queue whose tail
times out anyway.  The queue is deadline-aware: when a slot frees up, any
queued request whose client deadline already expired is shed rather than
served — serving it would burn a slot producing bytes nobody is waiting
for (the classic overload death spiral).

All service is event-driven on the kernel: a granted request occupies a
slot for ``link.transfer_time_s(size)`` simulated seconds and then
delivers a :class:`FetchResult` to its callback.  ``crash()`` (the
``origin.crash`` fault) kills every active transfer and queued request
mid-flight; ``recover()`` brings the daemon back empty.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RepodError

__all__ = ["FetchResult", "RepoServer", "payload_for"]


def payload_for(pkg) -> str:
    """The canonical bytes-on-the-wire for one artifact.

    Every layer (origin, proxy cache, client) represents content this same
    way, so "proxy tier returned exactly what the origin would have" is a
    string comparison — the property the hypothesis suite checks.
    """
    return f"{pkg.nevra}|{pkg.size_bytes}"


@dataclass
class FetchResult:
    """Terminal outcome of one fetch attempt against origin or proxy."""

    artifact: str
    ok: bool
    payload: str = ""
    serial: int = 0
    source: str = "origin"
    error: str = ""
    #: failure class: shed | refused | reset | crash | missing
    error_kind: str = ""
    package: object | None = None


@dataclass
class _QueuedRequest:
    artifact: str
    requester: str
    deadline_s: float | None
    on_result: object


class RepoServer:
    """A repository origin with admission control and load shedding."""

    def __init__(
        self,
        name: str,
        *,
        kernel,
        link,
        slots: int = 4,
        queue_limit: int = 16,
    ) -> None:
        if slots < 1:
            raise RepodError(f"server needs at least one slot, got {slots}")
        if queue_limit < 0:
            raise RepodError(f"queue limit must be >= 0, got {queue_limit}")
        self.name = name
        self.kernel = kernel
        self.link = link
        self.slots = slots
        self.queue_limit = queue_limit
        self.up = True
        #: published content: artifact name -> Package, rebuilt by publish()
        self._content: dict[str, object] = {}
        #: release serial, bumped by every publish(); proxies compare their
        #: cached serial against this to decide fresh vs stale.
        self.serial = 0
        #: in-service transfers: id(request) -> (request, EventHandle)
        self._active: dict[int, tuple[_QueuedRequest, object]] = {}
        self._queue: list[_QueuedRequest] = []
        # accounting — the invariant audit checks these sum up exactly
        self.arrivals = 0
        self.served = 0
        self.shed_full = 0
        self.shed_deadline = 0
        self.refused = 0
        self.crashed_inflight = 0
        self.missing = 0

    # -- content ---------------------------------------------------------------

    def publish(self, packages) -> int:
        """Publish a release: newest EVR per name wins; bumps the serial."""
        newest: dict[str, object] = {}
        for pkg in sorted(packages, key=lambda p: (p.name, p.evr)):
            newest[pkg.name] = pkg
        for name in sorted(newest):
            self._content[name] = newest[name]
        self.serial += 1
        return self.serial

    def catalog(self) -> list[str]:
        return sorted(self._content)

    # -- admission -------------------------------------------------------------

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def queued_count(self) -> int:
        return len(self._queue)

    def request(
        self,
        artifact: str,
        *,
        requester: str,
        deadline_s: float | None = None,
        on_result,
    ) -> None:
        """Admit, queue, or shed one fetch; the outcome arrives via callback.

        Failure callbacks (refused / shed / missing) fire synchronously —
        the daemon rejects at the door, before any service time is spent.
        """
        self.arrivals += 1
        req = _QueuedRequest(artifact, requester, deadline_s, on_result)
        if not self.up:
            self.refused += 1
            on_result(
                FetchResult(
                    artifact, False, source=self.name,
                    error=f"origin {self.name} is down", error_kind="refused",
                )
            )
            return
        if artifact not in self._content:
            self.missing += 1
            on_result(
                FetchResult(
                    artifact, False, source=self.name,
                    error=f"no such artifact {artifact!r}", error_kind="missing",
                )
            )
            return
        if deadline_s is not None and self.kernel.now_s >= deadline_s:
            self._shed(req, reason="deadline expired", counter="deadline")
            return
        if len(self._active) < self.slots:
            self._start_service(req)
            return
        if len(self._queue) >= self.queue_limit:
            self._shed(req, reason="queue full", counter="full")
            return
        self._queue.append(req)

    def _shed(self, req: _QueuedRequest, *, reason: str, counter: str) -> None:
        if counter == "full":
            self.shed_full += 1
        else:
            self.shed_deadline += 1
        self.kernel.trace.emit(
            "repod.shed", t_s=self.kernel.now_s, subsystem="repod",
            origin=self.name, artifact=req.artifact, reason=reason,
            queued=len(self._queue),
        )
        req.on_result(
            FetchResult(
                req.artifact, False, source=self.name,
                error=f"origin {self.name} shed request ({reason})",
                error_kind="shed",
            )
        )

    def _start_service(self, req: _QueuedRequest) -> None:
        pkg = self._content[req.artifact]
        took_s = self.link.transfer_time_s(pkg.size_bytes)
        key = id(req)

        def finish() -> None:
            del self._active[key]
            self.served += 1
            req.on_result(
                FetchResult(
                    req.artifact, True, payload=payload_for(pkg),
                    serial=self.serial, source=self.name, package=pkg,
                )
            )
            self._admit()

        handle = self.kernel.after(
            took_s, finish, label=f"repod.serve:{self.name}:{req.artifact}"
        )
        self._active[key] = (req, handle)

    def _admit(self) -> None:
        """Fill freed slots from the queue, shedding expired waiters."""
        while self._queue and len(self._active) < self.slots:
            req = self._queue.pop(0)
            if req.deadline_s is not None and self.kernel.now_s >= req.deadline_s:
                self._shed(req, reason="deadline expired", counter="deadline")
                continue
            self._start_service(req)

    # -- fault hooks (origin.crash) --------------------------------------------

    def crash(self) -> None:
        """The daemon dies: every active transfer and queued request fails."""
        self.up = False
        for req, handle in self._active.values():
            self.kernel.cancel(handle)
            self.crashed_inflight += 1
            req.on_result(
                FetchResult(
                    req.artifact, False, source=self.name,
                    error=f"origin {self.name} crashed mid-transfer",
                    error_kind="crash",
                )
            )
        self._active.clear()
        while self._queue:
            req = self._queue.pop(0)
            self.crashed_inflight += 1
            req.on_result(
                FetchResult(
                    req.artifact, False, source=self.name,
                    error=f"origin {self.name} crashed", error_kind="crash",
                )
            )

    def recover(self) -> None:
        self.up = True

    # -- audit -----------------------------------------------------------------

    def problems(self) -> list[str]:
        """Leak audit: once a run drains, nothing may still hold a slot."""
        out = []
        if self._active:
            held = ", ".join(sorted(r.artifact for r, _ in self._active.values()))
            out.append(f"origin {self.name}: leaked connection slots ({held})")
        if self._queue:
            out.append(
                f"origin {self.name}: {len(self._queue)} leaked queue entries"
            )
        accounted = (
            self.served + self.shed_full + self.shed_deadline
            + self.refused + self.crashed_inflight + self.missing
            + len(self._active) + len(self._queue)
        )
        lost = self.arrivals - accounted
        if lost != 0:
            out.append(
                f"origin {self.name}: {lost} arrivals never reached a "
                f"terminal state (served/shed/refused/crashed/missing)"
            )
        return out

"""Ablation 4 — HPL efficiency-model sensitivity.

Why do GigE clusters sit at 60-75 % of peak (the Table 5 efficiencies)?
The ablation sweeps the model's interconnect bandwidth and node count around
the Limulus configuration and regenerates the sensitivity table: efficiency
falls as nodes multiply on fixed GigE, and recovers with a faster fabric —
the crossover shape HPL tuning folklore predicts.
"""

import pytest

from repro.linpack import HplModelInput, predict_hpl

GIGE = 117.5e6
TENGIG = 1.175e9


def limulus_like(nodes: int, bandwidth: float) -> HplModelInput:
    return HplModelInput(
        total_cores=4 * nodes,
        per_core_gflops=49.6,
        node_count=nodes,
        memory_bytes=nodes * 16 * 1024**3,
        interconnect_bandwidth_bytes_s=bandwidth,
        interconnect_latency_s=60e-6,
        kernel_eff=0.88,
    )


def sweep():
    node_counts = [1, 2, 4, 8, 16, 32]
    table = {}
    for label, bw in (("GigE", GIGE), ("10GigE", TENGIG)):
        table[label] = [
            predict_hpl(limulus_like(n, bw)).efficiency for n in node_counts
        ]
    return node_counts, table


def test_ablation_hpl_sensitivity(benchmark, save_artifact):
    node_counts, table = benchmark(sweep)

    lines = [
        "Ablation: HPL efficiency vs node count and interconnect",
        "(i7-4770S-class nodes, 16 GiB each, N sized to 80 % of memory)",
        "",
        f"{'nodes':<8}" + "".join(f"{n:>8}" for n in node_counts),
    ]
    for label, series in table.items():
        lines.append(
            f"{label:<8}" + "".join(f"{e:>8.1%}" for e in series)
        )
    save_artifact("ablation_hpl_sensitivity", "\n".join(lines))

    gige, tengig = table["GigE"], table["10GigE"]
    # single node: kernel-bound, same either way
    assert gige[0] == pytest.approx(tengig[0])
    assert gige[0] == pytest.approx(0.88, rel=0.01)
    # GigE efficiency decays with node count...
    assert all(a >= b for a, b in zip(gige, gige[1:]))
    # ...and the 4-node point reproduces the paper's ~63 % band
    assert 0.58 <= gige[2] <= 0.68
    # a faster fabric dominates at every multi-node point
    assert all(t > g for t, g in zip(tengig[1:], gige[1:]))
    # at 32 GigE nodes, a third of the machine has gone to communication
    assert gige[-1] < gige[1] - 0.10
    assert gige[-1] < 0.60
    # while 10GigE stays within a few points of the kernel bound throughout
    assert tengig[-1] > 0.80

#!/usr/bin/env python3
"""A LittleFe/XCBC training workshop (Section 6), including the classic
student mistake.

Two cohorts run the curriculum module "Building and administering a
Beowulf-style cluster with LittleFe and the XSEDE-compatible Basic Cluster
build".  Cohort A follows the modified parts list; cohort B forgets the
per-node drives and hits the Rocks-needs-disks wall — the teaching moment
Section 5.1 documents.
"""

from repro.core import TrainingSession, littlefe_xcbc_module


def main() -> None:
    print("=== Cohort A: the modified parts list ===")
    session_a = TrainingSession(littlefe_xcbc_module(), students=8)
    session_a.run()
    print(session_a.transcript())
    print(f"Workshop outcome: {'all steps passed' if session_a.passed_all else 'failures'}\n")

    print("=== Cohort B: forgot the mSATA drives ===")
    session_b = TrainingSession(littlefe_xcbc_module(forget_disks=True), students=8)
    session_b.run()
    print(session_b.transcript())
    failed = [o for o in session_b.outcomes if not o.passed]
    print(f"\nTeaching moments: {len(failed)} step(s) failed — the install "
          f"step fails exactly the way Section 5.1 explains (Rocks does not "
          f"support diskless nodes), and the later steps inherit the hole.")


def cluster_definition():
    """Pre-flight view of the hardware cohort A builds, for ``cluster-lint``."""
    from repro.core import xcbc_cluster_definition
    from repro.hardware import build_littlefe_modified

    machine = build_littlefe_modified().machine
    return xcbc_cluster_definition(machine, name="workshop-littlefe")


if __name__ == "__main__":
    main()

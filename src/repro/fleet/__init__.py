"""Fleet-scale node state: columnar tables and O(ranges) addressing.

The two building blocks that let a 10k-node fleet build, install, monitor,
and schedule without a Python object per node on the hot paths:

* :class:`FleetTable` — parallel-array storage for every per-appliance
  fact (name, role, install state, power, scheduler flags, cores), with
  :class:`FleetRow` proxies keeping the legacy attribute API alive;
* :class:`NodeSet` / :class:`RangeSet` — ClusterShell-style folded
  addressing (``compute-0-[0-9999]``) with full boolean algebra and wave
  chunking.

See docs/SCALE.md for the layout, syntax, and how the rocks / scheduler /
monitoring layers ride on these.
"""

from .nodeset import NodeSet, RangeSet, fold_names
from .table import DEFAULT_STATES, FleetRow, FleetTable

__all__ = [
    "NodeSet",
    "RangeSet",
    "fold_names",
    "FleetTable",
    "FleetRow",
    "DEFAULT_STATES",
]

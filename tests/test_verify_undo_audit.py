"""rpm -V, yum history undo, cluster-wide audit, and module swap/whatis."""

import pytest

from repro.distro import ModuleFile, ModuleSession, ModuleSystem
from repro.errors import DependencyError, ModuleEnvError, YumError
from repro.rpm import Package, Requirement, RpmDatabase, Transaction
from repro.yum import Repository, XSEDE_REPO_STANZA, YumClient


def mk(name, version="1.0", **kw):
    return Package(name=name, version=version, **kw)


class TestRpmVerify:
    def test_intact_package_verifies_clean(self, frontend_host):
        db = RpmDatabase(frontend_host)
        Transaction(db).install(
            mk("tool", commands=("tool",), libraries=("libtool.so.1",))
        ).commit()
        assert db.verify("tool") == []
        assert db.verify_all() == {}

    def test_missing_file_detected(self, frontend_host):
        db = RpmDatabase(frontend_host)
        Transaction(db).install(mk("tool", commands=("tool",))).commit()
        frontend_host.fs.remove("/usr/bin/tool")
        problems = db.verify("tool")
        assert problems == ["missing   /usr/bin/tool"]
        assert "tool" in db.verify_all()

    def test_replaced_file_detected(self, frontend_host):
        db = RpmDatabase(frontend_host)
        Transaction(db).install(mk("tool", commands=("tool",))).commit()
        # another actor overwrites the binary
        frontend_host.fs.write("/usr/bin/tool", "trojan", owner="intruder", mode=0o755)
        problems = db.verify("tool")
        assert any("replaced" in p and "intruder" in p for p in problems)

    def test_service_reowning_detected(self, frontend_host):
        db = RpmDatabase(frontend_host)
        Transaction(db).install(mk("daemon", services=("thing",))).commit()
        frontend_host.services.unregister_package("daemon")
        frontend_host.services.register("thing", package="other")
        problems = db.verify("daemon")
        assert any("re-owned" in p for p in problems)


class TestYumHistoryUndo:
    def make_client(self, host):
        repo = Repository("xsede", priority=50)
        repo.add(mk("fftw", "3.3.3", libraries=("libfftw3.so.3",)))
        repo.add(mk("gromacs", "4.6.5", requires=(Requirement("fftw"),),
                    commands=("mdrun",)))
        client = YumClient(host)
        client.configure_repo_file(
            "xsede.repo", XSEDE_REPO_STANZA.render(), available={"xsede": repo}
        )
        return client, repo

    def test_undo_install(self, frontend_host):
        client, _repo = self.make_client(frontend_host)
        client.install("gromacs")
        assert frontend_host.has_command("mdrun")
        client.history_undo()
        assert not client.db.has("gromacs")
        assert not client.db.has("fftw")
        assert not frontend_host.has_command("mdrun")

    def test_undo_update_downgrades(self, frontend_host):
        client, repo = self.make_client(frontend_host)
        client.install("fftw")
        repo.add(mk("fftw", "3.3.4", libraries=("libfftw3.so.3",)))
        client.update()
        assert client.db.get("fftw").version == "3.3.4"
        client.history_undo()
        assert client.db.get("fftw").version == "3.3.3"

    def test_undo_erase_reinstalls(self, frontend_host):
        client, _repo = self.make_client(frontend_host)
        client.install("fftw")
        client.erase("fftw")
        client.history_undo()
        assert client.db.has("fftw")

    def test_undo_of_undo(self, frontend_host):
        client, _repo = self.make_client(frontend_host)
        client.install("fftw")
        client.history_undo()
        assert not client.db.has("fftw")
        client.history_undo()  # undo the undo
        assert client.db.has("fftw")

    def test_undo_blocked_by_dependants(self, frontend_host):
        client, _repo = self.make_client(frontend_host)
        client.install("fftw")       # history[0]
        client.install("gromacs")    # history[1], depends on fftw
        with pytest.raises(DependencyError):
            client.history_undo(0)   # cannot rip fftw out from under gromacs
        assert client.db.has("fftw")

    def test_undo_empty_history(self, frontend_host):
        client, _repo = self.make_client(frontend_host)
        with pytest.raises(YumError, match="no transactions"):
            client.history_undo()

    def test_undo_bad_index(self, frontend_host):
        client, _repo = self.make_client(frontend_host)
        client.install("fftw")
        with pytest.raises(YumError, match="history index"):
            client.history_undo(7)


class TestAuditCluster:
    def test_every_host_audited(self, xcbc_littlefe):
        from repro.core import audit_cluster

        reports = audit_cluster(xcbc_littlefe.cluster)
        assert len(reports) == 6
        # compute nodes miss only the frontend-only grid tools
        for name, report in reports.items():
            coverage = report.dimension("package coverage")
            if name.startswith("compute"):
                # frontend-only software: the grid endpoints and the Maui
                # scheduler daemon (pbs_mom comes with torque on computes)
                assert set(coverage.missing) == {
                    "maui", "globus-connect-server", "genesis2", "gffs",
                }
                assert report.overall > 0.95
            else:
                assert report.overall == pytest.approx(1.0)

    def test_rejects_unknown_shape(self):
        from repro.core import audit_cluster

        with pytest.raises(TypeError):
            audit_cluster(42)


class TestModuleExtensions:
    def make_system(self):
        system = ModuleSystem()
        system.install(ModuleFile("openmpi", "1.6.4", whatis="MPI implementation"))
        system.install(ModuleFile("openmpi", "1.8.1", whatis="MPI implementation"))
        system.install(ModuleFile("fftw3", "3.3.3", whatis="fast Fourier transforms"))
        return system

    def test_set_default(self):
        system = self.make_system()
        assert system.resolve("openmpi").version == "1.6.4"
        system.set_default("openmpi", "1.8.1")
        assert system.resolve("openmpi").version == "1.8.1"
        with pytest.raises(ModuleEnvError):
            system.set_default("openmpi", "9.9")

    def test_whatis_search(self):
        system = self.make_system()
        hits = system.whatis("fourier")
        assert hits == ["fftw3/3.3.3: fast Fourier transforms"]
        assert len(system.whatis("mpi")) >= 2

    def test_swap(self):
        session = ModuleSession(self.make_system())
        session.load("openmpi/1.6.4")
        session.swap("openmpi", "openmpi/1.8.1")
        assert session.loaded() == ["openmpi/1.8.1"]

    def test_swap_restores_on_failure(self):
        session = ModuleSession(self.make_system())
        session.load("openmpi/1.6.4")
        with pytest.raises(ModuleEnvError):
            session.swap("openmpi", "nonexistent/1.0")
        assert session.loaded() == ["openmpi/1.6.4"]

    def test_swap_requires_loaded(self):
        session = ModuleSession(self.make_system())
        with pytest.raises(ModuleEnvError, match="not loaded"):
            session.swap("openmpi", "openmpi/1.8.1")


class TestFileConflictReporting:
    def test_scheduler_change_reports_replaced_commands(self):
        """XNIT torque over the vendor Grid Engine: the qsub/qstat/qdel
        takeover is recorded on the transaction, never silent."""
        from repro.core import (
            build_limulus_cluster,
            build_xnit_repository,
            setup_via_repo_rpm,
        )

        cluster = build_limulus_cluster()
        client = cluster.client_for(cluster.frontend)
        setup_via_repo_rpm(client, build_xnit_repository())
        result = client.install("torque")
        assert "/usr/bin/qsub (sge -> torque)" in result.file_conflicts
        assert len(result.file_conflicts) == 3

    def test_clean_install_reports_none(self, frontend_host):
        db = RpmDatabase(frontend_host)
        result = Transaction(db).install(mk("solo", commands=("solo",))).commit()
        assert result.file_conflicts == []

    def test_upgrade_does_not_self_conflict(self, frontend_host):
        db = RpmDatabase(frontend_host)
        Transaction(db).install(mk("x", "1.0", commands=("x",))).commit()
        result = Transaction(db).upgrade(mk("x", "2.0", commands=("x",))).commit()
        assert result.file_conflicts == []

"""Rolling updates with safety gates: never half-brick the fleet.

The XNIT update story at fleet scale: applying a package or firmware
change to 10,000 nodes must not take the whole machine down when the
update is bad or the fleet is flaky.  :class:`RollingUpdate` sweeps a
:class:`~repro.fleet.NodeSet` in ``split()`` waves and gates every wave:

1. **drain** — wave nodes stop taking new jobs; running work finishes or
   is force-requeued at ``drain_deadline_s`` (so a straggler job cannot
   hang the sweep);
2. **execute** — the wave runs through the :class:`~repro.shell.ShellEngine`
   (bounded fanout, per-node retries, unreachable nodes skipped);
3. **health-verify** — ``health_cycles`` monitoring polls through the
   :class:`~repro.monitoring.GmetadTree`; a node that stopped
   heartbeating after the update counts as a failure even if the command
   "succeeded";
4. **undrain** — only healthy updated nodes return to service; failures
   stay parked offline (and never draining — a finished sweep leaves no
   drain flag behind).

Two failure-domain gates sit on top: a **rack limit** (after
``rack_failures_limit`` node failures in one rack, the rest of that rack
is skipped — a dying PDU should cost one rack, not the sweep) and a
**sweep threshold** (``max_failures`` / ``max_failure_fraction``; crossing
it pauses or aborts per ``on_threshold``).  A paused sweep is resumable:
the operator repairs, calls :meth:`RollingUpdate.resume`, and the sweep
continues from the next wave with a fresh failure budget.

Every decision lands on the trace bus (``shell.wave`` per wave,
``shell.abort`` per rack abort / pause / abort), and
:func:`rolling_confluence_problems` audits a finished trace for the
invariants the chaos harness checks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ShellError
from ..faults import RetryPolicy
from ..fleet import NodeSet, fold_names
from .engine import ShellCommand, ShellEngine, ShellReport

__all__ = [
    "WaveResult",
    "RollingReport",
    "RollingUpdate",
    "rolling_confluence_problems",
]


@dataclass
class WaveResult:
    """One wave's outcome after all four gates."""

    wave: int
    nodes: NodeSet
    report: ShellReport | None
    ok: NodeSet
    failed: NodeSet
    skipped: NodeSet
    unhealthy: NodeSet
    status: str  # "ok" | "degraded" | "failed"


@dataclass
class RollingReport:
    """The sweep so far: always consistent, even paused or aborted."""

    state: str = "idle"
    waves: list[WaveResult] = field(default_factory=list)
    pause_reason: str = ""

    def _union(self, attr: str) -> NodeSet:
        out = NodeSet()
        for wave in self.waves:
            out = out | getattr(wave, attr)
        return out

    def ok_nodes(self) -> NodeSet:
        return self._union("ok")

    def failed_nodes(self) -> NodeSet:
        return self._union("failed")

    def skipped_nodes(self) -> NodeSet:
        return self._union("skipped")

    def remaining(self) -> NodeSet:
        """Nodes in waves the sweep has not reached yet."""
        return self._remaining

    _remaining: NodeSet = field(default_factory=NodeSet)

    def summary(self) -> str:
        ok = len(self.ok_nodes())
        failed = len(self.failed_nodes())
        skipped = len(self.skipped_nodes())
        line = (
            f"rolling update {self.state}: {len(self.waves)} wave(s), "
            f"{ok} ok, {failed} failed, {skipped} skipped"
        )
        if self.pause_reason:
            line += f" — {self.pause_reason}"
        return line


class RollingUpdate:
    """Wave-by-wave fleet sweep with drain, health, and abort gates."""

    def __init__(
        self,
        engine: ShellEngine,
        *,
        scheduler=None,
        tree=None,
        wave_size: int = 64,
        fanout: int = 64,
        timeout_s: float = 30.0,
        policy: RetryPolicy | None = None,
        max_failures: int | None = None,
        max_failure_fraction: float | None = None,
        on_threshold: str = "pause",
        rack_failures_limit: int | None = None,
        drain_deadline_s: float | None = 600.0,
        health_cycles: int = 3,
    ) -> None:
        if wave_size < 1:
            raise ShellError(f"wave size must be >= 1, got {wave_size}")
        if on_threshold not in ("pause", "abort"):
            raise ShellError(
                f"on_threshold must be 'pause' or 'abort', got {on_threshold!r}"
            )
        if max_failure_fraction is not None and not 0 <= max_failure_fraction <= 1:
            raise ShellError("max_failure_fraction must be in [0, 1]")
        if rack_failures_limit is not None and rack_failures_limit < 1:
            raise ShellError("rack_failures_limit must be >= 1")
        if health_cycles < 0:
            raise ShellError("health_cycles must be >= 0")
        self.engine = engine
        self.scheduler = scheduler
        self.tree = tree
        self.wave_size = wave_size
        self.fanout = fanout
        self.timeout_s = timeout_s
        self.policy = policy
        self.max_failures = max_failures
        self.max_failure_fraction = max_failure_fraction
        self.on_threshold = on_threshold
        self.rack_failures_limit = rack_failures_limit
        self.drain_deadline_s = drain_deadline_s
        self.health_cycles = health_cycles
        self.report = RollingReport()
        self._waves: list[NodeSet] = []
        self._next_wave = 0
        self._command: ShellCommand | None = None
        self._sched_names: frozenset[str] = frozenset()
        self._attempted = 0
        self._failed = 0
        self._rack_failures: dict[int, int] = {}
        self._aborted_racks: set[int] = set()

    @property
    def state(self) -> str:
        return self.report.state

    # -- lifecycle -----------------------------------------------------------

    def run(
        self, nodes: NodeSet | str, command: ShellCommand | str
    ) -> RollingReport:
        """Sweep ``nodes`` in waves; returns when done, paused, or aborted."""
        if self.report.state not in ("idle",):
            raise ShellError(
                f"rolling update already {self.report.state}; "
                f"use resume() or a fresh RollingUpdate"
            )
        if isinstance(nodes, str):
            nodes = NodeSet.parse(nodes)
        if isinstance(command, str):
            command = ShellCommand(command)
        self._command = command
        self._waves = list(nodes.split(self.wave_size))
        self._next_wave = 0
        if self.scheduler is not None:
            self._sched_names = frozenset(self.scheduler.resources.node_names())
        self.report.state = "running"
        return self._sweep()

    def resume(self) -> RollingReport:
        """Continue a paused sweep with a fresh failure budget.

        The operator has intervened (repaired nodes, pulled the bad
        package); the counters that tripped the threshold restart at zero
        so the pre-repair failures are not double-counted.
        """
        if self.report.state != "paused":
            raise ShellError(
                f"cannot resume a rolling update that is {self.report.state}"
            )
        self._attempted = 0
        self._failed = 0
        self.report.pause_reason = ""
        self.report.state = "running"
        return self._sweep()

    # -- the sweep -----------------------------------------------------------

    def _rack_of(self, name: str) -> int | None:
        fleet = self.engine.fleet
        if not fleet.has(name):
            return None
        return fleet.racks[fleet.index_of(name)]

    def _remaining_after(self, wave_index: int) -> NodeSet:
        out = NodeSet()
        for ns in self._waves[wave_index + 1:]:
            out = out | ns
        return out

    def _emit_abort(self, reason: str, wave: int, nodes: NodeSet) -> None:
        kernel = self.engine.kernel
        kernel.trace.emit(
            "shell.abort", t_s=kernel.now_s, subsystem=self.engine.subsystem,
            reason=reason, wave=wave, nodes=nodes.fold(),
        )

    def _sweep(self) -> RollingReport:
        assert self._command is not None
        while self._next_wave < len(self._waves):
            index = self._next_wave
            self._run_wave(index, self._waves[index])
            self._next_wave = index + 1
            self.report._remaining = self._remaining_after(index)
            crossed = self._threshold_reason()
            if crossed:
                if self.on_threshold == "abort":
                    self.report.state = "aborted"
                    self.report.pause_reason = crossed
                    self._emit_abort(
                        f"sweep aborted: {crossed}", index, self.report._remaining
                    )
                else:
                    self.report.state = "paused"
                    self.report.pause_reason = crossed
                    self._emit_abort(
                        f"sweep paused: {crossed}", index, self.report._remaining
                    )
                return self.report
        self.report.state = "succeeded"
        return self.report

    def _threshold_reason(self) -> str:
        if self.max_failures is not None and self._failed > self.max_failures:
            return (
                f"{self._failed} node failure(s) exceed "
                f"max_failures={self.max_failures}"
            )
        if (
            self.max_failure_fraction is not None
            and self._attempted > 0
            and self._failed / self._attempted > self.max_failure_fraction
        ):
            return (
                f"failure fraction {self._failed}/{self._attempted} exceeds "
                f"{self.max_failure_fraction:g}"
            )
        return ""

    def _run_wave(self, index: int, wave: NodeSet) -> None:
        engine = self.engine
        kernel = engine.kernel
        assert self._command is not None

        # Gate 0: failure-domain awareness — skip nodes of aborted racks.
        rack_skipped = [
            name for name in wave if self._rack_of(name) in self._aborted_racks
        ]
        rest = wave - NodeSet.from_names(rack_skipped)

        # Gate 1: drain the wave (bounded by the drain deadline).
        drained = self._drain(index, rest)

        # Gate 2: execute with bounded fanout; degradation is per-node.
        report = engine.run(
            rest, self._command, fanout=self.fanout,
            timeout_s=self.timeout_s, policy=self.policy,
        )

        # Gate 3: health-verify — updated nodes must still heartbeat.
        ok = report.ok_nodes()
        unhealthy = NodeSet()
        if self.tree is not None and self.health_cycles:
            for _ in range(self.health_cycles):
                self.tree.poll_cycle()
            dead = frozenset(self.tree.dead_hosts())
            unhealthy = NodeSet.from_names(n for n in ok if n in dead)
            ok = ok - unhealthy
        failed = report.failed_nodes() | unhealthy

        # Gate 4: undrain survivors; park failures offline, never draining.
        self._undrain(drained, ok)

        # Rack accounting (after the wave, so one bad wave can abort a rack
        # before the next wave touches it).
        newly_aborted: list[int] = []
        for name in failed:
            rack = self._rack_of(name)
            if rack is None:
                continue
            count = self._rack_failures.get(rack, 0) + 1
            self._rack_failures[rack] = count
            if (
                self.rack_failures_limit is not None
                and count >= self.rack_failures_limit
                and rack not in self._aborted_racks
            ):
                self._aborted_racks.add(rack)
                newly_aborted.append(rack)
        for rack in newly_aborted:
            self._emit_abort(
                f"rack {rack}: {self._rack_failures[rack]} node failure(s) "
                f"reached rack_failures_limit={self.rack_failures_limit}",
                index,
                self._rack_nodeset(rack),
            )

        skipped = NodeSet.from_names(rack_skipped) | report.skipped_nodes()
        ok_count, failed_count = len(ok), len(failed)
        executed = ok_count + failed_count
        if failed_count == 0:
            status = "ok"
        elif executed > 0 and ok_count == 0:
            status = "failed"
        else:
            status = "degraded"
        kernel.trace.emit(
            "shell.wave", t_s=kernel.now_s, subsystem=engine.subsystem,
            wave=index, nodes=wave.fold(), count=len(wave),
            ok=ok_count, failed=failed_count, skipped=len(skipped),
            status=status,
        )
        self._attempted += executed
        self._failed += failed_count
        self.report.waves.append(
            WaveResult(
                wave=index, nodes=wave, report=report, ok=ok, failed=failed,
                skipped=skipped, unhealthy=unhealthy, status=status,
            )
        )

    def _rack_nodeset(self, rack: int) -> NodeSet:
        fleet = self.engine.fleet
        return fleet.nodeset(
            [i for i in fleet.ordered_indices() if fleet.racks[i] == rack]
        )

    # -- drain / undrain -----------------------------------------------------

    def _drain(self, index: int, wave: NodeSet) -> list[str]:
        """Drain the wave's schedulable nodes; wait for drains to finish."""
        scheduler = self.scheduler
        if scheduler is None:
            return []
        resources = scheduler.resources
        to_drain = [
            name
            for name in wave
            if name in self._sched_names
            and not resources.is_failed(name)
            and not resources.is_offline(name)
            and not resources.is_draining(name)
        ]
        if not to_drain:
            return []
        scheduler.drain_nodes(
            to_drain,
            reason=f"rolling update wave {index}",
            deadline_s=self.drain_deadline_s,
        )
        kernel = self.engine.kernel
        while True:
            waiting = [
                name
                for name in to_drain
                if resources.is_draining(name) and not resources.is_offline(name)
            ]
            if not waiting:
                return to_drain
            if not kernel.step():
                raise ShellError(
                    f"wave {index}: drain stuck on {fold_names(waiting)} "
                    f"with an idle kernel (set drain_deadline_s)"
                )

    def _undrain(self, drained: list[str], ok: NodeSet) -> None:
        """Healthy nodes back to service; failures parked offline."""
        scheduler = self.scheduler
        if scheduler is None:
            return
        resources = scheduler.resources
        for name in drained:
            if name in ok:
                scheduler.undrain_node(name)
            else:
                # Parked: offline until the operator repairs it, and the
                # draining flag cleared — a completed sweep drains nothing.
                resources.set_draining(name, False)
                if not resources.is_offline(name) and resources.is_idle(name):
                    resources.set_offline(name, True)


def rolling_confluence_problems(events, *, resources=None) -> list[str]:
    """Audit a trace for rolling-update confluence; returns problems.

    Invariants (the chaos harness's invariant 7):

    * no wave both succeeded (``shell.wave`` status ``ok``) and aborted
      (a ``shell.abort`` naming the same wave);
    * once any rolling update ran, no node is left draining (pass the
      scheduler's ``resources`` to check; omitted = trace-only audit).

    ``events`` may be :class:`~repro.sim.TraceEvent` objects or decoded
    JSONL dicts.
    """
    problems: list[str] = []
    wave_status: dict[int, str] = {}
    aborts: list[tuple[int, str]] = []
    saw_rolling = False
    for event in events:
        if hasattr(event, "kind"):
            kind, data = event.kind, event.data
        else:
            kind, data = event.get("kind"), event.get("data", {})
        if kind == "shell.wave":
            saw_rolling = True
            wave_status[data["wave"]] = data["status"]
        elif kind == "shell.abort":
            saw_rolling = True
            aborts.append((data["wave"], data["reason"]))
    for wave, reason in aborts:
        if wave_status.get(wave) == "ok":
            problems.append(
                f"wave {wave} both succeeded and aborted ({reason})"
            )
    if saw_rolling and resources is not None:
        draining = resources.draining_nodes()
        if draining:
            problems.append(
                f"rolling update left node(s) draining: {fold_names(draining)}"
            )
    return problems
